//! POP — robustness of the Figure-1 conclusions to the Monte-Carlo
//! population (our extension). The paper describes its population loosely
//! (uniform periods, mean 100 ms, ratio 10) and reports that "results
//! obtained for other values of these parameters were similar"; this
//! experiment substantiates that by re-running the protocol comparison at
//! a low and a high bandwidth across period/length populations:
//!
//! * period distributions: the paper's uniform band, a log-uniform band,
//!   harmonic periods, and a bimodal control+bulk mixture;
//! * length shapes: utilization-proportional, uniform bits, equal bits.
//!
//! The claim under test: *modified 802.5 leads at 2 Mbps, FDDI leads at
//! 200 Mbps, in every population.*

use ringrt_bench::{banner, ExpOptions};
use ringrt_breakdown::table::{cell, Table};
use ringrt_breakdown::{BreakdownEstimator, SaturationSearch};
use ringrt_core::pdp::{PdpAnalyzer, PdpVariant};
use ringrt_core::ttp::TtpAnalyzer;
use ringrt_model::{FrameFormat, RingConfig};
use ringrt_units::{Bandwidth, Seconds};
use ringrt_workload::{LengthShape, MessageSetGenerator, PeriodDistribution};

fn populations() -> Vec<(&'static str, PeriodDistribution, LengthShape)> {
    let uniform = PeriodDistribution::paper_default();
    let log_uniform = PeriodDistribution::LogUniform {
        min: Seconds::from_millis(200.0 / 11.0),
        max: Seconds::from_millis(2000.0 / 11.0),
    };
    let harmonic = PeriodDistribution::Harmonic {
        base: Seconds::from_millis(20.0),
        octaves: 4,
    };
    let bimodal = PeriodDistribution::Bimodal {
        fast_fraction: 0.6,
        fast: (Seconds::from_millis(15.0), Seconds::from_millis(40.0)),
        slow: (Seconds::from_millis(150.0), Seconds::from_millis(400.0)),
    };
    vec![
        (
            "paper_uniform/util",
            uniform.clone(),
            LengthShape::UniformUtilization,
        ),
        (
            "paper_uniform/bits",
            uniform.clone(),
            LengthShape::UniformBits,
        ),
        ("paper_uniform/equal", uniform, LengthShape::EqualBits),
        (
            "log_uniform/util",
            log_uniform,
            LengthShape::UniformUtilization,
        ),
        ("harmonic/util", harmonic, LengthShape::UniformUtilization),
        ("bimodal/util", bimodal, LengthShape::UniformUtilization),
    ]
}

fn main() {
    let opts = ExpOptions::from_env();
    banner(
        "POP",
        "protocol ordering across Monte-Carlo populations",
        &opts,
    );

    // Moderate station count keeps the 2 Mbps points meaningful (see the
    // FIG1 n=100 1 Mbps discussion in EXPERIMENTS.md).
    let stations = opts.stations.min(40);
    let frame = FrameFormat::paper_default();
    let pool = ringrt_exec::Pool::from_env();

    let mut table = Table::new(&[
        "population",
        "bandwidth_mbps",
        "modified_802_5",
        "fddi",
        "leader",
    ]);
    let mut violations = 0u32;
    for (name, periods, lengths) in populations() {
        let generator = MessageSetGenerator::paper_population(stations)
            .with_periods(periods)
            .with_lengths(lengths);
        let estimator = BreakdownEstimator::new(generator, opts.samples).with_search(
            SaturationSearch::with_tolerance(if opts.quick { 3e-3 } else { 1e-3 }),
        );
        for (mbps, expect_pdp) in [(2.0, true), (200.0, false)] {
            let bw = Bandwidth::from_mbps(mbps);
            let pdp = PdpAnalyzer::new(
                RingConfig::ieee_802_5(stations, bw),
                frame,
                PdpVariant::Modified,
            );
            let ttp = TtpAnalyzer::with_defaults(RingConfig::fddi(stations, bw));
            let e_pdp = estimator.estimate_parallel(&pdp, bw, opts.seed, &pool);
            let e_ttp = estimator.estimate_parallel(&ttp, bw, opts.seed, &pool);
            let pdp_leads = e_pdp.mean > e_ttp.mean;
            if pdp_leads != expect_pdp {
                violations += 1;
            }
            table.push_row(&[
                name.into(),
                cell(mbps, 0),
                cell(e_pdp.mean, 4),
                cell(e_ttp.mean, 4),
                if pdp_leads {
                    "802.5".into()
                } else {
                    "fddi".into()
                },
            ]);
        }
    }
    print!("{}", table.to_csv());
    println!();
    println!(
        "# ordering violations vs the paper's claim: {violations} (0 expected: PDP at 2 Mbps, FDDI at 200 Mbps)"
    );
    if violations > 0 {
        std::process::exit(1);
    }
}
