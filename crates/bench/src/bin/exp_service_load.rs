//! SERVICE-LOAD — throughput and tail latency of the admission-control
//! server (`ringrt-service`) under concurrent clients.
//!
//! Spawns the server in-process on an ephemeral port, drives it with
//! concurrent TCP clients issuing a mix of CHECK and SATURATION requests,
//! and reports throughput plus p50/p99 request latency for two phases:
//!
//! * **cold** — every request is distinct, so each one runs a real
//!   analysis (all cache misses);
//! * **warm** — the same request list replayed, so each verdict is served
//!   from the canonicalizing result cache;
//! * **warm-batch** — the warm list again, but framed as `BATCH <n>`
//!   pipelines so each chunk crosses the socket in one write per
//!   direction.
//!
//! The cold→warm gap is the cache's value; the warm→warm-batch gap is
//! pure per-request syscall and wakeup overhead, since both phases serve
//! every verdict from the cache.
//!
//! With `--connections` the binary instead runs the **connection-count
//! sweep**: the event front end is loaded with 1k/10k/50k *idle*
//! connections (held open by re-exec'd holder subprocesses, since one
//! process would exhaust its own fd budget racing the server for
//! descriptors) while 4 active clients replay cache-warm `CHECK`s. The
//! claim under test is that p99 active latency stays bounded — within 2×
//! the 1k-connection baseline — because epoll readiness scales with
//! *active* fds, not open ones. Results land in `BENCH_connections.json`.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use ringrt_bench::{banner, ExpOptions};
use ringrt_breakdown::table::{cell, Table};
use ringrt_des::stats::DurationHistogram;
use ringrt_service::{spawn, Frontend, ServiceConfig};
use ringrt_units::SimDuration;

/// Builds one request line; `unique` differentiates the payload so the
/// cold phase cannot hit the cache.
fn request_line(i: usize, unique: usize) -> String {
    let protocol = ["modified", "802.5", "fddi"][i % 3];
    let mbps = if protocol == "fddi" { 100.0 } else { 16.0 };
    let bits_a = 20_000 + 8 * unique;
    let bits_b = 60_000 + 8 * unique;
    let set = format!("20,{bits_a};50,{bits_b}");
    if i.is_multiple_of(4) {
        format!("SATURATION mbps={mbps} set={set} protocol={protocol}")
    } else {
        format!("CHECK mbps={mbps} set={set} protocol={protocol}")
    }
}

struct PhaseResult {
    histogram: DurationHistogram,
    requests: u64,
    errors: u64,
    elapsed_s: f64,
}

/// Joins the per-client worker threads into one merged phase result.
fn collect(
    handles: Vec<std::thread::JoinHandle<(DurationHistogram, u64, u64)>>,
    started: Instant,
) -> PhaseResult {
    let mut histogram = DurationHistogram::new();
    let mut requests = 0;
    let mut errors = 0;
    for h in handles {
        let (hist, n, e) = h.join().expect("client thread");
        histogram.merge(&hist);
        requests += n;
        errors += e;
    }
    PhaseResult {
        histogram,
        requests,
        errors,
        elapsed_s: started.elapsed().as_secs_f64(),
    }
}

/// Runs `clients` concurrent connections, each sending its share of
/// `lines` one request per write, and collects the merged latency
/// histogram.
fn run_phase(addr: SocketAddr, clients: usize, lines: &[String]) -> PhaseResult {
    let started = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let my_lines: Vec<String> = lines.iter().skip(c).step_by(clients).cloned().collect();
            std::thread::spawn(move || {
                let stream = TcpStream::connect(addr).expect("connect");
                let mut writer = stream.try_clone().expect("clone");
                let mut reader = BufReader::new(stream);
                let mut hist = DurationHistogram::new();
                let mut errors = 0u64;
                let mut resp = String::new();
                for line in &my_lines {
                    let t0 = Instant::now();
                    writer
                        .write_all(format!("{line}\n").as_bytes())
                        .expect("send");
                    resp.clear();
                    reader.read_line(&mut resp).expect("recv");
                    let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
                    hist.push(SimDuration::from_picos(ns.saturating_mul(1000)));
                    if !resp.starts_with("OK") {
                        errors += 1;
                    }
                }
                (hist, my_lines.len() as u64, errors)
            })
        })
        .collect();
    collect(handles, started)
}

/// Like [`run_phase`], but each client frames its share as `BATCH <n>`
/// pipelines of up to `chunk` requests: one `write` carries the whole
/// chunk out and the server answers it with one `write` back. Latency is
/// recorded per request, amortized across its chunk.
fn run_batched_phase(
    addr: SocketAddr,
    clients: usize,
    lines: &[String],
    chunk: usize,
) -> PhaseResult {
    let started = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let my_lines: Vec<String> = lines.iter().skip(c).step_by(clients).cloned().collect();
            std::thread::spawn(move || {
                let stream = TcpStream::connect(addr).expect("connect");
                let mut writer = stream.try_clone().expect("clone");
                let mut reader = BufReader::new(stream);
                let mut hist = DurationHistogram::new();
                let mut errors = 0u64;
                let mut resp = String::new();
                for batch in my_lines.chunks(chunk) {
                    let mut frame = format!("BATCH {}\n", batch.len());
                    for line in batch {
                        frame.push_str(line);
                        frame.push('\n');
                    }
                    let t0 = Instant::now();
                    writer.write_all(frame.as_bytes()).expect("send");
                    for _ in batch {
                        resp.clear();
                        reader.read_line(&mut resp).expect("recv");
                        if !resp.starts_with("OK") {
                            errors += 1;
                        }
                    }
                    let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
                    let per = ns / batch.len() as u64;
                    for _ in batch {
                        hist.push(SimDuration::from_picos(per.saturating_mul(1000)));
                    }
                }
                (hist, my_lines.len() as u64, errors)
            })
        })
        .collect();
    collect(handles, started)
}

fn quantile_us(h: &DurationHistogram, q: f64) -> f64 {
    h.quantile(q)
        .map_or(f64::NAN, |d| d.as_picos() as f64 / 1e6)
}

fn stats_field(addr: SocketAddr, key: &str) -> String {
    let stream = TcpStream::connect(addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    writer.write_all(b"STATS\n").expect("send");
    let mut resp = String::new();
    reader.read_line(&mut resp).expect("recv");
    resp.split_whitespace()
        .find_map(|w| w.strip_prefix(&format!("{key}=")[..]))
        .unwrap_or("?")
        .to_owned()
}

/// Most idle connections one holder subprocess keeps open; beyond this we
/// shard across children so no single process nears its own fd limit.
const HOLDER_CAP: usize = 15_000;

/// Descriptors reserved for everything that is not a held connection:
/// the server's own ends live in *this* process, plus stdio, the
/// listener, wakeup pipes, and the active-load clients.
const FD_MARGIN: u64 = 2_000;

/// Hidden holder mode (`--hold-idle N --target ADDR`): opens `N`
/// connections, reports `HELD <n>` on stdout, and keeps them open until a
/// line arrives on stdin. Never returns.
fn hold_idle(count: usize, target: &str) -> ! {
    let _ = ringrt_net::rlimit::raise_nofile_to_hard();
    let addr: SocketAddr = target.parse().expect("--target ADDR");
    let mut held: Vec<TcpStream> = Vec::with_capacity(count);
    let mut failures = 0u32;
    while held.len() < count {
        match TcpStream::connect(addr) {
            Ok(s) => {
                held.push(s);
                failures = 0;
                // Pace the connect storm so the listener's accept backlog
                // never overflows.
                if held.len().is_multiple_of(256) {
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
            Err(e) => {
                failures += 1;
                if failures > 20 {
                    eprintln!("holder: giving up at {} conns: {e}", held.len());
                    break;
                }
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
    println!("HELD {}", held.len());
    std::io::stdout().flush().expect("flush");
    let mut line = String::new();
    let _ = std::io::stdin().read_line(&mut line);
    drop(held);
    std::process::exit(0);
}

struct Holder {
    child: Child,
    held: usize,
}

/// Spawns holder subprocesses until `target` connections are open against
/// `addr`, reading each child's `HELD <n>` handshake.
fn spawn_holders(addr: SocketAddr, target: usize) -> Vec<Holder> {
    let exe = std::env::current_exe().expect("current_exe");
    let mut holders = Vec::new();
    let mut remaining = target;
    while remaining > 0 {
        let want = remaining.min(HOLDER_CAP);
        let mut child = Command::new(&exe)
            .arg("--hold-idle")
            .arg(want.to_string())
            .arg("--target")
            .arg(addr.to_string())
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn holder");
        let mut line = String::new();
        BufReader::new(child.stdout.as_mut().expect("holder stdout"))
            .read_line(&mut line)
            .expect("holder handshake");
        let held: usize = line
            .trim()
            .strip_prefix("HELD ")
            .and_then(|n| n.parse().ok())
            .expect("HELD <n> handshake");
        holders.push(Holder { child, held });
        remaining -= want;
    }
    holders
}

/// Releases the held connections and reaps the holder children.
fn release_holders(holders: Vec<Holder>) {
    for mut holder in holders {
        let _ = holder
            .child
            .stdin
            .as_mut()
            .expect("holder stdin")
            .write_all(b"DONE\n");
        let _ = holder.child.wait();
    }
}

struct SweepRow {
    target: usize,
    held: usize,
    gauge: String,
    result: PhaseResult,
    wakeups: String,
    ready_events: String,
    accept_shed: String,
}

/// The connection-count sweep: for each target, park that many idle
/// connections on an event-front server and measure active cache-warm
/// CHECK latency alongside them.
fn connection_sweep(opts: &ExpOptions) {
    banner(
        "SERVICE-LOAD/CONNECTIONS",
        "active-request tail latency vs idle connection count (event front end)",
        opts,
    );

    let soft = ringrt_net::rlimit::raise_nofile_to_hard().unwrap_or(1024);
    let budget = usize::try_from(soft.saturating_sub(FD_MARGIN)).unwrap_or(usize::MAX);
    let targets: Vec<usize> = if opts.quick {
        vec![100, 1_000]
    } else {
        vec![1_000, 10_000, 50_000]
    };
    let clients = 4;
    let per_client = (opts.samples * 10).clamp(200, 2_000);
    let workers = ringrt_exec::configured_threads().max(4);
    println!(
        "# fd soft limit {soft} (budget {budget} held conns), \
         {clients} active clients × {per_client} warm CHECKs per row"
    );

    let warm_lines: Vec<String> = (0..clients * per_client)
        .map(|i| request_line(i, 0))
        .collect();
    let mut rows: Vec<SweepRow> = Vec::new();
    for &want in &targets {
        let target = want.min(budget);
        if target < want {
            println!("# clamping {want} -> {target} idle conns (fd soft limit {soft})");
        }
        let server = spawn(ServiceConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers,
            queue_depth: 4 * warm_lines.len().max(16),
            default_deadline_ms: 60_000,
            frontend: Frontend::Event,
            ..ServiceConfig::default()
        })
        .expect("spawn service");
        let addr = server.addr();
        let holders = spawn_holders(addr, target);
        let held: usize = holders.iter().map(|h| h.held).sum();

        let _prime = run_phase(addr, clients, &warm_lines);
        let result = run_phase(addr, clients, &warm_lines);
        let row = SweepRow {
            target,
            held,
            gauge: stats_field(addr, "connections_open"),
            result,
            wakeups: stats_field(addr, "loop_wakeups"),
            ready_events: stats_field(addr, "loop_ready_events"),
            accept_shed: stats_field(addr, "accept_shed"),
        };
        release_holders(holders);
        server.join();
        rows.push(row);
    }

    let mut table = Table::new(&[
        "idle_conns",
        "held",
        "gauge",
        "requests",
        "errors",
        "throughput_rps",
        "p50_us",
        "p99_us",
        "loop_wakeups",
        "ready_events",
    ]);
    for row in &rows {
        table.push_row(&[
            row.target.to_string(),
            row.held.to_string(),
            row.gauge.clone(),
            row.result.requests.to_string(),
            row.result.errors.to_string(),
            cell(row.result.requests as f64 / row.result.elapsed_s, 1),
            cell(quantile_us(&row.result.histogram, 0.5), 1),
            cell(quantile_us(&row.result.histogram, 0.99), 1),
            row.wakeups.clone(),
            row.ready_events.clone(),
        ]);
    }
    println!();
    print!("{}", table.to_csv());
    println!();

    // The claim is that p99 stays bounded at *every* scale, so judge the
    // worst row against the baseline, not just the largest.
    let base_p99 = quantile_us(&rows[0].result.histogram, 0.99);
    let worst = rows
        .iter()
        .skip(1)
        .max_by(|a, b| {
            quantile_us(&a.result.histogram, 0.99)
                .total_cmp(&quantile_us(&b.result.histogram, 0.99))
        })
        .unwrap_or(&rows[0]);
    let ratio = quantile_us(&worst.result.histogram, 0.99) / base_p99.max(f64::MIN_POSITIVE);
    let bound = 2.0;
    println!(
        "# worst p99 ({} idle conns) is {ratio:.2}x the {}-conn baseline (bound {bound}x): {}",
        worst.held,
        rows[0].held,
        if ratio <= bound { "PASS" } else { "FAIL" },
    );

    let mut json = String::from("{\n");
    json.push_str("  \"experiment\": \"SERVICE-LOAD/CONNECTIONS\",\n");
    json.push_str("  \"frontend\": \"event\",\n");
    json.push_str(&format!("  \"fd_soft_limit\": {soft},\n"));
    json.push_str(&format!("  \"active_clients\": {clients},\n"));
    json.push_str("  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"target\": {}, \"held\": {}, \"connections_open\": \"{}\", \
             \"requests\": {}, \"errors\": {}, \"rps\": {:.1}, \"p50_us\": {:.1}, \
             \"p99_us\": {:.1}, \"loop_wakeups\": \"{}\", \"loop_ready_events\": \"{}\", \
             \"accept_shed\": \"{}\"}}{}\n",
            row.target,
            row.held,
            row.gauge,
            row.result.requests,
            row.result.errors,
            row.result.requests as f64 / row.result.elapsed_s,
            quantile_us(&row.result.histogram, 0.5),
            quantile_us(&row.result.histogram, 0.99),
            row.wakeups,
            row.ready_events,
            row.accept_shed,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"p99_ratio_vs_baseline\": {ratio:.3},\n"));
    json.push_str(&format!("  \"bound\": {bound:.1},\n"));
    json.push_str(&format!("  \"within_bound\": {}\n", ratio <= bound));
    json.push_str("}\n");
    std::fs::write("BENCH_connections.json", &json).expect("write BENCH_connections.json");
    println!("# wrote BENCH_connections.json");
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if let Some(i) = raw.iter().position(|a| a == "--hold-idle") {
        let count: usize = raw
            .get(i + 1)
            .and_then(|n| n.parse().ok())
            .expect("--hold-idle N");
        let target = raw
            .iter()
            .position(|a| a == "--target")
            .and_then(|t| raw.get(t + 1))
            .expect("--target ADDR");
        hold_idle(count, target);
    }
    let connections = raw.iter().any(|a| a == "--connections");
    let filtered = raw.into_iter().filter(|a| a != "--connections");
    let opts = match ExpOptions::parse(filtered) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    if connections {
        connection_sweep(&opts);
        return;
    }
    banner(
        "SERVICE-LOAD",
        "admission service throughput and latency, cold vs cache-warm",
        &opts,
    );

    let clients = if opts.quick { 4 } else { 8 };
    let per_client = opts.samples.max(10);
    let total = clients * per_client;
    let workers = ringrt_exec::configured_threads().max(4);

    let server = spawn(ServiceConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers,
        queue_depth: 4 * total.max(16),
        default_deadline_ms: 60_000,
        ..ServiceConfig::default()
    })
    .expect("spawn service");
    let addr = server.addr();
    println!("# server on {addr}, {workers} workers, {clients} clients × {per_client} requests");

    // Cold: every request distinct. Warm: one fixed list, replayed twice so
    // the second pass is all cache hits.
    let cold_lines: Vec<String> = (0..total).map(|i| request_line(i, i + 1)).collect();
    let warm_lines: Vec<String> = (0..total).map(|i| request_line(i, 0)).collect();

    let mut table = Table::new(&[
        "phase",
        "clients",
        "requests",
        "errors",
        "secs",
        "throughput_rps",
        "p50_us",
        "p99_us",
        "cache_hits",
    ]);
    let mut push = |phase: &str, r: &PhaseResult| {
        table.push_row(&[
            phase.into(),
            clients.to_string(),
            r.requests.to_string(),
            r.errors.to_string(),
            cell(r.elapsed_s, 3),
            cell(r.requests as f64 / r.elapsed_s, 1),
            cell(quantile_us(&r.histogram, 0.5), 1),
            cell(quantile_us(&r.histogram, 0.99), 1),
            stats_field(addr, "cache_hits"),
        ]);
    };

    let batch_chunk = 32;
    let cold = run_phase(addr, clients, &cold_lines);
    push("cold", &cold);
    let _prime = run_phase(addr, clients, &warm_lines);
    let warm = run_phase(addr, clients, &warm_lines);
    push("warm", &warm);
    let batched = run_batched_phase(addr, clients, &warm_lines, batch_chunk);
    push(&format!("warm-batch{batch_chunk}"), &batched);

    println!();
    print!("{}", table.to_csv());
    println!();
    let cold_rps = cold.requests as f64 / cold.elapsed_s;
    let warm_rps = warm.requests as f64 / warm.elapsed_s;
    let batched_rps = batched.requests as f64 / batched.elapsed_s;
    println!(
        "# warm throughput is {:.1}x cold (cache short-circuits the analysis pipeline)",
        warm_rps / cold_rps.max(f64::MIN_POSITIVE)
    );
    println!(
        "# BATCH {batch_chunk} is {:.1}x warm line-at-a-time (saved per-request \
         write/read syscalls)",
        batched_rps / warm_rps.max(f64::MIN_POSITIVE)
    );
    println!(
        "# final server stats: requests={} ok={} busy={}",
        stats_field(addr, "requests"),
        stats_field(addr, "ok"),
        stats_field(addr, "busy"),
    );
    server.join();
}
