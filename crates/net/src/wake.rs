//! Cross-thread wakeup for a blocked [`Poller::wait`](crate::Poller::wait).
//!
//! Worker threads finish requests on their own schedule; the event loop
//! sleeps in `epoll_wait`. A [`Waker`] is the bridge: a nonblocking pipe
//! whose read end is registered in the poller under a reserved token.
//! [`Waker::wake`] writes one byte (coalescing naturally when the pipe is
//! already full), the loop wakes, calls [`Waker::drain`], and then drains
//! its completion queue.

use crate::poller::{Interest, Poller, Token};
use crate::sys;
use std::io;

/// A pipe-based waker. Clone-free by design: share it via `Arc`.
#[derive(Debug)]
pub struct Waker {
    read_fd: i32,
    write_fd: i32,
}

impl Waker {
    /// Creates the pipe pair (both ends nonblocking, close-on-exec).
    pub fn new() -> io::Result<Waker> {
        let (read_fd, write_fd) = sys::nonblocking_pipe()?;
        Ok(Waker { read_fd, write_fd })
    }

    /// Registers the read end with `poller` under `token`.
    pub fn register(&self, poller: &Poller, token: Token) -> io::Result<()> {
        poller.register(self.read_fd, token, Interest::READ)
    }

    /// Signals the loop. Safe from any thread; a full pipe means a wakeup
    /// is already pending, which is exactly as good as another one.
    pub fn wake(&self) {
        match sys::write_fd(self.write_fd, &[1u8]) {
            Ok(_) => {}
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
            Err(_) => {}
        }
    }

    /// Consumes pending wakeup bytes. Call once per poll wakeup before
    /// draining the queues the wakeups announce.
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        loop {
            match sys::read_fd(self.read_fd, &mut buf) {
                Ok(0) => break,
                Ok(_) => {}
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => break,
            }
        }
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        let _ = sys::close_fd(self.read_fd);
        let _ = sys::close_fd(self.write_fd);
    }
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn wake_unblocks_wait_and_drain_quiesces() {
        let poller = Poller::new(8).unwrap();
        let waker = Arc::new(Waker::new().unwrap());
        waker.register(&poller, Token(u64::MAX)).unwrap();

        let remote = Arc::clone(&waker);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            remote.wake();
            remote.wake(); // coalesces
        });

        let mut events = Vec::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token, Token(u64::MAX));
        waker.drain();

        // Once drained, the pipe is quiet again.
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(0)))
            .unwrap();
        assert_eq!(n, 0);
        handle.join().unwrap();
    }
}
