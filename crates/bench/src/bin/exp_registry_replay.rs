//! REGISTRY-REPLAY — crash-recovery speed of the persistent ring
//! registry (`ringrt-registry`).
//!
//! Admits `--samples` streams (each an incremental admission test + one
//! journaled append) spread over rings of 50 — walk time `Θ` grows with
//! the pinned station count, so one huge ring would stop admitting long
//! before the journal gets interesting — then measures how fast a fresh
//! process image recovers the state:
//!
//! * **journal** — reopen with the full journal, no snapshot: every
//!   record is CRC-checked, parsed and re-applied;
//! * **snapshot** — compact first, then reopen: recovery loads the
//!   snapshot and replays an empty journal.
//!
//! The headline number is **streams restored per second**; the byte
//! columns show what compaction buys on disk.

use std::time::Instant;

use ringrt_bench::{banner, ExpOptions};
use ringrt_breakdown::table::{cell, Table};
use ringrt_registry::RingRegistry;
use ringrt_units::{Bits, Seconds};

/// Streams per ring; 50 streams on a 60-station, 100 Mbps ring admit
/// comfortably under both PDP variants.
const RING_SIZE: usize = 50;

fn ring_name(i: usize) -> String {
    format!("load{:03}", i / RING_SIZE)
}

fn admit_stream(reg: &RingRegistry, i: usize) {
    let period = Seconds::from_millis(20.0 + (i % 40) as f64);
    let stream = ringrt_model::SyncStream::new(period, Bits::new(1_000 + 16 * (i as u64 % 50)));
    let outcome = reg
        .admit(&ring_name(i), &format!("s{:03}", i % RING_SIZE), stream)
        .expect("admit");
    assert!(outcome.applied, "stream {i} unexpectedly rejected");
}

fn main() {
    let opts = ExpOptions::from_env();
    banner(
        "REGISTRY-REPLAY",
        "ring-registry crash recovery: journal replay vs snapshot load",
        &opts,
    );

    let streams = opts.samples.max(50);
    let dir = std::env::temp_dir().join(format!(
        "ringrt-exp-registry-replay-{}-{streams}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);

    // Build the state: rings of RING_SIZE, `streams` journaled admissions.
    let rings = streams.div_ceil(RING_SIZE);
    let build_started = Instant::now();
    {
        let reg = RingRegistry::open(&dir).expect("open state dir");
        for r in 0..rings {
            reg.register(
                &ring_name(r * RING_SIZE),
                ringrt_registry::RingSpec {
                    protocol: ringrt_registry::ProtocolKind::Modified,
                    mbps: 100.0,
                    stations: Some(RING_SIZE + 10),
                },
            )
            .expect("register");
        }
        for i in 0..streams {
            admit_stream(&reg, i);
        }
    }
    let build_s = build_started.elapsed().as_secs_f64();
    println!(
        "# admitted {streams} streams over {rings} ring(s) in {build_s:.3}s \
         ({:.0} incremental admissions/s)",
        streams as f64 / build_s
    );

    let mut table = Table::new(&[
        "recovery",
        "streams",
        "records",
        "replay_ms",
        "streams_per_sec",
        "journal_bytes",
        "snapshot_bytes",
    ]);
    let mut push = |label: &str, reg: &RingRegistry| {
        let stats = reg.replay_stats().expect("persistent registry").clone();
        let m = reg.metrics();
        let replay_s = stats.replay.as_secs_f64();
        table.push_row(&[
            label.into(),
            stats.streams_restored.to_string(),
            stats.records_applied.to_string(),
            cell(replay_s * 1e3, 3),
            cell(
                stats.streams_restored as f64 / replay_s.max(f64::MIN_POSITIVE),
                0,
            ),
            m.journal_bytes.to_string(),
            m.snapshot_bytes.to_string(),
        ]);
        assert_eq!(m.streams, streams, "recovery lost streams");
    };

    // Phase 1: recover from the raw journal.
    let reg = RingRegistry::open(&dir).expect("reopen (journal)");
    push("journal", &reg);

    // Phase 2: compact, then recover from the snapshot.
    reg.compact().expect("compact");
    drop(reg);
    let reg = RingRegistry::open(&dir).expect("reopen (snapshot)");
    push("snapshot", &reg);
    drop(reg);

    println!();
    print!("{}", table.to_csv());
    println!();
    println!(
        "# both recoveries restore the same {streams} streams; snapshot \
         recovery skips per-record parse/apply work and the journal bytes"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
