//! CLAIM-FRAME — the paper's §4.2 frame-size trade-off for the priority
//! driven protocol: small frames approximate preemption better (less
//! blocking) but pay more per-frame overhead; large frames amortize
//! overhead but inflate the blocking term `B = 2·max(F, Θ)`.
//!
//! Sweeps the frame payload size at several bandwidths and reports where
//! the ABU peaks.

use ringrt_bench::{banner, ExpOptions};
use ringrt_breakdown::sweep::frame_size_sweep;
use ringrt_breakdown::table::{cell, Table};

fn main() {
    let opts = ExpOptions::from_env();
    banner(
        "CLAIM-FRAME",
        "priority-driven protocol ABU vs frame payload size",
        &opts,
    );

    let cfg = opts.sweep_config();
    let payloads: Vec<u64> = [128u64, 256, 512, 1024, 2048, 4096, 8192, 16384].to_vec();

    let mut table = Table::new(&[
        "bandwidth_mbps",
        "payload_bits",
        "ieee_802_5",
        "modified_802_5",
    ]);
    for mbps in [4.0, 16.0, 100.0] {
        let rows = frame_size_sweep(mbps, &payloads, &cfg);
        let best = rows
            .iter()
            .max_by(|a, b| a.modified_802_5.mean.total_cmp(&b.modified_802_5.mean))
            .expect("non-empty sweep");
        for r in &rows {
            table.push_row(&[
                cell(mbps, 1),
                r.payload_bits.to_string(),
                cell(r.ieee_802_5.mean, 4),
                cell(r.modified_802_5.mean, 4),
            ]);
        }
        println!(
            "# {mbps} Mbps: modified 802.5 peaks at {} payload bits (ABU {:.3})",
            best.payload_bits, best.modified_802_5.mean
        );
    }
    println!();
    print!("{}", table.to_csv());
    println!();
    println!("# paper: frame size trades responsiveness (small) against overhead (large);");
    println!("# the paper's evaluation fixes 64-byte (512-bit) payloads.");
}
