//! ASYNC — asynchronous (best-effort) service under admitted synchronous
//! load: the analytic bounds of `ringrt_core::asynch` against the queueing
//! delays measured by the frame-level simulators.
//!
//! At a light offered asynchronous load (own-station queueing negligible)
//! the measured worst wait must respect the analytic access bounds:
//! the lowest-priority response bound for the PDP, and `2·TTRT` for the
//! TTP's token access (waits can exceed token access when the sync window
//! precedes the async window in a visit — the table shows the margins).

use rand::rngs::StdRng;
use rand::SeedableRng;

use ringrt_bench::{banner, ExpOptions};
use ringrt_breakdown::table::{cell, Table};
use ringrt_breakdown::SaturationSearch;
use ringrt_core::asynch::{
    pdp_async_response_bound, ttp_async_access_delay_bound, ttp_async_capacity,
};
use ringrt_core::pdp::{PdpAnalyzer, PdpVariant};
use ringrt_core::ttp::TtpAnalyzer;
use ringrt_model::{FrameFormat, RingConfig};
use ringrt_sim::{PdpSimulator, SimConfig, TtpSimulator};
use ringrt_units::{Bandwidth, Bits, Seconds};
use ringrt_workload::MessageSetGenerator;

fn main() {
    let opts = ExpOptions::from_env();
    banner(
        "ASYNC",
        "asynchronous service: analytic bounds vs simulated queueing delays",
        &opts,
    );

    let stations = opts.stations.min(16);
    let horizon = Seconds::new(if opts.quick { 2.0 } else { 6.0 });
    let search = SaturationSearch::with_tolerance(1e-3);
    let base = MessageSetGenerator::paper_population(stations)
        .generate(&mut StdRng::seed_from_u64(opts.seed));

    let mut table = Table::new(&[
        "protocol",
        "sync_load_of_boundary",
        "async_frames",
        "mean_wait_ms",
        "max_wait_ms",
        "analytic_bound_ms",
    ]);

    // --- Modified 802.5 at 4 Mbps ------------------------------------
    {
        let bw = Bandwidth::from_mbps(4.0);
        let ring = RingConfig::ieee_802_5(stations, bw);
        let frame = FrameFormat::paper_default();
        let analyzer = PdpAnalyzer::new(ring, frame, PdpVariant::Modified);
        let sat = search.saturate(&analyzer, &base, bw).expect("feasible");
        for margin in [0.3, 0.6, 0.8] {
            let set = sat.set.with_scaled_lengths(margin);
            let bound = pdp_async_response_bound(&analyzer, &set, Bits::new(624))
                .expect("sync load below 1");
            let sim = PdpSimulator::new(
                &set,
                SimConfig::new(ring, horizon)
                    .with_async_load(0.03)
                    .with_seed(opts.seed),
                frame,
                PdpVariant::Modified,
            )
            .run();
            let mean = sim
                .async_waits
                .mean()
                .map(|d| d.as_seconds().as_millis())
                .unwrap_or(0.0);
            let max = sim
                .async_waits
                .max()
                .map(|d| d.as_seconds().as_millis())
                .unwrap_or(0.0);
            table.push_row(&[
                "Mod802.5@4Mbps".into(),
                cell(margin, 1),
                sim.async_frames_sent.to_string(),
                cell(mean, 3),
                cell(max, 3),
                cell(bound.as_millis(), 3),
            ]);
        }
    }

    // --- FDDI at 100 Mbps ----------------------------------------------
    {
        let bw = Bandwidth::from_mbps(100.0);
        let ring = RingConfig::fddi(stations, bw);
        let analyzer = TtpAnalyzer::with_defaults(ring);
        let sat = search.saturate(&analyzer, &base, bw).expect("feasible");
        for margin in [0.3, 0.6, 0.8] {
            let set = sat.set.with_scaled_lengths(margin);
            let access_bound = ttp_async_access_delay_bound(&analyzer, &set);
            let capacity = ttp_async_capacity(&analyzer, &set);
            let sim = TtpSimulator::from_analysis(
                &set,
                SimConfig::new(ring, horizon)
                    .with_async_load(0.03)
                    .with_seed(opts.seed),
            )
            .expect("feasible")
            .run();
            let mean = sim
                .async_waits
                .mean()
                .map(|d| d.as_seconds().as_millis())
                .unwrap_or(0.0);
            let max = sim
                .async_waits
                .max()
                .map(|d| d.as_seconds().as_millis())
                .unwrap_or(0.0);
            table.push_row(&[
                format!("FDDI@100Mbps(cap={capacity:.2})"),
                cell(margin, 1),
                sim.async_frames_sent.to_string(),
                cell(mean, 3),
                cell(max, 3),
                cell(access_bound.as_millis(), 3),
            ]);
        }
    }

    print!("{}", table.to_csv());
    println!();
    println!("# PDP bound: worst-case lowest-priority response (core::asynch); TTP bound:");
    println!("# 2·TTRT token access. Light 3 % async load keeps own-queueing negligible.");
}
