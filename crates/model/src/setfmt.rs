//! The `ringrt` message-set text format.
//!
//! One stream per line: `period_ms <whitespace-or-comma> payload_bits`,
//! with `#` comments and blank lines ignored. The CLI reads set files in
//! this format, and the admission-control service (`ringrt-service`)
//! accepts the same records inline (`;`-separated) in its wire protocol,
//! so the parser lives here in the model crate where both can share it.

use core::fmt;

use crate::{MessageSet, ModelError, SyncStream};
use ringrt_units::{Bits, Seconds};

/// Errors reading a message-set file.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ParseSetError {
    /// A line did not match `period_ms, payload_bits`.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        reason: String,
    },
    /// The file contained no streams.
    Empty,
    /// The parsed values violated the model's invariants.
    Invalid(ModelError),
}

impl fmt::Display for ParseSetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseSetError::BadLine { line, reason } => {
                write!(f, "line {line}: {reason}")
            }
            ParseSetError::Empty => write!(f, "no streams found in the input"),
            ParseSetError::Invalid(e) => write!(f, "invalid message set: {e}"),
        }
    }
}

impl std::error::Error for ParseSetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseSetError::Invalid(e) => Some(e),
            _ => None,
        }
    }
}

/// Parses a message set from the text format described in the
/// [module docs](self): one `period_ms, payload_bits` pair per line,
/// `#` comments and blank lines ignored. Commas are optional.
///
/// # Errors
///
/// [`ParseSetError`] with the offending line number, or
/// [`ParseSetError::Empty`] for an effectively empty file.
///
/// # Examples
///
/// ```
/// use ringrt_model::parse_message_set;
///
/// let set = parse_message_set("# demo\n20, 20000\n50 60000\n").unwrap();
/// assert_eq!(set.len(), 2);
/// ```
pub fn parse_message_set(text: &str) -> Result<MessageSet, ParseSetError> {
    let mut streams = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = match raw.find('#') {
            Some(pos) => &raw[..pos],
            None => raw,
        }
        .trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line
            .split(|c: char| c == ',' || c.is_whitespace())
            .filter(|f| !f.is_empty())
            .collect();
        if fields.len() != 2 {
            return Err(ParseSetError::BadLine {
                line: line_no,
                reason: format!(
                    "expected `period_ms, payload_bits`, found {} field(s)",
                    fields.len()
                ),
            });
        }
        let period_ms: f64 = fields[0].parse().map_err(|_| ParseSetError::BadLine {
            line: line_no,
            reason: format!("cannot parse period `{}` as a number", fields[0]),
        })?;
        let bits: u64 = fields[1].parse().map_err(|_| ParseSetError::BadLine {
            line: line_no,
            reason: format!(
                "cannot parse payload `{}` as an integer bit count",
                fields[1]
            ),
        })?;
        if !(period_ms.is_finite() && period_ms > 0.0) {
            return Err(ParseSetError::BadLine {
                line: line_no,
                reason: format!("period must be positive, got {period_ms} ms"),
            });
        }
        if bits == 0 {
            return Err(ParseSetError::BadLine {
                line: line_no,
                reason: "payload must be at least one bit".into(),
            });
        }
        streams.push(SyncStream::new(
            Seconds::from_millis(period_ms),
            Bits::new(bits),
        ));
    }
    if streams.is_empty() {
        return Err(ParseSetError::Empty);
    }
    MessageSet::new(streams).map_err(ParseSetError::Invalid)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_commas_and_whitespace() {
        let set = parse_message_set("20, 1000\n50\t2000\n100    3000\n").unwrap();
        assert_eq!(set.len(), 3);
        assert_eq!(set.as_slice()[0].period(), Seconds::from_millis(20.0));
        assert_eq!(set.as_slice()[2].length_bits(), Bits::new(3000));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "# header\n\n  # indented comment\n10, 500  # trailing\n";
        let set = parse_message_set(text).unwrap();
        assert_eq!(set.len(), 1);
        assert_eq!(set.as_slice()[0].length_bits(), Bits::new(500));
    }

    #[test]
    fn reports_line_numbers() {
        let err = parse_message_set("10, 500\nbogus line\n").unwrap_err();
        match err {
            ParseSetError::BadLine { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_bad_values() {
        assert!(matches!(
            parse_message_set("abc, 100\n"),
            Err(ParseSetError::BadLine { line: 1, .. })
        ));
        assert!(matches!(
            parse_message_set("10, 1.5\n"),
            Err(ParseSetError::BadLine { .. })
        ));
        assert!(matches!(
            parse_message_set("-5, 100\n"),
            Err(ParseSetError::BadLine { .. })
        ));
        assert!(matches!(
            parse_message_set("10, 0\n"),
            Err(ParseSetError::BadLine { .. })
        ));
        assert!(matches!(
            parse_message_set("10, 100, 7\n"),
            Err(ParseSetError::BadLine { .. })
        ));
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(parse_message_set(""), Err(ParseSetError::Empty));
        assert_eq!(
            parse_message_set("# only comments\n"),
            Err(ParseSetError::Empty)
        );
    }

    #[test]
    fn error_display() {
        let e = parse_message_set("x\n").unwrap_err();
        assert!(e.to_string().starts_with("line 1"));
        assert!(ParseSetError::Empty.to_string().contains("no streams"));
    }
}
