//! Bounded slab of connections with generation-stamped tokens.
//!
//! Epoll keeps whatever `u64` was registered with an fd and keeps
//! delivering it until the fd is deregistered or closed — including
//! events already sitting in a drained batch when the loop closes the
//! connection mid-iteration. Plain indices would then alias: slot 7 is
//! freed, a new connection claims slot 7, and the stale event for the
//! dead connection reads the new one's state. Tokens here pack the slot
//! index in the low 32 bits and a per-slot generation counter in the high
//! 32; the generation is bumped on every removal, so a stale token fails
//! the [`ConnTable::get_mut`] lookup instead of touching the wrong
//! connection.

use crate::poller::Token;

/// Packs `(index, generation)` into a poller token.
fn pack(index: u32, generation: u32) -> Token {
    Token((u64::from(generation) << 32) | u64::from(index))
}

/// The slot index half of a token.
fn index_of(token: Token) -> u32 {
    (token.0 & 0xFFFF_FFFF) as u32
}

/// The generation half of a token.
fn generation_of(token: Token) -> u32 {
    (token.0 >> 32) as u32
}

enum Slot<T> {
    Vacant,
    Occupied(T),
}

/// A bounded slab keyed by generation-checked [`Token`]s.
pub struct ConnTable<T> {
    slots: Vec<Slot<T>>,
    generations: Vec<u32>,
    free: Vec<u32>,
    len: usize,
    capacity: usize,
}

impl<T> ConnTable<T> {
    /// A table admitting at most `capacity` simultaneous entries.
    #[must_use]
    pub fn new(capacity: usize) -> ConnTable<T> {
        ConnTable {
            slots: Vec::new(),
            generations: Vec::new(),
            free: Vec::new(),
            len: 0,
            capacity: capacity.max(1),
        }
    }

    /// Current number of live entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are live.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The admission bound this table was built with.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts a connection, returning its token, or `Err(value)` when the
    /// table is full (the caller sheds the connection).
    pub fn insert(&mut self, value: T) -> Result<Token, T> {
        if self.len >= self.capacity {
            return Err(value);
        }
        let index = match self.free.pop() {
            Some(i) => i,
            None => {
                let i = self.slots.len() as u32;
                self.slots.push(Slot::Vacant);
                self.generations.push(0);
                i
            }
        };
        self.slots[index as usize] = Slot::Occupied(value);
        self.len += 1;
        Ok(pack(index, self.generations[index as usize]))
    }

    /// Looks up a live entry; stale (freed or re-used) tokens miss.
    pub fn get_mut(&mut self, token: Token) -> Option<&mut T> {
        let idx = index_of(token) as usize;
        if idx >= self.slots.len() || self.generations[idx] != generation_of(token) {
            return None;
        }
        match &mut self.slots[idx] {
            Slot::Occupied(v) => Some(v),
            Slot::Vacant => None,
        }
    }

    /// Removes and returns an entry, bumping the slot generation so any
    /// outstanding copies of the token go stale.
    pub fn remove(&mut self, token: Token) -> Option<T> {
        let idx = index_of(token) as usize;
        if idx >= self.slots.len() || self.generations[idx] != generation_of(token) {
            return None;
        }
        match std::mem::replace(&mut self.slots[idx], Slot::Vacant) {
            Slot::Occupied(v) => {
                self.generations[idx] = self.generations[idx].wrapping_add(1);
                self.free.push(idx as u32);
                self.len -= 1;
                Some(v)
            }
            Slot::Vacant => None,
        }
    }

    /// Tokens of all live entries (for drain/shutdown sweeps).
    #[must_use]
    pub fn tokens(&self) -> Vec<Token> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| match s {
                Slot::Occupied(_) => Some(pack(i as u32, self.generations[i])),
                Slot::Vacant => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut table = ConnTable::new(4);
        let a = table.insert("a").unwrap();
        let b = table.insert("b").unwrap();
        assert_eq!(table.len(), 2);
        assert_eq!(table.get_mut(a).copied(), Some("a"));
        assert_eq!(table.get_mut(b).copied(), Some("b"));
        assert_eq!(table.remove(a), Some("a"));
        assert_eq!(table.len(), 1);
        assert_eq!(table.remove(a), None, "double remove misses");
    }

    #[test]
    fn stale_token_misses_after_slot_reuse() {
        let mut table = ConnTable::new(2);
        let first = table.insert(1u32).unwrap();
        assert_eq!(table.remove(first), Some(1));
        let second = table.insert(2u32).unwrap();
        // Slot is re-used but the generation moved on.
        assert_eq!(table.get_mut(first), None, "stale token must not alias");
        assert_eq!(table.remove(first), None);
        assert_eq!(table.get_mut(second).copied(), Some(2));
    }

    #[test]
    fn capacity_bound_sheds_and_frees_restore_room() {
        let mut table = ConnTable::new(2);
        let a = table.insert(10).unwrap();
        let _b = table.insert(11).unwrap();
        assert_eq!(table.insert(12), Err(12), "full table sheds");
        table.remove(a);
        assert!(table.insert(13).is_ok(), "freed slot restores capacity");
    }

    #[test]
    fn tokens_enumerates_live_entries() {
        let mut table = ConnTable::new(8);
        let a = table.insert("a").unwrap();
        let b = table.insert("b").unwrap();
        table.remove(a);
        let tokens = table.tokens();
        assert_eq!(tokens, vec![b]);
    }
}
