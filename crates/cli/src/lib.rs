//! Library half of the `ringrt` command-line tool.
//!
//! The binary (`src/main.rs`) is a thin shell around this module so every
//! piece — message-set file parsing, argument handling, command execution —
//! is unit-testable.
//!
//! # Message-set file format
//!
//! One stream per line: `period_ms <whitespace-or-comma> payload_bits`.
//! Blank lines and `#` comments are ignored.
//!
//! ```text
//! # period_ms, payload_bits
//! 20,  20000
//! 50,  60000
//! 100, 120000
//! ```
//!
//! # Commands
//!
//! ```text
//! ringrt check    <set-file> --mbps <N> [--protocol 802.5|modified|fddi] [--stations N]
//! ringrt simulate <set-file> --mbps <N> [--protocol ...] [--seconds S] [--async-load X] [--seed N]
//! ringrt sweep    <set-file> --mbps <N>[,<N>...]   # headroom of all three protocols
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod args;
mod commands;

pub use args::{Cli, Command, OutputFormat, ProtocolChoice, RegistryAction};
pub use commands::run;
// The set-file parser lives in `ringrt-model` (shared with the admission
// service's wire protocol); re-exported here for backward compatibility.
pub use ringrt_model::{parse_message_set, ParseSetError};

/// Process exit codes: 0 = schedulable / success, 1 = unschedulable,
/// 2 = usage or input error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExitCode {
    /// The requested check passed (or the command has no verdict).
    Success,
    /// The analysis or simulation found the set unschedulable.
    Unschedulable,
    /// Bad arguments or unreadable/invalid input file.
    UsageError,
}

impl ExitCode {
    /// The numeric process exit code.
    #[must_use]
    pub fn code(self) -> i32 {
        match self {
            ExitCode::Success => 0,
            ExitCode::Unschedulable => 1,
            ExitCode::UsageError => 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes() {
        assert_eq!(ExitCode::Success.code(), 0);
        assert_eq!(ExitCode::Unschedulable.code(), 1);
        assert_eq!(ExitCode::UsageError.code(), 2);
    }
}
