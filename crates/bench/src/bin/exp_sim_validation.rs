//! VALID-SIM — analysis ↔ simulation agreement (our addition; the paper's
//! criteria are analytical and were published without an executable
//! artifact).
//!
//! For random message sets scaled to their analytic saturation boundary:
//!
//! * at 97 % of the boundary, the frame-level simulator must observe **zero
//!   deadline misses** under critical-instant phasing with asynchronous
//!   background traffic (the analyses guarantee this);
//! * well past the raw capacity (utilization > 100 %), the simulator must
//!   observe misses (no analysis can save an overloaded ring).

use rand::rngs::StdRng;
use rand::SeedableRng;

use ringrt_bench::{banner, ExpOptions};
use ringrt_breakdown::table::{cell, Table};
use ringrt_breakdown::SaturationSearch;
use ringrt_core::pdp::{PdpAnalyzer, PdpVariant};
use ringrt_core::ttp::TtpAnalyzer;
use ringrt_model::{FrameFormat, MessageSet, RingConfig};
use ringrt_sim::{PdpSimulator, Phasing, SimConfig, TtpSimulator};
use ringrt_units::{Bandwidth, Seconds};
use ringrt_workload::MessageSetGenerator;

fn main() {
    let opts = ExpOptions::from_env();
    banner(
        "VALID-SIM",
        "schedulability analysis validated against frame-level simulation",
        &opts,
    );

    // Simulation is the expensive leg: use a moderate station count.
    let stations = opts.stations.min(30);
    let sets = if opts.quick { 5 } else { 10 };
    let horizon = Seconds::new(1.5);
    let search = SaturationSearch::with_tolerance(1e-3);
    let generator = MessageSetGenerator::paper_population(stations);
    let mut rng = StdRng::seed_from_u64(opts.seed);

    let mut table = Table::new(&[
        "protocol",
        "bandwidth_mbps",
        "set",
        "boundary_util",
        "misses_at_97pct",
        "misses_overloaded",
    ]);
    let mut safe_violations = 0u32;
    let mut overload_silent = 0u32;
    let mut runs = 0u32;

    for k in 0..sets {
        // --- FDDI at 100 Mbps -----------------------------------------
        {
            let bw = Bandwidth::from_mbps(100.0);
            let ring = RingConfig::fddi(stations, bw);
            let analyzer = TtpAnalyzer::with_defaults(ring);
            let base = generator.generate(&mut rng);
            if let Some(sat) = search.saturate(&analyzer, &base, bw) {
                let config = SimConfig::new(ring, horizon)
                    .with_phasing(Phasing::Synchronized)
                    .with_async_load(0.2)
                    .with_seed(opts.seed ^ k as u64);
                let safe_set = sat.set.with_scaled_lengths(0.97);
                let safe = TtpSimulator::from_analysis(&safe_set, config)
                    .expect("schedulable set is feasible")
                    .run();
                let over_scale = (1.1 / sat.utilization).max(1.3);
                let over_set = sat.set.with_scaled_lengths(over_scale);
                let over = TtpSimulator::from_analysis(&over_set, config)
                    .map(|s| s.run().deadline_misses())
                    .unwrap_or(u64::MAX); // infeasible allocation counts as a miss verdict
                runs += 1;
                if safe.deadline_misses() > 0 {
                    safe_violations += 1;
                }
                if over == 0 {
                    overload_silent += 1;
                }
                table.push_row(&[
                    "FDDI".into(),
                    "100".into(),
                    k.to_string(),
                    cell(sat.utilization, 4),
                    safe.deadline_misses().to_string(),
                    if over == u64::MAX {
                        "infeasible".into()
                    } else {
                        over.to_string()
                    },
                ]);
            }
        }
        // --- Modified 802.5 at 4 Mbps -----------------------------------
        {
            let bw = Bandwidth::from_mbps(4.0);
            let ring = RingConfig::ieee_802_5(stations, bw);
            let frame = FrameFormat::paper_default();
            let analyzer = PdpAnalyzer::new(ring, frame, PdpVariant::Modified);
            let base = generator.generate(&mut rng);
            if let Some(sat) = search.saturate(&analyzer, &base, bw) {
                let config = SimConfig::new(ring, horizon)
                    .with_phasing(Phasing::Synchronized)
                    .with_async_load(0.2)
                    .with_seed(opts.seed ^ (k as u64) << 8);
                let safe_set = sat.set.with_scaled_lengths(0.97);
                let safe = PdpSimulator::new(&safe_set, config, frame, PdpVariant::Modified).run();
                let over_scale = (1.1 / sat.utilization).max(1.3);
                let over_set: MessageSet = sat.set.with_scaled_lengths(over_scale);
                let over = PdpSimulator::new(&over_set, config, frame, PdpVariant::Modified).run();
                runs += 1;
                if safe.deadline_misses() > 0 {
                    safe_violations += 1;
                }
                if over.deadline_misses() == 0 {
                    overload_silent += 1;
                }
                table.push_row(&[
                    "Modified 802.5".into(),
                    "4".into(),
                    k.to_string(),
                    cell(sat.utilization, 4),
                    safe.deadline_misses().to_string(),
                    over.deadline_misses().to_string(),
                ]);
            }
        }
    }

    print!("{}", table.to_csv());
    println!();
    println!(
        "# {} validation runs: {} safe-side violations (must be 0), {} silent overloads (should be 0)",
        runs, safe_violations, overload_silent
    );
    if safe_violations > 0 {
        println!("# !!! analysis accepted a set that missed deadlines in simulation — BUG");
        std::process::exit(1);
    }
}
