//! Safe readiness poller over the `sys` epoll bindings.

use crate::sys;
use std::io;
use std::time::Duration;

/// Opaque per-registration identifier carried through the kernel.
///
/// The service packs a slab index and generation into it (see
/// [`crate::table::ConnTable`]); the poller itself only round-trips the
/// raw `u64`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Token(pub u64);

/// Which readiness classes a registration is interested in.
///
/// Hangup and error conditions are always reported regardless of the
/// requested interest, matching epoll semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd becomes readable.
    pub readable: bool,
    /// Wake when the fd becomes writable.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest — the steady state of an idle connection.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Read + write interest — a connection with a partially flushed
    /// response buffer.
    pub const READ_WRITE: Interest = Interest {
        readable: true,
        writable: true,
    };

    fn bits(self) -> u32 {
        let mut bits = 0;
        if self.readable {
            bits |= sys::READABLE;
        }
        if self.writable {
            bits |= sys::WRITABLE;
        }
        bits
    }
}

/// One readiness notification from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token supplied at registration time.
    pub token: Token,
    /// The fd is readable (or has pending error/EOF to collect via read).
    pub readable: bool,
    /// The fd is writable.
    pub writable: bool,
    /// The peer hung up or the fd errored; the connection should be torn
    /// down after draining whatever `read` still returns.
    pub hangup: bool,
}

/// A level-triggered epoll instance.
///
/// Level-triggered (the epoll default) is deliberate: combined with the
/// framing buffers it means a registration never needs the "read until
/// EAGAIN or lose the wakeup" discipline of edge-triggered loops, and a
/// partially consumed buffer simply re-reports on the next wait.
#[derive(Debug)]
pub struct Poller {
    epfd: i32,
    capacity: usize,
}

impl Poller {
    /// Creates a poller able to collect up to `capacity` events per wait.
    ///
    /// Fails with [`io::ErrorKind::Unsupported`] on non-Linux targets.
    pub fn new(capacity: usize) -> io::Result<Poller> {
        let epfd = sys::epoll_create()?;
        Ok(Poller {
            epfd,
            capacity: capacity.clamp(1, 4096),
        })
    }

    /// Registers `fd` with the given interest.
    pub fn register(&self, fd: i32, token: Token, interest: Interest) -> io::Result<()> {
        sys::epoll_add(self.epfd, fd, interest.bits(), token.0)
    }

    /// Replaces the interest set of an already registered `fd`.
    pub fn reregister(&self, fd: i32, token: Token, interest: Interest) -> io::Result<()> {
        sys::epoll_mod(self.epfd, fd, interest.bits(), token.0)
    }

    /// Removes `fd` from the interest list.
    ///
    /// Closing an fd deregisters it implicitly; this exists for the paths
    /// that hand an fd to another owner without closing it (the `SYNC`
    /// stream detach).
    pub fn deregister(&self, fd: i32) -> io::Result<()> {
        sys::epoll_del(self.epfd, fd)
    }

    /// Blocks until readiness or `timeout`, appending events to `events`.
    ///
    /// Returns the number of events delivered. A timeout (or EINTR)
    /// delivers zero events and is not an error.
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        let timeout_ms: i32 = match timeout {
            None => -1,
            Some(t) => {
                // Round sub-millisecond timeouts up so they do not spin.
                let ms = if t.as_millis() == 0 && t.as_nanos() > 0 {
                    1
                } else {
                    t.as_millis()
                };
                i32::try_from(ms).unwrap_or(i32::MAX)
            }
        };
        let mut raw = Vec::new();
        sys::epoll_wait_into(self.epfd, &mut raw, self.capacity, timeout_ms)?;
        events.clear();
        for (data, bits) in raw {
            events.push(Event {
                token: Token(data),
                readable: bits & (sys::READABLE | sys::HANGUP | sys::ERROR) != 0,
                writable: bits & sys::WRITABLE != 0,
                hangup: bits & (sys::HANGUP | sys::ERROR) != 0,
            });
        }
        Ok(events.len())
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        let _ = sys::close_fd(self.epfd);
    }
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    #[test]
    fn poller_reports_readable_after_peer_write() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let poller = Poller::new(16).unwrap();
        poller
            .register(server.as_raw_fd(), Token(7), Interest::READ)
            .unwrap();

        let mut events = Vec::new();
        // Nothing pending yet: zero-timeout wait returns no events.
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(0)))
            .unwrap();
        assert_eq!(n, 0);

        client.write_all(b"ping\n").unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token, Token(7));
        assert!(events[0].readable);
        assert!(!events[0].hangup);

        // Level-triggered: unread data re-reports on the next wait.
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 1);

        let mut server = server;
        let mut buf = [0u8; 16];
        let got = server.read(&mut buf).unwrap();
        assert_eq!(&buf[..got], b"ping\n");

        drop(client);
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        assert_eq!(n, 1);
        assert!(events[0].hangup, "peer close reports hangup");
    }

    #[test]
    fn reregister_toggles_writable_interest() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let _client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let poller = Poller::new(16).unwrap();
        poller
            .register(server.as_raw_fd(), Token(1), Interest::READ)
            .unwrap();
        let mut events = Vec::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(0)))
            .unwrap();
        assert_eq!(n, 0, "read-only interest on an idle socket is quiet");

        // An empty send buffer is immediately writable once requested.
        poller
            .reregister(server.as_raw_fd(), Token(1), Interest::READ_WRITE)
            .unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        assert_eq!(n, 1);
        assert!(events[0].writable);

        poller
            .reregister(server.as_raw_fd(), Token(1), Interest::READ)
            .unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(0)))
            .unwrap();
        assert_eq!(n, 0);

        poller.deregister(server.as_raw_fd()).unwrap();
    }
}
