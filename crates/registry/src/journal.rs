//! Segmented append-only journal plus snapshot persistence for the ring
//! registry.
//!
//! # On-disk layout
//!
//! A state directory holds:
//!
//! * `journal.000001.log`, `journal.000002.log`, … — journal **segments**,
//!   each holding CRC-framed records `<crc32 hex8> <seq> <op…>\n` where
//!   the checksum covers everything after the first space. Sequence
//!   numbers are strictly increasing across segments; the
//!   highest-numbered segment is the active **tail** that appends go to.
//!   When the tail would exceed the configured
//!   [`StoreOptions::segment_bytes`], it is **sealed** (fsynced, never
//!   written again) and a fresh segment is opened — so the fsync'd file
//!   stays small under sustained admission churn, and compaction can fold
//!   sealed segments into a snapshot without blocking writers.
//! * `snapshot.dat` — a full-state snapshot written by compaction: a
//!   header line `ringrt-registry-snapshot v1 seq=<n>`, one `ring` line
//!   per ring and one `stream` line per admitted stream, and a trailing
//!   `crc <hex8>` line covering every preceding byte.
//! * `snapshot.tmp` — a snapshot in the middle of being written; never
//!   read on startup.
//! * `epoch.dat` — the replication **fencing epoch**, a CRC-framed
//!   monotonic counter published atomically (tmp + rename). A promoted
//!   standby bumps it past the old primary's epoch so a revived primary
//!   presenting a stale epoch can be refused.
//! * `cluster.dat` — the journal's **cluster identity**, a CRC-framed
//!   nonzero random stamp published once (same tmp + rename discipline)
//!   when a primary first serves this directory. Replication peers
//!   exchange it at the `SYNC` handshake and refuse to ship frames
//!   between journals whose identities differ — two unrelated journals
//!   must never silently interleave.
//!
//! A legacy single-file `journal.log` (the pre-segmentation layout) is
//! migrated on open by renaming it to `journal.000001.log`.
//!
//! # Crash recovery
//!
//! Startup loads the snapshot (ignored wholesale if its checksum fails),
//! then replays segments in index order, applying records with `seq >`
//! the snapshot's sequence number. The first torn or checksum-corrupt
//! record ends the replay: that segment is truncated there and any
//! later segments are discarded, exactly like a write-ahead log.
//!
//! Compaction is a three-phase protocol so the expensive I/O runs
//! without holding the registry lock: [`Store::begin_compaction`] (under
//! the lock) seals the tail and snapshots the in-memory state into a
//! [`CompactionPlan`]; [`CompactionPlan::publish`] (lock dropped) writes
//! `snapshot.tmp`, fsyncs, renames it over `snapshot.dat`, and deletes
//! the sealed segments the snapshot covers; [`Store::finish_compaction`]
//! (lock reacquired) folds the outcome into the store's bookkeeping. A
//! crash between any two steps leaves a state that replays to the same
//! registry, because replay skips journal records already covered by the
//! snapshot and stale sealed segments only ever contain such records.
//!
//! Periods and deadlines are persisted as raw seconds with Rust's
//! round-trip `{}` float formatting, so a replayed stream is bit-identical
//! to the one originally admitted — the property behind the "survives
//! restart byte-identically" guarantee, and the reason a replica that
//! re-journals shipped records produces a byte-identical journal.
//!
//! Every durable write is routed through the [`FailpointFs`] handed in
//! via [`StoreOptions`], so fault-injection tests can kill the store at
//! any exact operation (see [`crate::failpoint`]).

use std::fs::{self, File, OpenOptions};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ringrt_frames::crc::crc32;
use ringrt_model::SyncStream;
use ringrt_obs::Recorder;
use ringrt_units::{Bits, Seconds};

use crate::failpoint::FailpointFs;
use crate::spec::{
    validate_name, NamedStream, ProtocolKind, RegistryError, RingSpec, RingState, Rings,
};

const LEGACY_JOURNAL_FILE: &str = "journal.log";
const SNAPSHOT_FILE: &str = "snapshot.dat";
const SNAPSHOT_TMP: &str = "snapshot.tmp";
const SNAPSHOT_HEADER: &str = "ringrt-registry-snapshot v1";
const EPOCH_FILE: &str = "epoch.dat";
const EPOCH_TMP: &str = "epoch.tmp";
const CLUSTER_FILE: &str = "cluster.dat";
const CLUSTER_TMP: &str = "cluster.tmp";

/// Default segment rotation threshold (1 MiB).
pub const DEFAULT_SEGMENT_BYTES: u64 = 1 << 20;

fn segment_file(index: u64) -> String {
    format!("journal.{index:06}.log")
}

fn parse_segment_index(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("journal.")?.strip_suffix(".log")?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// Tunables for opening a [`Store`]; [`Default`] gives the production
/// configuration (1 MiB segments, disarmed fault injection).
#[derive(Debug, Clone)]
pub struct StoreOptions {
    /// Rotate the tail segment once appending would push it past this
    /// many bytes (clamped to ≥ 1; a single oversized record still lands
    /// whole in its own segment).
    pub segment_bytes: u64,
    /// The filesystem wrapper every durable write goes through; arm it to
    /// inject deterministic crashes.
    pub fs: FailpointFs,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions {
            segment_bytes: DEFAULT_SEGMENT_BYTES,
            fs: FailpointFs::new(),
        }
    }
}

/// One journaled state mutation.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalOp {
    /// A new ring was registered.
    Register {
        /// Ring name.
        ring: String,
        /// Its configuration.
        spec: RingSpec,
    },
    /// A stream was admitted into a ring.
    Admit {
        /// Ring name.
        ring: String,
        /// The admitted stream.
        stream: NamedStream,
    },
    /// A stream was removed from a ring.
    Remove {
        /// Ring name.
        ring: String,
        /// The removed stream's name.
        stream: String,
    },
    /// A ring (and all its streams) was dropped.
    Unregister {
        /// Ring name.
        ring: String,
    },
}

/// Applies one op to the in-memory ring map; used both by live mutations
/// and by replay so the two can never drift apart.
pub(crate) fn apply(rings: &mut Rings, op: &JournalOp) -> Result<(), RegistryError> {
    match op {
        JournalOp::Register { ring, spec } => {
            if rings.contains_key(ring) {
                return Err(RegistryError::DuplicateRing { ring: ring.clone() });
            }
            rings.insert(ring.clone(), RingState::new(*spec));
        }
        JournalOp::Admit { ring, stream } => {
            let state = rings
                .get_mut(ring)
                .ok_or_else(|| RegistryError::UnknownRing { ring: ring.clone() })?;
            if state.store.contains(&stream.name) {
                return Err(RegistryError::DuplicateStream {
                    ring: ring.clone(),
                    stream: stream.name.clone(),
                });
            }
            state.store.admit(&stream.name, stream.stream);
        }
        JournalOp::Remove { ring, stream } => {
            let state = rings
                .get_mut(ring)
                .ok_or_else(|| RegistryError::UnknownRing { ring: ring.clone() })?;
            // O(log n) index maintenance — replaying a churn-heavy journal
            // used to pay an O(n) `Vec::remove` shift per removal.
            state
                .store
                .remove(stream)
                .ok_or_else(|| RegistryError::UnknownStream {
                    ring: ring.clone(),
                    stream: stream.clone(),
                })?;
        }
        JournalOp::Unregister { ring } => {
            rings
                .remove(ring)
                .ok_or_else(|| RegistryError::UnknownRing { ring: ring.clone() })?;
        }
    }
    Ok(())
}

fn fmt_stations(stations: Option<usize>) -> String {
    match stations {
        Some(n) => n.to_string(),
        None => "-".to_owned(),
    }
}

fn parse_stations(text: &str) -> Result<Option<usize>, String> {
    if text == "-" {
        return Ok(None);
    }
    text.parse::<usize>()
        .map(Some)
        .map_err(|_| format!("bad stations `{text}`"))
}

fn fmt_deadline(stream: &SyncStream) -> String {
    if stream.has_implicit_deadline() {
        "-".to_owned()
    } else {
        format!("{}", stream.relative_deadline().as_secs_f64())
    }
}

fn build_stream(period_s: f64, bits: u64, deadline_s: Option<f64>) -> Result<SyncStream, String> {
    let stream = SyncStream::try_new(Seconds::new(period_s), Bits::new(bits))
        .map_err(|e| format!("bad stream: {e}"))?;
    match deadline_s {
        None => Ok(stream),
        Some(d) if d > 0.0 && d <= period_s => Ok(stream.with_relative_deadline(Seconds::new(d))),
        Some(d) => Err(format!("bad deadline {d} for period {period_s}")),
    }
}

fn encode_op(op: &JournalOp) -> String {
    match op {
        JournalOp::Register { ring, spec } => format!(
            "register {ring} protocol={} mbps={} stations={}",
            spec.protocol.token(),
            spec.mbps,
            fmt_stations(spec.stations),
        ),
        JournalOp::Admit { ring, stream } => format!(
            "admit {ring} {} period_s={} bits={} deadline_s={}",
            stream.name,
            stream.stream.period().as_secs_f64(),
            stream.stream.length_bits().as_u64(),
            fmt_deadline(&stream.stream),
        ),
        JournalOp::Remove { ring, stream } => format!("remove {ring} {stream}"),
        JournalOp::Unregister { ring } => format!("unregister {ring}"),
    }
}

fn kv<'a>(word: &'a str, key: &str) -> Result<&'a str, String> {
    word.strip_prefix(key)
        .and_then(|r| r.strip_prefix('='))
        .ok_or_else(|| format!("expected {key}=…, found `{word}`"))
}

fn parse_f64(text: &str, what: &str) -> Result<f64, String> {
    text.parse::<f64>()
        .map_err(|_| format!("bad {what} `{text}`"))
}

fn parse_opt_f64(text: &str, what: &str) -> Result<Option<f64>, String> {
    if text == "-" {
        Ok(None)
    } else {
        parse_f64(text, what).map(Some)
    }
}

fn decode_op(text: &str) -> Result<JournalOp, String> {
    let mut words = text.split(' ');
    let verb = words.next().ok_or("empty op")?;
    let mut next = |what: &str| words.next().ok_or_else(|| format!("missing {what}"));
    let op = match verb {
        "register" => {
            let ring = next("ring")?.to_owned();
            let protocol = ProtocolKind::parse(kv(next("protocol")?, "protocol")?)?;
            let mbps = parse_f64(kv(next("mbps")?, "mbps")?, "mbps")?;
            let stations = parse_stations(kv(next("stations")?, "stations")?)?;
            JournalOp::Register {
                ring,
                spec: RingSpec {
                    protocol,
                    mbps,
                    stations,
                },
            }
        }
        "admit" => {
            let ring = next("ring")?.to_owned();
            let name = next("stream")?.to_owned();
            let period_s = parse_f64(kv(next("period_s")?, "period_s")?, "period")?;
            let bits = kv(next("bits")?, "bits")?
                .parse::<u64>()
                .map_err(|_| "bad bits".to_owned())?;
            let deadline_s = parse_opt_f64(kv(next("deadline_s")?, "deadline_s")?, "deadline")?;
            JournalOp::Admit {
                ring,
                stream: NamedStream {
                    name,
                    stream: build_stream(period_s, bits, deadline_s)?,
                },
            }
        }
        "remove" => JournalOp::Remove {
            ring: next("ring")?.to_owned(),
            stream: next("stream")?.to_owned(),
        },
        "unregister" => JournalOp::Unregister {
            ring: next("ring")?.to_owned(),
        },
        other => return Err(format!("unknown op `{other}`")),
    };
    if words.next().is_some() {
        return Err("trailing garbage after op".to_owned());
    }
    match &op {
        JournalOp::Register { ring, spec } => {
            validate_name(ring).map_err(|e| e.to_string())?;
            spec.validate().map_err(|e| e.to_string())?;
        }
        JournalOp::Admit { ring, stream } => {
            validate_name(ring).map_err(|e| e.to_string())?;
            validate_name(&stream.name).map_err(|e| e.to_string())?;
        }
        JournalOp::Remove { ring, stream } => {
            validate_name(ring).map_err(|e| e.to_string())?;
            validate_name(stream).map_err(|e| e.to_string())?;
        }
        JournalOp::Unregister { ring } => validate_name(ring).map_err(|e| e.to_string())?,
    }
    Ok(op)
}

fn encode_record(seq: u64, op: &JournalOp) -> String {
    let payload = format!("{seq} {}", encode_op(op));
    format!("{:08x} {payload}\n", crc32(payload.as_bytes()))
}

/// Decodes one journal record line (no trailing newline), verifying its
/// checksum. Shared with the replication layer: a shipped frame carries
/// exactly such a line.
pub(crate) fn decode_record(line: &str) -> Result<(u64, JournalOp), String> {
    let (crc_hex, payload) = line.split_once(' ').ok_or("record missing checksum")?;
    let expected = u32::from_str_radix(crc_hex, 16).map_err(|_| "bad checksum field")?;
    if crc32(payload.as_bytes()) != expected {
        return Err("checksum mismatch".to_owned());
    }
    let (seq_text, op_text) = payload.split_once(' ').ok_or("record missing sequence")?;
    let seq = seq_text
        .parse::<u64>()
        .map_err(|_| "bad sequence number".to_owned())?;
    Ok((seq, decode_op(op_text)?))
}

fn encode_snapshot<'a, I>(seq: u64, rings: I) -> String
where
    I: Iterator<Item = (&'a String, &'a RingState)>,
{
    let mut body = format!("{SNAPSHOT_HEADER} seq={seq}\n");
    for (name, state) in rings {
        body.push_str(&format!(
            "ring {name} protocol={} mbps={} stations={}\n",
            state.spec.protocol.token(),
            state.spec.mbps,
            fmt_stations(state.spec.stations),
        ));
        // Serialize straight off the store's admission-order columns; the
        // byte format is unchanged from the Vec-backed state.
        for (stream_name, stream) in state.iter() {
            body.push_str(&format!(
                "stream {name} {stream_name} period_s={} bits={} deadline_s={}\n",
                stream.period().as_secs_f64(),
                stream.length_bits().as_u64(),
                fmt_deadline(&stream),
            ));
        }
    }
    let checksum = crc32(body.as_bytes());
    body.push_str(&format!("crc {checksum:08x}\n"));
    body
}

/// Validates and decodes a snapshot body. Shared with the replication
/// layer: a follower bootstrapping over the wire installs exactly the
/// primary's snapshot bytes.
pub(crate) fn load_snapshot(bytes: &[u8]) -> Result<(u64, Rings), String> {
    let text = std::str::from_utf8(bytes).map_err(|_| "snapshot is not UTF-8")?;
    let trimmed = text.strip_suffix('\n').ok_or("snapshot missing newline")?;
    let (body_lines, crc_line) = trimmed
        .rsplit_once('\n')
        .ok_or("snapshot missing crc line")?;
    let crc_hex = crc_line
        .strip_prefix("crc ")
        .ok_or("snapshot crc line malformed")?;
    let expected = u32::from_str_radix(crc_hex, 16).map_err(|_| "bad snapshot checksum")?;
    let body = format!("{body_lines}\n");
    if crc32(body.as_bytes()) != expected {
        return Err("snapshot checksum mismatch".to_owned());
    }
    let mut lines = body_lines.lines();
    let header = lines.next().ok_or("empty snapshot")?;
    let seq_text = header
        .strip_prefix(SNAPSHOT_HEADER)
        .and_then(|r| r.trim().strip_prefix("seq="))
        .ok_or("snapshot header malformed")?;
    let seq = seq_text
        .parse::<u64>()
        .map_err(|_| "bad snapshot sequence")?;
    let mut rings = Rings::new();
    for line in lines {
        let (kind, rest) = line.split_once(' ').ok_or("snapshot line malformed")?;
        match kind {
            "ring" => {
                let op = decode_op(&format!("register {rest}"))?;
                apply(&mut rings, &op).map_err(|e| e.to_string())?;
            }
            "stream" => {
                let op = decode_op(&format!("admit {rest}"))?;
                apply(&mut rings, &op).map_err(|e| e.to_string())?;
            }
            other => return Err(format!("unknown snapshot line kind `{other}`")),
        }
    }
    Ok((seq, rings))
}

fn storage_err(context: &str, e: impl fmt_display::Display) -> RegistryError {
    RegistryError::Storage {
        reason: format!("{context}: {e}"),
    }
}

// `std::fmt::Display` under a private alias so `storage_err` reads cleanly.
mod fmt_display {
    pub use core::fmt::Display;
}

/// CRC-framed single-value stamp files (`epoch.dat`, `cluster.dat`):
/// `"<crc8hex> <tag> <value>\n"`. Anything that fails the frame check
/// degrades to 0 — "absent", never garbage.
fn encode_stamp(tag: &str, value: u64) -> String {
    let payload = format!("{tag} {value}");
    format!("{:08x} {payload}\n", crc32(payload.as_bytes()))
}

fn read_stamp(dir: &Path, file: &str, tag: &str) -> u64 {
    let Ok(bytes) = fs::read(dir.join(file)) else {
        return 0;
    };
    let Ok(text) = std::str::from_utf8(&bytes) else {
        return 0;
    };
    let line = text.trim_end();
    let Some((crc_hex, payload)) = line.split_once(' ') else {
        return 0;
    };
    let Ok(expected) = u32::from_str_radix(crc_hex, 16) else {
        return 0;
    };
    if crc32(payload.as_bytes()) != expected {
        return 0;
    }
    payload
        .strip_prefix(tag)
        .and_then(|rest| rest.strip_prefix(' '))
        .and_then(|n| n.parse().ok())
        .unwrap_or(0)
}

fn encode_epoch(epoch: u64) -> String {
    encode_stamp("epoch", epoch)
}

fn read_epoch(dir: &Path) -> u64 {
    read_stamp(dir, EPOCH_FILE, "epoch")
}

/// What startup replay found and how long it took.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayStats {
    /// Sequence number of the snapshot that seeded the state, if any.
    pub snapshot_seq: Option<u64>,
    /// Journal records applied on top of the snapshot.
    pub records_applied: u64,
    /// Total streams present after recovery.
    pub streams_restored: usize,
    /// Whether a torn or corrupt journal tail was truncated away.
    pub truncated_tail: bool,
    /// Journal segments present after recovery (including the tail).
    pub segments: usize,
    /// Wall-clock time spent recovering.
    pub replay: Duration,
}

/// The snapshot half of an in-flight compaction, built under the registry
/// lock by [`Store::begin_compaction`] and published by
/// [`CompactionPlan::publish`] with the lock dropped — writers keep
/// appending to the fresh tail segment the rotation left behind.
#[derive(Debug)]
pub struct CompactionPlan {
    dir: PathBuf,
    fs: FailpointFs,
    recorder: Arc<Recorder>,
    seq: u64,
    body: String,
    sealed: Vec<u64>,
    freed_bytes: u64,
}

/// The published result of a compaction, handed back to
/// [`Store::finish_compaction`] under the registry lock.
#[derive(Debug)]
pub struct CompactionOutcome {
    seq: u64,
    snapshot_bytes: u64,
    sealed: Vec<u64>,
    freed_bytes: u64,
}

impl CompactionPlan {
    /// Sequence number the snapshot will cover.
    #[must_use]
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Writes, fsyncs, and atomically publishes the snapshot, then
    /// garbage-collects the sealed segments it covers. Safe to run
    /// while writers append (they only touch the tail segment).
    ///
    /// # Errors
    ///
    /// [`RegistryError::Storage`] if any I/O step fails.
    pub fn publish(self) -> Result<CompactionOutcome, RegistryError> {
        let tmp = self.dir.join(SNAPSHOT_TMP);
        {
            let _write_span = self.recorder.span("registry", "snapshot_write");
            let mut f = self
                .fs
                .create(&tmp)
                .map_err(|e| storage_err("create snapshot.tmp", e))?;
            self.fs
                .write_all(&mut f, self.body.as_bytes())
                .map_err(|e| storage_err("write snapshot", e))?;
            self.fs
                .sync_all(&f)
                .map_err(|e| storage_err("sync snapshot", e))?;
        }
        {
            let _publish_span = self.recorder.span("registry", "snapshot_publish");
            self.fs
                .rename(&tmp, &self.dir.join(SNAPSHOT_FILE))
                .map_err(|e| storage_err("publish snapshot", e))?;
        }
        // Only now is it safe to drop the sealed segments the snapshot
        // covers. A crash mid-GC leaves stale segments whose records all
        // sit at or below the snapshot floor; replay skips them and the
        // next compaction sweeps them away.
        let _gc_span = self.recorder.span("registry", "segment_gc");
        for index in &self.sealed {
            self.fs
                .remove_file(&self.dir.join(segment_file(*index)))
                .map_err(|e| storage_err("remove sealed segment", e))?;
        }
        Ok(CompactionOutcome {
            seq: self.seq,
            snapshot_bytes: self.body.len() as u64,
            sealed: self.sealed,
            freed_bytes: self.freed_bytes,
        })
    }
}

/// The open state directory: an append handle on the tail segment plus
/// the bookkeeping rotation, compaction, and replication need.
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    fs: FailpointFs,
    tail: File,
    tail_index: u64,
    tail_bytes: u64,
    /// Sealed (never-again-written) segments: `(index, bytes)`.
    sealed: Vec<(u64, u64)>,
    segment_bytes: u64,
    next_seq: u64,
    /// Highest sequence covered by `snapshot.dat` (0 = no snapshot).
    snapshot_seq: u64,
    snapshot_bytes: u64,
    epoch: u64,
    /// Set-once journal identity (0 = not yet stamped); see `cluster.dat`.
    cluster_id: u64,
    recorder: Arc<Recorder>,
}

impl Store {
    /// Opens (creating if necessary) a state directory with the default
    /// [`StoreOptions`], recovering the ring map from snapshot + journal.
    ///
    /// # Errors
    ///
    /// [`RegistryError::Storage`] for I/O failures or a journal whose
    /// *interior* records replay inconsistently (e.g. an admit into a ring
    /// that never existed). A torn tail is not an error.
    pub fn open(dir: &Path) -> Result<(Store, Rings, ReplayStats), RegistryError> {
        Self::open_with(dir, StoreOptions::default())
    }

    /// [`open`](Self::open) with explicit segment size and fault
    /// injection.
    ///
    /// # Errors
    ///
    /// As [`open`](Self::open).
    pub fn open_with(
        dir: &Path,
        options: StoreOptions,
    ) -> Result<(Store, Rings, ReplayStats), RegistryError> {
        let started = Instant::now();
        let fsx = options.fs;
        fs::create_dir_all(dir).map_err(|e| storage_err("create state dir", e))?;
        let epoch = read_epoch(dir);
        let cluster_id = read_stamp(dir, CLUSTER_FILE, "cluster");

        let mut rings = Rings::new();
        let mut snapshot_seq = 0u64;
        let mut snapshot_bytes = 0u64;
        if let Ok(bytes) = fs::read(dir.join(SNAPSHOT_FILE)) {
            // A corrupt snapshot is ignored wholesale: the journal alone
            // must then reconstruct the state (segments are only deleted
            // *after* a snapshot has safely landed, so nothing is lost).
            if let Ok((seq, loaded)) = load_snapshot(&bytes) {
                snapshot_seq = seq;
                snapshot_bytes = bytes.len() as u64;
                rings = loaded;
            }
        }

        // Discover segments; migrate a legacy single-file journal first.
        let mut indices = Self::list_segments(dir)?;
        let legacy = dir.join(LEGACY_JOURNAL_FILE);
        if indices.is_empty() && legacy.exists() {
            fsx.rename(&legacy, &dir.join(segment_file(1)))
                .map_err(|e| storage_err("migrate legacy journal.log", e))?;
            indices = vec![1];
        }

        let floor = snapshot_seq;
        let mut max_seq = floor;
        let mut records_applied = 0u64;
        let mut truncated_tail = false;
        let mut surviving: Vec<(u64, u64)> = Vec::new();
        for (pos, &index) in indices.iter().enumerate() {
            let path = dir.join(segment_file(index));
            let bytes = fs::read(&path).map_err(|e| storage_err("read journal segment", e))?;
            let mut offset = 0usize;
            let mut good_end = 0usize;
            let mut bad = false;
            while offset < bytes.len() {
                let Some(rel) = bytes[offset..].iter().position(|&b| b == b'\n') else {
                    bad = true; // partial final record (crash mid-write)
                    break;
                };
                let line = &bytes[offset..offset + rel];
                let decoded = std::str::from_utf8(line)
                    .ok()
                    .and_then(|l| decode_record(l).ok());
                let Some((seq, op)) = decoded else {
                    bad = true; // torn/corrupt record ends the log
                    break;
                };
                if seq > floor {
                    apply(&mut rings, &op)
                        .map_err(|e| storage_err("journal replays inconsistently", e))?;
                    records_applied += 1;
                }
                max_seq = max_seq.max(seq);
                offset += rel + 1;
                good_end = offset;
            }
            if bad {
                truncated_tail = true;
                let f = OpenOptions::new()
                    .write(true)
                    .open(&path)
                    .map_err(|e| storage_err("open segment for truncation", e))?;
                fsx.set_len(&f, good_end as u64)
                    .map_err(|e| storage_err("truncate torn segment tail", e))?;
                fsx.sync_all(&f)
                    .map_err(|e| storage_err("sync truncated segment", e))?;
                surviving.push((index, good_end as u64));
                // Everything after the first bad record is gone, exactly
                // like a single-file WAL: discard the later segments.
                for &later in &indices[pos + 1..] {
                    fsx.remove_file(&dir.join(segment_file(later)))
                        .map_err(|e| storage_err("remove post-corruption segment", e))?;
                }
                break;
            }
            surviving.push((index, bytes.len() as u64));
        }

        let (tail_index, tail_bytes) = match surviving.last() {
            Some(&(index, bytes)) => {
                (index, bytes) // reopened below for appending
            }
            None => (1, 0),
        };
        let tail_path = dir.join(segment_file(tail_index));
        let tail = fsx
            .open_append(&tail_path)
            .map_err(|e| storage_err("open tail segment", e))?;
        let sealed: Vec<(u64, u64)> = surviving
            .iter()
            .take(surviving.len().saturating_sub(1))
            .copied()
            .collect();

        let stats = ReplayStats {
            snapshot_seq: (snapshot_seq > 0).then_some(snapshot_seq),
            records_applied,
            streams_restored: rings.values().map(RingState::len).sum(),
            truncated_tail,
            segments: sealed.len() + 1,
            replay: started.elapsed(),
        };
        Ok((
            Store {
                dir: dir.to_owned(),
                fs: fsx,
                tail,
                tail_index,
                tail_bytes,
                sealed,
                segment_bytes: options.segment_bytes.max(1),
                next_seq: max_seq + 1,
                snapshot_seq,
                snapshot_bytes,
                epoch,
                cluster_id,
                recorder: Arc::new(Recorder::disabled()),
            },
            rings,
            stats,
        ))
    }

    fn list_segments(dir: &Path) -> Result<Vec<u64>, RegistryError> {
        let mut indices = Vec::new();
        let entries = match fs::read_dir(dir) {
            Ok(entries) => entries,
            Err(e) => return Err(storage_err("list state dir", e)),
        };
        for entry in entries {
            let entry = entry.map_err(|e| storage_err("list state dir", e))?;
            if let Some(index) = entry.file_name().to_str().and_then(parse_segment_index) {
                indices.push(index);
            }
        }
        indices.sort_unstable();
        Ok(indices)
    }

    /// Attaches a flight recorder: subsequent [`append`](Self::append) and
    /// compaction calls emit `registry` spans for the journal append, the
    /// fsync, segment seals, and each compaction phase (snapshot write,
    /// publish rename, sealed-segment GC).
    pub fn set_recorder(&mut self, recorder: Arc<Recorder>) {
        self.recorder = recorder;
    }

    /// Seals the current tail segment and opens the next one.
    fn rotate(&mut self) -> Result<(), RegistryError> {
        {
            let _seal_span = self.recorder.span("registry", "segment_seal");
            self.fs
                .sync_all(&self.tail)
                .map_err(|e| storage_err("seal tail segment", e))?;
        }
        self.sealed.push((self.tail_index, self.tail_bytes));
        self.tail_index += 1;
        self.tail = self
            .fs
            .create_new(&self.dir.join(segment_file(self.tail_index)))
            .map_err(|e| storage_err("open next segment", e))?;
        self.tail_bytes = 0;
        Ok(())
    }

    /// Writes one already-encoded record line (with trailing newline) to
    /// the tail, rotating first if the tail would overflow.
    fn write_line(&mut self, record: &str) -> Result<(), RegistryError> {
        let recorder = Arc::clone(&self.recorder);
        let _append_span = recorder.span("registry", "journal_append");
        if self.tail_bytes > 0 && self.tail_bytes + record.len() as u64 > self.segment_bytes {
            self.rotate()?;
        }
        self.fs
            .write_all(&mut self.tail, record.as_bytes())
            .map_err(|e| storage_err("append journal record", e))?;
        {
            let _fsync_span = self.recorder.span("registry", "journal_fsync");
            self.fs
                .sync_data(&self.tail)
                .map_err(|e| storage_err("sync journal", e))?;
        }
        self.tail_bytes += record.len() as u64;
        Ok(())
    }

    /// Appends one record and syncs it to disk, returning the encoded
    /// record line (no trailing newline) — the exact frame journal
    /// shipping forwards to followers. Call *before* mutating the
    /// in-memory state so a failed write leaves memory and disk agreeing.
    ///
    /// # Errors
    ///
    /// [`RegistryError::Storage`] if the write or sync fails.
    pub fn append(&mut self, op: &JournalOp) -> Result<String, RegistryError> {
        let mut record = encode_record(self.next_seq, op);
        self.write_line(&record)?;
        self.next_seq += 1;
        record.pop();
        Ok(record)
    }

    /// Appends a record line shipped from a primary **verbatim**, so the
    /// follower's journal stays byte-identical. The line must checksum,
    /// decode, and carry exactly the next sequence number.
    ///
    /// # Errors
    ///
    /// [`RegistryError::Storage`] for a malformed or out-of-order line or
    /// a failed write.
    pub fn append_record_line(&mut self, line: &str) -> Result<(), RegistryError> {
        let (seq, _op) =
            decode_record(line).map_err(|e| storage_err("replicated record malformed", e))?;
        if seq != self.next_seq {
            return Err(storage_err(
                "replicated record out of order",
                format!("expected seq {}, got {seq}", self.next_seq),
            ));
        }
        self.write_line(&format!("{line}\n"))?;
        self.next_seq = seq + 1;
        Ok(())
    }

    /// Begins a compaction covering everything journaled so far: seals
    /// the tail (if non-empty) so writers move to a fresh segment, and
    /// captures the snapshot body. Call under the registry lock; run
    /// [`CompactionPlan::publish`] with the lock dropped.
    ///
    /// # Errors
    ///
    /// [`RegistryError::Storage`] if sealing or opening the next segment
    /// fails.
    pub fn begin_compaction<'a, I>(&mut self, rings: I) -> Result<CompactionPlan, RegistryError>
    where
        I: Iterator<Item = (&'a String, &'a RingState)>,
    {
        let recorder = Arc::clone(&self.recorder);
        let _compact_span = recorder.span("registry", "compact");
        if self.tail_bytes > 0 {
            self.rotate()?;
        }
        let seq = self.next_seq - 1; // highest sequence the snapshot covers
        let body = encode_snapshot(seq, rings);
        Ok(CompactionPlan {
            dir: self.dir.clone(),
            fs: self.fs.clone(),
            recorder: Arc::clone(&self.recorder),
            seq,
            body,
            sealed: self.sealed.iter().map(|&(i, _)| i).collect(),
            freed_bytes: self.sealed.iter().map(|&(_, b)| b).sum(),
        })
    }

    /// Folds a published compaction back into the store's bookkeeping.
    pub fn finish_compaction(&mut self, outcome: CompactionOutcome) {
        self.snapshot_seq = self.snapshot_seq.max(outcome.seq);
        self.snapshot_bytes = outcome.snapshot_bytes;
        self.sealed.retain(|(i, _)| !outcome.sealed.contains(i));
        let _ = outcome.freed_bytes; // already excluded by the retain
    }

    /// Synchronous convenience compaction: begin, publish, finish in one
    /// call (no concurrent writers to protect).
    ///
    /// # Errors
    ///
    /// [`RegistryError::Storage`] if any I/O step fails.
    pub fn compact<'a, I>(&mut self, rings: I) -> Result<(), RegistryError>
    where
        I: Iterator<Item = (&'a String, &'a RingState)>,
    {
        let plan = self.begin_compaction(rings)?;
        let outcome = plan.publish()?;
        self.finish_compaction(outcome);
        Ok(())
    }

    /// Current journal size in bytes across all segments.
    #[must_use]
    pub fn journal_bytes(&self) -> u64 {
        self.tail_bytes + self.sealed.iter().map(|&(_, b)| b).sum::<u64>()
    }

    /// Current snapshot size in bytes (0 before the first compaction).
    #[must_use]
    pub fn snapshot_bytes(&self) -> u64 {
        self.snapshot_bytes
    }

    /// Journal segments currently on disk (including the tail).
    #[must_use]
    pub fn segment_count(&self) -> usize {
        self.sealed.len() + 1
    }

    /// Sequence number the next appended record will carry.
    #[must_use]
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Highest sequence number covered by the snapshot (0 = none).
    #[must_use]
    pub fn snapshot_floor(&self) -> u64 {
        self.snapshot_seq
    }

    /// The persisted replication fencing epoch (0 = never served).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Persists a new fencing epoch (tmp + fsync + atomic rename).
    ///
    /// # Errors
    ///
    /// [`RegistryError::Storage`] if the epoch would regress or any I/O
    /// step fails.
    pub fn set_epoch(&mut self, epoch: u64) -> Result<(), RegistryError> {
        if epoch < self.epoch {
            return Err(storage_err(
                "epoch must not regress",
                format!("current {}, requested {epoch}", self.epoch),
            ));
        }
        let _span = self.recorder.span("registry", "epoch_publish");
        let tmp = self.dir.join(EPOCH_TMP);
        let body = encode_epoch(epoch);
        let mut f = self
            .fs
            .create(&tmp)
            .map_err(|e| storage_err("create epoch.tmp", e))?;
        self.fs
            .write_all(&mut f, body.as_bytes())
            .map_err(|e| storage_err("write epoch", e))?;
        self.fs
            .sync_all(&f)
            .map_err(|e| storage_err("sync epoch", e))?;
        self.fs
            .rename(&tmp, &self.dir.join(EPOCH_FILE))
            .map_err(|e| storage_err("publish epoch", e))?;
        self.epoch = epoch;
        Ok(())
    }

    /// The persisted journal cluster identity (0 = never stamped).
    #[must_use]
    pub fn cluster_id(&self) -> u64 {
        self.cluster_id
    }

    /// Persists the journal's cluster identity (tmp + fsync + atomic
    /// rename). The identity is **set-once**: stamping the same value
    /// again is a no-op, stamping a different one over a nonzero identity
    /// is refused — that is exactly the cross-journal shipping accident
    /// the stamp exists to prevent.
    ///
    /// # Errors
    ///
    /// [`RegistryError::Storage`] if `cluster_id` is zero, conflicts with
    /// an existing identity, or any I/O step fails.
    pub fn set_cluster_id(&mut self, cluster_id: u64) -> Result<(), RegistryError> {
        if cluster_id == 0 {
            return Err(storage_err(
                "cluster identity must be nonzero",
                "0 is the \"unstamped\" sentinel",
            ));
        }
        if self.cluster_id == cluster_id {
            return Ok(());
        }
        if self.cluster_id != 0 {
            return Err(storage_err(
                "cluster identity is set-once",
                format!("current {:#x}, requested {cluster_id:#x}", self.cluster_id),
            ));
        }
        let _span = self.recorder.span("registry", "cluster_publish");
        let tmp = self.dir.join(CLUSTER_TMP);
        let body = encode_stamp("cluster", cluster_id);
        let mut f = self
            .fs
            .create(&tmp)
            .map_err(|e| storage_err("create cluster.tmp", e))?;
        self.fs
            .write_all(&mut f, body.as_bytes())
            .map_err(|e| storage_err("write cluster", e))?;
        self.fs
            .sync_all(&f)
            .map_err(|e| storage_err("sync cluster", e))?;
        self.fs
            .rename(&tmp, &self.dir.join(CLUSTER_FILE))
            .map_err(|e| storage_err("publish cluster", e))?;
        self.cluster_id = cluster_id;
        Ok(())
    }

    /// All journal record lines (no trailing newlines) with `seq >=
    /// from_seq`, in order — the backlog a newly attached follower needs
    /// on top of the snapshot.
    ///
    /// # Errors
    ///
    /// [`RegistryError::Storage`] if a segment cannot be read.
    pub fn records_from(&self, from_seq: u64) -> Result<Vec<String>, RegistryError> {
        let mut records = Vec::new();
        let indices: Vec<u64> = self
            .sealed
            .iter()
            .map(|&(i, _)| i)
            .chain(std::iter::once(self.tail_index))
            .collect();
        for index in indices {
            let bytes = fs::read(self.dir.join(segment_file(index)))
                .map_err(|e| storage_err("read journal segment", e))?;
            let text =
                std::str::from_utf8(&bytes).map_err(|e| storage_err("journal not UTF-8", e))?;
            for line in text.lines() {
                let Ok((seq, _)) = decode_record(line) else {
                    // Only a crash can leave a bad record, and recovery
                    // truncates it; a live store never reaches this.
                    break;
                };
                if seq >= from_seq {
                    records.push(line.to_owned());
                }
            }
        }
        Ok(records)
    }

    /// The journal record line carrying exactly `seq`, if the journal
    /// still holds it — what a follower compares a re-delivered ship
    /// frame against to prove the shipped history is its own.
    ///
    /// # Errors
    ///
    /// [`RegistryError::Storage`] if a segment cannot be read.
    pub fn record_at(&self, seq: u64) -> Result<Option<String>, RegistryError> {
        let indices: Vec<u64> = self
            .sealed
            .iter()
            .map(|&(i, _)| i)
            .chain(std::iter::once(self.tail_index))
            .collect();
        for index in indices {
            let bytes = fs::read(self.dir.join(segment_file(index)))
                .map_err(|e| storage_err("read journal segment", e))?;
            let text =
                std::str::from_utf8(&bytes).map_err(|e| storage_err("journal not UTF-8", e))?;
            for line in text.lines() {
                let Ok((got, _)) = decode_record(line) else {
                    break; // torn tail; recovery truncates it
                };
                if got == seq {
                    return Ok(Some(line.to_owned()));
                }
            }
        }
        Ok(None)
    }

    /// The raw snapshot text and the sequence it covers, if a snapshot
    /// exists — what a primary ships to bootstrap a far-behind follower.
    ///
    /// # Errors
    ///
    /// [`RegistryError::Storage`] if the snapshot cannot be read back.
    pub fn snapshot_text(&self) -> Result<Option<(u64, String)>, RegistryError> {
        if self.snapshot_seq == 0 {
            return Ok(None);
        }
        let text = fs::read_to_string(self.dir.join(SNAPSHOT_FILE))
            .map_err(|e| storage_err("read snapshot", e))?;
        Ok(Some((self.snapshot_seq, text)))
    }

    /// Replaces the entire store state with a snapshot shipped from a
    /// primary: validates it, publishes it atomically, deletes every
    /// journal segment, and restarts the journal just past the snapshot.
    ///
    /// # Errors
    ///
    /// [`RegistryError::Storage`] for a corrupt snapshot or failed I/O.
    pub fn install_snapshot(&mut self, text: &str) -> Result<(u64, Rings), RegistryError> {
        let (seq, rings) = load_snapshot(text.as_bytes())
            .map_err(|e| storage_err("shipped snapshot invalid", e))?;
        let tmp = self.dir.join(SNAPSHOT_TMP);
        let mut f = self
            .fs
            .create(&tmp)
            .map_err(|e| storage_err("create snapshot.tmp", e))?;
        self.fs
            .write_all(&mut f, text.as_bytes())
            .map_err(|e| storage_err("write snapshot", e))?;
        self.fs
            .sync_all(&f)
            .map_err(|e| storage_err("sync snapshot", e))?;
        self.fs
            .rename(&tmp, &self.dir.join(SNAPSHOT_FILE))
            .map_err(|e| storage_err("publish snapshot", e))?;
        // The old journal may contain records that conflict with the new
        // snapshot's history; drop all of it before accepting records.
        let old: Vec<u64> = self
            .sealed
            .iter()
            .map(|&(i, _)| i)
            .chain(std::iter::once(self.tail_index))
            .collect();
        let fresh_index = self.tail_index + 1;
        self.tail = self
            .fs
            .create_new(&self.dir.join(segment_file(fresh_index)))
            .map_err(|e| storage_err("open fresh segment", e))?;
        for index in old {
            self.fs
                .remove_file(&self.dir.join(segment_file(index)))
                .map_err(|e| storage_err("remove superseded segment", e))?;
        }
        self.tail_index = fresh_index;
        self.tail_bytes = 0;
        self.sealed.clear();
        self.snapshot_seq = seq;
        self.snapshot_bytes = text.len() as u64;
        self.next_seq = seq + 1;
        Ok((seq, rings))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failpoint::FaultPlan;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ringrt-journal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn spec() -> RingSpec {
        RingSpec {
            protocol: ProtocolKind::Fddi,
            mbps: 100.0,
            stations: Some(16),
        }
    }

    fn admit_op(ring: &str, name: &str, period_ms: f64, bits: u64) -> JournalOp {
        JournalOp::Admit {
            ring: ring.to_owned(),
            stream: NamedStream {
                name: name.to_owned(),
                stream: SyncStream::new(Seconds::from_millis(period_ms), Bits::new(bits)),
            },
        }
    }

    fn tiny_segments() -> StoreOptions {
        StoreOptions {
            segment_bytes: 96,
            fs: FailpointFs::new(),
        }
    }

    #[test]
    fn ops_round_trip_through_records() {
        let ops = [
            JournalOp::Register {
                ring: "lab".into(),
                spec: spec(),
            },
            admit_op("lab", "cam-1", 20.0, 20_000),
            JournalOp::Remove {
                ring: "lab".into(),
                stream: "cam-1".into(),
            },
            JournalOp::Unregister { ring: "lab".into() },
        ];
        for (i, op) in ops.iter().enumerate() {
            let rec = encode_record(i as u64 + 1, op);
            let (seq, decoded) = decode_record(rec.trim_end()).unwrap();
            assert_eq!(seq, i as u64 + 1);
            assert_eq!(&decoded, op);
        }
    }

    #[test]
    fn deadline_round_trips_bit_exactly() {
        let stream = SyncStream::new(Seconds::from_millis(20.0), Bits::new(1_000))
            .with_relative_deadline(Seconds::from_millis(7.3));
        let op = JournalOp::Admit {
            ring: "r".into(),
            stream: NamedStream {
                name: "s".into(),
                stream,
            },
        };
        let rec = encode_record(1, &op);
        let (_, decoded) = decode_record(rec.trim_end()).unwrap();
        match decoded {
            JournalOp::Admit { stream: ns, .. } => {
                assert_eq!(
                    ns.stream.relative_deadline().as_secs_f64().to_bits(),
                    stream.relative_deadline().as_secs_f64().to_bits()
                );
                assert_eq!(
                    ns.stream.period().as_secs_f64().to_bits(),
                    stream.period().as_secs_f64().to_bits()
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn corrupt_records_rejected() {
        let rec = encode_record(1, &admit_op("r", "s", 10.0, 100));
        let line = rec.trim_end();
        // Flip a payload byte: checksum must catch it.
        let mut bad = line.to_owned();
        let n = bad.len();
        bad.replace_range(n - 1..n, "X");
        assert!(decode_record(&bad).is_err());
        assert!(decode_record("zzzzzzzz 1 unregister r").is_err());
        assert!(decode_record("not-a-record").is_err());
    }

    #[test]
    fn apply_enforces_invariants() {
        let mut rings = Rings::new();
        let reg = JournalOp::Register {
            ring: "r".into(),
            spec: spec(),
        };
        apply(&mut rings, &reg).unwrap();
        assert!(matches!(
            apply(&mut rings, &reg),
            Err(RegistryError::DuplicateRing { .. })
        ));
        apply(&mut rings, &admit_op("r", "s", 10.0, 100)).unwrap();
        assert!(matches!(
            apply(&mut rings, &admit_op("r", "s", 12.0, 200)),
            Err(RegistryError::DuplicateStream { .. })
        ));
        assert!(matches!(
            apply(&mut rings, &admit_op("ghost", "s", 10.0, 100)),
            Err(RegistryError::UnknownRing { .. })
        ));
        let rm = JournalOp::Remove {
            ring: "r".into(),
            stream: "ghost".into(),
        };
        assert!(matches!(
            apply(&mut rings, &rm),
            Err(RegistryError::UnknownStream { .. })
        ));
    }

    #[test]
    fn snapshot_round_trips() {
        let mut rings = Rings::new();
        apply(
            &mut rings,
            &JournalOp::Register {
                ring: "a".into(),
                spec: spec(),
            },
        )
        .unwrap();
        apply(&mut rings, &admit_op("a", "s1", 20.0, 1_000)).unwrap();
        apply(&mut rings, &admit_op("a", "s2", 40.0, 2_000)).unwrap();
        let body = encode_snapshot(7, rings.iter());
        let (seq, loaded) = load_snapshot(body.as_bytes()).unwrap();
        assert_eq!(seq, 7);
        assert_eq!(loaded, rings);
        // Any corruption invalidates the whole snapshot.
        let corrupt = body.replace("s1", "sX");
        assert!(load_snapshot(corrupt.as_bytes()).is_err());
    }

    #[test]
    fn attached_recorder_sees_journal_and_compaction_phases() {
        let dir = temp_dir("obs");
        let rec = Arc::new(Recorder::new());
        let (mut store, mut rings, _) = Store::open(&dir).unwrap();
        store.set_recorder(Arc::clone(&rec));
        let op = JournalOp::Register {
            ring: "r".into(),
            spec: spec(),
        };
        store.append(&op).unwrap();
        apply(&mut rings, &op).unwrap();
        store.compact(rings.iter()).unwrap();
        let names: Vec<&str> = rec.drain(64).iter().map(|e| e.name).collect();
        for expected in [
            "journal_append",
            "journal_fsync",
            "compact",
            "segment_seal",
            "snapshot_write",
            "snapshot_publish",
            "segment_gc",
        ] {
            assert!(names.contains(&expected), "missing {expected}: {names:?}");
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_persists_and_replays() {
        let dir = temp_dir("basic");
        {
            let (mut store, mut rings, stats) = Store::open(&dir).unwrap();
            assert_eq!(stats.records_applied, 0);
            let ops = [
                JournalOp::Register {
                    ring: "r".into(),
                    spec: spec(),
                },
                admit_op("r", "s1", 20.0, 1_000),
                admit_op("r", "s2", 40.0, 2_000),
            ];
            for op in &ops {
                store.append(op).unwrap();
                apply(&mut rings, op).unwrap();
            }
            assert!(store.journal_bytes() > 0);
        }
        let (mut store, rings, stats) = Store::open(&dir).unwrap();
        assert_eq!(stats.records_applied, 3);
        assert_eq!(stats.streams_restored, 2);
        assert!(!stats.truncated_tail);
        assert_eq!(rings["r"].len(), 2);
        // Compaction: snapshot lands, sealed segments vanish, state
        // survives (the fresh tail is empty).
        store.compact(rings.iter()).unwrap();
        assert_eq!(store.journal_bytes(), 0);
        assert!(store.snapshot_bytes() > 0);
        drop(store);
        let (_, rings2, stats2) = Store::open(&dir).unwrap();
        assert_eq!(rings2, rings);
        assert_eq!(stats2.records_applied, 0);
        assert_eq!(stats2.snapshot_seq, Some(3));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_seals_segments_and_replays_across_them() {
        let dir = temp_dir("rotate");
        {
            let (mut store, mut rings, _) = Store::open_with(&dir, tiny_segments()).unwrap();
            let reg = JournalOp::Register {
                ring: "r".into(),
                spec: spec(),
            };
            store.append(&reg).unwrap();
            apply(&mut rings, &reg).unwrap();
            for i in 0..8 {
                let op = admit_op("r", &format!("s{i}"), 20.0 + f64::from(i), 1_000);
                store.append(&op).unwrap();
                apply(&mut rings, &op).unwrap();
            }
            assert!(
                store.segment_count() > 1,
                "96-byte segments must have rotated: {}",
                store.segment_count()
            );
        }
        let (store, rings, stats) = Store::open_with(&dir, tiny_segments()).unwrap();
        assert_eq!(stats.records_applied, 9);
        assert_eq!(rings["r"].len(), 8);
        assert!(stats.segments > 1);
        assert_eq!(store.next_seq(), 10);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn legacy_single_file_journal_migrates() {
        let dir = temp_dir("legacy");
        fs::create_dir_all(&dir).unwrap();
        let reg = JournalOp::Register {
            ring: "old".into(),
            spec: spec(),
        };
        let adm = admit_op("old", "s", 20.0, 1_000);
        let mut body = encode_record(1, &reg);
        body.push_str(&encode_record(2, &adm));
        fs::write(dir.join(LEGACY_JOURNAL_FILE), body).unwrap();
        let (store, rings, stats) = Store::open(&dir).unwrap();
        assert_eq!(stats.records_applied, 2);
        assert_eq!(rings["old"].len(), 1);
        assert_eq!(store.next_seq(), 3);
        assert!(!dir.join(LEGACY_JOURNAL_FILE).exists());
        assert!(dir.join(segment_file(1)).exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn epoch_round_trips_and_never_regresses() {
        let dir = temp_dir("epoch");
        {
            let (mut store, _, _) = Store::open(&dir).unwrap();
            assert_eq!(store.epoch(), 0);
            store.set_epoch(3).unwrap();
            assert!(store.set_epoch(2).is_err());
            assert_eq!(store.epoch(), 3);
        }
        let (store, _, _) = Store::open(&dir).unwrap();
        assert_eq!(store.epoch(), 3);
        // A corrupt epoch file degrades to 0, never to garbage.
        fs::write(dir.join(EPOCH_FILE), "deadbeef epoch 99\n").unwrap();
        drop(store);
        let (store, _, _) = Store::open(&dir).unwrap();
        assert_eq!(store.epoch(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn cluster_identity_is_set_once_and_survives_reopen() {
        let dir = temp_dir("cluster");
        {
            let (mut store, _, _) = Store::open(&dir).unwrap();
            assert_eq!(store.cluster_id(), 0, "fresh journal has no identity");
            assert!(store.set_cluster_id(0).is_err(), "0 is the sentinel");
            store.set_cluster_id(0xfeed_beef).unwrap();
            assert_eq!(store.cluster_id(), 0xfeed_beef);
            // Restamping the same identity is a no-op ...
            store.set_cluster_id(0xfeed_beef).unwrap();
            // ... but a different one is the cross-journal accident.
            let err = store.set_cluster_id(7).unwrap_err();
            assert!(err.to_string().contains("set-once"), "{err}");
            assert_eq!(store.cluster_id(), 0xfeed_beef);
        }
        let (store, _, _) = Store::open(&dir).unwrap();
        assert_eq!(store.cluster_id(), 0xfeed_beef);
        // A corrupt stamp degrades to "unstamped", never to garbage.
        fs::write(dir.join(CLUSTER_FILE), "deadbeef cluster 99\n").unwrap();
        drop(store);
        let (store, _, _) = Store::open(&dir).unwrap();
        assert_eq!(store.cluster_id(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn shipping_apis_round_trip_records_and_snapshots() {
        let primary_dir = temp_dir("ship-primary");
        let follower_dir = temp_dir("ship-follower");
        let (mut primary, mut rings, _) = Store::open_with(&primary_dir, tiny_segments()).unwrap();
        let reg = JournalOp::Register {
            ring: "r".into(),
            spec: spec(),
        };
        let mut frames = vec![primary.append(&reg).unwrap()];
        apply(&mut rings, &reg).unwrap();
        for i in 0..4 {
            let op = admit_op("r", &format!("s{i}"), 20.0 + f64::from(i), 1_000);
            frames.push(primary.append(&op).unwrap());
            apply(&mut rings, &op).unwrap();
        }
        // records_from reproduces the appended frames exactly.
        assert_eq!(primary.records_from(1).unwrap(), frames);
        assert_eq!(primary.records_from(4).unwrap(), frames[3..].to_vec());

        // A follower re-journaling the frames ends up byte-identical.
        let (mut follower, _, _) = Store::open_with(&follower_dir, tiny_segments()).unwrap();
        for frame in &frames {
            follower.append_record_line(frame).unwrap();
        }
        assert_eq!(follower.next_seq(), primary.next_seq());
        assert_eq!(follower.records_from(1).unwrap(), frames);
        // Out-of-order and duplicate lines are refused at the store level.
        assert!(follower.append_record_line(&frames[2]).is_err());

        // Snapshot shipping: compact the primary, install on a fresh dir.
        primary.compact(rings.iter()).unwrap();
        let (snap_seq, snap_text) = primary.snapshot_text().unwrap().unwrap();
        assert_eq!(snap_seq, 5);
        let fresh_dir = temp_dir("ship-fresh");
        let (mut fresh, _, _) = Store::open(&fresh_dir).unwrap();
        let (seq, loaded) = fresh.install_snapshot(&snap_text).unwrap();
        assert_eq!(seq, 5);
        assert_eq!(loaded, rings);
        assert_eq!(fresh.next_seq(), 6);
        drop(fresh);
        let (reopened, recovered, stats) = Store::open(&fresh_dir).unwrap();
        assert_eq!(recovered, rings);
        assert_eq!(stats.snapshot_seq, Some(5));
        assert_eq!(reopened.next_seq(), 6);
        let _ = fs::remove_dir_all(&primary_dir);
        let _ = fs::remove_dir_all(&follower_dir);
        let _ = fs::remove_dir_all(&fresh_dir);
    }

    #[test]
    fn injected_crash_recovers_to_pre_fault_state() {
        let dir = temp_dir("failpoint");
        // Large segments: no rotation can slip between arming the fault
        // and the next record write, so the fault deterministically tears
        // that write.
        let options = StoreOptions {
            segment_bytes: DEFAULT_SEGMENT_BYTES,
            fs: FailpointFs::new(),
        };
        let fp = options.fs.clone();
        let (mut store, mut rings, _) = Store::open_with(&dir, options).unwrap();
        let reg = JournalOp::Register {
            ring: "r".into(),
            spec: spec(),
        };
        store.append(&reg).unwrap();
        apply(&mut rings, &reg).unwrap();
        // Fail the very next durable operation, torn after 5 bytes.
        fp.arm(FaultPlan {
            fail_at_op: fp.ops() + 1,
            torn_bytes: Some(5),
        });
        let err = store
            .append(&admit_op("r", "doomed", 20.0, 1_000))
            .unwrap_err();
        assert!(FailpointFs::is_injected(&err), "{err}");
        fp.disarm();
        drop(store);
        let (_, recovered, stats) = Store::open(&dir).unwrap();
        assert_eq!(recovered, rings, "torn record must be truncated away");
        assert!(stats.truncated_tail);
        let _ = fs::remove_dir_all(&dir);
    }
}
