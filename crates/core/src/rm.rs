//! Rate-monotonic schedulability machinery.
//!
//! The priority-driven protocol approximates preemptive rate-monotonic
//! scheduling; its Theorem 4.1 criterion is the Lehoczky–Sha–Ding exact
//! characterization applied to overhead-augmented message costs plus a
//! blocking term. This module implements that machinery generically over
//! `(cost, period)` pairs so it can be unit-tested against the classic CPU
//! scheduling results (e.g. the Liu–Layland bound and the ≈88 % average
//! breakdown utilization of ideal RM) independently of any ring overheads.
//!
//! Two equivalent exact tests are provided:
//!
//! * [`is_schedulable_points`] — the literal scheduling-point form of the
//!   paper's eq. (4): task `i` is schedulable iff there exists a scheduling
//!   point `t = l·P_k` (`k ≤ i`, `1 ≤ l ≤ ⌊P_i/P_k⌋`) with
//!   `Σ_{j≤i} C_j·⌈t/P_j⌉ + B ≤ t`;
//! * [`response_time`] — the response-time fixed-point iteration
//!   `R ← C_i + B + Σ_{j<i} C_j·⌈R/P_j⌉`, which converges to the same
//!   verdict for deadline = period and is much faster in practice.
//!
//! Both assume tasks are indexed in priority order (ascending period).

use ringrt_units::Seconds;

/// Relative tolerance used when taking ceilings/floors of period ratios, so
/// that exact harmonic relationships survive floating-point noise.
const RATIO_EPS: f64 = 1e-9;

/// `⌈t / p⌉` with tolerance for near-integer ratios.
#[must_use]
fn ceil_ratio(t: Seconds, p: Seconds) -> f64 {
    let r = t / p;
    let nearest = r.round();
    if (r - nearest).abs() <= RATIO_EPS * nearest.abs().max(1.0) {
        nearest
    } else {
        r.ceil()
    }
}

/// `⌊t / p⌋` with tolerance for near-integer ratios.
#[must_use]
fn floor_ratio(t: Seconds, p: Seconds) -> f64 {
    let r = t / p;
    let nearest = r.round();
    if (r - nearest).abs() <= RATIO_EPS * nearest.abs().max(1.0) {
        nearest
    } else {
        r.floor()
    }
}

/// One task (or message stream) as seen by the fixed-priority tests:
/// an effective cost, a period, and a relative deadline (= the period in
/// the paper's model; possibly earlier in the constrained-deadline
/// extension).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RmTask {
    /// Worst-case effective execution/transmission cost, `C'_i`.
    pub cost: Seconds,
    /// Period, `P_i`.
    pub period: Seconds,
    /// Relative deadline, `D_i ≤ P_i`.
    pub deadline: Seconds,
}

impl RmTask {
    /// Convenience constructor for the paper's implicit-deadline model
    /// (`D = P`).
    #[must_use]
    pub fn new(cost: Seconds, period: Seconds) -> Self {
        RmTask {
            cost,
            period,
            deadline: period,
        }
    }

    /// Constructor with an explicit constrained deadline.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < deadline ≤ period`.
    #[must_use]
    pub fn with_deadline(cost: Seconds, period: Seconds, deadline: Seconds) -> Self {
        assert!(
            deadline > Seconds::ZERO && deadline <= period,
            "constrained deadlines require 0 < D ≤ P"
        );
        RmTask {
            cost,
            period,
            deadline,
        }
    }

    /// The task's utilization `C/P`.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        self.cost / self.period
    }
}

/// Asserts (in debug builds) that tasks are sorted by ascending deadline
/// (deadline-monotonic order, which is ascending-period order for
/// implicit-deadline sets).
fn debug_assert_priority_order(tasks: &[RmTask]) {
    debug_assert!(
        tasks.windows(2).all(|w| w[0].deadline <= w[1].deadline),
        "tasks must be in deadline-monotonic (ascending deadline) order"
    );
}

/// The Liu–Layland utilization bound `n(2^{1/n} − 1)`.
///
/// Any task set with total utilization below this bound is schedulable by
/// RM; above it, schedulability must be decided by an exact test.
///
/// # Examples
///
/// ```
/// use ringrt_core::rm::liu_layland_bound;
/// assert_eq!(liu_layland_bound(1), 1.0);
/// assert!((liu_layland_bound(2) - 0.8284).abs() < 1e-4);
/// assert!((liu_layland_bound(1000) - core::f64::consts::LN_2).abs() < 1e-3);
/// ```
///
/// # Panics
///
/// Panics if `n` is zero.
#[must_use]
pub fn liu_layland_bound(n: usize) -> f64 {
    assert!(n > 0, "the bound is defined for at least one task");
    let nf = n as f64;
    nf * (2f64.powf(1.0 / nf) - 1.0)
}

/// Worst-case response time of task `index` (0-based, priority order) under
/// preemptive RM with a blocking term, or `None` if the fixed point exceeds
/// the deadline (task unschedulable).
///
/// Solves `R = C_i + B + Σ_{j<i} C_j·⌈R/P_j⌉` by fixed-point iteration
/// starting from `C_i + B`.
///
/// # Panics
///
/// Panics if `index` is out of range, and in debug builds if the tasks are
/// not sorted by ascending period.
#[must_use]
pub fn response_time(tasks: &[RmTask], index: usize, blocking: Seconds) -> Option<Seconds> {
    response_time_counted(tasks, index, blocking).0
}

/// Like [`response_time`], but also reports how many demand evaluations
/// (fixed-point iterations over the scheduling-point demand function) the
/// test performed.
///
/// The count is the work metric behind the registry's incremental
/// admission engine: re-testing only the priority levels a change touches
/// must evaluate measurably fewer points than a full recomputation, and
/// this counter is what makes that claim observable.
///
/// # Panics
///
/// Panics if `index` is out of range, and in debug builds if the tasks are
/// not sorted by ascending deadline.
#[must_use]
pub fn response_time_counted(
    tasks: &[RmTask],
    index: usize,
    blocking: Seconds,
) -> (Option<Seconds>, u64) {
    debug_assert_priority_order(tasks);
    let task = &tasks[index];
    let deadline = task.deadline;
    let tol = Seconds::new(RATIO_EPS * deadline.as_secs_f64().max(1e-30));
    let mut r = task.cost + blocking;
    let mut evaluations = 0u64;
    // Each iteration increases R until the fixed point; bail out as soon as
    // the deadline is exceeded. A generous iteration cap guards against
    // pathological float non-convergence.
    for _ in 0..10_000 {
        if r > deadline + tol {
            return (None, evaluations);
        }
        let mut next = task.cost + blocking;
        for hp in &tasks[..index] {
            next += hp.cost * ceil_ratio(r, hp.period);
        }
        evaluations += 1;
        if next <= r + tol {
            let verdict = if next <= deadline + tol {
                Some(next)
            } else {
                None
            };
            return (verdict, evaluations);
        }
        r = next;
    }
    // Did not converge within the cap — treat as unschedulable.
    (None, evaluations)
}

/// Verdict of the exact scheduling-point test (paper eq. 4) for task
/// `index`: is there a scheduling point `t ≤ P_i` where the cumulative
/// demand `Σ_{j≤i} C_j⌈t/P_j⌉ + B` fits within `t`?
///
/// # Panics
///
/// Panics if `index` is out of range, and in debug builds if the tasks are
/// not sorted by ascending period.
#[must_use]
pub fn schedulable_at_points(tasks: &[RmTask], index: usize, blocking: Seconds) -> bool {
    debug_assert_priority_order(tasks);
    let d_i = tasks[index].deadline;
    let demand_fits = |t: Seconds| {
        let mut demand = blocking;
        for task in &tasks[..=index] {
            demand += task.cost * ceil_ratio(t, task.period);
        }
        demand <= t + Seconds::new(RATIO_EPS * t.as_secs_f64().max(1e-30))
    };
    // R_i = {(k, l) : 1 ≤ k ≤ i, 1 ≤ l ≤ ⌊D_i/P_k⌋}; points t = l·P_k,
    // plus the deadline itself (needed when D_i < P_i and no period
    // multiple lands on it).
    if demand_fits(d_i) {
        return true;
    }
    for task in &tasks[..=index] {
        let p_k = task.period;
        let l_max = floor_ratio(d_i, p_k) as u64;
        for l in 1..=l_max {
            let t = (p_k * l as f64).min(d_i);
            if demand_fits(t) {
                return true;
            }
        }
    }
    false
}

/// Exact RM schedulability of the whole set via the scheduling-point test.
///
/// `tasks` must be sorted by ascending period (rate-monotonic priority
/// order); `blocking` is added to every task's demand, as in the paper's
/// Theorem 4.1 where `B = 2·max(F, Θ)` bounds priority inversion.
#[must_use]
pub fn is_schedulable_points(tasks: &[RmTask], blocking: Seconds) -> bool {
    (0..tasks.len()).all(|i| schedulable_at_points(tasks, i, blocking))
}

/// Exact RM schedulability of the whole set via response-time analysis.
///
/// Equivalent verdict to [`is_schedulable_points`] (both are exact for
/// deadline = period), typically an order of magnitude faster. This is the
/// workhorse used by the Monte-Carlo breakdown search.
#[must_use]
pub fn is_schedulable_rta(tasks: &[RmTask], blocking: Seconds) -> bool {
    debug_assert_priority_order(tasks);
    // Quick necessary condition: utilization (ignoring blocking) must not
    // exceed 1, otherwise RTA may take many iterations to diverge.
    let u: f64 = tasks.iter().map(RmTask::utilization).sum();
    if u > 1.0 + RATIO_EPS {
        return false;
    }
    (0..tasks.len()).all(|i| response_time(tasks, i, blocking).is_some())
}

/// Per-task response times (`None` marks an unschedulable task), for
/// diagnostic reports.
#[must_use]
pub fn response_times(tasks: &[RmTask], blocking: Seconds) -> Vec<Option<Seconds>> {
    (0..tasks.len())
        .map(|i| response_time(tasks, i, blocking))
        .collect()
}

/// Idealized rate-monotonic "protocol": no frame overheads, no blocking, no
/// token — messages behave like preemptive CPU tasks with cost
/// `C_i = C_i^b / BW`.
///
/// This is the Lehoczky–Sha–Ding baseline the paper cites (§2): its average
/// breakdown utilization is ≈ 88 % for uniformly drawn task sets. It exists
/// to anchor the Monte-Carlo pipeline against a published number.
///
/// # Examples
///
/// ```
/// use ringrt_core::rm::IdealRmAnalyzer;
/// use ringrt_core::SchedulabilityTest;
/// use ringrt_model::{MessageSet, SyncStream};
/// use ringrt_units::{Bandwidth, Bits, Seconds};
///
/// let ideal = IdealRmAnalyzer::new(Bandwidth::from_mbps(100.0));
/// let set = MessageSet::new(vec![
///     SyncStream::new(Seconds::from_millis(10.0), Bits::new(500_000)),
///     SyncStream::new(Seconds::from_millis(20.0), Bits::new(1_000_000)),
/// ])?;
/// // Harmonic set at exactly U = 1.0 is schedulable in the ideal model.
/// assert!(ideal.is_schedulable(&set));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IdealRmAnalyzer {
    bandwidth: ringrt_units::Bandwidth,
}

impl IdealRmAnalyzer {
    /// Creates the ideal analyzer; `bandwidth` converts message bits into
    /// transmission times.
    #[must_use]
    pub fn new(bandwidth: ringrt_units::Bandwidth) -> Self {
        IdealRmAnalyzer { bandwidth }
    }

    /// The bandwidth used for bit→time conversion.
    #[must_use]
    pub fn bandwidth(&self) -> ringrt_units::Bandwidth {
        self.bandwidth
    }
}

impl crate::SchedulabilityTest for IdealRmAnalyzer {
    fn is_schedulable(&self, set: &ringrt_model::MessageSet) -> bool {
        let order = set.rm_order();
        let tasks: Vec<RmTask> = order
            .iter()
            .map(|&i| {
                let s = set.stream(ringrt_model::StreamId(i));
                RmTask::new(s.transmission_time(self.bandwidth), s.period())
            })
            .collect();
        is_schedulable_rta(&tasks, Seconds::ZERO)
    }

    fn protocol_name(&self) -> &'static str {
        "ideal RM"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(cost_ms: f64, period_ms: f64) -> RmTask {
        RmTask::new(
            Seconds::from_millis(cost_ms),
            Seconds::from_millis(period_ms),
        )
    }

    const NO_BLOCKING: Seconds = Seconds::ZERO;

    #[test]
    fn liu_layland_values() {
        assert!((liu_layland_bound(1) - 1.0).abs() < 1e-12);
        assert!((liu_layland_bound(2) - 0.828_427).abs() < 1e-6);
        assert!((liu_layland_bound(3) - 0.779_763).abs() < 1e-6);
        // Monotone decreasing towards ln 2.
        for n in 1..50 {
            assert!(liu_layland_bound(n) > liu_layland_bound(n + 1));
            assert!(liu_layland_bound(n + 1) > core::f64::consts::LN_2);
        }
    }

    #[test]
    fn classic_liu_layland_example_schedulable() {
        // C = (20, 40, 100), P = (100, 150, 350): U ≈ 0.753, schedulable.
        let tasks = [t(20.0, 100.0), t(40.0, 150.0), t(100.0, 350.0)];
        assert!(is_schedulable_points(&tasks, NO_BLOCKING));
        assert!(is_schedulable_rta(&tasks, NO_BLOCKING));
        // Known response times: R1 = 20, R2 = 60, and for task 3 the fixed
        // point of 100 + 20⌈R/100⌉ + 40⌈R/150⌉ is R3 = 240.
        let r = response_times(&tasks, NO_BLOCKING);
        assert!((r[0].unwrap().as_millis() - 20.0).abs() < 1e-6);
        assert!((r[1].unwrap().as_millis() - 60.0).abs() < 1e-6);
        assert!((r[2].unwrap().as_millis() - 240.0).abs() < 1e-6);
    }

    #[test]
    fn full_utilization_harmonic_set_schedulable() {
        // Harmonic periods reach U = 1.0 under RM.
        let tasks = [t(10.0, 20.0), t(10.0, 40.0), t(20.0, 80.0)];
        let u: f64 = tasks.iter().map(RmTask::utilization).sum();
        assert!((u - 1.0).abs() < 1e-12);
        assert!(is_schedulable_points(&tasks, NO_BLOCKING));
        assert!(is_schedulable_rta(&tasks, NO_BLOCKING));
    }

    #[test]
    fn over_utilization_unschedulable() {
        let tasks = [t(15.0, 20.0), t(20.0, 40.0)];
        assert!(!is_schedulable_points(&tasks, NO_BLOCKING));
        assert!(!is_schedulable_rta(&tasks, NO_BLOCKING));
    }

    #[test]
    fn boundary_two_task_breakdown() {
        // For P = (1, 2^(1/1)) the two-task LL boundary: C1/P1 = C2/P2 =
        // 2(√2 − 1) ≈ 0.4142 is exactly schedulable.
        let u = 2.0 * (2f64.sqrt() - 1.0) / 2.0;
        let p1 = 1.0;
        let p2 = 2f64.sqrt();
        let tasks = [
            RmTask::new(Seconds::new(u * p1), Seconds::new(p1)),
            RmTask::new(Seconds::new(u * p2), Seconds::new(p2)),
        ];
        assert!(is_schedulable_rta(&tasks, NO_BLOCKING));
        // The tiniest inflation breaks it.
        let inflated = [
            RmTask::new(tasks[0].cost * 1.001, tasks[0].period),
            RmTask::new(tasks[1].cost * 1.001, tasks[1].period),
        ];
        assert!(!is_schedulable_rta(&inflated, NO_BLOCKING));
        assert!(!is_schedulable_points(&inflated, NO_BLOCKING));
    }

    #[test]
    fn blocking_reduces_schedulability() {
        let tasks = [t(8.0, 20.0), t(12.0, 40.0)];
        assert!(is_schedulable_rta(&tasks, NO_BLOCKING));
        // Blocking of 12 ms pushes the first task past its deadline
        // (8 + 12 = 20 = D is fine, but interference on task 2 breaks it).
        assert!(is_schedulable_rta(&tasks, Seconds::from_millis(12.0)));
        assert!(!is_schedulable_rta(&tasks, Seconds::from_millis(12.1)));
        // The point test agrees on both sides of the edge.
        assert!(is_schedulable_points(&tasks, Seconds::from_millis(12.0)));
        assert!(!is_schedulable_points(&tasks, Seconds::from_millis(12.1)));
    }

    #[test]
    fn rta_matches_point_test_on_grid() {
        // Sweep a small deterministic family and insist the two exact tests
        // always agree.
        let mut disagreements = 0;
        for c1 in 1..=10 {
            for c2 in 1..=10 {
                for c3 in 1..=10 {
                    let tasks = [
                        t(c1 as f64, 14.0),
                        t(c2 as f64 * 2.0, 33.0),
                        t(c3 as f64 * 3.0, 101.0),
                    ];
                    let a = is_schedulable_points(&tasks, Seconds::from_millis(1.5));
                    let b = is_schedulable_rta(&tasks, Seconds::from_millis(1.5));
                    if a != b {
                        disagreements += 1;
                    }
                }
            }
        }
        assert_eq!(disagreements, 0);
    }

    #[test]
    fn single_task_edge() {
        let task = [t(10.0, 10.0)];
        assert!(is_schedulable_rta(&task, NO_BLOCKING));
        assert!(is_schedulable_points(&task, NO_BLOCKING));
        assert!(!is_schedulable_rta(&task, Seconds::from_millis(0.1)));
    }

    #[test]
    fn response_time_includes_blocking() {
        let tasks = [t(5.0, 100.0)];
        let r = response_time(&tasks, 0, Seconds::from_millis(7.0)).unwrap();
        assert!((r.as_millis() - 12.0).abs() < 1e-9);
    }

    #[test]
    fn ceil_ratio_handles_exact_multiples() {
        // 0.3 / 0.1 is 2.9999999999999996 in f64; must ceil to 3, not 4... and
        // the tolerance must not round 3.4 down.
        assert_eq!(ceil_ratio(Seconds::new(0.3), Seconds::new(0.1)), 3.0);
        assert_eq!(ceil_ratio(Seconds::new(0.34), Seconds::new(0.1)), 4.0);
        assert_eq!(floor_ratio(Seconds::new(0.3), Seconds::new(0.1)), 3.0);
        assert_eq!(floor_ratio(Seconds::new(0.29), Seconds::new(0.1)), 2.0);
    }

    #[test]
    #[should_panic(expected = "at least one task")]
    fn liu_layland_zero_panics() {
        let _ = liu_layland_bound(0);
    }

    #[test]
    fn constrained_deadline_tightens_the_test() {
        // C = 5, P = 20: trivially fine with D = P, infeasible with D = 4.
        let relaxed = [t(5.0, 20.0)];
        assert!(is_schedulable_rta(&relaxed, NO_BLOCKING));
        let tight = [RmTask::with_deadline(
            Seconds::from_millis(5.0),
            Seconds::from_millis(20.0),
            Seconds::from_millis(4.0),
        )];
        assert!(!is_schedulable_rta(&tight, NO_BLOCKING));
        assert!(!is_schedulable_points(&tight, NO_BLOCKING));
        // Exactly D = C passes.
        let exact = [RmTask::with_deadline(
            Seconds::from_millis(5.0),
            Seconds::from_millis(20.0),
            Seconds::from_millis(5.0),
        )];
        assert!(is_schedulable_rta(&exact, NO_BLOCKING));
        assert!(is_schedulable_points(&exact, NO_BLOCKING));
    }

    #[test]
    fn deadline_monotonic_two_task_example() {
        // Task A: C=2, P=10, D=4 (higher priority under DM).
        // Task B: C=3, P=6 (D=6).
        let a = RmTask::with_deadline(
            Seconds::from_millis(2.0),
            Seconds::from_millis(10.0),
            Seconds::from_millis(4.0),
        );
        let b = t(3.0, 6.0);
        let tasks = [a, b]; // DM order: D=4 before D=6
        assert!(is_schedulable_points(&tasks, NO_BLOCKING));
        assert!(is_schedulable_rta(&tasks, NO_BLOCKING));
        // R_A = 2 ≤ 4; R_B = 3 + 2 = 5 ≤ 6.
        let r = response_times(&tasks, NO_BLOCKING);
        assert!((r[0].unwrap().as_millis() - 2.0).abs() < 1e-9);
        assert!((r[1].unwrap().as_millis() - 5.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "0 < D ≤ P")]
    fn deadline_above_period_rejected() {
        let _ = RmTask::with_deadline(
            Seconds::from_millis(1.0),
            Seconds::from_millis(10.0),
            Seconds::from_millis(11.0),
        );
    }
}
