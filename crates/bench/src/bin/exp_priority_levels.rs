//! LEVELS — the cost of real 802.5 hardware priorities (our extension).
//!
//! The paper's rate-monotonic implementation (following Strosnider,
//! Lehoczky & Sha, the paper's reference 22) implicitly assumes one priority per stream, but
//! the 802.5 access-control byte carries only **3 bits — 8 levels**. With
//! n = 100 streams, ~13 streams share each level and the MAC arbitrates
//! between them by ring position.
//!
//! This experiment measures the ABU of the modified 802.5 protocol as the
//! number of available priority levels shrinks from "one per stream" down
//! to 1 (pure frame-level round robin), at the protocol's sweet-spot
//! bandwidths, using the conservative shared-level analysis of
//! `ringrt_core::pdp::quantize_ranks`.

use ringrt_bench::{banner, ExpOptions};
use ringrt_breakdown::table::{cell, Table};
use ringrt_breakdown::{BreakdownEstimator, SaturationSearch};
use ringrt_core::pdp::{PdpAnalyzer, PdpVariant};
use ringrt_model::{FrameFormat, RingConfig};
use ringrt_units::Bandwidth;
use ringrt_workload::MessageSetGenerator;

fn main() {
    let opts = ExpOptions::from_env();
    banner(
        "LEVELS",
        "modified 802.5 ABU vs available hardware priority levels",
        &opts,
    );

    let estimator = BreakdownEstimator::new(
        MessageSetGenerator::paper_population(opts.stations),
        opts.samples,
    )
    .with_search(SaturationSearch::with_tolerance(if opts.quick {
        3e-3
    } else {
        1e-3
    }));
    let frame = FrameFormat::paper_default();
    let pool = ringrt_exec::Pool::from_env();

    let mut table = Table::new(&["bandwidth_mbps", "levels", "abu", "ci95", "vs_unlimited"]);
    for mbps in [2.0, 5.623, 16.0] {
        let bw = Bandwidth::from_mbps(mbps);
        let ring = RingConfig::ieee_802_5(opts.stations, bw);
        let base = PdpAnalyzer::new(ring, frame, PdpVariant::Modified);
        let unlimited = estimator.estimate_parallel(&base, bw, opts.seed, &pool);
        table.push_row(&[
            cell(mbps, 3),
            "unlimited".into(),
            cell(unlimited.mean, 4),
            cell(unlimited.ci95, 4),
            "1.000".into(),
        ]);
        for levels in [32usize, 8, 4, 2, 1] {
            let analyzer = base.with_priority_levels(levels);
            let est = estimator.estimate_parallel(&analyzer, bw, opts.seed, &pool);
            table.push_row(&[
                cell(mbps, 3),
                levels.to_string(),
                cell(est.mean, 4),
                cell(est.ci95, 4),
                cell(est.mean / unlimited.mean.max(1e-12), 3),
            ]);
        }
    }
    print!("{}", table.to_csv());
    println!();
    println!("# the 3-bit (8-level) hardware limit costs only a few percent of ABU under");
    println!("# the conservative shared-level analysis; the paper's per-stream-priority");
    println!("# idealization is therefore benign. One level (round robin) is the floor.");
}
