//! Measurement utilities for simulations.

use core::fmt;

use ringrt_units::{SimDuration, SimTime};

/// A plain event counter.
///
/// # Examples
///
/// ```
/// use ringrt_des::stats::Counter;
///
/// let mut misses = Counter::new("deadline misses");
/// misses.incr();
/// misses.add(2);
/// assert_eq!(misses.value(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counter {
    name: &'static str,
    value: u64,
}

impl Counter {
    /// Creates a zeroed counter.
    #[must_use]
    pub fn new(name: &'static str) -> Self {
        Counter { name, value: 0 }
    }

    /// Increments by one.
    pub fn incr(&mut self) {
        self.value += 1;
    }

    /// Increments by `n`.
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Current count.
    #[must_use]
    pub fn value(&self) -> u64 {
        self.value
    }

    /// The counter's name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} = {}", self.name, self.value)
    }
}

/// Accumulates total busy time of a binary resource (e.g. "the medium is
/// transmitting"), yielding utilization over any observation window.
///
/// # Examples
///
/// ```
/// use ringrt_des::stats::BusyTime;
/// use ringrt_units::{SimDuration, SimTime};
///
/// let mut medium = BusyTime::new();
/// medium.set_busy(SimTime::from_picos(0));
/// medium.set_idle(SimTime::from_picos(600));
/// let u = medium.utilization(SimTime::from_picos(1_000));
/// assert!((u - 0.6).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BusyTime {
    accumulated: SimDuration,
    busy_since: Option<SimTime>,
}

impl BusyTime {
    /// Creates an idle accumulator.
    #[must_use]
    pub fn new() -> Self {
        BusyTime::default()
    }

    /// Marks the resource busy from `t` (no-op if already busy).
    pub fn set_busy(&mut self, t: SimTime) {
        if self.busy_since.is_none() {
            self.busy_since = Some(t);
        }
    }

    /// Marks the resource idle at `t`, accumulating the elapsed busy span.
    ///
    /// # Panics
    ///
    /// Panics if `t` precedes the instant the resource became busy.
    pub fn set_idle(&mut self, t: SimTime) {
        if let Some(since) = self.busy_since.take() {
            self.accumulated += t.duration_since(since);
        }
    }

    /// Total busy time up to `now` (counting an open busy interval).
    #[must_use]
    pub fn busy_time(&self, now: SimTime) -> SimDuration {
        match self.busy_since {
            Some(since) => self.accumulated + now.saturating_duration_since(since),
            None => self.accumulated,
        }
    }

    /// Busy fraction of `[0, now]`.
    #[must_use]
    pub fn utilization(&self, now: SimTime) -> f64 {
        if now == SimTime::ZERO {
            0.0
        } else {
            self.busy_time(now).as_seconds() / now.as_seconds()
        }
    }
}

/// A tally of duration samples: count, mean, extremes.
///
/// Used for response times and token rotation times, where the simulator
/// needs means and worst cases but not full histograms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DurationTally {
    count: u64,
    total: SimDuration,
    min: Option<SimDuration>,
    max: Option<SimDuration>,
}

impl DurationTally {
    /// Creates an empty tally.
    #[must_use]
    pub fn new() -> Self {
        DurationTally::default()
    }

    /// Records one sample.
    pub fn push(&mut self, d: SimDuration) {
        self.count += 1;
        self.total += d;
        self.min = Some(match self.min {
            Some(m) => m.min(d),
            None => d,
        });
        self.max = Some(match self.max {
            Some(m) => m.max(d),
            None => d,
        });
    }

    /// Number of samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean sample, or `None` if empty.
    #[must_use]
    pub fn mean(&self) -> Option<SimDuration> {
        self.total
            .as_picos()
            .checked_div(self.count)
            .map(SimDuration::from_picos)
    }

    /// Smallest sample, or `None` if empty.
    #[must_use]
    pub fn min(&self) -> Option<SimDuration> {
        self.min
    }

    /// Largest sample, or `None` if empty.
    #[must_use]
    pub fn max(&self) -> Option<SimDuration> {
        self.max
    }
}

impl fmt::Display for DurationTally {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.mean(), self.min, self.max) {
            (Some(mean), Some(min), Some(max)) => write!(
                f,
                "n = {}, mean = {mean}, min = {min}, max = {max}",
                self.count
            ),
            _ => write!(f, "n = 0"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let mut c = Counter::new("x");
        assert_eq!(c.value(), 0);
        c.incr();
        c.add(4);
        assert_eq!(c.value(), 5);
        assert_eq!(c.name(), "x");
        assert_eq!(c.to_string(), "x = 5");
    }

    #[test]
    fn busy_time_accumulates_disjoint_intervals() {
        let mut b = BusyTime::new();
        b.set_busy(SimTime::from_picos(100));
        b.set_idle(SimTime::from_picos(200));
        b.set_busy(SimTime::from_picos(300));
        b.set_idle(SimTime::from_picos(450));
        assert_eq!(
            b.busy_time(SimTime::from_picos(500)),
            SimDuration::from_picos(250)
        );
        assert!((b.utilization(SimTime::from_picos(500)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn busy_time_open_interval_counts() {
        let mut b = BusyTime::new();
        b.set_busy(SimTime::from_picos(100));
        assert_eq!(
            b.busy_time(SimTime::from_picos(150)),
            SimDuration::from_picos(50)
        );
    }

    #[test]
    fn busy_idempotent_transitions() {
        let mut b = BusyTime::new();
        b.set_busy(SimTime::from_picos(10));
        b.set_busy(SimTime::from_picos(20)); // ignored: already busy
        b.set_idle(SimTime::from_picos(30));
        b.set_idle(SimTime::from_picos(40)); // ignored: already idle
        assert_eq!(
            b.busy_time(SimTime::from_picos(40)),
            SimDuration::from_picos(20)
        );
    }

    #[test]
    fn utilization_at_time_zero_is_zero() {
        assert_eq!(BusyTime::new().utilization(SimTime::ZERO), 0.0);
    }

    #[test]
    fn tally_moments() {
        let mut t = DurationTally::new();
        assert!(t.mean().is_none());
        for ps in [10, 20, 30] {
            t.push(SimDuration::from_picos(ps));
        }
        assert_eq!(t.count(), 3);
        assert_eq!(t.mean(), Some(SimDuration::from_picos(20)));
        assert_eq!(t.min(), Some(SimDuration::from_picos(10)));
        assert_eq!(t.max(), Some(SimDuration::from_picos(30)));
        assert!(t.to_string().contains("n = 3"));
        assert_eq!(DurationTally::new().to_string(), "n = 0");
    }
}

/// A log-scaled latency histogram over simulator durations.
///
/// Buckets are powers of two in picoseconds (bucket `k` covers
/// `[2^k, 2^(k+1))` ps), trading resolution for O(1) memory across the
/// twelve decades a `SimDuration` can span. Good enough for p95/p99
/// reporting on response times, where half-octave accuracy is ample.
///
/// # Examples
///
/// ```
/// use ringrt_des::stats::DurationHistogram;
/// use ringrt_units::SimDuration;
///
/// let mut h = DurationHistogram::new();
/// for us in 1..=100u64 {
///     h.push(SimDuration::from_micros(us));
/// }
/// let p50 = h.quantile(0.5).unwrap();
/// // True median is 50 µs; the histogram answers within its bucket.
/// assert!(p50.as_picos() >= 32_000_000 && p50.as_picos() <= 128_000_000);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DurationHistogram {
    /// counts[k] = samples with floor(log2(ps)) == k; counts[0] also holds
    /// zero-duration samples.
    counts: Vec<u64>,
    total: u64,
}

impl DurationHistogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        DurationHistogram {
            counts: vec![0; 64],
            total: 0,
        }
    }

    /// Records one sample.
    pub fn push(&mut self, d: SimDuration) {
        let ps = d.as_picos();
        let bucket = if ps == 0 {
            0
        } else {
            63 - ps.leading_zeros() as usize
        };
        self.counts[bucket] += 1;
        self.total += 1;
    }

    /// Number of samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.total
    }

    /// An upper bound on the `q`-quantile (0 < q ≤ 1): the top edge of the
    /// bucket containing it. `None` if the histogram is empty.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 < q <= 1.0`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<SimDuration> {
        assert!(q > 0.0 && q <= 1.0, "quantile must be in (0, 1], got {q}");
        if self.total == 0 {
            return None;
        }
        let rank = (q * self.total as f64).ceil() as u64;
        let mut seen = 0;
        for (k, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let upper = if k >= 63 {
                    u64::MAX
                } else {
                    (1u64 << (k + 1)) - 1
                };
                return Some(SimDuration::from_picos(upper));
            }
        }
        None
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &DurationHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
    }

    /// Per-bucket sample counts; `bucket_counts()[k]` is the number of
    /// samples whose duration fell in `[2^k, 2^(k+1))` picoseconds
    /// (bucket 0 also holds zero-duration samples).
    #[must_use]
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Inclusive upper edge of bucket `k` in picoseconds — the same edge
    /// [`quantile`](Self::quantile) reports, so exporters (e.g. Prometheus
    /// `le` labels) agree bit-for-bit with quantile output.
    ///
    /// # Panics
    ///
    /// Panics if `k >= 64`.
    #[must_use]
    pub fn bucket_upper_bound_picos(k: usize) -> u64 {
        assert!(k < 64, "bucket index {k} out of range");
        if k >= 63 {
            u64::MAX
        } else {
            (1u64 << (k + 1)) - 1
        }
    }

    /// Resets the histogram to empty without reallocating.
    pub fn clear(&mut self) {
        self.counts.fill(0);
        self.total = 0;
    }
}

impl Default for DurationHistogram {
    fn default() -> Self {
        DurationHistogram::new()
    }
}

#[cfg(test)]
mod histogram_tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = DurationHistogram::new();
        assert_eq!(h.count(), 0);
        assert!(h.quantile(0.5).is_none());
    }

    #[test]
    fn single_sample_quantiles() {
        let mut h = DurationHistogram::new();
        h.push(SimDuration::from_picos(1000)); // bucket 9: [512, 1024)
        for q in [0.01, 0.5, 0.99, 1.0] {
            let v = h.quantile(q).unwrap().as_picos();
            assert!((1000..2048).contains(&v), "q={q}: {v}");
        }
    }

    #[test]
    fn quantiles_are_monotone() {
        let mut h = DurationHistogram::new();
        for i in 1..=1000u64 {
            h.push(SimDuration::from_picos(i * i));
        }
        let mut prev = 0;
        for q in [0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let v = h.quantile(q).unwrap().as_picos();
            assert!(v >= prev, "quantile regressed at q={q}");
            prev = v;
        }
    }

    #[test]
    fn tail_quantile_bounds_max() {
        let mut h = DurationHistogram::new();
        for us in [1u64, 10, 100, 1000] {
            h.push(SimDuration::from_micros(us));
        }
        // p100 upper bound is at least the max sample.
        let p100 = h.quantile(1.0).unwrap();
        assert!(p100 >= SimDuration::from_micros(1000));
        // p25 is within a bucket of the smallest sample.
        let p25 = h.quantile(0.25).unwrap();
        assert!(p25 < SimDuration::from_micros(2));
    }

    #[test]
    fn zero_duration_goes_to_bucket_zero() {
        let mut h = DurationHistogram::new();
        h.push(SimDuration::ZERO);
        assert_eq!(h.quantile(1.0).unwrap().as_picos(), 1);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = DurationHistogram::new();
        let mut b = DurationHistogram::new();
        a.push(SimDuration::from_picos(10));
        b.push(SimDuration::from_picos(1_000_000));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!(a.quantile(1.0).unwrap() >= SimDuration::from_picos(1_000_000));
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn zero_q_rejected() {
        let _ = DurationHistogram::new().quantile(0.0);
    }

    #[test]
    fn bucket_edges_match_quantile_edges() {
        let mut h = DurationHistogram::new();
        h.push(SimDuration::from_picos(1000)); // bucket 9
        let k = h
            .bucket_counts()
            .iter()
            .position(|&c| c > 0)
            .expect("one bucket populated");
        assert_eq!(k, 9);
        assert_eq!(
            DurationHistogram::bucket_upper_bound_picos(k),
            h.quantile(1.0).unwrap().as_picos()
        );
        assert_eq!(DurationHistogram::bucket_upper_bound_picos(63), u64::MAX);
    }

    #[test]
    fn clear_resets_counts() {
        let mut h = DurationHistogram::new();
        h.push(SimDuration::from_micros(3));
        h.clear();
        assert_eq!(h.count(), 0);
        assert!(h.bucket_counts().iter().all(|&c| c == 0));
        assert_eq!(h, DurationHistogram::new());
    }
}
