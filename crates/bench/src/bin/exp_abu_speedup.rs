//! SPEEDUP — multi-core ABU estimation throughput (engineering benchmark).
//!
//! Measures Monte-Carlo average-breakdown-utilization throughput
//! (samples/sec) for the serial `estimate` path against
//! `estimate_parallel` on the shared `ringrt-exec` pool, across a thread
//! ladder up to the configured width (`RINGRT_THREADS` or the machine's
//! core count). Because the parallel path consumes the same canonical
//! SplitMix64 seed stream as the serial one, every row also asserts the
//! estimates are **bit-identical** — the speedup is free of any numerical
//! drift. Widths 1/2/4/8 are additionally identity-checked with forced
//! work stealing even when the host has fewer cores (oversubscribed
//! pools are slow but must stay exact), so the determinism claim never
//! narrows to whatever machine ran the bench.
//!
//! Besides the usual CSV on stdout, writes `BENCH_abu.json` to the current
//! directory for CI artifact upload.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use ringrt_bench::{banner, ExpOptions};
use ringrt_breakdown::table::{cell, Table};
use ringrt_breakdown::{BreakdownEstimate, BreakdownEstimator, SaturationSearch};
use ringrt_core::ttp::TtpAnalyzer;
use ringrt_exec::Pool;
use ringrt_model::RingConfig;
use ringrt_workload::MessageSetGenerator;

const OUT_PATH: &str = "BENCH_abu.json";

fn main() {
    let opts = ExpOptions::from_env();
    banner(
        "SPEEDUP",
        "serial vs pooled ABU estimation throughput (bit-identical by construction)",
        &opts,
    );

    let ring = RingConfig::fddi(opts.stations, ringrt_units::Bandwidth::from_mbps(100.0));
    let analyzer = TtpAnalyzer::with_defaults(ring);
    let estimator = BreakdownEstimator::new(
        MessageSetGenerator::paper_population(opts.stations),
        opts.samples,
    )
    .with_search(SaturationSearch::with_tolerance(if opts.quick {
        3e-3
    } else {
        1e-3
    }));
    // Pairs per width. One estimate is ~1 ms, so even 51 pairs cost
    // ~100 ms per width — and on a shared host the speedup statistic
    // needs enough adjacent pairs for the trimmed ratio-of-sums to
    // shake off CPU-steal bursts that land inside a single run.
    let iters = if opts.quick { 9 } else { 51 };
    let bw = ring.bandwidth();

    // Warm-up (page in code paths, settle allocator) + reference estimate.
    let reference = estimator.estimate(&analyzer, bw, &mut StdRng::seed_from_u64(opts.seed));

    // Identity matrix: widths 1/2/4/8 (plus the host width), each with
    // stealing forced on every round, must reproduce the serial estimate
    // bit for bit even when the host can't run them truly in parallel.
    let max_threads = ringrt_exec::configured_threads();
    let mut identity_widths: Vec<usize> = vec![1, 2, 4, 8];
    if !identity_widths.contains(&max_threads) {
        identity_widths.push(max_threads);
        identity_widths.sort_unstable();
    }
    for &threads in &identity_widths {
        let forced = Pool::new(threads).with_steal_injection(|_, _| true);
        let stolen = estimator.estimate_parallel(&analyzer, bw, opts.seed, &forced);
        assert_eq!(
            reference, stolen,
            "forced-steal ABU diverged from serial at {threads} threads"
        );
    }

    let mut table = Table::new(&[
        "threads",
        "serial_sps",
        "parallel_sps",
        "speedup",
        "bit_identical",
    ]);
    let mut rows_json = Vec::new();
    let mut serial_sps = 0.0f64;
    for threads in thread_ladder(max_threads) {
        let pool = Pool::new(threads);
        let parallel = estimator.estimate_parallel(&analyzer, bw, opts.seed, &pool);
        assert_eq!(
            reference, parallel,
            "parallel ABU diverged from serial at {threads} threads"
        );
        // Interleave serial and parallel timed runs pairwise (order
        // flipping each pair) so frequency ramps and CPU steal on a
        // shared host hit both paths equally. The speedup is the ratio
        // of trimmed pair sums (the same estimator `exp_trace_overhead`
        // uses): the pairs with the most extreme serial-minus-parallel
        // differences — a steal burst inside exactly one run — are
        // dropped symmetrically before summing, which is far tighter
        // than a ratio of independently-noisy bests. The throughput
        // columns still report each side's best run.
        let (row_serial_sps, sps, speedup) = paired_speedup(
            iters,
            opts.samples,
            || estimator.estimate(&analyzer, bw, &mut StdRng::seed_from_u64(opts.seed)),
            || estimator.estimate_parallel(&analyzer, bw, opts.seed, &pool),
        );
        serial_sps = serial_sps.max(row_serial_sps);
        table.push_row(&[
            threads.to_string(),
            cell(row_serial_sps, 2),
            cell(sps, 2),
            cell(speedup, 3),
            "true".into(),
        ]);
        rows_json.push(format!(
            "    {{\"threads\": {threads}, \"parallel_samples_per_sec\": {sps:.3}, \
             \"speedup\": {speedup:.3}, \"bit_identical\": true}}"
        ));
    }
    print!("{}", table.to_csv());

    let identity_json = identity_widths
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join(", ");
    let json = format!(
        "{{\n  \"bench\": \"abu_speedup\",\n  \"protocol\": \"{}\",\n  \"mbps\": 100.0,\n  \
         \"stations\": {},\n  \"samples\": {},\n  \"seed\": {},\n  \"iters_per_point\": {},\n  \
         \"configured_threads\": {},\n  \"identity_widths\": [{}],\n  \
         \"serial_samples_per_sec\": {:.3},\n  \"rows\": [\n{}\n  ]\n}}\n",
        reference.protocol,
        opts.stations,
        opts.samples,
        opts.seed,
        iters,
        max_threads,
        identity_json,
        serial_sps,
        rows_json.join(",\n"),
    );
    if let Err(e) = std::fs::write(OUT_PATH, &json) {
        eprintln!("warning: could not write {OUT_PATH}: {e}");
    } else {
        println!();
        println!("# wrote {OUT_PATH} (configured_threads={max_threads})");
    }
    println!("# every row is asserted bit-identical to the serial estimate; the speedup");
    println!("# is pure scheduling, not numerical shortcuts. On a single-core host the");
    println!("# ladder collapses to threads=1 and the speedup hovers around 1.0.");
    println!("# identity additionally verified with forced stealing at widths {identity_widths:?}");
}

/// Doubling ladder 1, 2, 4, … capped at — and always including — `max`.
fn thread_ladder(max: usize) -> Vec<usize> {
    let mut ladder = Vec::new();
    let mut t = 1;
    while t < max {
        ladder.push(t);
        t *= 2;
    }
    ladder.push(max.max(1));
    ladder
}

/// Times `iters` adjacent (serial, parallel) pairs — order flipping each
/// round so neither side systematically runs on a warmer (or more
/// stolen) CPU — and returns `(best serial sps, best parallel sps,
/// trimmed-pair speedup)`.
///
/// The speedup estimator sorts the pairs by their serial-minus-parallel
/// time difference, discards the most extreme 20 % at each end (a noise
/// burst landing inside exactly one run of a pair produces an outlier
/// difference; trimming removes it symmetrically without bias), and
/// takes the ratio of the kept sums.
fn paired_speedup(
    iters: usize,
    samples: usize,
    mut serial: impl FnMut() -> BreakdownEstimate,
    mut parallel: impl FnMut() -> BreakdownEstimate,
) -> (f64, f64, f64) {
    let mut best_serial = f64::INFINITY;
    let mut best_parallel = f64::INFINITY;
    let mut pairs: Vec<(f64, f64)> = Vec::with_capacity(iters);
    let time = |run: &mut dyn FnMut() -> BreakdownEstimate| {
        let start = Instant::now();
        let est = run();
        let elapsed = start.elapsed().as_secs_f64();
        assert_eq!(est.stats.count(), samples as u64);
        elapsed.max(1e-9)
    };
    for k in 0..iters {
        let (t_serial, t_parallel) = if k % 2 == 0 {
            let a = time(&mut serial);
            let b = time(&mut parallel);
            (a, b)
        } else {
            let b = time(&mut parallel);
            let a = time(&mut serial);
            (a, b)
        };
        best_serial = best_serial.min(t_serial);
        best_parallel = best_parallel.min(t_parallel);
        pairs.push((t_serial, t_parallel));
    }
    pairs.sort_by(|x, y| {
        let dx = x.0 - x.1;
        let dy = y.0 - y.1;
        dx.partial_cmp(&dy).expect("finite run times")
    });
    let cut = pairs.len() / 5;
    let kept = &pairs[cut..pairs.len() - cut];
    let sum_serial: f64 = kept.iter().map(|p| p.0).sum();
    let sum_parallel: f64 = kept.iter().map(|p| p.1).sum();
    (
        samples as f64 / best_serial,
        samples as f64 / best_parallel,
        sum_serial / sum_parallel.max(1e-12),
    )
}
