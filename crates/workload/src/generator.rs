//! Random message-set generation.

use core::fmt;

use rand::Rng;

use ringrt_model::{MessageSet, SyncStream};
use ringrt_units::{Bandwidth, Bits, Seconds};

use crate::{LengthShape, PeriodDistribution};

/// A reproducible generator of random synchronous message sets.
///
/// Periods come from a [`PeriodDistribution`]; lengths follow a
/// [`LengthShape`] and are normalized so the generated set has a known
/// *initial utilization* at the generator's reference bandwidth. The
/// absolute scale only matters as a starting point — the saturation search
/// in `ringrt-breakdown` rescales every set to its schedulability boundary.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use ringrt_units::Bandwidth;
/// use ringrt_workload::MessageSetGenerator;
///
/// let gen = MessageSetGenerator::paper_population(50);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let set = gen.generate(&mut rng);
/// assert_eq!(set.len(), 50);
/// let u = set.utilization(Bandwidth::from_mbps(100.0));
/// assert!((u - 1.0).abs() < 0.01, "initial utilization ≈ 1, got {u}");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MessageSetGenerator {
    stations: usize,
    periods: PeriodDistribution,
    lengths: LengthShape,
    reference_bandwidth: Bandwidth,
    initial_utilization: f64,
}

impl MessageSetGenerator {
    /// Creates a generator for `stations` streams.
    ///
    /// # Panics
    ///
    /// Panics if `stations` is zero or `initial_utilization` is not
    /// strictly positive and finite.
    #[must_use]
    pub fn new(
        stations: usize,
        periods: PeriodDistribution,
        lengths: LengthShape,
        reference_bandwidth: Bandwidth,
        initial_utilization: f64,
    ) -> Self {
        assert!(stations > 0, "need at least one stream");
        assert!(
            initial_utilization.is_finite() && initial_utilization > 0.0,
            "initial utilization must be positive"
        );
        MessageSetGenerator {
            stations,
            periods,
            lengths,
            reference_bandwidth,
            initial_utilization,
        }
    }

    /// The paper's §6 population: `stations` streams, uniform periods with
    /// mean 100 ms and max/min ratio 10, uniform utilization shares,
    /// normalized to utilization 1.0 at 100 Mbps.
    #[must_use]
    pub fn paper_population(stations: usize) -> Self {
        MessageSetGenerator::new(
            stations,
            PeriodDistribution::paper_default(),
            LengthShape::UniformUtilization,
            Bandwidth::from_mbps(100.0),
            1.0,
        )
    }

    /// Number of streams per generated set.
    #[must_use]
    pub fn stations(&self) -> usize {
        self.stations
    }

    /// The period distribution.
    #[must_use]
    pub fn periods(&self) -> &PeriodDistribution {
        &self.periods
    }

    /// The length shape.
    #[must_use]
    pub fn lengths(&self) -> LengthShape {
        self.lengths
    }

    /// Returns a copy with a different period distribution.
    #[must_use]
    pub fn with_periods(mut self, periods: PeriodDistribution) -> Self {
        self.periods = periods;
        self
    }

    /// Returns a copy with a different length shape.
    #[must_use]
    pub fn with_lengths(mut self, lengths: LengthShape) -> Self {
        self.lengths = lengths;
        self
    }

    /// Draws one message set.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> MessageSet {
        let periods: Vec<Seconds> = (0..self.stations)
            .map(|_| self.periods.sample(rng))
            .collect();
        let rel_times: Vec<f64> = periods
            .iter()
            .map(|&p| self.lengths.sample_relative_time(rng, p))
            .collect();
        // Normalize: Σ β·w_i / P_i = initial utilization.
        let raw_util: f64 = rel_times
            .iter()
            .zip(&periods)
            .map(|(&w, &p)| w / p.as_secs_f64())
            .sum();
        let beta = self.initial_utilization / raw_util;
        let bw = self.reference_bandwidth.as_bps();
        let streams = periods
            .into_iter()
            .zip(rel_times)
            .map(|(p, w)| {
                let bits = (beta * w * bw).round().max(1.0);
                SyncStream::new(p, Bits::new(bits as u64))
            })
            .collect();
        MessageSet::new(streams).expect("generator invariants guarantee a valid set")
    }
}

impl fmt::Display for MessageSetGenerator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} streams, periods {}, lengths {}",
            self.stations, self.periods, self.lengths
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generates_requested_population() {
        let gen = MessageSetGenerator::paper_population(100);
        let mut rng = StdRng::seed_from_u64(5);
        let set = gen.generate(&mut rng);
        assert_eq!(set.len(), 100);
        let (min, max) = PeriodDistribution::paper_default().bounds();
        for s in &set {
            assert!(s.period() >= min && s.period() <= max);
            assert!(s.length_bits().as_u64() >= 1);
        }
        let u = set.utilization(Bandwidth::from_mbps(100.0));
        assert!((u - 1.0).abs() < 0.01, "got {u}");
    }

    #[test]
    fn seeded_generation_is_reproducible() {
        let gen = MessageSetGenerator::paper_population(20);
        let a = gen.generate(&mut StdRng::seed_from_u64(99));
        let b = gen.generate(&mut StdRng::seed_from_u64(99));
        assert_eq!(a, b);
        let c = gen.generate(&mut StdRng::seed_from_u64(100));
        assert_ne!(a, c);
    }

    #[test]
    fn builder_modifiers() {
        let gen = MessageSetGenerator::paper_population(10)
            .with_lengths(LengthShape::EqualBits)
            .with_periods(PeriodDistribution::Harmonic {
                base: Seconds::from_millis(10.0),
                octaves: 3,
            });
        assert_eq!(gen.lengths(), LengthShape::EqualBits);
        let mut rng = StdRng::seed_from_u64(4);
        let set = gen.generate(&mut rng);
        // Equal-bits shape → all lengths identical.
        let first = set.as_slice()[0].length_bits();
        assert!(set.iter().all(|s| s.length_bits() == first));
        assert_eq!(gen.stations(), 10);
        assert!(gen.to_string().contains("10 streams"));
        assert!(matches!(gen.periods(), PeriodDistribution::Harmonic { .. }));
    }

    #[test]
    #[should_panic(expected = "at least one stream")]
    fn zero_stations_rejected() {
        let _ = MessageSetGenerator::new(
            0,
            PeriodDistribution::paper_default(),
            LengthShape::default(),
            Bandwidth::from_mbps(100.0),
            1.0,
        );
    }

    #[test]
    #[should_panic(expected = "utilization must be positive")]
    fn bad_utilization_rejected() {
        let _ = MessageSetGenerator::new(
            5,
            PeriodDistribution::paper_default(),
            LengthShape::default(),
            Bandwidth::from_mbps(100.0),
            0.0,
        );
    }
}
