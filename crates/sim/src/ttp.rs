//! Frame-level simulator of the timed token (FDDI) MAC.

use core::fmt;

use rand::rngs::StdRng;
use rand::SeedableRng;

use ringrt_core::ttp::TtpAnalyzer;
use ringrt_des::EventQueue;
use ringrt_model::MessageSet;
use ringrt_units::{Bits, Seconds, SimDuration, SimTime};

use crate::metrics::MetricsCollector;
use crate::trace::TraceRecorder;
use crate::traffic::{AsyncTraffic, SyncTraffic};
use crate::{SimConfig, SimReport, TraceKind};

/// Errors constructing a timed-token simulation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TtpSimError {
    /// The analyzer could not allocate bandwidth to every stream (some
    /// `q_i < 2` at the negotiated TTRT): the protocol cannot guarantee the
    /// set, so there is nothing meaningful to simulate with these
    /// allocations.
    InfeasibleAllocation {
        /// Index of the first stream without a usable allocation.
        stream: usize,
    },
    /// An explicit allocation vector did not match the stream count.
    AllocationCountMismatch {
        /// Number of allocations supplied.
        got: usize,
        /// Number of streams in the set.
        expected: usize,
    },
}

impl fmt::Display for TtpSimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TtpSimError::InfeasibleAllocation { stream } => write!(
                f,
                "stream {stream} has no usable synchronous bandwidth (q < 2 at the negotiated TTRT)"
            ),
            TtpSimError::AllocationCountMismatch { got, expected } => write!(
                f,
                "got {got} synchronous bandwidth allocations for {expected} streams"
            ),
        }
    }
}

impl std::error::Error for TtpSimError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    /// The token arrives at a station (tagged with its generation so that
    /// tokens invalidated by a loss are discarded in flight).
    TokenArrive(usize, u32),
    /// A synchronous stream releases its next message.
    SyncArrival(usize),
    /// An asynchronous frame is queued at a station.
    AsyncArrival(usize),
    /// Fault injection: the free token is lost (if not currently held).
    TokenLoss,
}

/// Frame-level simulator of the FDDI timed token protocol.
///
/// Implements the MAC timer rules the analysis abstracts:
///
/// * per-station token rotation timers (TRT) with late counters:
///   an early token grants asynchronous transmission for exactly the
///   earliness; a late token clears the late count and grants none;
/// * synchronous transmission capped at the station's bandwidth `h_i` per
///   visit (one frame of `h_i − F_ovhd` payload time, as the paper sizes
///   synchronous frames);
/// * asynchronous overrun: a frame begun inside the allowance completes.
///
/// # Examples
///
/// See the [crate-level example](crate).
#[derive(Debug)]
pub struct TtpSimulator {
    config: SimConfig,
    ttrt: SimDuration,
    allocations: Vec<SimDuration>,
    frame_overhead: SimDuration,
    async_frame_time: SimDuration,
    hop_latency: SimDuration,
    token_time: SimDuration,
    sync: Vec<SyncTraffic>,
    asynchronous: Vec<AsyncTraffic>,
    /// TRT restart instant per station.
    trt_started: Vec<SimTime>,
    /// Generation of the live token; arrivals from older generations are
    /// stale (the token was lost while they were in flight).
    token_gen: u32,
    /// The medium is held (visit in progress) until this instant; losses
    /// cannot hit a held token.
    busy_until: SimTime,
    rng: StdRng,
    queue: EventQueue<Event>,
    metrics: MetricsCollector,
    trace: TraceRecorder,
}

impl TtpSimulator {
    /// Builds a simulator using the paper's protocol parameters: TTRT from
    /// the `√(Θ'·P_min)` heuristic and synchronous bandwidths from the
    /// local scheme, exactly as [`TtpAnalyzer::with_defaults`] would
    /// compute them for `config.ring()`.
    ///
    /// # Errors
    ///
    /// Returns [`TtpSimError::InfeasibleAllocation`] if any stream gets no
    /// usable bandwidth (`q_i < 2`).
    pub fn from_analysis(set: &MessageSet, config: SimConfig) -> Result<Self, TtpSimError> {
        let analyzer = TtpAnalyzer::with_defaults(*config.ring());
        let report = analyzer.analyze(set);
        let allocations: Vec<Seconds> = report.per_stream.iter().map(|s| s.allocation).collect();
        Self::with_allocations(set, config, report.ttrt, &allocations)
    }

    /// Builds a simulator with an explicit TTRT and explicit synchronous
    /// bandwidths (one per stream).
    ///
    /// # Errors
    ///
    /// Returns [`TtpSimError::AllocationCountMismatch`] on a length
    /// mismatch and [`TtpSimError::InfeasibleAllocation`] if a stream with
    /// a non-empty message has a zero or overhead-only allocation.
    pub fn with_allocations(
        set: &MessageSet,
        config: SimConfig,
        ttrt: Seconds,
        allocations: &[Seconds],
    ) -> Result<Self, TtpSimError> {
        if allocations.len() != set.len() {
            return Err(TtpSimError::AllocationCountMismatch {
                got: allocations.len(),
                expected: set.len(),
            });
        }
        let bw = config.ring().bandwidth();
        let frame_overhead = bw.transmission_time(Bits::new(112)).to_sim_duration();
        for (i, &h) in allocations.iter().enumerate() {
            if h.to_sim_duration() <= frame_overhead {
                return Err(TtpSimError::InfeasibleAllocation { stream: i });
            }
        }

        let async_payload = config.async_payload_bits();
        let async_frame_time = bw
            .transmission_time(Bits::new(async_payload + 112))
            .to_sim_duration();
        let sync = SyncTraffic::build(set, config.phasing());
        let asynchronous = AsyncTraffic::build(
            config.ring().stations(),
            config.async_load(),
            async_payload,
            bw.as_bps(),
        );
        let stations = config.ring().stations();
        Ok(TtpSimulator {
            ttrt: ttrt.to_sim_duration(),
            allocations: allocations.iter().map(|h| h.to_sim_duration()).collect(),
            frame_overhead,
            async_frame_time,
            hop_latency: config.ring().hop_latency().to_sim_duration(),
            token_time: config.ring().token_time().to_sim_duration(),
            sync,
            asynchronous,
            trt_started: vec![SimTime::ZERO; stations],
            token_gen: 0,
            busy_until: SimTime::ZERO,
            rng: StdRng::seed_from_u64(config.seed()),
            queue: EventQueue::new(),
            metrics: MetricsCollector::new(set.len()),
            trace: TraceRecorder::new(config.trace_capacity()),
            config,
        })
    }

    /// The negotiated TTRT.
    #[must_use]
    pub fn ttrt(&self) -> Seconds {
        self.ttrt.as_seconds()
    }

    /// The per-station synchronous bandwidths.
    #[must_use]
    pub fn allocations(&self) -> Vec<Seconds> {
        self.allocations.iter().map(|h| h.as_seconds()).collect()
    }

    /// Runs the simulation to the configured horizon and reports.
    #[must_use]
    pub fn run(mut self) -> SimReport {
        let end = SimTime::ZERO + self.config.duration();
        // Prime arrivals and the token.
        for (i, s) in self.sync.iter().enumerate() {
            self.queue
                .schedule_at(s.first_arrival(), Event::SyncArrival(i));
        }
        for st in 0..self.asynchronous.len() {
            if self.asynchronous[st].is_active() {
                let gap = self.asynchronous[st]
                    .next_gap(&mut self.rng)
                    .expect("active source");
                self.queue
                    .schedule_at(SimTime::ZERO + gap, Event::AsyncArrival(st));
            }
        }
        self.queue
            .schedule_at(SimTime::ZERO, Event::TokenArrive(0, 0));
        if self.config.token_loss_rate() > 0.0 {
            let gap = self.loss_gap();
            self.queue
                .schedule_at(SimTime::ZERO + gap, Event::TokenLoss);
        }

        while let Some((now, event)) = self.queue.pop_until(end) {
            match event {
                Event::SyncArrival(stream) => {
                    let next = self.sync[stream].arrive(now);
                    self.queue.schedule_at(next, Event::SyncArrival(stream));
                }
                Event::AsyncArrival(st) => {
                    self.asynchronous[st].arrive(now);
                    let gap = self.asynchronous[st]
                        .next_gap(&mut self.rng)
                        .expect("active source");
                    self.queue.schedule_at(now + gap, Event::AsyncArrival(st));
                }
                Event::TokenArrive(st, gen) => {
                    if gen == self.token_gen {
                        self.token_visit(st, now);
                    }
                    // Stale generations die silently: that token is gone.
                }
                Event::TokenLoss => self.token_loss(now),
            }
        }

        self.finish(end)
    }

    /// Handles one token visit at station `st`, then schedules the arrival
    /// at the next station.
    fn token_visit(&mut self, st: usize, now: SimTime) {
        self.trace
            .record(now, TraceKind::TokenArrive { station: st });
        if st == 0 {
            self.metrics.mark_rotation(now);
        }

        // --- TRT/late-count bookkeeping -------------------------------
        let elapsed = now.saturating_duration_since(self.trt_started[st]);
        let async_allowance = if elapsed >= self.ttrt {
            // Token is late: the TRT already expired once and restarted
            // (raising the late count, which this arrival clears). No
            // asynchronous transmission this visit.
            self.trt_started[st] += self.ttrt;
            SimDuration::ZERO
        } else {
            // Early token: asynchronous transmission for the earliness.
            self.trt_started[st] = now;
            self.ttrt - elapsed
        };

        let mut visit_time = SimDuration::ZERO;

        // --- Synchronous window: up to h_i ----------------------------
        if st < self.sync.len() && self.sync[st].has_backlog() {
            let h = self.allocations[st];
            let usable = h.saturating_sub(self.frame_overhead);
            let bw = self.config.ring().bandwidth();
            let budget_bits = bw.bits_in(usable.as_seconds());
            let mut remaining_budget = budget_bits;
            let mut consumed = Bits::ZERO;
            let mut completions = Vec::new();
            while !remaining_budget.is_zero() && self.sync[st].has_backlog() {
                let (taken, done) = self.sync[st].consume(remaining_budget);
                remaining_budget -= taken;
                consumed += taken;
                if let Some(msg) = done {
                    completions.push(msg);
                } else {
                    break; // head not finished: budget exhausted
                }
            }
            if !consumed.is_zero() {
                self.trace.record(
                    now,
                    TraceKind::FrameStart {
                        station: st,
                        synchronous: true,
                        bits: consumed.as_u64(),
                    },
                );
                let tx = bw.transmission_time(consumed).to_sim_duration() + self.frame_overhead;
                visit_time += tx;
                let done_at = now + visit_time;
                for msg in completions {
                    self.trace.record(
                        done_at,
                        TraceKind::MessageComplete {
                            stream: st,
                            late: done_at > msg.deadline,
                        },
                    );
                    self.metrics
                        .message_done(st, msg.arrival, msg.deadline, done_at);
                }
            }
        }

        // --- Asynchronous window: the earliness, with overrun ----------
        let mut allowance = async_allowance;
        while allowance > SimDuration::ZERO && self.asynchronous[st].queued() > 0 {
            let wait = self.asynchronous[st].take_frame(now + visit_time);
            self.trace.record(
                now + visit_time,
                TraceKind::FrameStart {
                    station: st,
                    synchronous: false,
                    bits: self.config.async_payload_bits(),
                },
            );
            self.metrics.async_waits.push(wait);
            self.metrics.async_frames_sent += 1;
            visit_time += self.async_frame_time;
            allowance = allowance.saturating_sub(self.async_frame_time);
        }

        // --- Release ---------------------------------------------------
        if !visit_time.is_zero() {
            self.metrics.busy.set_busy(now);
            self.metrics.busy.set_idle(now + visit_time);
            // Transmitting stations strip the token and emit a fresh one.
            visit_time += self.token_time;
        }
        self.busy_until = now + visit_time;
        let next = (st + 1) % self.config.ring().stations();
        self.queue.schedule_at(
            now + visit_time + self.hop_latency,
            Event::TokenArrive(next, self.token_gen),
        );
    }

    /// Draws the next exponential token-loss gap.
    fn loss_gap(&mut self) -> SimDuration {
        use rand::Rng as _;
        let rate = self.config.token_loss_rate();
        let u: f64 = 1.0 - self.rng.gen::<f64>();
        SimDuration::from_seconds(Seconds::new((-u.ln() / rate).max(1e-12)))
    }

    /// Handles a token-loss event: if the token is free (not held by a
    /// transmitting station), it vanishes and the ring runs its recovery
    /// (claim) process before a fresh token appears at station 0 with all
    /// rotation timers reset.
    fn token_loss(&mut self, now: SimTime) {
        let gap = self.loss_gap();
        self.queue.schedule_at(now + gap, Event::TokenLoss);
        if now < self.busy_until {
            return; // token currently held: cannot be lost on the wire
        }
        self.token_gen = self.token_gen.wrapping_add(1);
        self.metrics.token_losses += 1;
        self.trace.record(now, TraceKind::TokenLost);
        let recovery_at = now + self.config.token_recovery().to_sim_duration();
        self.trace.record(recovery_at, TraceKind::TokenRecovered);
        for t in &mut self.trt_started {
            *t = recovery_at;
        }
        self.queue
            .schedule_at(recovery_at, Event::TokenArrive(0, self.token_gen));
    }

    fn finish(mut self, end: SimTime) -> SimReport {
        #[allow(unused_assignments)]
        let mut trace_dropped = 0u64;
        for (i, s) in self.sync.iter().enumerate() {
            // Unfinished messages whose deadline has passed are misses.
            let mut late = 0;
            let mut cursor = s.clone();
            while let Some(head) = cursor.head() {
                if head.deadline < end {
                    late += 1;
                }
                let _ = cursor.consume(Bits::new(u64::MAX >> 1));
            }
            self.metrics.account_unfinished(i, late);
        }
        SimReport {
            protocol: "FDDI",
            simulated: end.duration_since(SimTime::ZERO),
            per_stream: self.metrics.per_stream,
            rotations: self.metrics.rotations,
            async_frames_sent: self.metrics.async_frames_sent,
            async_waits: self.metrics.async_waits,
            token_losses: self.metrics.token_losses,
            medium_utilization: self.metrics.busy.utilization(end),
            events: self.queue.events_processed(),
            trace: {
                let (events, dropped) = self.trace.into_events();
                trace_dropped = dropped;
                events
            },
            trace_dropped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringrt_model::{RingConfig, SyncStream};
    use ringrt_units::Bandwidth;

    fn ring() -> RingConfig {
        RingConfig::fddi(4, Bandwidth::from_mbps(100.0))
    }

    fn light_set() -> MessageSet {
        MessageSet::new(vec![
            SyncStream::new(Seconds::from_millis(20.0), Bits::new(50_000)),
            SyncStream::new(Seconds::from_millis(40.0), Bits::new(100_000)),
            SyncStream::new(Seconds::from_millis(80.0), Bits::new(100_000)),
            SyncStream::new(Seconds::from_millis(160.0), Bits::new(200_000)),
        ])
        .unwrap()
    }

    #[test]
    fn schedulable_set_meets_all_deadlines() {
        let config = SimConfig::new(ring(), Seconds::new(1.0));
        let report = TtpSimulator::from_analysis(&light_set(), config)
            .unwrap()
            .run();
        assert_eq!(report.deadline_misses(), 0, "{report}");
        // 1 s with a 20 ms fastest stream: ≥ 40 completions there alone.
        assert!(report.completed() >= 80, "{report}");
    }

    #[test]
    fn rotation_never_exceeds_twice_ttrt() {
        let config = SimConfig::new(ring(), Seconds::new(1.0)).with_async_load(0.4);
        let sim = TtpSimulator::from_analysis(&light_set(), config).unwrap();
        let ttrt = sim.ttrt();
        let report = sim.run();
        let max_rot = report.max_rotation().expect("token rotated");
        // Sevcik–Johnson: inter-visit time ≤ 2·TTRT (tiny slop for the
        // final asynchronous overrun frame).
        let bound = 2.0 * ttrt.as_secs_f64() + 1e-4;
        assert!(
            max_rot.as_seconds().as_secs_f64() <= bound,
            "max rotation {} vs 2·TTRT {}",
            max_rot,
            2.0 * ttrt.as_secs_f64()
        );
    }

    #[test]
    fn async_traffic_flows_only_in_slack() {
        let quiet = SimConfig::new(ring(), Seconds::new(0.5));
        let busy = quiet.with_async_load(0.3);
        let r_quiet = TtpSimulator::from_analysis(&light_set(), quiet)
            .unwrap()
            .run();
        let r_busy = TtpSimulator::from_analysis(&light_set(), busy)
            .unwrap()
            .run();
        assert_eq!(r_quiet.async_frames_sent, 0);
        assert!(
            r_busy.async_frames_sent > 100,
            "{}",
            r_busy.async_frames_sent
        );
        // Async load must not cause sync misses for a schedulable set.
        assert_eq!(r_busy.deadline_misses(), 0, "{r_busy}");
        // Utilization rises with background traffic.
        assert!(r_busy.medium_utilization > r_quiet.medium_utilization);
    }

    #[test]
    fn overload_misses_deadlines() {
        // ≈ 250 % utilization: impossible.
        let heavy = MessageSet::new(vec![
            SyncStream::new(Seconds::from_millis(20.0), Bits::new(2_500_000)),
            SyncStream::new(Seconds::from_millis(40.0), Bits::new(5_000_000)),
        ])
        .unwrap();
        let ring = RingConfig::fddi(2, Bandwidth::from_mbps(100.0));
        let config = SimConfig::new(ring, Seconds::new(0.5));
        // from_analysis refuses (allocation infeasible), so drive it with
        // explicit allocations matching a plausible-but-doomed setup.
        let ttrt = Seconds::from_millis(5.0);
        let h = vec![Seconds::from_millis(2.0), Seconds::from_millis(2.0)];
        let report = TtpSimulator::with_allocations(&heavy, config, ttrt, &h)
            .unwrap()
            .run();
        assert!(report.deadline_misses() > 0, "{report}");
    }

    #[test]
    fn allocation_validation() {
        let set = light_set();
        let config = SimConfig::new(ring(), Seconds::new(0.1));
        assert!(matches!(
            TtpSimulator::with_allocations(&set, config, Seconds::from_millis(5.0), &[]),
            Err(TtpSimError::AllocationCountMismatch {
                got: 0,
                expected: 4
            })
        ));
        let zero = vec![Seconds::ZERO; 4];
        assert!(matches!(
            TtpSimulator::with_allocations(&set, config, Seconds::from_millis(5.0), &zero),
            Err(TtpSimError::InfeasibleAllocation { stream: 0 })
        ));
        let e = TtpSimError::InfeasibleAllocation { stream: 2 };
        assert!(e.to_string().contains("stream 2"));
    }

    #[test]
    fn staggered_phasing_also_meets_deadlines() {
        let config =
            SimConfig::new(ring(), Seconds::new(0.5)).with_phasing(crate::Phasing::Staggered);
        let report = TtpSimulator::from_analysis(&light_set(), config)
            .unwrap()
            .run();
        assert_eq!(report.deadline_misses(), 0, "{report}");
    }

    #[test]
    fn token_loss_counted_and_recovered() {
        let config = SimConfig::new(ring(), Seconds::new(1.0))
            .with_token_loss(20.0, Seconds::from_millis(2.0));
        let report = TtpSimulator::from_analysis(&light_set(), config)
            .unwrap()
            .run();
        assert!(report.token_losses > 5, "losses: {}", report.token_losses);
        // The ring keeps delivering after every recovery.
        assert!(report.completed() > 50, "{report}");
    }

    #[test]
    fn brutal_token_loss_causes_misses() {
        // Loss every ~10 ms with 15 ms recovery: the ring is down most of
        // the time; the 20 ms stream cannot survive.
        let config = SimConfig::new(ring(), Seconds::new(1.0))
            .with_token_loss(100.0, Seconds::from_millis(15.0));
        let report = TtpSimulator::from_analysis(&light_set(), config)
            .unwrap()
            .run();
        assert!(report.deadline_misses() > 0, "{report}");
    }

    #[test]
    fn zero_loss_rate_is_identical_to_no_injection() {
        let base = SimConfig::new(ring(), Seconds::new(0.5)).with_async_load(0.2);
        let with_zero = base.with_token_loss(0.0, Seconds::from_millis(1.0));
        let a = TtpSimulator::from_analysis(&light_set(), base)
            .unwrap()
            .run();
        let b = TtpSimulator::from_analysis(&light_set(), with_zero)
            .unwrap()
            .run();
        assert_eq!(a.completed(), b.completed());
        assert_eq!(b.token_losses, 0);
    }

    #[test]
    fn trace_captures_protocol_events() {
        use crate::TraceKind;
        let config = SimConfig::new(ring(), Seconds::new(0.05))
            .with_async_load(0.2)
            .with_trace(200_000);
        let report = TtpSimulator::from_analysis(&light_set(), config)
            .unwrap()
            .run();
        assert_eq!(report.trace_dropped, 0, "raise capacity: trace truncated");
        assert!(!report.trace.is_empty());
        // Timestamps are nondecreasing.
        assert!(report.trace.windows(2).all(|w| w[0].at <= w[1].at));
        let arrivals = report
            .trace
            .iter()
            .filter(|e| matches!(e.kind, TraceKind::TokenArrive { .. }))
            .count();
        let frames = report
            .trace
            .iter()
            .filter(|e| matches!(e.kind, TraceKind::FrameStart { .. }))
            .count();
        let completes = report
            .trace
            .iter()
            .filter(|e| matches!(e.kind, TraceKind::MessageComplete { late: false, .. }))
            .count();
        assert!(arrivals > frames, "token visits outnumber transmissions");
        assert_eq!(completes as u64, report.completed());
        // A tiny capacity truncates and counts the overflow.
        let tiny = SimConfig::new(ring(), Seconds::new(0.05)).with_trace(5);
        let r = TtpSimulator::from_analysis(&light_set(), tiny)
            .unwrap()
            .run();
        assert_eq!(r.trace.len(), 5);
        assert!(r.trace_dropped > 0);
        // Tracing off by default.
        let off = SimConfig::new(ring(), Seconds::new(0.05));
        let r = TtpSimulator::from_analysis(&light_set(), off)
            .unwrap()
            .run();
        assert!(r.trace.is_empty());
        assert_eq!(r.trace_dropped, 0);
        // Timeline rendering mentions stations.
        let text = crate::render_timeline(&report.trace[..20.min(report.trace.len())]);
        assert!(text.contains("station"));
    }

    #[test]
    fn deterministic_runs() {
        let config = SimConfig::new(ring(), Seconds::new(0.3))
            .with_async_load(0.2)
            .with_seed(5);
        let a = TtpSimulator::from_analysis(&light_set(), config)
            .unwrap()
            .run();
        let b = TtpSimulator::from_analysis(&light_set(), config)
            .unwrap()
            .run();
        assert_eq!(a.completed(), b.completed());
        assert_eq!(a.async_frames_sent, b.async_frames_sent);
        assert_eq!(a.events, b.events);
    }
}
