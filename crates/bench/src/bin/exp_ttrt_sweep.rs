//! CLAIM-TTRT — the paper's §5.2 TTRT-selection analysis: breakdown
//! utilization is sensitive to TTRT and is maximized near `√(Θ'·P_min)`,
//! far below the naive `P_min/2` ceiling from Johnson's bound.
//!
//! Sweeps fixed TTRT values at several bandwidths, prints the empirical
//! optimum per bandwidth next to the heuristic's prediction.

use ringrt_bench::{banner, ExpOptions};
use ringrt_breakdown::sweep::{suggested_ttrt_grid, ttrt_sweep};
use ringrt_breakdown::table::{cell, Table};
use ringrt_core::ttp::TtpAnalyzer;
use ringrt_model::RingConfig;
use ringrt_units::{Bandwidth, Seconds};
use ringrt_workload::PeriodDistribution;

fn main() {
    let opts = ExpOptions::from_env();
    banner(
        "CLAIM-TTRT",
        "FDDI breakdown utilization vs TTRT (√(Θ'·P_min) heuristic)",
        &opts,
    );

    let cfg = opts.sweep_config();
    let (p_min, _) = PeriodDistribution::paper_default().bounds();
    let points = if opts.quick { 8 } else { 14 };

    let mut table = Table::new(&["bandwidth_mbps", "ttrt_ms", "abu", "ci95"]);
    let mut summary = Vec::new();
    for mbps in [10.0, 100.0, 1000.0] {
        let bw = Bandwidth::from_mbps(mbps);
        let ring = RingConfig::fddi(opts.stations, bw);
        let analyzer = TtpAnalyzer::with_defaults(ring);
        let theta_prime = analyzer.theta_prime();
        // Sweep from just above the overhead floor to Johnson's ceiling.
        let lo = Seconds::new(theta_prime.as_secs_f64() * 1.5).max(Seconds::from_micros(50.0));
        let hi = p_min / 2.0;
        let grid = suggested_ttrt_grid(lo, hi, points);
        let rows = ttrt_sweep(mbps, &grid, &cfg);
        let best = rows
            .iter()
            .max_by(|a, b| a.estimate.mean.total_cmp(&b.estimate.mean))
            .expect("non-empty grid");
        let heuristic = Seconds::new(theta_prime.as_secs_f64() * p_min.as_secs_f64()).sqrt_value();
        for r in &rows {
            table.push_row(&[
                cell(mbps, 1),
                cell(r.ttrt.as_millis(), 4),
                cell(r.estimate.mean, 4),
                cell(r.estimate.ci95, 4),
            ]);
        }
        summary.push(format!(
            "# {mbps} Mbps: empirical best TTRT = {:.3} ms (ABU {:.3}); √(Θ'·P_min) = {:.3} ms; P_min/2 = {:.3} ms",
            best.ttrt.as_millis(),
            best.estimate.mean,
            heuristic.as_millis(),
            (p_min / 2.0).as_millis(),
        ));
    }
    print!("{}", table.to_csv());
    println!();
    for line in summary {
        println!("{line}");
    }
    println!("# paper: the best TTRT is well below P_min/2 and tracks √(Θ'·P_min)");
}
