//! CLAIM-RM88 — the Lehoczky–Sha–Ding anchor the paper cites in §2: the
//! average breakdown utilization of the ideal (zero-overhead) rate
//! monotonic algorithm is ≈ 88 %.
//!
//! Reproduced with the LSD population (costs drawn uniformly, wide period
//! range) and, for contrast, with the paper's §6 ring population.

use rand::rngs::StdRng;
use rand::SeedableRng;

use ringrt_bench::{banner, ExpOptions};
use ringrt_breakdown::sweep::ideal_rm_abu;
use ringrt_breakdown::table::{cell, Table};
use ringrt_breakdown::{BreakdownEstimator, SaturationSearch};
use ringrt_core::rm::{liu_layland_bound, IdealRmAnalyzer};
use ringrt_units::Bandwidth;
use ringrt_workload::MessageSetGenerator;

fn main() {
    let opts = ExpOptions::from_env();
    banner(
        "CLAIM-RM88",
        "ideal rate-monotonic average breakdown utilization",
        &opts,
    );

    let cfg = opts.sweep_config();
    let lsd = ideal_rm_abu(&cfg);

    // Contrast: the same analyzer over the paper's ring population
    // (uniform utilization shares, period ratio 10).
    let bw = Bandwidth::from_mbps(100.0);
    let ring_pop = BreakdownEstimator::new(
        MessageSetGenerator::paper_population(opts.stations),
        opts.samples,
    )
    .with_search(SaturationSearch::with_tolerance(cfg.tolerance))
    .estimate(
        &IdealRmAnalyzer::new(bw),
        bw,
        &mut StdRng::seed_from_u64(opts.seed),
    );

    let mut table = Table::new(&["population", "abu", "ci95", "min_sample", "max_sample"]);
    table.push_row(&[
        "lsd_uniform_costs_ratio100".into(),
        cell(lsd.mean, 4),
        cell(lsd.ci95, 4),
        cell(lsd.stats.min(), 4),
        cell(lsd.stats.max(), 4),
    ]);
    table.push_row(&[
        "paper_ring_population_ratio10".into(),
        cell(ring_pop.mean, 4),
        cell(ring_pop.ci95, 4),
        cell(ring_pop.stats.min(), 4),
        cell(ring_pop.stats.max(), 4),
    ]);
    print!("{}", table.to_csv());
    println!();
    println!(
        "# paper/LSD reference: ≈ 0.88; Liu–Layland worst-case bound for n = {}: {:.4}",
        opts.stations,
        liu_layland_bound(opts.stations)
    );
    println!(
        "# every sampled breakdown utilization must exceed the Liu–Layland bound: min = {:.4}",
        lsd.stats.min()
    );
}
