//! Prometheus text exposition (version 0.0.4) rendering and parsing.
//!
//! [`PromWriter`] renders counters, gauges, and
//! [`DurationHistogram`]-backed latency histograms. Histogram `le` edges
//! are the histogram's own power-of-two picosecond bucket upper bounds
//! (see [`DurationHistogram::bucket_upper_bound_picos`]) converted to
//! seconds, so a quantile read off the exposition agrees bit-for-bit with
//! `DurationHistogram::quantile`. `_sum` is intentionally omitted: the
//! log₂ histogram keeps bucket counts only, and fabricating a sum from
//! bucket edges would misstate it.
//!
//! [`parse_exposition`] is the matching reader used by the test suite to
//! prove the output is machine-readable without external dependencies.

use std::collections::BTreeSet;
use std::fmt::Write as _;

use ringrt_des::stats::DurationHistogram;

/// Accumulates one exposition document.
///
/// # Examples
///
/// ```
/// use ringrt_obs::prom::PromWriter;
///
/// let mut w = PromWriter::new();
/// w.counter("ringrt_requests_total", "Requests accepted.", &[], 42.0);
/// w.gauge("ringrt_queue_len", "Jobs queued.", &[("addr", "a")], 3.0);
/// let text = w.finish();
/// assert!(text.contains("ringrt_requests_total 42"));
/// assert!(text.contains("ringrt_queue_len{addr=\"a\"} 3"));
/// ```
#[derive(Debug, Default)]
pub struct PromWriter {
    out: String,
    declared: BTreeSet<String>,
}

impl PromWriter {
    /// Creates an empty writer.
    #[must_use]
    pub fn new() -> Self {
        PromWriter::default()
    }

    /// Emits one counter sample.
    pub fn counter(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: f64) {
        self.header(name, help, "counter");
        self.sample(name, "", labels, value);
    }

    /// Emits one gauge sample.
    pub fn gauge(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: f64) {
        self.header(name, help, "gauge");
        self.sample(name, "", labels, value);
    }

    /// Emits a full histogram series (`_bucket` lines with cumulative
    /// counts, a `+Inf` bucket, and `_count`) for `hist`.
    ///
    /// Only the populated bucket range is emitted, bounding the output at
    /// a few lines per histogram instead of 64.
    pub fn histogram(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        hist: &DurationHistogram,
    ) {
        self.header(name, help, "histogram");
        let counts = hist.bucket_counts();
        let first = counts.iter().position(|&c| c > 0);
        let last = counts.iter().rposition(|&c| c > 0);
        let mut cumulative = 0u64;
        if let (Some(first), Some(last)) = (first, last) {
            for (k, &c) in counts.iter().enumerate().take(last + 1).skip(first) {
                cumulative += c;
                let le = DurationHistogram::bucket_upper_bound_picos(k) as f64 * 1e-12;
                self.bucket(name, labels, &format!("{le:e}"), cumulative);
            }
        }
        self.bucket(name, labels, "+Inf", hist.count());
        self.sample(name, "_count", labels, hist.count() as f64);
    }

    /// Finishes the document.
    #[must_use]
    pub fn finish(self) -> String {
        self.out
    }

    fn header(&mut self, name: &str, help: &str, kind: &str) {
        debug_assert!(valid_metric_name(name), "bad metric name `{name}`");
        if self.declared.insert(name.to_owned()) {
            let help = help.replace('\\', "\\\\").replace('\n', "\\n");
            let _ = writeln!(self.out, "# HELP {name} {help}");
            let _ = writeln!(self.out, "# TYPE {name} {kind}");
        }
    }

    fn bucket(&mut self, name: &str, labels: &[(&str, &str)], le: &str, count: u64) {
        let mut with_le: Vec<(&str, &str)> = labels.to_vec();
        with_le.push(("le", le));
        self.sample(name, "_bucket", &with_le, count as f64);
    }

    fn sample(&mut self, name: &str, suffix: &str, labels: &[(&str, &str)], value: f64) {
        self.out.push_str(name);
        self.out.push_str(suffix);
        if !labels.is_empty() {
            self.out.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                debug_assert!(valid_label_name(k), "bad label name `{k}`");
                if i > 0 {
                    self.out.push(',');
                }
                let escaped = v
                    .replace('\\', "\\\\")
                    .replace('"', "\\\"")
                    .replace('\n', "\\n");
                let _ = write!(self.out, "{k}=\"{escaped}\"");
            }
            self.out.push('}');
        }
        let _ = writeln!(self.out, " {}", fmt_value(value));
    }
}

/// Formats a sample value: integral values print without a fraction, and
/// non-finite values use the exposition spellings `+Inf`/`-Inf`/`NaN`.
fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_owned()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_owned()
    } else if v.fract() == 0.0 && v.abs() < 9_007_199_254_740_992.0 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// One parsed sample line.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Full metric name as written (including `_bucket`/`_count` suffixes).
    pub name: String,
    /// Label pairs in source order.
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

impl Sample {
    /// The value of label `key`, if present.
    #[must_use]
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Parses a text exposition document into its sample lines, validating
/// comment syntax, metric/label names, label-value quoting, and values.
///
/// # Errors
///
/// Returns `line number: problem` for the first malformed line.
pub fn parse_exposition(text: &str) -> Result<Vec<Sample>, String> {
    let mut samples = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let n = idx + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let rest = comment.trim_start();
            if rest.starts_with("HELP ") || rest.starts_with("TYPE ") {
                let mut words = rest.split_whitespace();
                let kind = words.next().expect("checked prefix");
                let name = words
                    .next()
                    .ok_or_else(|| format!("{n}: `# {kind}` without a metric name"))?;
                if !valid_metric_name(name) {
                    return Err(format!("{n}: invalid metric name `{name}`"));
                }
                if kind == "TYPE" {
                    let t = words.next().unwrap_or("");
                    if !matches!(t, "counter" | "gauge" | "histogram" | "summary" | "untyped") {
                        return Err(format!("{n}: invalid TYPE `{t}`"));
                    }
                }
            }
            continue;
        }
        samples.push(parse_sample(line).map_err(|e| format!("{n}: {e}"))?);
    }
    Ok(samples)
}

fn parse_sample(line: &str) -> Result<Sample, String> {
    let name_end = line
        .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_' || c == ':'))
        .unwrap_or(line.len());
    let name = &line[..name_end];
    if !valid_metric_name(name) {
        return Err(format!("invalid metric name in `{line}`"));
    }
    let mut rest = &line[name_end..];
    let mut labels = Vec::new();
    if let Some(inner) = rest.strip_prefix('{') {
        let close = find_label_close(inner).ok_or("unterminated label set")?;
        parse_labels(&inner[..close], &mut labels)?;
        rest = &inner[close + 1..];
    }
    let value_text = rest.trim();
    let value_text = value_text
        .split_whitespace()
        .next()
        .ok_or("missing sample value")?;
    let value = match value_text {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        "NaN" => f64::NAN,
        other => other
            .parse::<f64>()
            .map_err(|_| format!("bad value `{other}`"))?,
    };
    Ok(Sample {
        name: name.to_owned(),
        labels,
        value,
    })
}

/// Finds the `}` closing a label set, skipping quoted values.
fn find_label_close(s: &str) -> Option<usize> {
    let bytes = s.as_bytes();
    let mut in_quotes = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' if in_quotes => i += 1,
            b'"' => in_quotes = !in_quotes,
            b'}' if !in_quotes => return Some(i),
            _ => {}
        }
        i += 1;
    }
    None
}

fn parse_labels(s: &str, out: &mut Vec<(String, String)>) -> Result<(), String> {
    let mut rest = s;
    while !rest.is_empty() {
        let eq = rest.find('=').ok_or("label without `=`")?;
        let key = rest[..eq].trim();
        if !valid_label_name(key) {
            return Err(format!("invalid label name `{key}`"));
        }
        let after = rest[eq + 1..]
            .strip_prefix('"')
            .ok_or("label value not quoted")?;
        let (value, consumed) = unescape_label_value(after)?;
        out.push((key.to_owned(), value));
        rest = after[consumed..].trim_start();
        if let Some(r) = rest.strip_prefix(',') {
            rest = r.trim_start();
        } else if !rest.is_empty() {
            return Err(format!("junk after label value: `{rest}`"));
        }
    }
    Ok(())
}

/// Reads a quoted label value body up to its closing quote, resolving the
/// exposition escapes (`\\`, `\"`, `\n`). Returns the value and the byte
/// count consumed including the closing quote.
fn unescape_label_value(s: &str) -> Result<(String, usize), String> {
    let mut value = String::new();
    let mut chars = s.char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Ok((value, i + 1)),
            '\\' => match chars.next() {
                Some((_, '\\')) => value.push('\\'),
                Some((_, '"')) => value.push('"'),
                Some((_, 'n')) => value.push('\n'),
                other => return Err(format!("bad escape {other:?}")),
            },
            c => value.push(c),
        }
    }
    Err("unterminated label value".to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringrt_units::SimDuration;

    #[test]
    fn writer_output_parses_back() {
        let mut w = PromWriter::new();
        w.counter("ringrt_requests_total", "Total requests.", &[], 10.0);
        w.gauge(
            "ringrt_workers",
            "Worker threads.",
            &[("kind", "an\"no\\y\nance")],
            4.0,
        );
        let text = w.finish();
        let samples = parse_exposition(&text).unwrap();
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[0].name, "ringrt_requests_total");
        assert_eq!(samples[0].value, 10.0);
        assert_eq!(samples[1].label("kind"), Some("an\"no\\y\nance"));
    }

    #[test]
    fn help_and_type_emitted_once_per_name() {
        let mut w = PromWriter::new();
        for cmd in ["check", "abu"] {
            w.counter("ringrt_x_total", "X.", &[("cmd", cmd)], 1.0);
        }
        let text = w.finish();
        assert_eq!(text.matches("# HELP ringrt_x_total").count(), 1);
        assert_eq!(text.matches("# TYPE ringrt_x_total counter").count(), 1);
        assert_eq!(parse_exposition(&text).unwrap().len(), 2);
    }

    #[test]
    fn histogram_buckets_are_cumulative_with_matching_edges() {
        let mut h = DurationHistogram::new();
        for us in [1u64, 1, 2, 1000] {
            h.push(SimDuration::from_micros(us));
        }
        let mut w = PromWriter::new();
        w.histogram("ringrt_lat_seconds", "Latency.", &[("cmd", "check")], &h);
        let text = w.finish();
        let samples = parse_exposition(&text).unwrap();

        let buckets: Vec<&Sample> = samples
            .iter()
            .filter(|s| s.name == "ringrt_lat_seconds_bucket")
            .collect();
        assert!(buckets.len() >= 2, "{text}");
        // Cumulative and monotone, ending at the +Inf bucket == count.
        let mut prev = 0.0;
        for b in &buckets {
            assert!(b.value >= prev, "{text}");
            prev = b.value;
        }
        assert_eq!(buckets.last().unwrap().label("le"), Some("+Inf"));
        assert_eq!(buckets.last().unwrap().value, 4.0);
        // Every finite le edge is one of the histogram's own bucket edges.
        for b in &buckets[..buckets.len() - 1] {
            let le: f64 = b.label("le").unwrap().parse().unwrap();
            let matches_edge = (0..64).any(|k| {
                (DurationHistogram::bucket_upper_bound_picos(k) as f64 * 1e-12 - le).abs() == 0.0
            });
            assert!(matches_edge, "le={le} is not a histogram edge\n{text}");
        }
        let count = samples
            .iter()
            .find(|s| s.name == "ringrt_lat_seconds_count")
            .unwrap();
        assert_eq!(count.value, 4.0);
    }

    #[test]
    fn empty_histogram_renders_inf_bucket_only() {
        let mut w = PromWriter::new();
        w.histogram(
            "ringrt_lat_seconds",
            "Latency.",
            &[],
            &DurationHistogram::new(),
        );
        let samples = parse_exposition(&w.finish()).unwrap();
        assert_eq!(samples.len(), 2, "{samples:?}");
        assert_eq!(samples[0].label("le"), Some("+Inf"));
        assert_eq!(samples[0].value, 0.0);
        assert_eq!(samples[1].name, "ringrt_lat_seconds_count");
    }

    #[test]
    fn special_values_roundtrip() {
        let mut w = PromWriter::new();
        w.gauge("g_inf", "Inf.", &[], f64::INFINITY);
        w.gauge("g_nan", "NaN.", &[], f64::NAN);
        w.gauge("g_frac", "Fraction.", &[], 0.125);
        let samples = parse_exposition(&w.finish()).unwrap();
        assert_eq!(samples[0].value, f64::INFINITY);
        assert!(samples[1].value.is_nan());
        assert_eq!(samples[2].value, 0.125);
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(parse_exposition("1bad_name 3").is_err());
        assert!(parse_exposition("m{le=\"unterminated} 3").is_err());
        assert!(parse_exposition("m{x=unquoted} 3").is_err());
        assert!(parse_exposition("m{x=\"v\"}").is_err());
        assert!(parse_exposition("m notanumber").is_err());
        assert!(parse_exposition("# TYPE m sideways").is_err());
    }
}
