//! Schedulability criteria for two token ring protocols.
//!
//! This crate is the primary contribution of the reproduction of
//! *"Real-Time Schedulability of Two Token Ring Protocols"* (Kamat & Zhao,
//! ICDCS 1993). It answers, for a given ring and synchronous message set,
//! the question **"can every message always meet its deadline?"** under:
//!
//! * the **priority-driven protocol** ([`pdp`]) — IEEE 802.5 style priority
//!   arbitration implementing the rate-monotonic policy, in both the
//!   standard and a modified (token-holding) variant, via the paper's
//!   Theorem 4.1 (a Lehoczky–Sha–Ding exact test with blocking and
//!   overhead-augmented message lengths);
//! * the **timed token protocol** ([`ttp`]) — FDDI style timed token with
//!   the local synchronous-bandwidth allocation scheme, via the paper's
//!   Theorem 5.1, plus the `√(Θ'·P_min)` TTRT selection heuristic and a
//!   family of alternative allocation schemes.
//!
//! Shared rate-monotonic machinery (Liu–Layland bound, scheduling-point
//! exact characterization, response-time analysis) lives in [`rm`];
//! service bounds for best-effort asynchronous traffic live in [`asynch`].
//!
//! The [`SchedulabilityTest`] trait gives the two protocols a common
//! interface so the Monte-Carlo breakdown-utilization machinery (crate
//! `ringrt-breakdown`) can drive either one.
//!
//! # Examples
//!
//! ```
//! use ringrt_core::pdp::{PdpAnalyzer, PdpVariant};
//! use ringrt_core::ttp::TtpAnalyzer;
//! use ringrt_core::SchedulabilityTest;
//! use ringrt_model::{FrameFormat, MessageSet, RingConfig, SyncStream};
//! use ringrt_units::{Bandwidth, Bits, Seconds};
//!
//! let set = MessageSet::new(vec![
//!     SyncStream::new(Seconds::from_millis(20.0), Bits::new(10_000)),
//!     SyncStream::new(Seconds::from_millis(50.0), Bits::new(40_000)),
//! ])?;
//!
//! let ring = RingConfig::ieee_802_5(2, Bandwidth::from_mbps(4.0));
//! let pdp = PdpAnalyzer::new(ring, FrameFormat::paper_default(), PdpVariant::Standard);
//! assert!(pdp.is_schedulable(&set));
//!
//! let ring = RingConfig::fddi(2, Bandwidth::from_mbps(100.0));
//! let ttp = TtpAnalyzer::with_defaults(ring);
//! assert!(ttp.is_schedulable(&set));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asynch;
pub mod pdp;
pub mod rm;
pub mod ttp;

mod protocol;

pub use protocol::{Protocol, SchedulabilityTest};
pub use ringrt_model::SetView;
