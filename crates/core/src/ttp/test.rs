//! The Theorem 5.1 schedulability test for the timed token protocol.

use core::fmt;

use ringrt_model::{MessageSet, RingConfig, SetView, StreamId, SyncStream};
use ringrt_units::{Bits, Seconds};

use crate::SchedulabilityTest;

use super::{visit_count, worst_case_available_time, SbaScheme, TtrtPolicy};

/// Schedulability analyzer for the timed token protocol (paper §5).
///
/// The analyzer selects a TTRT via its [`TtrtPolicy`], allocates
/// synchronous bandwidths via its [`SbaScheme`], and checks the protocol
/// constraint `Σ h_i ≤ TTRT − Θ'` together with the per-stream deadline
/// constraint `X_i ≥ C'_i`. For the local scheme this is exactly the
/// paper's Theorem 5.1.
///
/// # Examples
///
/// ```
/// use ringrt_core::ttp::TtpAnalyzer;
/// use ringrt_core::SchedulabilityTest;
/// use ringrt_model::{MessageSet, RingConfig, SyncStream};
/// use ringrt_units::{Bandwidth, Bits, Seconds};
///
/// let ring = RingConfig::fddi(2, Bandwidth::from_mbps(100.0));
/// let ttp = TtpAnalyzer::with_defaults(ring);
/// let set = MessageSet::new(vec![
///     SyncStream::new(Seconds::from_millis(20.0), Bits::new(200_000)),
///     SyncStream::new(Seconds::from_millis(50.0), Bits::new(500_000)),
/// ])?;
/// let report = ttp.analyze(&set);
/// assert!(report.schedulable);
/// assert!(report.ttrt < Seconds::from_millis(10.0)); // ≤ P_min/2
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TtpAnalyzer {
    ring: RingConfig,
    ttrt_policy: TtrtPolicy,
    scheme: SbaScheme,
    /// Per-frame overhead bits on synchronous frames (`F_ovhd^b`).
    frame_overhead: Bits,
    /// Total length (payload + overhead) of one asynchronous frame, bits.
    async_frame: Bits,
}

/// Paper default: 64-byte asynchronous payload plus 112 overhead bits.
const DEFAULT_ASYNC_FRAME: Bits = Bits::new(512 + 112);
/// Paper default synchronous frame overhead (`F_ovhd^b = 112`).
const DEFAULT_FRAME_OVERHEAD: Bits = Bits::new(112);

impl TtpAnalyzer {
    /// Creates an analyzer with full control over the policy knobs.
    #[must_use]
    pub fn new(
        ring: RingConfig,
        ttrt_policy: TtrtPolicy,
        scheme: SbaScheme,
        frame_overhead: Bits,
        async_frame: Bits,
    ) -> Self {
        TtpAnalyzer {
            ring,
            ttrt_policy,
            scheme,
            frame_overhead,
            async_frame,
        }
    }

    /// The paper's evaluation configuration: `√(Θ'·P_min)` TTRT selection,
    /// local allocation, 112-bit frame overhead, 64-byte asynchronous
    /// frames.
    #[must_use]
    pub fn with_defaults(ring: RingConfig) -> Self {
        TtpAnalyzer::new(
            ring,
            TtrtPolicy::SqrtHeuristic,
            SbaScheme::Local,
            DEFAULT_FRAME_OVERHEAD,
            DEFAULT_ASYNC_FRAME,
        )
    }

    /// Returns a copy with a different TTRT policy.
    #[must_use]
    pub fn with_ttrt_policy(mut self, policy: TtrtPolicy) -> Self {
        self.ttrt_policy = policy;
        self
    }

    /// Returns a copy with a different allocation scheme.
    #[must_use]
    pub fn with_scheme(mut self, scheme: SbaScheme) -> Self {
        self.scheme = scheme;
        self
    }

    /// The ring configuration under analysis.
    #[must_use]
    pub fn ring(&self) -> &RingConfig {
        &self.ring
    }

    /// The TTRT selection policy.
    #[must_use]
    pub fn ttrt_policy(&self) -> TtrtPolicy {
        self.ttrt_policy
    }

    /// The allocation scheme.
    #[must_use]
    pub fn scheme(&self) -> SbaScheme {
        self.scheme
    }

    /// Per-rotation overhead `Θ' = Θ + F_async` (paper eq. 11): token
    /// circulation plus one asynchronous-overrun frame.
    #[must_use]
    pub fn theta_prime(&self) -> Seconds {
        self.ring.token_circulation_time()
            + self.ring.bandwidth().transmission_time(self.async_frame)
    }

    /// Time to transmit one synchronous frame's overhead bits.
    #[must_use]
    pub fn frame_overhead_time(&self) -> Seconds {
        self.ring.bandwidth().transmission_time(self.frame_overhead)
    }

    /// The TTRT this analyzer would negotiate for `set`.
    #[must_use]
    pub fn ttrt_for(&self, set: &MessageSet) -> Seconds {
        self.ttrt_policy.select(
            set,
            self.theta_prime(),
            self.frame_overhead_time(),
            self.ring.bandwidth(),
        )
    }

    /// [`TtpAnalyzer::ttrt_for`] over a [`SetView`] — bit-identical to the
    /// `MessageSet` path (both delegate to [`TtrtPolicy::select_view`]).
    #[must_use]
    pub fn ttrt_for_view(&self, view: &dyn SetView) -> Seconds {
        self.ttrt_policy.select_view(
            view,
            self.theta_prime(),
            self.frame_overhead_time(),
            self.ring.bandwidth(),
        )
    }

    /// Full diagnostic analysis.
    #[must_use]
    pub fn analyze(&self, set: &MessageSet) -> TtpReport {
        let bw = self.ring.bandwidth();
        let theta_prime = self.theta_prime();
        let fo = self.frame_overhead_time();
        let ttrt = self.ttrt_for(set);
        let allocations = self.scheme.allocate(set, ttrt, theta_prime, fo, bw);

        let mut per_stream = Vec::with_capacity(set.len());
        for (i, (s, &h)) in set.iter().zip(&allocations).enumerate() {
            let q = visit_count(s.relative_deadline(), ttrt);
            let available = worst_case_available_time(q, h);
            // Each visit carries h_i of which F_ovhd is frame overhead, so
            // the payload delivered per visit is h_i − F_ovhd.
            let usable_per_visit = (h - fo).max(Seconds::ZERO);
            let required = s.transmission_time(bw);
            let deliverable = usable_per_visit * q.saturating_sub(1) as f64;
            let tol = Seconds::new(1e-12 * required.as_secs_f64().max(1e-9));
            let deadline_met = q >= 2 && deliverable + tol >= required;
            per_stream.push(TtpStreamReport {
                stream: StreamId(i),
                visits: q,
                allocation: h,
                available_time: available,
                deadline_met,
            });
        }

        let total_allocated: Seconds = allocations.iter().copied().sum();
        let capacity = ttrt - theta_prime;
        let tol = Seconds::new(1e-12 * capacity.as_secs_f64().abs().max(1e-9));
        let protocol_ok = total_allocated <= capacity + tol;
        let schedulable = protocol_ok && per_stream.iter().all(|s| s.deadline_met);

        TtpReport {
            scheme: self.scheme,
            ttrt,
            theta_prime,
            total_allocated,
            capacity,
            protocol_ok,
            per_stream,
            schedulable,
        }
    }

    /// Direct evaluation of the Theorem 5.1 inequality (local scheme):
    /// `Σ C_i/(q_i−1) + n·F_ovhd ≤ TTRT − Θ'`. Provided as a literal
    /// transcription of the paper; agrees with
    /// [`SchedulabilityTest::is_schedulable`] when the analyzer uses
    /// [`SbaScheme::Local`].
    #[must_use]
    pub fn satisfies_theorem_5_1(&self, set: &MessageSet) -> bool {
        let ttrt = self.ttrt_for(set);
        super::ttrt::theorem_5_1_slack(
            set,
            ttrt,
            self.theta_prime(),
            self.frame_overhead_time(),
            self.ring.bandwidth(),
        )
        .is_some_and(|slack| slack >= -1e-12)
    }

    /// The Theorem 5.1 term one stream contributes at a given TTRT:
    /// `C_i/(q_i−1) + F_ovhd`, or `None` if `q_i < 2` (no deadline
    /// guarantee possible).
    ///
    /// Computed with the same float operations (in the same order) as
    /// [`TtpAnalyzer::satisfies_theorem_5_1`], so summing the terms of a
    /// set in station order reproduces its left-hand side bit for bit —
    /// the property the registry's delta-updated admission test relies on.
    #[must_use]
    pub fn stream_term(&self, stream: &SyncStream, ttrt: Seconds) -> Option<Seconds> {
        let q = visit_count(stream.relative_deadline(), ttrt);
        if q < 2 {
            return None;
        }
        Some(
            stream.transmission_time(self.ring.bandwidth()) / (q - 1) as f64
                + self.frame_overhead_time(),
        )
    }

    /// Usable rotation capacity `TTRT − Θ'` at a given TTRT — the right-hand
    /// side of the Theorem 5.1 inequality.
    #[must_use]
    pub fn capacity_at(&self, ttrt: Seconds) -> Seconds {
        ttrt - self.theta_prime()
    }

    /// The Theorem 5.1 verdict for a precomputed term sum: `Σ terms` must
    /// not exceed [`TtpAnalyzer::capacity_at`] within the same tolerance
    /// used by [`TtpAnalyzer::satisfies_theorem_5_1`].
    #[must_use]
    pub fn terms_feasible(&self, term_sum: Seconds, ttrt: Seconds) -> bool {
        (self.capacity_at(ttrt) - term_sum).as_secs_f64() >= -1e-12
    }
}

impl SchedulabilityTest for TtpAnalyzer {
    fn is_schedulable(&self, set: &MessageSet) -> bool {
        self.analyze(set).schedulable
    }

    fn protocol_name(&self) -> &'static str {
        "FDDI"
    }
}

/// Diagnostic output of [`TtpAnalyzer::analyze`].
#[derive(Debug, Clone, PartialEq)]
pub struct TtpReport {
    /// Allocation scheme used.
    pub scheme: SbaScheme,
    /// Negotiated Target Token Rotation Time.
    pub ttrt: Seconds,
    /// Per-rotation overhead `Θ' = Θ + F_async`.
    pub theta_prime: Seconds,
    /// Total allocated synchronous bandwidth `Σ h_i`.
    pub total_allocated: Seconds,
    /// Usable rotation capacity `TTRT − Θ'`.
    pub capacity: Seconds,
    /// Whether the protocol constraint `Σ h_i ≤ TTRT − Θ'` holds.
    pub protocol_ok: bool,
    /// Per-stream verdicts, in station order.
    pub per_stream: Vec<TtpStreamReport>,
    /// `true` iff both constraints hold for every stream.
    pub schedulable: bool,
}

impl TtpReport {
    /// Fraction of the rotation capacity consumed by allocations,
    /// `Σ h_i / (TTRT − Θ')`.
    #[must_use]
    pub fn allocation_ratio(&self) -> f64 {
        self.total_allocated / self.capacity
    }
}

impl fmt::Display for TtpReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "FDDI ({} scheme) schedulability: {} (TTRT = {}, Θ' = {}, Σh = {} / {})",
            self.scheme,
            if self.schedulable { "PASS" } else { "FAIL" },
            self.ttrt,
            self.theta_prime,
            self.total_allocated,
            self.capacity,
        )?;
        for s in &self.per_stream {
            writeln!(f, "  {s}")?;
        }
        Ok(())
    }
}

/// Verdict for a single stream under the timed token protocol.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TtpStreamReport {
    /// The stream (= sourcing station index).
    pub stream: StreamId,
    /// Guaranteed token visits per period, `q_i = ⌊P_i/TTRT⌋`.
    pub visits: u64,
    /// Allocated synchronous bandwidth `h_i`.
    pub allocation: Seconds,
    /// Worst-case transmission time available per period,
    /// `X_i = (q_i−1)·h_i`.
    pub available_time: Seconds,
    /// Whether the stream's deadline constraint holds.
    pub deadline_met: bool,
}

impl fmt::Display for TtpStreamReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: q = {}, h = {}, X = {} — {}",
            self.stream,
            self.visits,
            self.allocation,
            self.available_time,
            if self.deadline_met {
                "ok"
            } else {
                "deadline miss"
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringrt_model::SyncStream;
    use ringrt_units::Bandwidth;

    fn fddi(mbps: f64) -> TtpAnalyzer {
        TtpAnalyzer::with_defaults(RingConfig::fddi(100, Bandwidth::from_mbps(mbps)))
    }

    fn set(streams: &[(f64, u64)]) -> MessageSet {
        MessageSet::new(
            streams
                .iter()
                .map(|&(p, c)| SyncStream::new(Seconds::from_millis(p), Bits::new(c)))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn light_load_schedulable() {
        let a = fddi(100.0);
        let m = set(&[(20.0, 100_000), (50.0, 200_000), (100.0, 400_000)]);
        let report = a.analyze(&m);
        assert!(report.schedulable, "{report}");
        assert!(report.protocol_ok);
        assert!(a.satisfies_theorem_5_1(&m));
    }

    #[test]
    fn overload_unschedulable() {
        let a = fddi(100.0);
        // ~150 % utilization.
        let m = set(&[(20.0, 1_500_000), (50.0, 3_750_000)]);
        assert!(!a.is_schedulable(&m));
        assert!(!a.satisfies_theorem_5_1(&m));
    }

    #[test]
    fn theorem_matches_analyze_for_local_scheme() {
        let a = fddi(100.0);
        for scale in (1..40).map(|k| k as u64 * 40_000) {
            let m = set(&[(20.0, scale), (45.0, 2 * scale), (170.0, 4 * scale)]);
            assert_eq!(
                a.is_schedulable(&m),
                a.satisfies_theorem_5_1(&m),
                "divergence at scale {scale}"
            );
        }
    }

    #[test]
    fn ttrt_respects_johnson_bound() {
        let a = fddi(100.0);
        let m = set(&[(18.0, 10_000), (100.0, 10_000)]);
        let ttrt = a.ttrt_for(&m);
        assert!(ttrt <= Seconds::from_millis(9.0) * 1.0000001);
        assert!(ttrt > Seconds::ZERO);
    }

    #[test]
    fn report_values_consistent() {
        let a = fddi(100.0);
        let m = set(&[(20.0, 100_000), (80.0, 100_000)]);
        let r = a.analyze(&m);
        assert_eq!(r.per_stream.len(), 2);
        // q = ⌊D/TTRT⌋ recomputes (D = P here).
        for (s, sr) in m.iter().zip(&r.per_stream) {
            assert_eq!(sr.visits, visit_count(s.relative_deadline(), r.ttrt));
            assert!(sr.allocation > Seconds::ZERO);
        }
        // Capacity = TTRT − Θ'.
        assert!((r.capacity.as_secs_f64() - (r.ttrt - r.theta_prime).as_secs_f64()).abs() < 1e-15);
        assert!(r.allocation_ratio() > 0.0 && r.allocation_ratio() <= 1.0);
        assert!(r.to_string().contains("PASS"));
    }

    #[test]
    fn q_below_two_is_unschedulable() {
        // Fixed TTRT larger than P_min/2 → q = 1 for the fast stream.
        let ring = RingConfig::fddi(10, Bandwidth::from_mbps(100.0));
        let a = TtpAnalyzer::with_defaults(ring)
            .with_ttrt_policy(TtrtPolicy::Fixed(Seconds::from_millis(15.0)));
        let m = set(&[(20.0, 1_000), (100.0, 1_000)]);
        let r = a.analyze(&m);
        assert!(!r.schedulable);
        assert!(!r.per_stream[0].deadline_met);
        assert!(r.per_stream[1].deadline_met);
    }

    #[test]
    fn low_bandwidth_fddi_struggles() {
        // The headline effect: at 1 Mbps the FDDI overheads (75-bit station
        // delays) swamp the short rotation, so even a modest load fails.
        let a = fddi(1.0);
        let m = set(&[(20.0, 10_000), (50.0, 25_000), (100.0, 50_000)]); // U ≈ 0.15 at 1 Mbps... generous
        let r = a.analyze(&m);
        // Utilization = (10/20 + 25/50 + 50/100) ms/ms = 1.5 — way over.
        assert!(!r.schedulable);
    }

    #[test]
    fn alternative_schemes_allocate_and_judge() {
        let ring = RingConfig::fddi(3, Bandwidth::from_mbps(100.0));
        let m = set(&[(20.0, 100_000), (40.0, 200_000), (80.0, 200_000)]);
        for scheme in SbaScheme::all() {
            let a = TtpAnalyzer::with_defaults(ring).with_scheme(scheme);
            let r = a.analyze(&m);
            assert_eq!(r.scheme, scheme);
            assert_eq!(r.per_stream.len(), 3);
            // Verdicts are internally consistent.
            assert_eq!(
                r.schedulable,
                r.protocol_ok && r.per_stream.iter().all(|s| s.deadline_met)
            );
        }
    }

    #[test]
    fn full_length_needs_only_one_visit_worth() {
        // A single stream where one visit suffices: full-length scheme must
        // pass if h = C + F_ovhd fits in the rotation. The √ heuristic picks
        // a sub-millisecond TTRT that cannot hold a whole 1 ms message, so
        // use the maximal TTRT allowed by Johnson's bound.
        let ring = RingConfig::fddi(1, Bandwidth::from_mbps(100.0));
        let a = TtpAnalyzer::with_defaults(ring)
            .with_scheme(SbaScheme::FullLength)
            .with_ttrt_policy(TtrtPolicy::HalfMinPeriod);
        let m = set(&[(50.0, 100_000)]); // C = 1 ms
        let r = a.analyze(&m);
        assert!(r.schedulable, "{r}");
    }

    #[test]
    fn constrained_deadline_tightens_ttp() {
        let a = fddi(100.0);
        let relaxed = set(&[(100.0, 400_000), (200.0, 800_000)]);
        assert!(a.is_schedulable(&relaxed));
        // Same load, but stream 1 must now finish within 2 ms of arrival:
        // too few guaranteed token visits.
        let streams: Vec<SyncStream> = relaxed
            .iter()
            .enumerate()
            .map(|(i, s)| {
                if i == 0 {
                    s.with_relative_deadline(Seconds::from_millis(2.0))
                } else {
                    *s
                }
            })
            .collect();
        let tight = MessageSet::new(streams).unwrap();
        let report = a.analyze(&tight);
        // TTRT now clamps to D_min/2 = 1 ms and the verdict may flip; at
        // minimum the tight stream gets far fewer guaranteed visits.
        assert!(report.ttrt <= Seconds::from_millis(1.0) * 1.0000001);
        let visits_relaxed = a.analyze(&relaxed).per_stream[0].visits;
        assert!(report.per_stream[0].visits < visits_relaxed);
    }

    #[test]
    fn builder_style_accessors() {
        let ring = RingConfig::fddi(5, Bandwidth::from_mbps(100.0));
        let a = TtpAnalyzer::with_defaults(ring)
            .with_scheme(SbaScheme::EqualPartition)
            .with_ttrt_policy(TtrtPolicy::HalfMinPeriod);
        assert_eq!(a.scheme(), SbaScheme::EqualPartition);
        assert_eq!(a.ttrt_policy(), TtrtPolicy::HalfMinPeriod);
        assert_eq!(a.ring().stations(), 5);
        assert_eq!(a.protocol_name(), "FDDI");
        assert!(a.theta_prime() > a.ring().token_circulation_time());
    }
}
