//! Period distributions.

use core::fmt;

use rand::Rng;
use ringrt_units::Seconds;

/// Distribution of message periods for random set generation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PeriodDistribution {
    /// Uniform on `[min, max]`, parameterized the paper's way: by the mean
    /// `(min+max)/2` and the ratio `max/min`.
    Uniform {
        /// Mean period.
        mean: Seconds,
        /// Ratio of the longest to the shortest possible period (≥ 1).
        max_min_ratio: f64,
    },
    /// Log-uniform on `[min, max]`: uniform in `ln P`. Spreads periods more
    /// evenly across magnitudes than the plain uniform distribution.
    LogUniform {
        /// Shortest possible period.
        min: Seconds,
        /// Longest possible period.
        max: Seconds,
    },
    /// Harmonic periods: `base · 2^k` with `k` drawn uniformly from
    /// `0..octaves`. Harmonic sets are the best case for rate-monotonic
    /// scheduling and a useful ablation.
    Harmonic {
        /// The fundamental (shortest) period.
        base: Seconds,
        /// Number of octaves, ≥ 1 (`octaves = 4` yields `base·{1,2,4,8}`).
        octaves: u32,
    },
    /// Bimodal mixture: with probability `fast_fraction` a period uniform
    /// in `[fast_min, fast_max]` (control loops), otherwise uniform in
    /// `[slow_min, slow_max]` (bulk transfers). Models the control+bulk
    /// mixes of the paper's motivating applications better than a single
    /// uniform band.
    Bimodal {
        /// Probability of drawing from the fast band.
        fast_fraction: f64,
        /// Fast band bounds.
        fast: (Seconds, Seconds),
        /// Slow band bounds.
        slow: (Seconds, Seconds),
    },
}

impl PeriodDistribution {
    /// The paper's §6 period population: mean 100 ms, max/min ratio 10.
    #[must_use]
    pub fn paper_default() -> Self {
        PeriodDistribution::Uniform {
            mean: Seconds::from_millis(100.0),
            max_min_ratio: 10.0,
        }
    }

    /// The `[min, max]` support of the distribution.
    ///
    /// # Panics
    ///
    /// Panics if the parameters are invalid (non-positive mean or min,
    /// ratio below 1, zero octaves, or `max < min`).
    #[must_use]
    pub fn bounds(&self) -> (Seconds, Seconds) {
        match *self {
            PeriodDistribution::Uniform {
                mean,
                max_min_ratio,
            } => {
                assert!(
                    mean > Seconds::ZERO && mean.is_finite(),
                    "mean period must be positive"
                );
                assert!(max_min_ratio >= 1.0, "max/min ratio must be at least 1");
                // mean = (min + max)/2 and max = ratio·min
                // ⇒ min = 2·mean/(1 + ratio).
                let min = mean * (2.0 / (1.0 + max_min_ratio));
                let max = min * max_min_ratio;
                (min, max)
            }
            PeriodDistribution::LogUniform { min, max } => {
                assert!(min > Seconds::ZERO, "min period must be positive");
                assert!(max >= min, "max period must be at least min");
                (min, max)
            }
            PeriodDistribution::Harmonic { base, octaves } => {
                assert!(base > Seconds::ZERO, "base period must be positive");
                assert!(
                    octaves >= 1,
                    "harmonic distribution needs at least one octave"
                );
                (base, base * 2f64.powi(octaves as i32 - 1))
            }
            PeriodDistribution::Bimodal {
                fast_fraction,
                fast,
                slow,
            } => {
                assert!(
                    (0.0..=1.0).contains(&fast_fraction),
                    "fast fraction must be a probability"
                );
                assert!(
                    fast.0 > Seconds::ZERO && fast.1 >= fast.0,
                    "fast band must satisfy 0 < min ≤ max"
                );
                assert!(
                    slow.0 >= fast.1 && slow.1 >= slow.0,
                    "slow band must sit at or above the fast band"
                );
                (fast.0, slow.1)
            }
        }
    }

    /// Draws one period.
    ///
    /// # Panics
    ///
    /// Panics on invalid parameters (see [`PeriodDistribution::bounds`]).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Seconds {
        let (min, max) = self.bounds();
        match *self {
            PeriodDistribution::Uniform { .. } => {
                Seconds::new(rng.gen_range(min.as_secs_f64()..=max.as_secs_f64()))
            }
            PeriodDistribution::LogUniform { .. } => {
                let (ln_min, ln_max) = (min.as_secs_f64().ln(), max.as_secs_f64().ln());
                Seconds::new(rng.gen_range(ln_min..=ln_max).exp())
            }
            PeriodDistribution::Harmonic { base, octaves } => {
                let k = rng.gen_range(0..octaves);
                base * 2f64.powi(k as i32)
            }
            PeriodDistribution::Bimodal {
                fast_fraction,
                fast,
                slow,
            } => {
                let band = if rng.gen::<f64>() < fast_fraction {
                    fast
                } else {
                    slow
                };
                Seconds::new(rng.gen_range(band.0.as_secs_f64()..=band.1.as_secs_f64()))
            }
        }
    }
}

impl fmt::Display for PeriodDistribution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PeriodDistribution::Uniform {
                mean,
                max_min_ratio,
            } => write!(f, "uniform(mean = {mean}, max/min = {max_min_ratio})"),
            PeriodDistribution::LogUniform { min, max } => {
                write!(f, "log-uniform[{min}, {max}]")
            }
            PeriodDistribution::Harmonic { base, octaves } => {
                write!(f, "harmonic(base = {base}, octaves = {octaves})")
            }
            PeriodDistribution::Bimodal {
                fast_fraction,
                fast,
                slow,
            } => write!(
                f,
                "bimodal({:.0} % in [{}, {}], rest in [{}, {}])",
                fast_fraction * 100.0,
                fast.0,
                fast.1,
                slow.0,
                slow.1
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn paper_default_bounds() {
        // mean 100 ms, ratio 10 → [200/11, 2000/11] ms.
        let (min, max) = PeriodDistribution::paper_default().bounds();
        assert!((min.as_millis() - 200.0 / 11.0).abs() < 1e-9);
        assert!((max.as_millis() - 2000.0 / 11.0).abs() < 1e-9);
        assert!((max / min - 10.0).abs() < 1e-9);
        assert!(((min + max).as_millis() / 2.0 - 100.0).abs() < 1e-9);
    }

    #[test]
    fn uniform_samples_within_bounds_and_mean() {
        let d = PeriodDistribution::paper_default();
        let (min, max) = d.bounds();
        let mut rng = StdRng::seed_from_u64(42);
        let mut sum = 0.0;
        let n = 20_000;
        for _ in 0..n {
            let p = d.sample(&mut rng);
            assert!(p >= min && p <= max);
            sum += p.as_secs_f64();
        }
        let mean = sum / n as f64;
        assert!((mean - 0.1).abs() < 0.002, "empirical mean {mean}");
    }

    #[test]
    fn log_uniform_within_bounds() {
        let d = PeriodDistribution::LogUniform {
            min: Seconds::from_millis(1.0),
            max: Seconds::from_millis(1000.0),
        };
        let mut rng = StdRng::seed_from_u64(1);
        let mut below_geo_mean = 0;
        for _ in 0..10_000 {
            let p = d.sample(&mut rng);
            assert!(p >= Seconds::from_millis(1.0) && p <= Seconds::from_millis(1000.0));
            // Geometric mean ≈ 31.6 ms splits samples roughly in half.
            if p < Seconds::from_millis(31.6) {
                below_geo_mean += 1;
            }
        }
        assert!((below_geo_mean as f64 / 10_000.0 - 0.5).abs() < 0.05);
    }

    #[test]
    fn harmonic_periods_are_powers_of_two() {
        let d = PeriodDistribution::Harmonic {
            base: Seconds::from_millis(5.0),
            octaves: 4,
        };
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let p = d.sample(&mut rng);
            let ratio = p / Seconds::from_millis(5.0);
            assert!(
                [1.0, 2.0, 4.0, 8.0]
                    .iter()
                    .any(|&r| (ratio - r).abs() < 1e-12),
                "unexpected ratio {ratio}"
            );
        }
        let (min, max) = d.bounds();
        assert_eq!(min, Seconds::from_millis(5.0));
        assert_eq!(max, Seconds::from_millis(40.0));
    }

    #[test]
    fn bimodal_respects_bands_and_mixture() {
        let d = PeriodDistribution::Bimodal {
            fast_fraction: 0.7,
            fast: (Seconds::from_millis(5.0), Seconds::from_millis(20.0)),
            slow: (Seconds::from_millis(100.0), Seconds::from_millis(400.0)),
        };
        let (min, max) = d.bounds();
        assert_eq!(min, Seconds::from_millis(5.0));
        assert_eq!(max, Seconds::from_millis(400.0));
        let mut rng = StdRng::seed_from_u64(8);
        let mut fast = 0;
        let n = 20_000;
        for _ in 0..n {
            let p = d.sample(&mut rng);
            let in_fast = p <= Seconds::from_millis(20.0);
            let in_slow = p >= Seconds::from_millis(100.0);
            assert!(in_fast || in_slow, "sample {p} fell in the gap");
            if in_fast {
                fast += 1;
            }
        }
        let frac = fast as f64 / n as f64;
        assert!((frac - 0.7).abs() < 0.02, "fast fraction {frac}");
    }

    #[test]
    #[should_panic(expected = "slow band must sit at or above")]
    fn bimodal_overlapping_bands_rejected() {
        let _ = PeriodDistribution::Bimodal {
            fast_fraction: 0.5,
            fast: (Seconds::from_millis(5.0), Seconds::from_millis(50.0)),
            slow: (Seconds::from_millis(20.0), Seconds::from_millis(400.0)),
        }
        .bounds();
    }

    #[test]
    #[should_panic(expected = "ratio must be at least 1")]
    fn ratio_below_one_rejected() {
        let _ = PeriodDistribution::Uniform {
            mean: Seconds::from_millis(10.0),
            max_min_ratio: 0.5,
        }
        .bounds();
    }

    #[test]
    fn display() {
        assert!(PeriodDistribution::paper_default()
            .to_string()
            .contains("uniform"));
        let d = PeriodDistribution::Harmonic {
            base: Seconds::from_millis(5.0),
            octaves: 3,
        };
        assert!(d.to_string().contains("harmonic"));
    }
}
