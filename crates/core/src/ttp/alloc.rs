//! Synchronous bandwidth allocation schemes (paper §5.2 and its
//! references to Agrawal/Chen/Zhao).
//!
//! A scheme maps each stream to a synchronous bandwidth `h_i` — the time
//! its station may transmit synchronous frames per token visit. The paper
//! adopts the **local** scheme (allocation from purely local information),
//! shown by Agrawal–Chen–Zhao to guarantee 33 % utilization in the worst
//! case and found to perform close to the optimal scheme on average; the
//! other classic schemes are provided for the comparison experiment.

use core::fmt;

use ringrt_model::MessageSet;
use ringrt_units::{Bandwidth, Seconds};

use super::visit_count;

/// A synchronous bandwidth allocation scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum SbaScheme {
    /// The paper's scheme: `h_i = C_i/(q_i − 1) + F_ovhd` with
    /// `q_i = ⌊P_i/TTRT⌋` — exactly the bandwidth needed to finish within
    /// the guaranteed `q_i − 1` full visits per period.
    Local,
    /// One-shot scheme: `h_i = C_i + F_ovhd`, the whole message in a single
    /// token visit.
    FullLength,
    /// `h_i = (C_i/P_i) · (TTRT − Θ')`: bandwidth proportional to
    /// utilization.
    Proportional,
    /// `h_i = (U_i/U) · (TTRT − Θ')`: proportional, normalized so the
    /// protocol constraint is exactly tight.
    NormalizedProportional,
    /// `h_i = (TTRT − Θ')/n`: uniform split of the usable rotation.
    EqualPartition,
}

impl SbaScheme {
    /// Short name for tables and reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SbaScheme::Local => "local",
            SbaScheme::FullLength => "full-length",
            SbaScheme::Proportional => "proportional",
            SbaScheme::NormalizedProportional => "normalized-proportional",
            SbaScheme::EqualPartition => "equal-partition",
        }
    }

    /// All implemented schemes, for sweep experiments.
    #[must_use]
    pub fn all() -> [SbaScheme; 5] {
        [
            SbaScheme::Local,
            SbaScheme::FullLength,
            SbaScheme::Proportional,
            SbaScheme::NormalizedProportional,
            SbaScheme::EqualPartition,
        ]
    }

    /// Computes the allocation `h_i` for every stream.
    ///
    /// `theta_prime` is the per-rotation overhead `Θ' = Θ + F_async` and
    /// `frame_overhead_time` the time to transmit one frame's overhead
    /// bits. Streams with `q_i < 2` receive `h_i = 0` under the local
    /// scheme (no allocation can save them; the schedulability test reports
    /// them unschedulable).
    #[must_use]
    pub fn allocate(
        self,
        set: &MessageSet,
        ttrt: Seconds,
        theta_prime: Seconds,
        frame_overhead_time: Seconds,
        bandwidth: Bandwidth,
    ) -> Vec<Seconds> {
        let usable = (ttrt - theta_prime).max(Seconds::ZERO);
        match self {
            SbaScheme::Local => set
                .iter()
                .map(|s| {
                    let q = visit_count(s.relative_deadline(), ttrt);
                    if q < 2 {
                        Seconds::ZERO
                    } else {
                        s.transmission_time(bandwidth) / (q - 1) as f64 + frame_overhead_time
                    }
                })
                .collect(),
            SbaScheme::FullLength => set
                .iter()
                .map(|s| s.transmission_time(bandwidth) + frame_overhead_time)
                .collect(),
            SbaScheme::Proportional => set
                .iter()
                .map(|s| usable * s.utilization(bandwidth))
                .collect(),
            SbaScheme::NormalizedProportional => {
                let total: f64 = set.utilization(bandwidth);
                if total <= 0.0 {
                    vec![Seconds::ZERO; set.len()]
                } else {
                    set.iter()
                        .map(|s| usable * (s.utilization(bandwidth) / total))
                        .collect()
                }
            }
            SbaScheme::EqualPartition => {
                let h = usable / set.len() as f64;
                vec![h; set.len()]
            }
        }
    }
}

impl fmt::Display for SbaScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringrt_model::SyncStream;
    use ringrt_units::Bits;

    fn example_set() -> MessageSet {
        MessageSet::new(vec![
            SyncStream::new(Seconds::from_millis(40.0), Bits::new(100_000)),
            SyncStream::new(Seconds::from_millis(100.0), Bits::new(400_000)),
        ])
        .unwrap()
    }

    const BW: fn() -> Bandwidth = || Bandwidth::from_mbps(100.0);

    #[test]
    fn local_matches_equation_9() {
        let set = example_set();
        let ttrt = Seconds::from_millis(4.0);
        let fo = Seconds::from_micros(1.12);
        let h = SbaScheme::Local.allocate(&set, ttrt, Seconds::ZERO, fo, BW());
        // Stream 0: C = 1 ms, q = 10 → h = 1/9 ms + F_ovhd.
        let expect0 = Seconds::from_millis(1.0) / 9.0 + fo;
        assert!((h[0].as_secs_f64() - expect0.as_secs_f64()).abs() < 1e-15);
        // Stream 1: C = 4 ms, q = 25 → h = 4/24 ms + F_ovhd.
        let expect1 = Seconds::from_millis(4.0) / 24.0 + fo;
        assert!((h[1].as_secs_f64() - expect1.as_secs_f64()).abs() < 1e-15);
    }

    #[test]
    fn local_zeroes_streams_with_q_below_two() {
        let set = example_set();
        // TTRT of 25 ms → q_0 = 1.
        let h = SbaScheme::Local.allocate(
            &set,
            Seconds::from_millis(25.0),
            Seconds::ZERO,
            Seconds::ZERO,
            BW(),
        );
        assert_eq!(h[0], Seconds::ZERO);
        assert!(h[1] > Seconds::ZERO);
    }

    #[test]
    fn full_length_is_whole_message() {
        let set = example_set();
        let fo = Seconds::from_micros(1.12);
        let h = SbaScheme::FullLength.allocate(
            &set,
            Seconds::from_millis(4.0),
            Seconds::ZERO,
            fo,
            BW(),
        );
        assert!((h[0].as_millis() - (1.0 + 0.00112)).abs() < 1e-9);
        assert!((h[1].as_millis() - (4.0 + 0.00112)).abs() < 1e-9);
    }

    #[test]
    fn normalized_proportional_is_tight() {
        let set = example_set();
        let ttrt = Seconds::from_millis(4.0);
        let theta = Seconds::from_micros(126.0);
        let h = SbaScheme::NormalizedProportional.allocate(&set, ttrt, theta, Seconds::ZERO, BW());
        let total: Seconds = h.iter().copied().sum();
        let usable = ttrt - theta;
        assert!((total.as_secs_f64() - usable.as_secs_f64()).abs() < 1e-15);
    }

    #[test]
    fn equal_partition_splits_evenly() {
        let set = example_set();
        let ttrt = Seconds::from_millis(4.0);
        let h = SbaScheme::EqualPartition.allocate(&set, ttrt, Seconds::ZERO, Seconds::ZERO, BW());
        assert_eq!(h[0], h[1]);
        assert!((h[0].as_millis() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn proportional_scales_with_utilization() {
        let set = example_set();
        let ttrt = Seconds::from_millis(4.0);
        let h = SbaScheme::Proportional.allocate(&set, ttrt, Seconds::ZERO, Seconds::ZERO, BW());
        // U_0 = 1/40, U_1 = 4/100 → h ∝ (0.025, 0.04).
        assert!((h[1].as_secs_f64() / h[0].as_secs_f64() - 1.6).abs() < 1e-9);
    }

    #[test]
    fn labels_unique() {
        let labels: Vec<_> = SbaScheme::all().iter().map(|s| s.label()).collect();
        let mut dedup = labels.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(labels.len(), dedup.len());
        assert_eq!(SbaScheme::Local.to_string(), "local");
    }
}
