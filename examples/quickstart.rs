//! Quickstart: decide whether a synchronous message set can be guaranteed
//! on a token ring, under each of the paper's two protocols.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ringrt::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Three periodic streams: a 20 ms control loop, a 50 ms sensor sweep,
    // and a 100 ms bulk update. Deadline = period (paper §3.2).
    let set = MessageSet::new(vec![
        SyncStream::new(Seconds::from_millis(20.0), Bits::new(20_000)),
        SyncStream::new(Seconds::from_millis(50.0), Bits::new(60_000)),
        SyncStream::new(Seconds::from_millis(100.0), Bits::new(120_000)),
    ])?;

    let bw = Bandwidth::from_mbps(16.0);
    println!("message set: {set}");
    println!("raw utilization at {bw}: {:.3}\n", set.utilization(bw));

    // --- Priority driven protocol (IEEE 802.5, rate monotonic) ---------
    let ring = RingConfig::ieee_802_5(set.len(), bw);
    for variant in [PdpVariant::Standard, PdpVariant::Modified] {
        let analyzer = PdpAnalyzer::new(ring, FrameFormat::paper_default(), variant);
        let report = analyzer.analyze(&set);
        print!("{report}");
    }

    // --- Timed token protocol (FDDI, local allocation) -----------------
    let ring = RingConfig::fddi(set.len(), bw);
    let analyzer = TtpAnalyzer::with_defaults(ring);
    let report = analyzer.analyze(&set);
    print!("{report}");
    println!(
        "negotiated TTRT = {} (policy: {})",
        report.ttrt,
        analyzer.ttrt_policy()
    );

    // --- Double-check the verdicts by simulation ------------------------
    let config = SimConfig::new(ring, Seconds::new(1.0)).with_async_load(0.2);
    let sim = TtpSimulator::from_analysis(&set, config)?.run();
    println!(
        "\nsimulated 1 s of FDDI ring time: {} messages delivered, {} deadline misses",
        sim.completed(),
        sim.deadline_misses()
    );
    assert!(sim.all_deadlines_met(), "analysis promised schedulability");
    Ok(())
}
