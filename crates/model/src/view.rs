//! A read-only view of a synchronous message set.
//!
//! The schedulability analyzers historically consumed a materialized
//! [`MessageSet`]. At registry scale (10^5+ streams per ring) building that
//! vector — and sorting it into deadline-monotonic order — on every ADMIT
//! dominates the cost of the analysis itself. [`SetView`] abstracts the
//! two iteration orders and the extrema the theorems actually need, so an
//! indexed store can feed the analyzers directly from its maintained
//! indexes while `MessageSet` keeps working unchanged.
//!
//! Implementations must guarantee **bit-identical** behavior between the
//! two paths: [`SetView::stations`] yields streams in station (admission)
//! order exactly as `MessageSet::iter`, and [`SetView::dm_streams`] yields
//! the same sequence as iterating `MessageSet::dm_order` — shortest
//! relative deadline first, ties by period, then by station index.

use ringrt_units::Seconds;

use crate::stream::{MessageSet, StreamId, SyncStream};

/// Read-only iteration view over a synchronous message set.
pub trait SetView {
    /// Number of streams in the set, `n`.
    fn view_len(&self) -> usize;

    /// Streams in station (admission) order — the order Theorem 5.1 sums
    /// its per-stream terms in.
    fn stations(&self) -> Box<dyn Iterator<Item = SyncStream> + '_>;

    /// Streams in deadline-monotonic priority order (shortest relative
    /// deadline first; ties by period, then station index) — the order
    /// Theorem 4.1 runs its response-time levels in.
    fn dm_streams(&self) -> Box<dyn Iterator<Item = SyncStream> + '_>;

    /// The shortest relative deadline `D_min`, or `None` for an empty set.
    fn min_deadline_view(&self) -> Option<Seconds>;

    /// The shortest period `P_min`, or `None` for an empty set.
    fn min_period_view(&self) -> Option<Seconds>;
}

impl SetView for MessageSet {
    fn view_len(&self) -> usize {
        self.len()
    }

    fn stations(&self) -> Box<dyn Iterator<Item = SyncStream> + '_> {
        Box::new(self.iter().copied())
    }

    fn dm_streams(&self) -> Box<dyn Iterator<Item = SyncStream> + '_> {
        let order = self.dm_order();
        Box::new(order.into_iter().map(move |i| *self.stream(StreamId(i))))
    }

    fn min_deadline_view(&self) -> Option<Seconds> {
        if self.is_empty() {
            None
        } else {
            Some(self.min_deadline())
        }
    }

    fn min_period_view(&self) -> Option<Seconds> {
        if self.is_empty() {
            None
        } else {
            Some(self.min_period())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringrt_units::Bits;

    #[test]
    fn message_set_view_matches_direct_queries() {
        let set = MessageSet::new(vec![
            SyncStream::new(Seconds::from_millis(30.0), Bits::new(100)),
            SyncStream::new(Seconds::from_millis(50.0), Bits::new(200))
                .with_relative_deadline(Seconds::from_millis(10.0)),
            SyncStream::new(Seconds::from_millis(20.0), Bits::new(300)),
        ])
        .unwrap();
        assert_eq!(set.view_len(), 3);
        let stations: Vec<SyncStream> = set.stations().collect();
        assert_eq!(stations, set.as_slice());
        let dm: Vec<SyncStream> = set.dm_streams().collect();
        let expect: Vec<SyncStream> = set
            .dm_order()
            .into_iter()
            .map(|i| *set.stream(StreamId(i)))
            .collect();
        assert_eq!(dm, expect);
        assert_eq!(set.min_deadline_view(), Some(set.min_deadline()));
        assert_eq!(set.min_period_view(), Some(set.min_period()));
    }
}
