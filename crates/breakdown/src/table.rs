//! Plain-text emitters for experiment results (CSV and aligned markdown).
//!
//! The experiment binaries in `ringrt-bench` print their series through
//! these helpers so EXPERIMENTS.md and any plotting pipeline consume a
//! stable format without pulling in a serialization dependency.

use std::fmt::Write as _;

/// A simple column-oriented table.
///
/// # Examples
///
/// ```
/// use ringrt_breakdown::table::Table;
///
/// let mut t = Table::new(&["bandwidth_mbps", "abu"]);
/// t.push_row(&["1".into(), "0.42".into()]);
/// t.push_row(&["10".into(), "0.55".into()]);
/// let csv = t.to_csv();
/// assert!(csv.starts_with("bandwidth_mbps,abu\n"));
/// assert!(t.to_markdown().contains("| bandwidth_mbps |"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    #[must_use]
    pub fn new(headers: &[&str]) -> Self {
        assert!(!headers.is_empty(), "a table needs at least one column");
        Table {
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the header count.
    pub fn push_row(&mut self, row: &[String]) {
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width {} does not match {} columns",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row.to_vec());
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as CSV (no quoting — emitters only produce plain numbers and
    /// identifiers).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.headers.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }

    /// Renders as an aligned GitHub-flavoured markdown table.
    #[must_use]
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::from("|");
            for (cell, w) in cells.iter().zip(widths) {
                let _ = write!(line, " {cell:<w$} |");
            }
            line
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers, &widths));
        let mut sep = String::from("|");
        for w in &widths {
            let _ = write!(sep, "{}|", "-".repeat(w + 2));
        }
        let _ = writeln!(out, "{sep}");
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }
}

/// Formats a float with fixed precision for table cells.
#[must_use]
pub fn cell(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_round_trip_shape() {
        let mut t = Table::new(&["a", "b"]);
        assert!(t.is_empty());
        t.push_row(&["1".into(), "2".into()]);
        t.push_row(&["3".into(), "4".into()]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.to_csv(), "a,b\n1,2\n3,4\n");
    }

    #[test]
    fn markdown_is_aligned() {
        let mut t = Table::new(&["name", "x"]);
        t.push_row(&["short".into(), "1".into()]);
        t.push_row(&["a-much-longer-name".into(), "2".into()]);
        let md = t.to_markdown();
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines have equal width.
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
        assert!(lines[1].starts_with("|-"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new(&["a", "b"]);
        t.push_row(&["only-one".into()]);
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn empty_headers_panics() {
        let _ = Table::new(&[]);
    }

    #[test]
    fn cell_formats() {
        assert_eq!(cell(0.123456, 3), "0.123");
        assert_eq!(cell(10.0, 1), "10.0");
    }
}
