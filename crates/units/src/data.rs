//! Data sizes in bits and bytes.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Mul, Sub, SubAssign};

/// An exact data size in bits.
///
/// Frame payload and overhead lengths in the paper are specified in bits
/// (`F_ovhd^b = 112` bits, 64-byte payloads, per-station latency of 4 or 75
/// bits), so an exact integer representation avoids rounding questions in
/// the frame-splitting arithmetic `L_i = ⌊C_i^b / F_info^b⌋`,
/// `K_i = ⌈C_i^b / F_info^b⌉`.
///
/// # Examples
///
/// ```
/// use ringrt_units::{Bits, Bytes};
///
/// let payload = Bits::from(Bytes::new(64));
/// assert_eq!(payload, Bits::new(512));
/// assert_eq!(payload + Bits::new(112), Bits::new(624));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Bits(u64);

impl Bits {
    /// The zero size.
    pub const ZERO: Bits = Bits(0);

    /// Creates a size from a raw bit count.
    #[must_use]
    pub const fn new(bits: u64) -> Self {
        Bits(bits)
    }

    /// Returns the raw bit count.
    #[must_use]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the bit count as an `f64` (for rate arithmetic).
    #[must_use]
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Returns `true` if the size is zero bits.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Number of whole chunks of `chunk` bits contained in `self`
    /// (the paper's `L_i` when `chunk` is the frame payload size).
    ///
    /// # Panics
    ///
    /// Panics if `chunk` is zero.
    #[must_use]
    pub fn div_floor(self, chunk: Bits) -> u64 {
        assert!(!chunk.is_zero(), "chunk size must be non-zero");
        self.0 / chunk.0
    }

    /// Number of chunks of `chunk` bits needed to cover `self`
    /// (the paper's `K_i` when `chunk` is the frame payload size).
    ///
    /// # Panics
    ///
    /// Panics if `chunk` is zero.
    #[must_use]
    pub fn div_ceil(self, chunk: Bits) -> u64 {
        assert!(!chunk.is_zero(), "chunk size must be non-zero");
        self.0.div_ceil(chunk.0)
    }

    /// Saturating subtraction: `max(self - rhs, 0)`.
    #[must_use]
    pub const fn saturating_sub(self, rhs: Bits) -> Bits {
        Bits(self.0.saturating_sub(rhs.0))
    }

    /// Returns the smaller of two sizes.
    #[must_use]
    pub fn min(self, other: Bits) -> Bits {
        Bits(self.0.min(other.0))
    }

    /// Returns the larger of two sizes.
    #[must_use]
    pub fn max(self, other: Bits) -> Bits {
        Bits(self.0.max(other.0))
    }
}

impl fmt::Display for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} bit", self.0)?;
        if self.0 != 1 {
            write!(f, "s")?;
        }
        Ok(())
    }
}

impl Add for Bits {
    type Output = Bits;
    fn add(self, rhs: Bits) -> Bits {
        Bits(self.0.checked_add(rhs.0).expect("bit count overflow"))
    }
}

impl AddAssign for Bits {
    fn add_assign(&mut self, rhs: Bits) {
        *self = *self + rhs;
    }
}

impl Sub for Bits {
    type Output = Bits;
    /// # Panics
    ///
    /// Panics on underflow; use [`Bits::saturating_sub`] when the operands
    /// may cross.
    fn sub(self, rhs: Bits) -> Bits {
        Bits(self.0.checked_sub(rhs.0).expect("bit count underflow"))
    }
}

impl SubAssign for Bits {
    fn sub_assign(&mut self, rhs: Bits) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Bits {
    type Output = Bits;
    fn mul(self, rhs: u64) -> Bits {
        Bits(self.0.checked_mul(rhs).expect("bit count overflow"))
    }
}

impl Mul<Bits> for u64 {
    type Output = Bits;
    fn mul(self, rhs: Bits) -> Bits {
        rhs * self
    }
}

impl Sum for Bits {
    fn sum<I: Iterator<Item = Bits>>(iter: I) -> Bits {
        iter.fold(Bits::ZERO, Add::add)
    }
}

impl From<Bytes> for Bits {
    fn from(b: Bytes) -> Bits {
        Bits(b.as_u64().checked_mul(8).expect("byte count overflow"))
    }
}

/// An exact data size in bytes (octets).
///
/// Exists mostly as a convenient constructor for [`Bits`]; the paper quotes
/// frame payloads in bytes ("Packet Length = 64 Bytes").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Bytes(u64);

impl Bytes {
    /// Creates a size from a raw byte count.
    #[must_use]
    pub const fn new(bytes: u64) -> Self {
        Bytes(bytes)
    }

    /// Returns the raw byte count.
    #[must_use]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// The equivalent size in bits.
    #[must_use]
    pub fn to_bits(self) -> Bits {
        Bits::from(self)
    }
}

impl fmt::Display for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} B", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_bit_conversion() {
        assert_eq!(Bytes::new(64).to_bits(), Bits::new(512));
        assert_eq!(Bits::from(Bytes::new(0)), Bits::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = Bits::new(100);
        let b = Bits::new(30);
        assert_eq!(a + b, Bits::new(130));
        assert_eq!(a - b, Bits::new(70));
        assert_eq!(a * 3, Bits::new(300));
        assert_eq!(3 * b, Bits::new(90));
        assert_eq!(b.saturating_sub(a), Bits::ZERO);
    }

    #[test]
    fn frame_splitting_floor_ceil() {
        // A 1300-bit message over 512-bit frames: L = 2, K = 3.
        let msg = Bits::new(1300);
        let frame = Bits::new(512);
        assert_eq!(msg.div_floor(frame), 2);
        assert_eq!(msg.div_ceil(frame), 3);
        // Exact multiple: L == K.
        let msg = Bits::new(1024);
        assert_eq!(msg.div_floor(frame), 2);
        assert_eq!(msg.div_ceil(frame), 2);
        // Smaller than one frame.
        let msg = Bits::new(10);
        assert_eq!(msg.div_floor(frame), 0);
        assert_eq!(msg.div_ceil(frame), 1);
        // Zero-length message needs zero frames.
        assert_eq!(Bits::ZERO.div_ceil(frame), 0);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = Bits::new(1) - Bits::new(2);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn div_by_zero_chunk_panics() {
        let _ = Bits::new(1).div_ceil(Bits::ZERO);
    }

    #[test]
    fn sum_and_ordering() {
        let total: Bits = [Bits::new(1), Bits::new(2), Bits::new(3)].into_iter().sum();
        assert_eq!(total, Bits::new(6));
        assert!(Bits::new(1) < Bits::new(2));
        assert_eq!(Bits::new(5).min(Bits::new(3)), Bits::new(3));
        assert_eq!(Bits::new(5).max(Bits::new(3)), Bits::new(5));
    }

    #[test]
    fn display() {
        assert_eq!(Bits::new(1).to_string(), "1 bit");
        assert_eq!(Bits::new(112).to_string(), "112 bits");
        assert_eq!(Bytes::new(64).to_string(), "64 B");
    }
}
