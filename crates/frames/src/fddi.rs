//! ANSI X3T9.5 FDDI frame formats.
//!
//! FDDI transmits 4B/5B-encoded symbols; this module works at the octet
//! level (two symbols per octet), which is the granularity the timing
//! analysis cares about. Layout of a data frame (octets):
//!
//! ```text
//! PA(8)  SD  FC  DA(6)  SA(6)  INFO(n)  FCS(4)  ED  FS
//! ```
//!
//! and of a token: `PA(8) SD FC ED` — 11 octets = 88 bits, the token
//! length used by the network model. The fixed data-frame framing is 28
//! octets = [`OVERHEAD_BITS`] (224) bits.

use crate::crc::crc32;
use crate::FrameError;

/// Fixed framing overhead of an FDDI data frame: PA + SD + FC + DA + SA +
/// FCS + ED + FS = 28 octets = 224 bits.
pub const OVERHEAD_BITS: u64 = 28 * 8;

/// Token length: PA + SD + FC + ED = 11 octets = 88 bits (matches the
/// network model's default).
pub const TOKEN_BITS: u64 = 11 * 8;

/// Preamble length in octets (16 idle symbols).
const PREAMBLE_LEN: usize = 8;
/// Preamble fill byte (idle line-state symbols).
const PREAMBLE: u8 = 0x00;
/// Starting delimiter (J/K symbol pair).
const SD: u8 = 0xC5;
/// Ending delimiter (T symbols).
const ED: u8 = 0x4D;

/// The frame-class half of the frame-control byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrameClass {
    /// A non-restricted token.
    Token,
    /// A synchronous data frame (transmitted within `h_i`).
    Synchronous,
    /// An asynchronous data frame (transmitted from THT slack).
    Asynchronous,
    /// A MAC management frame (claim/beacon).
    Mac,
}

impl FrameClass {
    /// The frame-control byte for this class.
    #[must_use]
    pub fn to_byte(self) -> u8 {
        match self {
            FrameClass::Token => 0x80,
            FrameClass::Synchronous => 0xD0,
            FrameClass::Asynchronous => 0x50,
            FrameClass::Mac => 0xC1,
        }
    }

    /// Parses a frame-control byte; `None` for codes this model does not
    /// use.
    #[must_use]
    pub fn from_byte(byte: u8) -> Option<Self> {
        match byte {
            0x80 => Some(FrameClass::Token),
            0xD0 => Some(FrameClass::Synchronous),
            0x50 => Some(FrameClass::Asynchronous),
            0xC1 => Some(FrameClass::Mac),
            _ => None,
        }
    }

    /// `true` for the synchronous class.
    #[must_use]
    pub fn is_synchronous(self) -> bool {
        self == FrameClass::Synchronous
    }
}

/// An FDDI token: `PA SD FC ED`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token;

impl Token {
    /// Encodes the token to its 11-octet wire form.
    #[must_use]
    pub fn encode(&self) -> [u8; 11] {
        let mut out = [PREAMBLE; 11];
        out[PREAMBLE_LEN] = SD;
        out[PREAMBLE_LEN + 1] = FrameClass::Token.to_byte();
        out[PREAMBLE_LEN + 2] = ED;
        out
    }

    /// Decodes a token.
    ///
    /// # Errors
    ///
    /// [`FrameError::TooShort`], [`FrameError::BadDelimiter`], or
    /// [`FrameError::WrongKind`] for a non-token frame-control code.
    pub fn decode(bytes: &[u8]) -> Result<Self, FrameError> {
        if bytes.len() < 11 {
            return Err(FrameError::TooShort {
                got: bytes.len(),
                need: 11,
            });
        }
        if bytes[PREAMBLE_LEN] != SD {
            return Err(FrameError::BadDelimiter {
                field: "SD",
                found: bytes[PREAMBLE_LEN],
            });
        }
        if bytes[PREAMBLE_LEN + 2] != ED {
            return Err(FrameError::BadDelimiter {
                field: "ED",
                found: bytes[PREAMBLE_LEN + 2],
            });
        }
        match FrameClass::from_byte(bytes[PREAMBLE_LEN + 1]) {
            Some(FrameClass::Token) => Ok(Token),
            _ => Err(FrameError::WrongKind),
        }
    }

    /// The token's wire length in bits.
    #[must_use]
    pub fn wire_bits(&self) -> u64 {
        TOKEN_BITS
    }
}

/// An FDDI data frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataFrame {
    class: FrameClass,
    destination: [u8; 6],
    source: [u8; 6],
    payload: Vec<u8>,
    frame_status: u8,
}

impl DataFrame {
    /// Builds a synchronous or asynchronous data frame.
    ///
    /// # Panics
    ///
    /// Panics if `class` is [`FrameClass::Token`] (tokens carry no data).
    #[must_use]
    pub fn new(class: FrameClass, destination: [u8; 6], source: [u8; 6], payload: Vec<u8>) -> Self {
        assert!(class != FrameClass::Token, "tokens carry no payload");
        DataFrame {
            class,
            destination,
            source,
            payload,
            frame_status: 0,
        }
    }

    /// The frame's class (synchronous / asynchronous / MAC).
    #[must_use]
    pub fn class(&self) -> FrameClass {
        self.class
    }

    /// Destination MAC address.
    #[must_use]
    pub fn destination(&self) -> [u8; 6] {
        self.destination
    }

    /// Source MAC address.
    #[must_use]
    pub fn source(&self) -> [u8; 6] {
        self.source
    }

    /// The information field.
    #[must_use]
    pub fn payload(&self) -> &[u8] {
        &self.payload
    }

    /// Total length on the wire in bits.
    #[must_use]
    pub fn wire_bits(&self) -> u64 {
        OVERHEAD_BITS + self.payload.len() as u64 * 8
    }

    /// Encodes the frame; the FCS covers FC through INFO.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(28 + self.payload.len());
        out.extend_from_slice(&[PREAMBLE; PREAMBLE_LEN]);
        out.push(SD);
        out.push(self.class.to_byte());
        out.extend_from_slice(&self.destination);
        out.extend_from_slice(&self.source);
        out.extend_from_slice(&self.payload);
        let fcs = crc32(&out[PREAMBLE_LEN + 1..]);
        out.extend_from_slice(&fcs.to_be_bytes());
        out.push(ED);
        out.push(self.frame_status);
        out
    }

    /// Decodes and validates a data frame.
    ///
    /// # Errors
    ///
    /// Any [`FrameError`]: short buffer, bad delimiters, an unknown or
    /// token frame-control code, or an FCS mismatch.
    pub fn decode(bytes: &[u8]) -> Result<Self, FrameError> {
        const MIN: usize = 28;
        if bytes.len() < MIN {
            return Err(FrameError::TooShort {
                got: bytes.len(),
                need: MIN,
            });
        }
        if bytes[PREAMBLE_LEN] != SD {
            return Err(FrameError::BadDelimiter {
                field: "SD",
                found: bytes[PREAMBLE_LEN],
            });
        }
        let ed_pos = bytes.len() - 2;
        if bytes[ed_pos] != ED {
            return Err(FrameError::BadDelimiter {
                field: "ED",
                found: bytes[ed_pos],
            });
        }
        let class = match FrameClass::from_byte(bytes[PREAMBLE_LEN + 1]) {
            Some(FrameClass::Token) | None => return Err(FrameError::WrongKind),
            Some(c) => c,
        };
        let fcs_pos = ed_pos - 4;
        let carried = u32::from_be_bytes(bytes[fcs_pos..ed_pos].try_into().expect("4 bytes"));
        let computed = crc32(&bytes[PREAMBLE_LEN + 1..fcs_pos]);
        if carried != computed {
            return Err(FrameError::BadChecksum { computed, carried });
        }
        let destination = bytes[PREAMBLE_LEN + 2..PREAMBLE_LEN + 8]
            .try_into()
            .expect("6 bytes");
        let source = bytes[PREAMBLE_LEN + 8..PREAMBLE_LEN + 14]
            .try_into()
            .expect("6 bytes");
        let payload = bytes[PREAMBLE_LEN + 14..fcs_pos].to_vec();
        Ok(DataFrame {
            class,
            destination,
            source,
            payload,
            frame_status: bytes[bytes.len() - 1],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_roundtrip_and_length() {
        let t = Token;
        let wire = t.encode();
        assert_eq!(wire.len() as u64 * 8, TOKEN_BITS);
        assert_eq!(t.wire_bits(), 88);
        assert_eq!(Token::decode(&wire).unwrap(), Token);
    }

    #[test]
    fn token_decode_errors() {
        assert!(matches!(
            Token::decode(&[0; 5]),
            Err(FrameError::TooShort { .. })
        ));
        let mut wire = Token.encode();
        wire[PREAMBLE_LEN] = 0x00;
        assert!(matches!(
            Token::decode(&wire),
            Err(FrameError::BadDelimiter { field: "SD", .. })
        ));
        let mut wire = Token.encode();
        wire[PREAMBLE_LEN + 1] = FrameClass::Synchronous.to_byte();
        assert_eq!(Token::decode(&wire), Err(FrameError::WrongKind));
        let mut wire = Token.encode();
        wire[PREAMBLE_LEN + 2] = 0x00;
        assert!(matches!(
            Token::decode(&wire),
            Err(FrameError::BadDelimiter { field: "ED", .. })
        ));
    }

    #[test]
    fn frame_class_codes() {
        for class in [
            FrameClass::Token,
            FrameClass::Synchronous,
            FrameClass::Asynchronous,
            FrameClass::Mac,
        ] {
            assert_eq!(FrameClass::from_byte(class.to_byte()), Some(class));
        }
        assert_eq!(FrameClass::from_byte(0xFF), None);
        assert!(FrameClass::Synchronous.is_synchronous());
        assert!(!FrameClass::Asynchronous.is_synchronous());
    }

    #[test]
    fn data_frame_roundtrip_both_classes() {
        for class in [FrameClass::Synchronous, FrameClass::Asynchronous] {
            let f = DataFrame::new(class, [3; 6], [4; 6], vec![1, 2, 3, 4]);
            let wire = f.encode();
            assert_eq!(wire.len(), 28 + 4);
            assert_eq!(f.wire_bits(), OVERHEAD_BITS + 32);
            let back = DataFrame::decode(&wire).unwrap();
            assert_eq!(back, f);
            assert_eq!(back.class(), class);
            assert_eq!(back.destination(), [3; 6]);
            assert_eq!(back.source(), [4; 6]);
            assert_eq!(back.payload(), &[1, 2, 3, 4]);
        }
    }

    #[test]
    fn corruption_is_detected() {
        let f = DataFrame::new(FrameClass::Synchronous, [1; 6], [2; 6], b"sync".to_vec());
        let mut wire = f.encode();
        wire[PREAMBLE_LEN + 3] ^= 0x80; // flip a DA bit
        assert!(matches!(
            DataFrame::decode(&wire),
            Err(FrameError::BadChecksum { .. })
        ));
    }

    #[test]
    fn decode_rejects_tokens_and_unknown_classes() {
        let f = DataFrame::new(FrameClass::Synchronous, [0; 6], [0; 6], vec![7]);
        let mut wire = f.encode();
        wire[PREAMBLE_LEN + 1] = FrameClass::Token.to_byte();
        assert_eq!(DataFrame::decode(&wire), Err(FrameError::WrongKind));
        let mut wire = f.encode();
        wire[PREAMBLE_LEN + 1] = 0xEE;
        assert_eq!(DataFrame::decode(&wire), Err(FrameError::WrongKind));
    }

    #[test]
    #[should_panic(expected = "tokens carry no payload")]
    fn token_class_data_frame_panics() {
        let _ = DataFrame::new(FrameClass::Token, [0; 6], [0; 6], vec![]);
    }
}
