//! `ringrt-store`: a columnar store for named synchronous streams with
//! maintained secondary indexes.
//!
//! The registry historically kept each ring's streams in a flat
//! `Vec<NamedStream>` and rebuilt a [`MessageSet`] (clone + sort) for every
//! admission decision. That is fine for the paper's tens of streams and
//! arithmetic fiction for the ROADMAP's millions. [`StreamStore`] keeps the
//! per-stream attributes in parallel columns (period, relative deadline,
//! message length, name) addressed by recycled row slots, and maintains the
//! orders the admission theorems consume as *indexes* instead of per-query
//! sorts:
//!
//! * **admission order** (= station order): a Fenwick tree over admission
//!   sequence numbers answers rank ("which station index is this stream?")
//!   and select ("which stream is station k?") in O(log n), which makes
//!   removal O(log n) index maintenance and `SHOW` paging O(log n + page);
//! * **deadline-monotonic order**: a `BTreeSet` keyed by
//!   `(deadline, period, sequence)` — the exact `MessageSet::dm_order`
//!   tie-break, since relative sequence order equals relative station
//!   order — gives the PDP re-test iteration and `D_min` without sorting;
//! * **period order**: a `BTreeSet` keyed by `(period, sequence)` gives
//!   `P_min` for TTRT selection in O(1);
//! * **name**: a `HashMap` gives duplicate detection and lookup in O(1).
//!
//! Rows are addressed by generation-stamped [`StreamHandle`]s: freeing a
//! row bumps its generation, so a stale handle can never silently read a
//! recycled slot. After heavy churn the sequence domain is compacted
//! (sequences renumbered densely, preserving relative order) so iteration
//! and memory stay proportional to the live set; every such rebuild bumps
//! [`StreamStore::index_rebuilds`], which both observability and the
//! registry's term-cache validity checks consume.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeSet, HashMap};

use ringrt_model::{MessageSet, ModelError, SetView, SyncStream};
use ringrt_units::{Bandwidth, Bits, Seconds};

mod fenwick;

use fenwick::Fenwick;

/// Sentinel for "this admission sequence is no longer live".
const DEAD: u32 = u32::MAX;

/// Compact the sequence domain when less than half of it is live (and it
/// is big enough for the rebuild to matter). Keeps admission-order scans
/// within 2x of the live count and bounds index memory under churn.
const REBUILD_MIN_DOMAIN: usize = 64;

/// A generation-stamped handle to a stored stream.
///
/// The handle names a physical row; the generation is bumped every time
/// the row is freed, so handles from before a removal can never alias the
/// stream that later recycles the slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StreamHandle {
    row: u32,
    generation: u32,
}

impl StreamHandle {
    /// The generation stamp carried by this handle.
    #[must_use]
    pub fn generation(&self) -> u32 {
        self.generation
    }
}

/// Occupancy statistics for one store, consumed by `STATS` / `METRICS`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Live streams.
    pub streams: usize,
    /// Sequence-domain compactions performed over the store's lifetime.
    pub index_rebuilds: u64,
    /// Approximate resident bytes of columns plus indexes.
    pub bytes: usize,
}

/// Columnar stream store with maintained secondary indexes.
///
/// Equality ignores physical row placement and sequence numbering: two
/// stores are equal iff they hold the same `(name, stream)` pairs in the
/// same admission order — the property journal replay and snapshot
/// shipping must preserve.
#[derive(Debug, Clone)]
pub struct StreamStore {
    // -- columns, indexed by row slot --------------------------------------
    names: Vec<String>,
    periods: Vec<Seconds>,
    /// Explicit relative deadline; `None` means "end of period".
    deadlines: Vec<Option<Seconds>>,
    lengths: Vec<Bits>,
    seqs: Vec<u64>,
    generations: Vec<u32>,
    free: Vec<u32>,
    // -- admission-order index ---------------------------------------------
    /// `seq -> row`, [`DEAD`] once removed. Length equals the sequence
    /// domain size; the next admission takes sequence `seq_rows.len()`.
    seq_rows: Vec<u32>,
    occupancy: Fenwick,
    live: usize,
    // -- secondary indexes --------------------------------------------------
    /// `(relative_deadline bits, period bits, seq)` — deadline-monotonic
    /// order with the `MessageSet::dm_order` tie-break.
    dm: BTreeSet<(u64, u64, u64)>,
    /// `(period bits, seq)` — rate-monotonic order; first entry is `P_min`.
    by_period: BTreeSet<(u64, u64)>,
    by_name: HashMap<String, u32>,
    rebuilds: u64,
}

impl Default for StreamStore {
    fn default() -> Self {
        StreamStore::new()
    }
}

impl StreamStore {
    /// Creates an empty store.
    #[must_use]
    pub fn new() -> Self {
        StreamStore {
            names: Vec::new(),
            periods: Vec::new(),
            deadlines: Vec::new(),
            lengths: Vec::new(),
            seqs: Vec::new(),
            generations: Vec::new(),
            free: Vec::new(),
            seq_rows: Vec::new(),
            occupancy: Fenwick::default(),
            live: 0,
            dm: BTreeSet::new(),
            by_period: BTreeSet::new(),
            by_name: HashMap::new(),
            rebuilds: 0,
        }
    }

    /// Number of live streams.
    #[must_use]
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether the store holds no streams.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Whether a stream named `name` is stored.
    #[must_use]
    pub fn contains(&self, name: &str) -> bool {
        self.by_name.contains_key(name)
    }

    /// The handle of the stream named `name`.
    #[must_use]
    pub fn handle_of(&self, name: &str) -> Option<StreamHandle> {
        self.by_name.get(name).map(|&row| StreamHandle {
            row,
            generation: self.generations[row as usize],
        })
    }

    /// Reads a stream through its handle; `None` once the handle is stale
    /// (the row was freed or recycled after the handle was issued).
    #[must_use]
    pub fn get(&self, handle: StreamHandle) -> Option<(&str, SyncStream)> {
        let row = handle.row as usize;
        if row >= self.generations.len()
            || self.generations[row] != handle.generation
            || self.seqs[row] as usize >= self.seq_rows.len()
            || self.seq_rows[self.seqs[row] as usize] != handle.row
        {
            return None;
        }
        Some((&self.names[row], self.stream_at(row)))
    }

    /// Station index (position in admission order) of the stream named
    /// `name`: O(log n) via the occupancy index.
    #[must_use]
    pub fn station_index(&self, name: &str) -> Option<usize> {
        let &row = self.by_name.get(name)?;
        Some(self.occupancy.prefix(self.seqs[row as usize] as usize))
    }

    /// The admission sequence currently assigned to `name`.
    #[must_use]
    pub fn seq_of(&self, name: &str) -> Option<u64> {
        self.by_name.get(name).map(|&row| self.seqs[row as usize])
    }

    /// Admits a stream, assigning it the next admission sequence (= the
    /// highest station index). Returns its handle.
    ///
    /// # Panics
    ///
    /// Panics if a stream named `name` is already stored; callers check
    /// [`StreamStore::contains`] first.
    pub fn admit(&mut self, name: &str, stream: SyncStream) -> StreamHandle {
        assert!(
            !self.by_name.contains_key(name),
            "duplicate stream `{name}`"
        );
        let seq = self.seq_rows.len() as u64;
        let row = match self.free.pop() {
            Some(row) => {
                let r = row as usize;
                self.names[r] = name.to_owned();
                self.periods[r] = stream.period();
                self.deadlines[r] = explicit_deadline(&stream);
                self.lengths[r] = stream.length_bits();
                self.seqs[r] = seq;
                row
            }
            None => {
                let row = self.names.len() as u32;
                self.names.push(name.to_owned());
                self.periods.push(stream.period());
                self.deadlines.push(explicit_deadline(&stream));
                self.lengths.push(stream.length_bits());
                self.seqs.push(seq);
                self.generations.push(0);
                row
            }
        };
        self.seq_rows.push(row);
        self.occupancy.push_zero();
        self.occupancy.add(seq as usize, 1);
        self.live += 1;
        self.dm.insert(self.dm_key(row as usize));
        self.by_period.insert(self.period_key(row as usize));
        self.by_name.insert(name.to_owned(), row);
        StreamHandle {
            row,
            generation: self.generations[row as usize],
        }
    }

    /// Exactly undoes the **most recent** [`StreamStore::admit`], restoring
    /// the store (including the sequence counter) bit-for-bit. Used by the
    /// registry's tentative-admit flow when the schedulability test rejects
    /// the candidate or the journal write fails.
    ///
    /// # Panics
    ///
    /// Panics if `handle` does not name the newest admission.
    pub fn rollback_admit(&mut self, handle: StreamHandle) {
        let row = handle.row as usize;
        let seq = self.seqs[row];
        assert!(
            seq as usize + 1 == self.seq_rows.len()
                && self.generations[row] == handle.generation
                && self.seq_rows[seq as usize] == handle.row,
            "rollback_admit requires the newest admission"
        );
        self.dm.remove(&self.dm_key(row));
        self.by_period.remove(&self.period_key(row));
        self.by_name.remove(&self.names[row]);
        self.occupancy.add(seq as usize, -1);
        self.occupancy.truncate(seq as usize);
        self.seq_rows.pop();
        self.live -= 1;
        self.generations[row] = self.generations[row].wrapping_add(1);
        self.free.push(handle.row);
    }

    /// Removes the stream named `name`, returning the admission sequence it
    /// held. O(log n) index maintenance; may trigger a sequence-domain
    /// compaction (see [`StreamStore::index_rebuilds`]).
    pub fn remove(&mut self, name: &str) -> Option<u64> {
        let row32 = self.by_name.remove(name)?;
        let row = row32 as usize;
        let seq = self.seqs[row];
        self.dm.remove(&self.dm_key(row));
        self.by_period.remove(&self.period_key(row));
        self.seq_rows[seq as usize] = DEAD;
        self.occupancy.add(seq as usize, -1);
        self.live -= 1;
        self.generations[row] = self.generations[row].wrapping_add(1);
        self.names[row].clear();
        self.free.push(row32);
        if self.seq_rows.len() >= REBUILD_MIN_DOMAIN && self.live * 2 < self.seq_rows.len() {
            self.rebuild_sequences();
        }
        Some(seq)
    }

    /// Renumbers admission sequences densely (`0..live`), preserving
    /// relative order, and rebuilds the indexes that key on sequences.
    fn rebuild_sequences(&mut self) {
        let rows: Vec<u32> = self
            .seq_rows
            .iter()
            .copied()
            .filter(|&r| r != DEAD)
            .collect();
        self.seq_rows.clear();
        self.occupancy.truncate(0);
        self.dm.clear();
        self.by_period.clear();
        for (new_seq, &row) in rows.iter().enumerate() {
            self.seqs[row as usize] = new_seq as u64;
            self.seq_rows.push(row);
            self.occupancy.push_zero();
            self.occupancy.add(new_seq, 1);
            self.dm.insert(self.dm_key(row as usize));
            self.by_period.insert(self.period_key(row as usize));
        }
        self.rebuilds += 1;
    }

    /// Sequence-domain compactions performed so far. Renumbering preserves
    /// admission order but invalidates externally cached per-sequence
    /// state; callers cache this counter and compare.
    #[must_use]
    pub fn index_rebuilds(&self) -> u64 {
        self.rebuilds
    }

    /// Streams in admission (= station) order as
    /// `(sequence, name, stream)`.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &str, SyncStream)> + '_ {
        self.seq_rows
            .iter()
            .filter(|&&row| row != DEAD)
            .map(move |&row| {
                let r = row as usize;
                (self.seqs[r], self.names[r].as_str(), self.stream_at(r))
            })
    }

    /// Streams in deadline-monotonic order as `(sequence, stream)` —
    /// shortest relative deadline first, ties by period then admission
    /// order, exactly matching `MessageSet::dm_order`.
    pub fn dm_iter(&self) -> impl Iterator<Item = (u64, SyncStream)> + '_ {
        self.dm.iter().map(move |&(_, _, seq)| {
            let row = self.seq_rows[seq as usize] as usize;
            (seq, self.stream_at(row))
        })
    }

    /// Deadline-monotonic rank (0 = highest priority) of the stream holding
    /// admission sequence `seq`. O(rank).
    ///
    /// # Panics
    ///
    /// Panics if `seq` is not live.
    #[must_use]
    pub fn dm_rank_of(&self, seq: u64) -> usize {
        let row = self.seq_rows[seq as usize];
        assert!(row != DEAD, "sequence {seq} is not live");
        let key = self.dm_key(row as usize);
        self.dm.range(..key).count()
    }

    /// A page of the admission-order listing: up to `limit` streams
    /// starting at station index `offset`. O(log n + limit).
    pub fn page(
        &self,
        offset: usize,
        limit: usize,
    ) -> impl Iterator<Item = (&str, SyncStream)> + '_ {
        let start = self.occupancy.select(offset).unwrap_or(self.seq_rows.len());
        self.seq_rows[start..]
            .iter()
            .filter(|&&row| row != DEAD)
            .take(limit)
            .map(move |&row| {
                let r = row as usize;
                (self.names[r].as_str(), self.stream_at(r))
            })
    }

    /// The shortest relative deadline `D_min`, or `None` when empty. O(1)
    /// off the deadline index.
    #[must_use]
    pub fn min_deadline(&self) -> Option<Seconds> {
        self.dm
            .first()
            .map(|&(d, _, _)| Seconds::new(f64::from_bits(d)))
    }

    /// The shortest period `P_min`, or `None` when empty. O(1) off the
    /// period index.
    #[must_use]
    pub fn min_period(&self) -> Option<Seconds> {
        self.by_period
            .first()
            .map(|&(p, _)| Seconds::new(f64::from_bits(p)))
    }

    /// Total utilization `Σ C_i / P_i`, summed in admission order — the
    /// same accumulation order as `MessageSet::utilization`.
    #[must_use]
    pub fn utilization(&self, bandwidth: Bandwidth) -> f64 {
        self.iter().map(|(_, _, s)| s.utilization(bandwidth)).sum()
    }

    /// Materializes the streams (admission order) as a [`MessageSet`];
    /// `None` when empty. The compatibility bridge to pre-view consumers —
    /// O(n), so hot paths use the view instead.
    ///
    /// # Errors
    ///
    /// Never fails in practice: every stored stream was a valid
    /// `SyncStream`, and the empty case returns `Ok(None)`.
    pub fn message_set(&self) -> Result<Option<MessageSet>, ModelError> {
        if self.is_empty() {
            return Ok(None);
        }
        MessageSet::new(self.iter().map(|(_, _, s)| s).collect()).map(Some)
    }

    /// Occupancy statistics for observability.
    #[must_use]
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            streams: self.live,
            index_rebuilds: self.rebuilds,
            bytes: self.approx_bytes(),
        }
    }

    /// Approximate resident bytes: column capacities plus index entries.
    #[must_use]
    pub fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        let names_heap: usize = self.names.iter().map(String::capacity).sum();
        let name_index: usize = self
            .by_name
            .keys()
            .map(|k| k.capacity() + size_of::<(String, u32)>())
            .sum();
        self.names.capacity() * size_of::<String>()
            + names_heap
            + self.periods.capacity() * size_of::<Seconds>()
            + self.deadlines.capacity() * size_of::<Option<Seconds>>()
            + self.lengths.capacity() * size_of::<Bits>()
            + self.seqs.capacity() * size_of::<u64>()
            + self.generations.capacity() * size_of::<u32>()
            + self.free.capacity() * size_of::<u32>()
            + self.seq_rows.capacity() * size_of::<u32>()
            + self.occupancy.len() * size_of::<u32>()
            + self.dm.len() * size_of::<(u64, u64, u64)>()
            + self.by_period.len() * size_of::<(u64, u64)>()
            + name_index
    }

    fn stream_at(&self, row: usize) -> SyncStream {
        let s = SyncStream::new(self.periods[row], self.lengths[row]);
        match self.deadlines[row] {
            Some(d) => s.with_relative_deadline(d),
            None => s,
        }
    }

    fn dm_key(&self, row: usize) -> (u64, u64, u64) {
        let deadline = self.deadlines[row].unwrap_or(self.periods[row]);
        (
            deadline.as_secs_f64().to_bits(),
            self.periods[row].as_secs_f64().to_bits(),
            self.seqs[row],
        )
    }

    fn period_key(&self, row: usize) -> (u64, u64) {
        (self.periods[row].as_secs_f64().to_bits(), self.seqs[row])
    }
}

fn explicit_deadline(stream: &SyncStream) -> Option<Seconds> {
    if stream.has_implicit_deadline() {
        None
    } else {
        Some(stream.relative_deadline())
    }
}

impl PartialEq for StreamStore {
    /// Admission-order `(name, stream)` equality; physical rows, sequence
    /// numbering gaps, and rebuild history are representation detail.
    fn eq(&self, other: &Self) -> bool {
        self.live == other.live
            && self
                .iter()
                .zip(other.iter())
                .all(|((_, an, astream), (_, bn, bstream))| an == bn && astream == bstream)
    }
}

impl SetView for StreamStore {
    fn view_len(&self) -> usize {
        self.live
    }

    fn stations(&self) -> Box<dyn Iterator<Item = SyncStream> + '_> {
        Box::new(self.iter().map(|(_, _, s)| s))
    }

    fn dm_streams(&self) -> Box<dyn Iterator<Item = SyncStream> + '_> {
        Box::new(self.dm_iter().map(|(_, s)| s))
    }

    fn min_deadline_view(&self) -> Option<Seconds> {
        self.min_deadline()
    }

    fn min_period_view(&self) -> Option<Seconds> {
        self.min_period()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(period_ms: f64, bits: u64) -> SyncStream {
        SyncStream::new(Seconds::from_millis(period_ms), Bits::new(bits))
    }

    #[test]
    fn admit_iter_and_lookup() {
        let mut store = StreamStore::new();
        let h0 = store.admit("a", stream(30.0, 100));
        store.admit("b", stream(10.0, 200));
        store.admit("c", stream(20.0, 300));
        assert_eq!(store.len(), 3);
        assert_eq!(store.station_index("a"), Some(0));
        assert_eq!(store.station_index("c"), Some(2));
        assert_eq!(store.get(h0).map(|(n, _)| n), Some("a"));
        let names: Vec<&str> = store.iter().map(|(_, n, _)| n).collect();
        assert_eq!(names, ["a", "b", "c"]);
        // DM order: b (10) < c (20) < a (30).
        let dm: Vec<u64> = store.dm_iter().map(|(seq, _)| seq).collect();
        assert_eq!(dm, [1, 2, 0]);
        assert_eq!(store.dm_rank_of(0), 2);
        assert_eq!(store.min_period(), Some(Seconds::from_millis(10.0)));
        assert_eq!(store.min_deadline(), Some(Seconds::from_millis(10.0)));
    }

    #[test]
    fn remove_shifts_station_indexes() {
        let mut store = StreamStore::new();
        for (i, name) in ["a", "b", "c", "d"].iter().enumerate() {
            store.admit(name, stream(10.0 + i as f64, 100));
        }
        assert_eq!(store.remove("b"), Some(1));
        assert_eq!(store.len(), 3);
        assert!(!store.contains("b"));
        assert_eq!(store.station_index("a"), Some(0));
        assert_eq!(store.station_index("c"), Some(1));
        assert_eq!(store.station_index("d"), Some(2));
        assert_eq!(store.remove("b"), None);
    }

    #[test]
    fn stale_handles_do_not_alias_recycled_rows() {
        let mut store = StreamStore::new();
        let h = store.admit("old", stream(10.0, 100));
        store.remove("old");
        assert_eq!(store.get(h), None);
        // The freed row is recycled; the stale handle still reads nothing.
        let h2 = store.admit("new", stream(20.0, 200));
        assert_eq!(store.get(h), None);
        assert_eq!(store.get(h2).map(|(n, _)| n), Some("new"));
    }

    #[test]
    fn rollback_restores_sequences_exactly() {
        let mut store = StreamStore::new();
        store.admit("a", stream(30.0, 100));
        let reference = store.clone();
        let h = store.admit("reject-me", stream(5.0, 900));
        store.rollback_admit(h);
        assert_eq!(store, reference);
        assert_eq!(store.seq_of("a"), Some(0));
        // The next admission reuses the rolled-back sequence.
        store.admit("b", stream(40.0, 100));
        assert_eq!(store.seq_of("b"), Some(1));
        assert_eq!(store.station_index("b"), Some(1));
    }

    #[test]
    fn churn_triggers_rebuild_and_preserves_order() {
        let mut store = StreamStore::new();
        for i in 0..80 {
            store.admit(&format!("s{i}"), stream(10.0 + i as f64, 100));
        }
        assert_eq!(store.index_rebuilds(), 0);
        for i in 0..60 {
            store.remove(&format!("s{i}"));
        }
        assert!(store.index_rebuilds() >= 1, "dense churn must compact");
        let names: Vec<String> = store.iter().map(|(_, n, _)| n.to_owned()).collect();
        let expect: Vec<String> = (60..80).map(|i| format!("s{i}")).collect();
        assert_eq!(names, expect);
        // Compaction keeps the sequence domain within 2x of the live set.
        let seqs: Vec<u64> = store.iter().map(|(seq, _, _)| seq).collect();
        assert!(seqs.windows(2).all(|w| w[0] < w[1]));
        assert!(*seqs.last().unwrap() < 2 * store.len() as u64);
        for (k, name) in expect.iter().enumerate() {
            assert_eq!(store.station_index(name), Some(k));
        }
    }

    #[test]
    fn paging_matches_full_iteration() {
        let mut store = StreamStore::new();
        for i in 0..10 {
            store.admit(&format!("s{i}"), stream(10.0 + i as f64, 100));
        }
        store.remove("s3");
        store.remove("s7");
        let all: Vec<String> = store.iter().map(|(_, n, _)| n.to_owned()).collect();
        for offset in 0..=all.len() + 1 {
            for limit in 0..=all.len() + 1 {
                let page: Vec<String> = store
                    .page(offset, limit)
                    .map(|(n, _)| n.to_owned())
                    .collect();
                let expect: Vec<String> = all.iter().skip(offset).take(limit).cloned().collect();
                assert_eq!(page, expect, "offset={offset} limit={limit}");
            }
        }
    }

    #[test]
    fn equality_ignores_sequence_gaps() {
        let mut gappy = StreamStore::new();
        gappy.admit("a", stream(30.0, 100));
        gappy.admit("dead", stream(10.0, 100));
        gappy.admit("b", stream(20.0, 100));
        gappy.remove("dead");
        let mut dense = StreamStore::new();
        dense.admit("a", stream(30.0, 100));
        dense.admit("b", stream(20.0, 100));
        assert_eq!(gappy, dense);
        dense.remove("b");
        assert_ne!(gappy, dense);
    }

    #[test]
    fn view_matches_materialized_message_set() {
        let mut store = StreamStore::new();
        store.admit("a", stream(30.0, 100));
        store.admit(
            "tight",
            stream(50.0, 200).with_relative_deadline(Seconds::from_millis(10.0)),
        );
        store.admit("c", stream(20.0, 300));
        let set = store.message_set().unwrap().unwrap();
        let via_view: Vec<SyncStream> = store.stations().collect();
        assert_eq!(via_view, set.as_slice());
        let dm_view: Vec<SyncStream> = store.dm_streams().collect();
        let dm_set: Vec<SyncStream> = SetView::dm_streams(&set).collect();
        assert_eq!(dm_view, dm_set);
        assert_eq!(
            store.min_deadline().unwrap().as_secs_f64().to_bits(),
            set.min_deadline().as_secs_f64().to_bits()
        );
        assert_eq!(
            store.min_period().unwrap().as_secs_f64().to_bits(),
            set.min_period().as_secs_f64().to_bits()
        );
        assert_eq!(
            store.utilization(Bandwidth::from_mbps(100.0)).to_bits(),
            set.utilization(Bandwidth::from_mbps(100.0)).to_bits()
        );
    }

    #[test]
    fn stats_track_occupancy() {
        let mut store = StreamStore::new();
        assert_eq!(store.stats().streams, 0);
        store.admit("a", stream(30.0, 100));
        let s = store.stats();
        assert_eq!(s.streams, 1);
        assert!(s.bytes > 0);
        assert_eq!(s.index_rebuilds, 0);
    }
}
