//! Priority-level quantization (the 8-level reality of IEEE 802.5).
//!
//! The paper's rate-monotonic implementation assumes every stream gets its
//! own priority, but the 802.5 access-control byte carries only **3
//! priority bits — 8 service levels** (the `ringrt-frames` crate
//! implements that byte). With `n > 8` streams, several streams must share
//! a level, and the MAC arbitrates between equals by ring position, not by
//! deadline.
//!
//! This module provides the standard conservative analysis for quantized
//! priorities: a message can be delayed by *every* message of a
//! same-level peer (neither can preempt the other), so same-level streams
//! are charged like higher-priority interference. With one stream per
//! level the analysis reduces exactly to Theorem 4.1.

use ringrt_units::Seconds;

use crate::rm::RmTask;

/// Maps deadline-monotonic ranks `0..n` onto `levels` hardware priority
/// classes (level 0 = highest). Ranks are distributed as evenly as
/// possible, preserving order.
///
/// # Panics
///
/// Panics if `levels` is zero.
///
/// # Examples
///
/// ```
/// use ringrt_core::pdp::quantize_ranks;
///
/// // Six streams onto 3 levels: two per level.
/// assert_eq!(quantize_ranks(6, 3), vec![0, 0, 1, 1, 2, 2]);
/// // More levels than streams: identity.
/// assert_eq!(quantize_ranks(3, 8), vec![0, 1, 2]);
/// ```
#[must_use]
pub fn quantize_ranks(n: usize, levels: usize) -> Vec<usize> {
    assert!(levels > 0, "need at least one priority level");
    (0..n).map(|rank| rank * levels.min(n) / n).collect()
}

/// Exact schedulability of `tasks` (in deadline-monotonic order, paired
/// with their quantized `levels`) under fixed priorities with ties:
/// same-level peers interfere like higher-priority tasks, lower levels
/// contribute only the blocking term.
///
/// With distinct levels this is exactly the Theorem 4.1 test.
pub(crate) fn is_schedulable_quantized(
    tasks: &[RmTask],
    levels: &[usize],
    blocking: Seconds,
) -> bool {
    debug_assert_eq!(tasks.len(), levels.len());
    for i in 0..tasks.len() {
        if quantized_response_time(tasks, levels, i, blocking).is_none() {
            return false;
        }
    }
    true
}

/// Worst-case response time of task `i` under quantized priorities, or
/// `None` if it exceeds the deadline.
pub(crate) fn quantized_response_time(
    tasks: &[RmTask],
    levels: &[usize],
    i: usize,
    blocking: Seconds,
) -> Option<Seconds> {
    let task = &tasks[i];
    let deadline = task.deadline;
    let tol = Seconds::new(1e-9 * deadline.as_secs_f64().max(1e-30));
    // Interference set: strictly higher levels plus same-level peers.
    let interferers: Vec<&RmTask> = tasks
        .iter()
        .enumerate()
        .filter(|&(j, _)| j != i && levels[j] <= levels[i])
        .map(|(_, t)| t)
        .collect();
    let mut r = task.cost + blocking;
    for _ in 0..10_000 {
        if r > deadline + tol {
            return None;
        }
        let mut next = task.cost + blocking;
        for t in &interferers {
            let ratio = r / t.period;
            let nearest = ratio.round();
            let ceil = if (ratio - nearest).abs() <= 1e-9 * nearest.abs().max(1.0) {
                nearest
            } else {
                ratio.ceil()
            };
            next += t.cost * ceil;
        }
        if next <= r + tol {
            return if next <= deadline + tol {
                Some(next)
            } else {
                None
            };
        }
        r = next;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringrt_units::Seconds;

    fn t(cost_ms: f64, period_ms: f64) -> RmTask {
        RmTask::new(
            Seconds::from_millis(cost_ms),
            Seconds::from_millis(period_ms),
        )
    }

    #[test]
    fn quantize_distributes_evenly() {
        assert_eq!(quantize_ranks(8, 8), vec![0, 1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(quantize_ranks(4, 2), vec![0, 0, 1, 1]);
        assert_eq!(quantize_ranks(5, 2), vec![0, 0, 0, 1, 1]);
        assert_eq!(
            quantize_ranks(100, 8).iter().filter(|&&l| l == 0).count(),
            13
        );
        assert_eq!(quantize_ranks(1, 8), vec![0]);
        // Single level: everyone equal.
        assert!(quantize_ranks(10, 1).iter().all(|&l| l == 0));
    }

    #[test]
    #[should_panic(expected = "at least one priority level")]
    fn zero_levels_rejected() {
        let _ = quantize_ranks(4, 0);
    }

    #[test]
    fn distinct_levels_match_plain_rta() {
        let tasks = [t(5.0, 20.0), t(10.0, 50.0), t(20.0, 100.0)];
        let levels = [0, 1, 2];
        let b = Seconds::from_millis(1.0);
        for i in 0..3 {
            assert_eq!(
                quantized_response_time(&tasks, &levels, i, b),
                crate::rm::response_time(&tasks, i, b),
                "task {i}"
            );
        }
        assert_eq!(
            is_schedulable_quantized(&tasks, &levels, b),
            crate::rm::is_schedulable_rta(&tasks, b)
        );
    }

    #[test]
    fn shared_level_adds_mutual_interference() {
        // Two tasks on one level: each sees the other as interference.
        let tasks = [t(8.0, 20.0), t(8.0, 20.0)];
        let b = Seconds::ZERO;
        assert!(is_schedulable_quantized(&tasks, &[0, 1], b));
        // Same level: R = 8 + 8·⌈R/20⌉ → 16 ≤ 20: still fine.
        assert!(is_schedulable_quantized(&tasks, &[0, 0], b));
        // But 12-ms tasks fit only with distinct levels.
        let tight = [t(12.0, 20.0), t(12.0, 40.0)];
        assert!(is_schedulable_quantized(&tight, &[0, 1], b));
        assert!(!is_schedulable_quantized(&tight, &[0, 0], b));
    }

    #[test]
    fn fewer_levels_never_help() {
        let tasks = [t(3.0, 10.0), t(5.0, 25.0), t(7.0, 60.0), t(10.0, 120.0)];
        let b = Seconds::from_millis(0.5);
        let full: Vec<usize> = (0..4).collect();
        for levels in [4usize, 3, 2, 1] {
            let q = quantize_ranks(4, levels);
            if is_schedulable_quantized(&tasks, &q, b) {
                // Anything schedulable with fewer levels is schedulable
                // with distinct ones.
                assert!(is_schedulable_quantized(&tasks, &full, b));
            }
        }
    }
}
