//! CLAIM-TTP33 — the paper's §2/§5 citation of Agrawal–Chen–Zhao: the
//! timed token protocol with the local allocation scheme guarantees any
//! synchronous load up to 33 % in the worst case — i.e. its *minimum*
//! breakdown utilization approaches 1/3 (of the usable bandwidth) for
//! adversarial period/TTRT alignments.
//!
//! The adversarial family: equal periods `P = (q+1)·TTRT − ε`, so each
//! station is guaranteed only `q_i − 1 = q − 1` full visits out of the
//! `≈ q+1` rotations per period. The saturation utilization is then
//! `≈ (q−1)/(q+1) · (1 − overheads)`, minimized at `q = 2` → 1/3.

use ringrt_bench::{banner, ExpOptions};
use ringrt_breakdown::table::{cell, Table};
use ringrt_breakdown::SaturationSearch;
use ringrt_core::ttp::{TtpAnalyzer, TtrtPolicy};
use ringrt_model::{MessageSet, RingConfig, SyncStream};
use ringrt_units::{Bandwidth, Bits, Seconds};

fn main() {
    let opts = ExpOptions::from_env();
    banner(
        "CLAIM-TTP33",
        "worst-case (minimum) breakdown utilization of the FDDI local scheme",
        &opts,
    );

    let bw = Bandwidth::from_mbps(100.0);
    let ring = RingConfig::fddi(opts.stations, bw);
    let ttrt = Seconds::from_millis(4.0);
    let search = SaturationSearch::with_tolerance(1e-5);

    let mut table = Table::new(&[
        "q",
        "period_over_ttrt",
        "breakdown_utilization",
        "ideal_bound_(q-1)/(q+1)",
    ]);
    let mut worst = f64::INFINITY;
    let mut worst_q = 0u64;
    for q in 2..=8u64 {
        // Periods just under (q+1)·TTRT: the token is guaranteed q−1 full
        // visits within any period window, while ≈ q+1 rotations elapse.
        let ratio = (q + 1) as f64 - 1e-6;
        let period = ttrt * ratio;
        let set = MessageSet::new(
            (0..opts.stations)
                .map(|_| SyncStream::new(period, Bits::new(100_000)))
                .collect(),
        )
        .expect("valid adversarial set");
        let analyzer = TtpAnalyzer::with_defaults(ring).with_ttrt_policy(TtrtPolicy::Fixed(ttrt));
        let sat = search
            .saturate(&analyzer, &set, bw)
            .expect("adversarial sets admit some load");
        let ideal = (q - 1) as f64 / (q + 1) as f64;
        if sat.utilization < worst {
            worst = sat.utilization;
            worst_q = q;
        }
        table.push_row(&[
            q.to_string(),
            cell(ratio, 3),
            cell(sat.utilization, 4),
            cell(ideal, 4),
        ]);
    }
    print!("{}", table.to_csv());
    println!();
    println!(
        "# minimum over the family: {:.4} at q = {worst_q} (paper/ACZ worst case: 1/3 of usable bandwidth ≈ {:.4} here)",
        worst,
        (1.0 / 3.0)
            * usable_fraction(&TtpAnalyzer::with_defaults(ring).with_ttrt_policy(TtrtPolicy::Fixed(ttrt)), ttrt, opts.stations, bw)
    );
}

/// The fraction of each rotation usable for synchronous payload after the
/// per-rotation overhead Θ' and the per-station frame overheads.
fn usable_fraction(analyzer: &TtpAnalyzer, ttrt: Seconds, stations: usize, bw: Bandwidth) -> f64 {
    let theta_prime = analyzer.theta_prime();
    let frame_ovhd = bw.transmission_time(Bits::new(112));
    ((ttrt - theta_prime - frame_ovhd * stations as f64) / ttrt).max(0.0)
}
