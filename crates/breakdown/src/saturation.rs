//! Scaling a message set to the schedulability boundary.

use ringrt_core::SchedulabilityTest;
use ringrt_exec::Pool;
use ringrt_model::MessageSet;
use ringrt_units::Bandwidth;

/// Cap on concurrent probes per multisection round: beyond this the
/// bracket shrinks slower per evaluation than it costs to fan out.
const MAX_SECTIONS: usize = 8;

/// Binary search for the saturation boundary of a message set under a
/// schedulability test.
///
/// Schedulability is monotone in the common length factor `α` (every
/// criterion's demand side grows with message lengths), so the largest
/// schedulable `α*` is well defined; `α*·M` belongs to the paper's
/// *saturated schedulable class* up to the search tolerance.
///
/// # Examples
///
/// ```
/// use ringrt_core::ttp::TtpAnalyzer;
/// use ringrt_model::{MessageSet, RingConfig, SyncStream};
/// use ringrt_breakdown::SaturationSearch;
/// use ringrt_units::{Bandwidth, Bits, Seconds};
///
/// let ring = RingConfig::fddi(2, Bandwidth::from_mbps(100.0));
/// let analyzer = TtpAnalyzer::with_defaults(ring);
/// let set = MessageSet::new(vec![
///     SyncStream::new(Seconds::from_millis(20.0), Bits::new(10_000)),
///     SyncStream::new(Seconds::from_millis(50.0), Bits::new(10_000)),
/// ])?;
/// let sat = SaturationSearch::default()
///     .saturate(&analyzer, &set, ring.bandwidth())
///     .expect("some positive load is schedulable");
/// assert!(sat.utilization > 0.0 && sat.utilization <= 1.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SaturationSearch {
    /// Relative width of the final `α` bracket; the reported utilization is
    /// accurate to roughly this relative error.
    pub tolerance: f64,
    /// Cap on bracket-expansion and bisection steps.
    pub max_iterations: u32,
}

impl Default for SaturationSearch {
    fn default() -> Self {
        SaturationSearch {
            tolerance: 1e-4,
            max_iterations: 200,
        }
    }
}

impl SaturationSearch {
    /// Creates a search with a custom relative tolerance.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < tolerance < 1`.
    #[must_use]
    pub fn with_tolerance(tolerance: f64) -> Self {
        assert!(
            tolerance > 0.0 && tolerance < 1.0,
            "tolerance must be in (0, 1), got {tolerance}"
        );
        SaturationSearch {
            tolerance,
            ..SaturationSearch::default()
        }
    }

    /// Scales `set` to the schedulability boundary of `test`.
    ///
    /// Returns `None` when no positive scaling is schedulable (for example
    /// a timed-token configuration where some stream has `q_i < 2` at the
    /// negotiated TTRT, or a priority-driven configuration whose blocking
    /// term alone exceeds a period): such sets contribute no saturated
    /// sample and the estimator counts them separately.
    #[must_use]
    pub fn saturate<T: SchedulabilityTest + ?Sized>(
        &self,
        test: &T,
        set: &MessageSet,
        bandwidth: Bandwidth,
    ) -> Option<SaturatedSet> {
        // Establish a bracket [lo, hi] with schedulable(lo) ∧ ¬schedulable(hi).
        let schedulable_at = |alpha: f64| test.is_schedulable(&set.with_scaled_lengths(alpha));

        let mut lo;
        let mut hi;
        if schedulable_at(1.0) {
            lo = 1.0;
            hi = 2.0;
            let mut steps = 0;
            while schedulable_at(hi) {
                lo = hi;
                hi *= 2.0;
                steps += 1;
                if steps > self.max_iterations {
                    // Pathological: the test accepts unbounded load.
                    return None;
                }
            }
        } else {
            hi = 1.0;
            lo = 0.5;
            let mut steps = 0;
            while !schedulable_at(lo) {
                hi = lo;
                lo /= 2.0;
                steps += 1;
                if steps > self.max_iterations || lo < 1e-12 {
                    return None;
                }
            }
        }

        // Bisect to the requested relative tolerance.
        let mut steps = 0;
        while (hi - lo) / lo > self.tolerance && steps < self.max_iterations {
            let mid = 0.5 * (lo + hi);
            if schedulable_at(mid) {
                lo = mid;
            } else {
                hi = mid;
            }
            steps += 1;
        }

        let saturated = set.with_scaled_lengths(lo);
        let utilization = saturated.utilization(bandwidth);
        Some(SaturatedSet {
            set: saturated,
            scale: lo,
            utilization,
        })
    }

    /// Like [`SaturationSearch::saturate`], but fans the boundary probes
    /// across `pool`'s workers: each bracket-expansion and refinement
    /// round evaluates up to `min(pool.threads(), 8)` candidate scales
    /// concurrently (a multisection search — `p` probes shrink the
    /// bracket by `p + 1` per round instead of bisection's 2).
    ///
    /// The result honors the same contract as the serial search (returned
    /// scale schedulable, bracket within tolerance) and is deterministic
    /// for a fixed probe count; with a single-threaded pool it is
    /// **identical** to [`SaturationSearch::saturate`]. Probe counts
    /// differ in their final `α*` only within the search tolerance.
    #[must_use]
    pub fn saturate_with<T>(
        &self,
        test: &T,
        set: &MessageSet,
        bandwidth: Bandwidth,
        pool: &Pool,
    ) -> Option<SaturatedSet>
    where
        T: SchedulabilityTest + Sync + ?Sized,
    {
        let probes = pool.threads().min(MAX_SECTIONS);
        if probes <= 1 {
            return self.saturate(test, set, bandwidth);
        }
        let schedulable_at = |alpha: f64| test.is_schedulable(&set.with_scaled_lengths(alpha));
        let batch = |alphas: &[f64]| pool.map_slice(alphas, |&a| schedulable_at(a));

        // Establish a bracket [lo, hi] with schedulable(lo) ∧ ¬schedulable(hi),
        // probing a whole geometric ladder per round.
        let mut lo;
        let mut hi;
        if schedulable_at(1.0) {
            lo = 1.0;
            let mut rounds = 0;
            loop {
                let ladder: Vec<f64> = (1..=probes).map(|j| lo * 2f64.powi(j as i32)).collect();
                let verdicts = batch(&ladder);
                if let Some(j) = verdicts.iter().position(|ok| !ok) {
                    if j > 0 {
                        lo = ladder[j - 1];
                    }
                    hi = ladder[j];
                    break;
                }
                lo = *ladder.last().expect("probes >= 2");
                rounds += 1;
                if rounds > self.max_iterations {
                    // Pathological: the test accepts unbounded load.
                    return None;
                }
            }
        } else {
            hi = 1.0;
            let mut rounds = 0;
            loop {
                let ladder: Vec<f64> = (1..=probes).map(|j| hi * 0.5f64.powi(j as i32)).collect();
                let verdicts = batch(&ladder);
                if let Some(j) = verdicts.iter().position(|ok| *ok) {
                    lo = ladder[j];
                    if j > 0 {
                        hi = ladder[j - 1];
                    }
                    break;
                }
                hi = *ladder.last().expect("probes >= 2");
                rounds += 1;
                if rounds > self.max_iterations || hi < 1e-12 {
                    return None;
                }
            }
        }

        // Multisection refinement: p equispaced interior probes per round.
        let mut rounds = 0;
        while (hi - lo) / lo > self.tolerance && rounds < self.max_iterations {
            let step = (hi - lo) / (probes + 1) as f64;
            let xs: Vec<f64> = (1..=probes).map(|j| lo + step * j as f64).collect();
            let verdicts = batch(&xs);
            // Monotone in α: the largest schedulable probe raises lo, the
            // first unschedulable one lowers hi.
            match verdicts.iter().position(|ok| !ok) {
                Some(0) => hi = xs[0],
                Some(j) => {
                    lo = xs[j - 1];
                    hi = xs[j];
                }
                None => lo = *xs.last().expect("probes >= 2"),
            }
            rounds += 1;
        }

        let saturated = set.with_scaled_lengths(lo);
        let utilization = saturated.utilization(bandwidth);
        Some(SaturatedSet {
            set: saturated,
            scale: lo,
            utilization,
        })
    }
}

/// A message set scaled to the schedulability boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct SaturatedSet {
    /// The scaled (saturated) message set.
    pub set: MessageSet,
    /// The boundary scale factor `α*` applied to the original lengths.
    pub scale: f64,
    /// The saturated set's utilization — one breakdown-utilization sample.
    pub utilization: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringrt_core::pdp::{PdpAnalyzer, PdpVariant};
    use ringrt_core::ttp::TtpAnalyzer;
    use ringrt_model::{FrameFormat, RingConfig, SyncStream};
    use ringrt_units::{Bits, Seconds};

    fn base_set() -> MessageSet {
        MessageSet::new(vec![
            SyncStream::new(Seconds::from_millis(20.0), Bits::new(10_000)),
            SyncStream::new(Seconds::from_millis(60.0), Bits::new(30_000)),
            SyncStream::new(Seconds::from_millis(150.0), Bits::new(60_000)),
        ])
        .unwrap()
    }

    #[test]
    fn saturated_set_is_on_the_boundary_ttp() {
        let ring = RingConfig::fddi(3, Bandwidth::from_mbps(100.0));
        let a = TtpAnalyzer::with_defaults(ring);
        let sat = SaturationSearch::default()
            .saturate(&a, &base_set(), ring.bandwidth())
            .unwrap();
        use ringrt_core::SchedulabilityTest;
        assert!(a.is_schedulable(&sat.set));
        // Slightly above the boundary must fail.
        let above = sat.set.with_scaled_lengths(1.0 + 10.0 * 1e-4);
        assert!(!a.is_schedulable(&above));
        assert!(sat.utilization > 0.0 && sat.utilization <= 1.0);
    }

    #[test]
    fn saturated_set_is_on_the_boundary_pdp() {
        let ring = RingConfig::ieee_802_5(3, Bandwidth::from_mbps(4.0));
        let a = PdpAnalyzer::new(ring, FrameFormat::paper_default(), PdpVariant::Modified);
        let sat = SaturationSearch::default()
            .saturate(&a, &base_set(), ring.bandwidth())
            .unwrap();
        use ringrt_core::SchedulabilityTest;
        assert!(a.is_schedulable(&sat.set));
        let above = sat.set.with_scaled_lengths(1.0 + 10.0 * 1e-4);
        assert!(!a.is_schedulable(&above));
    }

    #[test]
    fn starts_from_unschedulable_sets_too() {
        // Grossly overloaded initial set: the search must scale down.
        let ring = RingConfig::fddi(3, Bandwidth::from_mbps(100.0));
        let a = TtpAnalyzer::with_defaults(ring);
        let heavy = base_set().with_scaled_lengths(1_000.0);
        let sat = SaturationSearch::default()
            .saturate(&a, &heavy, ring.bandwidth())
            .unwrap();
        assert!(sat.scale < 1.0);
        assert!(sat.utilization > 0.0 && sat.utilization <= 1.0);
    }

    #[test]
    fn impossible_configuration_returns_none() {
        // Force q < 2 with a fixed, over-long TTRT: no scaling helps.
        use ringrt_core::ttp::TtrtPolicy;
        let ring = RingConfig::fddi(3, Bandwidth::from_mbps(100.0));
        let a = TtpAnalyzer::with_defaults(ring)
            .with_ttrt_policy(TtrtPolicy::Fixed(Seconds::from_millis(500.0)));
        assert!(SaturationSearch::default()
            .saturate(&a, &base_set(), ring.bandwidth())
            .is_none());
    }

    #[test]
    fn tolerance_shrinks_bracket() {
        let ring = RingConfig::fddi(3, Bandwidth::from_mbps(100.0));
        let a = TtpAnalyzer::with_defaults(ring);
        let coarse = SaturationSearch::with_tolerance(0.05)
            .saturate(&a, &base_set(), ring.bandwidth())
            .unwrap();
        let fine = SaturationSearch::with_tolerance(1e-6)
            .saturate(&a, &base_set(), ring.bandwidth())
            .unwrap();
        // Both land near the same boundary; the fine one from below.
        assert!((coarse.scale - fine.scale).abs() / fine.scale < 0.06);
        assert!(fine.scale <= coarse.scale * (1.0 + 0.05));
    }

    #[test]
    #[should_panic(expected = "tolerance")]
    fn bad_tolerance_rejected() {
        let _ = SaturationSearch::with_tolerance(0.0);
    }

    #[test]
    fn pooled_search_agrees_with_serial_within_tolerance() {
        let ring = RingConfig::fddi(3, Bandwidth::from_mbps(100.0));
        let a = TtpAnalyzer::with_defaults(ring);
        let search = SaturationSearch::default();
        let serial = search.saturate(&a, &base_set(), ring.bandwidth()).unwrap();
        for threads in [2, 4, 8] {
            let pool = Pool::new(threads);
            let par = search
                .saturate_with(&a, &base_set(), ring.bandwidth(), &pool)
                .unwrap();
            use ringrt_core::SchedulabilityTest;
            assert!(a.is_schedulable(&par.set));
            let above = par.set.with_scaled_lengths(1.0 + 10.0 * search.tolerance);
            assert!(!a.is_schedulable(&above));
            let rel = (par.scale - serial.scale).abs() / serial.scale;
            assert!(
                rel <= 2.0 * search.tolerance,
                "threads={threads}: scale {par} vs serial {serial} (rel {rel})",
                par = par.scale,
                serial = serial.scale,
            );
        }
    }

    #[test]
    fn pooled_search_scales_down_overloaded_sets() {
        let ring = RingConfig::ieee_802_5(3, Bandwidth::from_mbps(4.0));
        let a = PdpAnalyzer::new(ring, FrameFormat::paper_default(), PdpVariant::Modified);
        let heavy = base_set().with_scaled_lengths(1_000.0);
        let pool = Pool::new(4);
        let serial = SaturationSearch::default()
            .saturate(&a, &heavy, ring.bandwidth())
            .unwrap();
        let par = SaturationSearch::default()
            .saturate_with(&a, &heavy, ring.bandwidth(), &pool)
            .unwrap();
        assert!(par.scale < 1.0);
        let rel = (par.scale - serial.scale).abs() / serial.scale;
        assert!(rel <= 2.0 * SaturationSearch::default().tolerance);
    }

    #[test]
    fn serial_pool_delegates_exactly() {
        let ring = RingConfig::fddi(3, Bandwidth::from_mbps(100.0));
        let a = TtpAnalyzer::with_defaults(ring);
        let search = SaturationSearch::default();
        let serial = search.saturate(&a, &base_set(), ring.bandwidth()).unwrap();
        let pooled = search
            .saturate_with(&a, &base_set(), ring.bandwidth(), &Pool::serial())
            .unwrap();
        assert_eq!(serial, pooled);
    }

    #[test]
    fn pooled_search_returns_none_for_impossible_configuration() {
        use ringrt_core::ttp::TtrtPolicy;
        let ring = RingConfig::fddi(3, Bandwidth::from_mbps(100.0));
        let a = TtpAnalyzer::with_defaults(ring)
            .with_ttrt_policy(TtrtPolicy::Fixed(Seconds::from_millis(500.0)));
        let pool = Pool::new(4);
        assert!(SaturationSearch::default()
            .saturate_with(&a, &base_set(), ring.bandwidth(), &pool)
            .is_none());
    }
}
