//! A minimal JSON reader, sufficient to validate this crate's own trace
//! export (and small enough to audit at a glance).
//!
//! The workspace builds offline with no external dependencies, so the
//! trace-shape tests cannot lean on serde; this hand-rolled parser accepts
//! standard JSON (objects, arrays, strings with escapes, numbers, bools,
//! null) and is strict about trailing garbage. It is a test/validation
//! aid, not a performance-sensitive component.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, widened to `f64`.
    Num(f64),
    /// A string, with escapes resolved.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; keys are sorted (JSON objects are unordered).
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// Parses one complete JSON document.
    ///
    /// # Errors
    ///
    /// Returns a message with a byte offset when `text` is not valid JSON
    /// or has trailing non-whitespace.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(value)
    }

    /// The value under `key` if this is an object containing it.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The elements if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => write!(f, "{n}"),
            Json::Str(s) => write!(f, "{}", escape(s)),
            Json::Array(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Json::Object(map) => {
                write!(f, "{{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{}:{v}", escape(k))?;
                }
                write!(f, "}}")
            }
        }
    }
}

/// Escapes `s` as a JSON string literal, quotes included.
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(format!(
                "unexpected `{}` at byte {}",
                other as char, self.pos
            )),
            None => Err("unexpected end of input".to_owned()),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_owned()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            // Surrogate pairs are not needed for our own
                            // output; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are guaranteed valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = s.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii slice");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number `{text}` at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\ny", "d": true}, "e": null}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Json::Bool(true)));
        assert_eq!(v.get("e"), Some(&Json::Null));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(Json::parse("{} extra").is_err());
        assert!(Json::parse("[1, 2").is_err());
        assert!(Json::parse("{\"a\": }").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("").is_err());
    }

    #[test]
    fn escape_roundtrips_through_parse() {
        let nasty = "a\"b\\c\nd\te\u{1}f";
        let doc = format!("{{{}: 1}}", escape(nasty));
        let v = Json::parse(&doc).unwrap();
        assert_eq!(v.get(nasty).unwrap().as_f64(), Some(1.0));
    }

    #[test]
    fn unicode_escapes_decode() {
        // Both the \uXXXX form and raw multibyte UTF-8 decode to é.
        let v = Json::parse("\"A\\u00e9 \u{e9}\"").unwrap();
        assert_eq!(v.as_str(), Some("Aé é"));
    }
}
