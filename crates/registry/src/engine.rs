//! The incremental admission engine: full and delta-updated re-runs of the
//! paper's Theorem 4.1 (PDP) and Theorem 5.1 (TTP) tests.
//!
//! # Why incremental re-analysis is sound
//!
//! **PDP (Theorems 4.1):** the test runs the Lehoczky-style response-time
//! analysis level by level in deadline-monotonic order. Admitting a stream
//! at DM rank `r` leaves every higher-priority level's task set — and the
//! blocking bound `B = 2·max(F, Θ)`, provided the station count is pinned —
//! untouched, so their response times are unchanged and only ranks `≥ r`
//! need re-testing. Removing a stream only removes interference, so a
//! schedulable set stays schedulable with **zero** evaluations. Both
//! shortcuts require the stored set to already be schedulable, which the
//! registry guarantees: failed admits are never stored, and PDP removals
//! preserve schedulability.
//!
//! **TTP (Theorem 5.1):** the test is a single inequality
//! `Σ_i [C_i/(q_i−1) + F_ovhd] ≤ TTRT − Θ'`. The engine caches each
//! stream's term; when an admit or remove leaves the negotiated TTRT
//! *bit-identical* (and the effective station count, hence `Θ'`,
//! unchanged), the sum is rebuilt from cached terms in station order with
//! the same float operations as the full test — the incremental verdict is
//! therefore bit-identical to recomputation, not merely approximately
//! equal. Any TTRT or topology change falls back to the full test.
//!
//! Every incremental path carries a `debug_assert!` comparing its verdict
//! against a from-scratch recomputation; the randomized equivalence sweep
//! in the workspace tests exercises the same property in release builds.

use ringrt_core::pdp::{PdpAnalyzer, PdpVariant};
use ringrt_core::ttp::TtpAnalyzer;
use ringrt_model::{FrameFormat, MessageSet, RingConfig, StreamId};
use ringrt_units::Seconds;

use crate::spec::{ProtocolKind, RingSpec};

/// Verdict of one admission-control run, with the work it took.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckOutcome {
    /// Whether the (new) stream set is schedulable.
    pub schedulable: bool,
    /// Whether the incremental fast path was taken (`false` = full
    /// recomputation).
    pub incremental: bool,
    /// Scheduling-point work performed: fixed-point demand iterations for
    /// PDP, Theorem 5.1 term computations for TTP. The `STATS` counters
    /// that prove `ADMIT` is cheaper than a full `CHECK` aggregate this.
    pub evaluations: u64,
}

/// Cached per-stream Theorem 5.1 terms for a TTP ring, valid only for the
/// TTRT they were computed at. Derived state — never persisted; rebuilt by
/// the first full check after a restart.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct TtpCache {
    /// The TTRT the terms were computed at (compared bit-for-bit).
    pub ttrt: Seconds,
    /// `C_i/(q_i−1) + F_ovhd` per stream, in station order.
    pub terms: Vec<Seconds>,
}

fn pdp_analyzer(spec: &RingSpec, stations: usize, variant: PdpVariant) -> PdpAnalyzer {
    PdpAnalyzer::new(
        RingConfig::ieee_802_5(stations, spec.bandwidth()),
        FrameFormat::paper_default(),
        variant,
    )
}

fn ttp_analyzer(spec: &RingSpec, stations: usize) -> TtpAnalyzer {
    TtpAnalyzer::with_defaults(RingConfig::fddi(stations, spec.bandwidth()))
}

fn pdp_variant(protocol: ProtocolKind) -> Option<PdpVariant> {
    match protocol {
        ProtocolKind::Ieee8025 => Some(PdpVariant::Standard),
        ProtocolKind::Modified => Some(PdpVariant::Modified),
        ProtocolKind::Fddi => None,
    }
}

/// Sums cached terms left to right from zero — the exact accumulation
/// order of the full path, so incremental sums are bit-identical.
fn sum_terms(terms: &[Seconds]) -> Seconds {
    let mut sum = Seconds::ZERO;
    for &t in terms {
        sum += t;
    }
    sum
}

/// Full (from-scratch) schedulability check of `set` on `spec`'s ring.
pub(crate) fn full_check(spec: &RingSpec, set: &MessageSet) -> (CheckOutcome, Option<TtpCache>) {
    let stations = spec.effective_stations(set.len());
    match pdp_variant(spec.protocol) {
        Some(variant) => {
            let counted = pdp_analyzer(spec, stations, variant).check_from_rank(set, 0);
            (
                CheckOutcome {
                    schedulable: counted.schedulable,
                    incremental: false,
                    evaluations: counted.evaluations,
                },
                None,
            )
        }
        None => {
            let analyzer = ttp_analyzer(spec, stations);
            let ttrt = analyzer.ttrt_for(set);
            let mut terms = Vec::with_capacity(set.len());
            let mut evaluations = 0u64;
            for stream in set.iter() {
                evaluations += 1;
                match analyzer.stream_term(stream, ttrt) {
                    Some(term) => terms.push(term),
                    // q_i < 2: no deadline guarantee possible at this TTRT.
                    None => {
                        return (
                            CheckOutcome {
                                schedulable: false,
                                incremental: false,
                                evaluations,
                            },
                            None,
                        )
                    }
                }
            }
            let schedulable = analyzer.terms_feasible(sum_terms(&terms), ttrt);
            (
                CheckOutcome {
                    schedulable,
                    incremental: false,
                    evaluations,
                },
                Some(TtpCache { ttrt, terms }),
            )
        }
    }
}

/// Admission check for a set whose **last** stream is the candidate, with
/// `old_len = set.len() − 1` streams previously present. Takes the
/// incremental path when sound (see the module docs), otherwise falls back
/// to [`full_check`].
pub(crate) fn admit_check(
    spec: &RingSpec,
    cache: Option<&TtpCache>,
    old_len: usize,
    new_set: &MessageSet,
) -> (CheckOutcome, Option<TtpCache>) {
    debug_assert_eq!(old_len + 1, new_set.len());
    let stations_unchanged =
        old_len > 0 && spec.effective_stations(old_len) == spec.effective_stations(new_set.len());
    if !stations_unchanged {
        return full_check(spec, new_set);
    }
    let stations = spec.effective_stations(new_set.len());
    match pdp_variant(spec.protocol) {
        Some(variant) => {
            // Only DM ranks at or below the newcomer's can have changed.
            let analyzer = pdp_analyzer(spec, stations, variant);
            let rank = analyzer.priority_rank(new_set, StreamId(new_set.len() - 1));
            let counted = analyzer.check_from_rank(new_set, rank);
            let outcome = CheckOutcome {
                schedulable: counted.schedulable,
                incremental: true,
                evaluations: counted.evaluations,
            };
            debug_assert_eq!(
                outcome.schedulable,
                full_check(spec, new_set).0.schedulable,
                "incremental PDP admit diverged from full recomputation"
            );
            (outcome, None)
        }
        None => {
            let analyzer = ttp_analyzer(spec, stations);
            let ttrt = analyzer.ttrt_for(new_set);
            let Some(cache) =
                cache.filter(|c| c.ttrt.as_secs_f64().to_bits() == ttrt.as_secs_f64().to_bits())
            else {
                return full_check(spec, new_set);
            };
            // One new term; the rest are reused bit-for-bit.
            let new_stream = new_set.stream(StreamId(new_set.len() - 1));
            let (schedulable, terms) = match analyzer.stream_term(new_stream, ttrt) {
                Some(term) => {
                    let mut terms = cache.terms.clone();
                    terms.push(term);
                    (
                        analyzer.terms_feasible(sum_terms(&terms), ttrt),
                        Some(terms),
                    )
                }
                None => (false, None),
            };
            let outcome = CheckOutcome {
                schedulable,
                incremental: true,
                evaluations: 1,
            };
            debug_assert_eq!(
                outcome.schedulable,
                full_check(spec, new_set).0.schedulable,
                "incremental TTP admit diverged from full recomputation"
            );
            (outcome, terms.map(|terms| TtpCache { ttrt, terms }))
        }
    }
}

/// Re-check after removing the stream at `removed_index` from a set of
/// `old_len` streams; `new_set` is the remaining set (`None` when empty).
pub(crate) fn remove_check(
    spec: &RingSpec,
    cache: Option<&TtpCache>,
    removed_index: usize,
    old_len: usize,
    new_set: Option<&MessageSet>,
) -> (CheckOutcome, Option<TtpCache>) {
    debug_assert_eq!(old_len, new_set.map_or(0, MessageSet::len) + 1);
    let Some(new_set) = new_set else {
        // An empty ring is vacuously schedulable.
        return (
            CheckOutcome {
                schedulable: true,
                incremental: true,
                evaluations: 0,
            },
            None,
        );
    };
    if pdp_variant(spec.protocol).is_some() {
        // Removing a stream only removes interference (and can only shrink
        // the ring overheads), so a schedulable PDP set stays schedulable
        // with no work at all.
        let outcome = CheckOutcome {
            schedulable: true,
            incremental: true,
            evaluations: 0,
        };
        debug_assert_eq!(
            outcome.schedulable,
            full_check(spec, new_set).0.schedulable,
            "PDP removal broke schedulability — stored set was not schedulable?"
        );
        return (outcome, None);
    }
    let stations_unchanged =
        spec.effective_stations(old_len) == spec.effective_stations(new_set.len());
    let stations = spec.effective_stations(new_set.len());
    let analyzer = ttp_analyzer(spec, stations);
    let ttrt = analyzer.ttrt_for(new_set);
    let valid_cache = cache.filter(|c| {
        stations_unchanged
            && c.ttrt.as_secs_f64().to_bits() == ttrt.as_secs_f64().to_bits()
            && c.terms.len() == old_len
    });
    let Some(cache) = valid_cache else {
        // TTRT renegotiated (e.g. the min-deadline stream left) or topology
        // changed: removal CAN flip the verdict either way — recompute.
        return full_check(spec, new_set);
    };
    let mut terms = cache.terms.clone();
    terms.remove(removed_index);
    let outcome = CheckOutcome {
        schedulable: analyzer.terms_feasible(sum_terms(&terms), ttrt),
        incremental: true,
        evaluations: 0,
    };
    debug_assert_eq!(
        outcome.schedulable,
        full_check(spec, new_set).0.schedulable,
        "incremental TTP removal diverged from full recomputation"
    );
    (outcome, Some(TtpCache { ttrt, terms }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringrt_model::SyncStream;
    use ringrt_units::{Bits, Seconds};

    fn set(streams: &[(f64, u64)]) -> MessageSet {
        MessageSet::new(
            streams
                .iter()
                .map(|&(p, c)| SyncStream::new(Seconds::from_millis(p), Bits::new(c)))
                .collect(),
        )
        .unwrap()
    }

    fn pdp_spec() -> RingSpec {
        RingSpec {
            protocol: ProtocolKind::Modified,
            mbps: 16.0,
            stations: Some(16),
        }
    }

    fn ttp_spec() -> RingSpec {
        RingSpec {
            protocol: ProtocolKind::Fddi,
            mbps: 100.0,
            stations: Some(16),
        }
    }

    #[test]
    fn pdp_incremental_admit_matches_full_and_is_cheaper() {
        let spec = pdp_spec();
        let base = set(&[(20.0, 20_000), (50.0, 60_000), (100.0, 80_000)]);
        let (full, _) = full_check(&spec, &base);
        assert!(full.schedulable);
        assert!(!full.incremental);
        // Admit a slow (lowest-priority) stream: only its own level re-runs.
        let grown = set(&[
            (20.0, 20_000),
            (50.0, 60_000),
            (100.0, 80_000),
            (200.0, 10_000),
        ]);
        let (inc, _) = admit_check(&spec, None, 3, &grown);
        assert!(inc.schedulable);
        assert!(inc.incremental);
        let (grown_full, _) = full_check(&spec, &grown);
        assert!(
            inc.evaluations < grown_full.evaluations,
            "{inc:?} vs {grown_full:?}"
        );
    }

    #[test]
    fn pdp_unpinned_stations_force_full_path() {
        let spec = RingSpec {
            stations: None,
            ..pdp_spec()
        };
        let grown = set(&[(20.0, 20_000), (50.0, 60_000)]);
        let (out, _) = admit_check(&spec, None, 1, &grown);
        assert!(!out.incremental);
    }

    #[test]
    fn pdp_removal_is_free() {
        let spec = pdp_spec();
        let remaining = set(&[(20.0, 20_000), (100.0, 80_000)]);
        let (out, _) = remove_check(&spec, None, 1, 3, Some(&remaining));
        assert!(out.schedulable);
        assert!(out.incremental);
        assert_eq!(out.evaluations, 0);
    }

    #[test]
    fn ttp_incremental_admit_reuses_terms() {
        let spec = ttp_spec();
        // Keep the min-deadline stream first so TTRT stays put on admit.
        let base = set(&[(20.0, 100_000), (50.0, 200_000)]);
        let (full, cache) = full_check(&spec, &base);
        assert!(full.schedulable);
        let cache = cache.expect("TTP full check caches terms");
        assert_eq!(cache.terms.len(), 2);
        let grown = set(&[(20.0, 100_000), (50.0, 200_000), (100.0, 400_000)]);
        let (inc, new_cache) = admit_check(&spec, Some(&cache), 2, &grown);
        assert!(inc.schedulable);
        assert!(inc.incremental);
        assert_eq!(inc.evaluations, 1); // one new term, two reused
        assert_eq!(new_cache.unwrap().terms.len(), 3);
    }

    #[test]
    fn ttp_ttrt_shift_falls_back_to_full() {
        let spec = ttp_spec();
        let base = set(&[(50.0, 200_000), (100.0, 400_000)]);
        let (_, cache) = full_check(&spec, &base);
        // The newcomer has the new minimum deadline → TTRT renegotiates.
        let grown = set(&[(50.0, 200_000), (100.0, 400_000), (10.0, 50_000)]);
        let (out, _) = admit_check(&spec, cache.as_ref(), 2, &grown);
        assert!(!out.incremental);
        assert_eq!(out.evaluations, 3);
    }

    #[test]
    fn ttp_removal_of_min_deadline_stream_recomputes() {
        let spec = ttp_spec();
        let base = set(&[(10.0, 50_000), (50.0, 200_000), (100.0, 400_000)]);
        let (_, cache) = full_check(&spec, &base);
        let remaining = set(&[(50.0, 200_000), (100.0, 400_000)]);
        let (out, _) = remove_check(&spec, cache.as_ref(), 0, 3, Some(&remaining));
        assert!(!out.incremental); // TTRT changed
        let remaining2 = set(&[(10.0, 50_000), (100.0, 400_000)]);
        let (out2, _) = remove_check(&spec, cache.as_ref(), 1, 3, Some(&remaining2));
        assert!(out2.incremental); // TTRT keeper stayed
        assert_eq!(out2.evaluations, 0);
    }

    #[test]
    fn overloaded_admit_rejected_incrementally() {
        let spec = ttp_spec();
        let base = set(&[(20.0, 100_000)]);
        let (_, cache) = full_check(&spec, &base);
        // A hopeless hog (well past ring capacity) with a long period so
        // the TTRT is unchanged.
        let grown = set(&[(20.0, 100_000), (100.0, 12_000_000)]);
        let (out, _) = admit_check(&spec, cache.as_ref(), 1, &grown);
        assert!(!out.schedulable);
        assert!(out.incremental);
    }

    #[test]
    fn empty_after_removal_is_schedulable() {
        let (out, cache) = remove_check(&ttp_spec(), None, 0, 1, None);
        assert!(out.schedulable);
        assert!(cache.is_none());
    }
}
