//! Coarse hashed timer wheel for idle-timeout and read-deadline sweeps.
//!
//! The event loop needs "close this connection if nothing happens for N
//! seconds" for tens of thousands of connections, where N is large and
//! precision is irrelevant. A hashed wheel gives O(1) insertion and an
//! O(due) sweep: [`IdleWheel::schedule`] drops a token into the slot its
//! deadline hashes to, and [`IdleWheel::advance`] drains every slot the
//! cursor passes.
//!
//! Re-arming is **lazy**: activity on a connection does not move its wheel
//! entry (that would require per-entry bookkeeping). Instead the caller
//! keeps the true deadline (e.g. `last_activity + idle_timeout`) on the
//! connection and revalidates each candidate the wheel hands back,
//! rescheduling entries that turn out not to be due yet. A connection
//! therefore has at most one live wheel entry, and stale entries for
//! closed connections are discarded by the same revalidation (the slab
//! generation check makes the token dead).

use std::time::{Duration, Instant};

/// A fixed-granularity timer wheel over opaque `u64` tokens.
#[derive(Debug)]
pub struct IdleWheel {
    slots: Vec<Vec<u64>>,
    granularity: Duration,
    /// Wheel time: everything strictly before `cursor` has been drained.
    cursor: u64,
    base: Instant,
    len: usize,
}

impl IdleWheel {
    /// A wheel of `slots` buckets, each `granularity` wide.
    ///
    /// The horizon is `slots * granularity`; deadlines beyond it are
    /// clamped to the furthest slot and simply revalidate early.
    #[must_use]
    pub fn new(slots: usize, granularity: Duration, now: Instant) -> IdleWheel {
        let slots = slots.max(2);
        IdleWheel {
            slots: (0..slots).map(|_| Vec::new()).collect(),
            granularity: granularity.max(Duration::from_millis(1)),
            cursor: 0,
            base: now,
            len: 0,
        }
    }

    fn tick_of(&self, t: Instant) -> u64 {
        let elapsed = t.saturating_duration_since(self.base);
        (elapsed.as_nanos() / self.granularity.as_nanos().max(1)) as u64
    }

    /// Number of scheduled (possibly stale) entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is scheduled.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedules `token` to surface at (or shortly after) `deadline`.
    pub fn schedule(&mut self, token: u64, deadline: Instant) {
        let tick = self.tick_of(deadline).max(self.cursor);
        // Clamp beyond-horizon deadlines to one lap minus one, so they
        // surface (and get rescheduled) instead of aliasing onto a slot
        // the cursor is about to drain.
        let horizon = self.slots.len() as u64 - 1;
        let tick = tick.min(self.cursor + horizon);
        let idx = (tick % self.slots.len() as u64) as usize;
        self.slots[idx].push(token);
        self.len += 1;
    }

    /// Advances wheel time to `now`, draining every due slot into `due`.
    ///
    /// Callers must revalidate each token: entries are candidates, not
    /// verdicts (lazy re-arm means an entry may predate recent activity).
    pub fn advance(&mut self, now: Instant, due: &mut Vec<u64>) {
        let target = self.tick_of(now);
        while self.cursor <= target {
            let idx = (self.cursor % self.slots.len() as u64) as usize;
            let drained = &mut self.slots[idx];
            self.len -= drained.len();
            due.append(drained);
            if self.cursor == target {
                break;
            }
            self.cursor += 1;
        }
    }

    /// Time until the cursor next crosses a slot boundary — a good poll
    /// timeout upper bound when timers are armed.
    #[must_use]
    pub fn next_tick_in(&self, now: Instant) -> Duration {
        let next_boundary = self
            .base
            .checked_add(self.granularity.mul_f64((self.tick_of(now) + 1) as f64));
        match next_boundary {
            Some(b) => b
                .saturating_duration_since(now)
                .max(Duration::from_millis(1)),
            None => self.granularity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn due_entries_surface_once_cursor_passes() {
        let t0 = Instant::now();
        let mut wheel = IdleWheel::new(8, Duration::from_millis(100), t0);
        wheel.schedule(1, t0 + Duration::from_millis(150));
        wheel.schedule(2, t0 + Duration::from_millis(450));
        assert_eq!(wheel.len(), 2);

        let mut due = Vec::new();
        wheel.advance(t0 + Duration::from_millis(40), &mut due);
        assert!(due.is_empty(), "nothing due inside the first slot");

        wheel.advance(t0 + Duration::from_millis(210), &mut due);
        assert_eq!(due, vec![1]);
        due.clear();

        wheel.advance(t0 + Duration::from_millis(900), &mut due);
        assert_eq!(due, vec![2]);
        assert!(wheel.is_empty());
    }

    #[test]
    fn beyond_horizon_deadline_surfaces_early_for_reschedule() {
        let t0 = Instant::now();
        let mut wheel = IdleWheel::new(4, Duration::from_millis(50), t0);
        let far = t0 + Duration::from_secs(3600);
        wheel.schedule(9, far);

        let mut due = Vec::new();
        wheel.advance(t0 + Duration::from_millis(400), &mut due);
        assert_eq!(due, vec![9], "clamped entry surfaces within one lap");
        // The caller's revalidation would now reschedule it; simulate one
        // round and confirm it surfaces again rather than being lost.
        wheel.schedule(9, far);
        due.clear();
        wheel.advance(t0 + Duration::from_millis(800), &mut due);
        assert_eq!(due, vec![9]);
    }

    #[test]
    fn past_deadlines_fire_on_next_advance() {
        let t0 = Instant::now();
        let mut wheel = IdleWheel::new(8, Duration::from_millis(20), t0);
        let mut due = Vec::new();
        wheel.advance(t0 + Duration::from_millis(500), &mut due);
        assert!(due.is_empty());

        // Scheduling "in the past" (already-expired deadline) lands on the
        // current cursor slot, not a drained one.
        wheel.schedule(5, t0);
        wheel.advance(t0 + Duration::from_millis(520), &mut due);
        assert_eq!(due, vec![5]);
    }

    #[test]
    fn next_tick_is_positive_and_bounded() {
        let t0 = Instant::now();
        let wheel = IdleWheel::new(8, Duration::from_millis(100), t0);
        let d = wheel.next_tick_in(t0 + Duration::from_millis(30));
        assert!(
            d > Duration::ZERO && d <= Duration::from_millis(100),
            "{d:?}"
        );
    }
}
