//! SPEEDUP — multi-core ABU estimation throughput (engineering benchmark).
//!
//! Measures Monte-Carlo average-breakdown-utilization throughput
//! (samples/sec) for the serial `estimate` path against
//! `estimate_parallel` on the shared `ringrt-exec` pool, across a thread
//! ladder up to the configured width (`RINGRT_THREADS` or the machine's
//! core count). Because the parallel path consumes the same canonical
//! SplitMix64 seed stream as the serial one, every row also asserts the
//! estimates are **bit-identical** — the speedup is free of any numerical
//! drift.
//!
//! Besides the usual CSV on stdout, writes `BENCH_abu.json` to the current
//! directory for CI artifact upload.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use ringrt_bench::{banner, ExpOptions};
use ringrt_breakdown::table::{cell, Table};
use ringrt_breakdown::{BreakdownEstimate, BreakdownEstimator, SaturationSearch};
use ringrt_core::ttp::TtpAnalyzer;
use ringrt_exec::Pool;
use ringrt_model::RingConfig;
use ringrt_workload::MessageSetGenerator;

const OUT_PATH: &str = "BENCH_abu.json";

fn main() {
    let opts = ExpOptions::from_env();
    banner(
        "SPEEDUP",
        "serial vs pooled ABU estimation throughput (bit-identical by construction)",
        &opts,
    );

    let ring = RingConfig::fddi(opts.stations, ringrt_units::Bandwidth::from_mbps(100.0));
    let analyzer = TtpAnalyzer::with_defaults(ring);
    let estimator = BreakdownEstimator::new(
        MessageSetGenerator::paper_population(opts.stations),
        opts.samples,
    )
    .with_search(SaturationSearch::with_tolerance(if opts.quick {
        3e-3
    } else {
        1e-3
    }));
    let iters = if opts.quick { 1 } else { 3 };
    let bw = ring.bandwidth();

    // Warm-up (page in code paths, settle allocator) + reference estimate.
    let reference = estimator.estimate(&analyzer, bw, &mut StdRng::seed_from_u64(opts.seed));

    // Serial baseline: best of `iters` runs of the plain estimate path.
    let serial_sps = best_samples_per_sec(iters, opts.samples, || {
        estimator.estimate(&analyzer, bw, &mut StdRng::seed_from_u64(opts.seed))
    });

    let max_threads = ringrt_exec::configured_threads();
    let mut table = Table::new(&[
        "threads",
        "serial_sps",
        "parallel_sps",
        "speedup",
        "bit_identical",
    ]);
    let mut rows_json = Vec::new();
    for threads in thread_ladder(max_threads) {
        let pool = Pool::new(threads);
        let parallel = estimator.estimate_parallel(&analyzer, bw, opts.seed, &pool);
        assert_eq!(
            reference, parallel,
            "parallel ABU diverged from serial at {threads} threads"
        );
        let sps = best_samples_per_sec(iters, opts.samples, || {
            estimator.estimate_parallel(&analyzer, bw, opts.seed, &pool)
        });
        let speedup = sps / serial_sps.max(1e-12);
        table.push_row(&[
            threads.to_string(),
            cell(serial_sps, 2),
            cell(sps, 2),
            cell(speedup, 3),
            "true".into(),
        ]);
        rows_json.push(format!(
            "    {{\"threads\": {threads}, \"parallel_samples_per_sec\": {sps:.3}, \
             \"speedup\": {speedup:.3}, \"bit_identical\": true}}"
        ));
    }
    print!("{}", table.to_csv());

    let json = format!(
        "{{\n  \"bench\": \"abu_speedup\",\n  \"protocol\": \"{}\",\n  \"mbps\": 100.0,\n  \
         \"stations\": {},\n  \"samples\": {},\n  \"seed\": {},\n  \"iters_per_point\": {},\n  \
         \"configured_threads\": {},\n  \"serial_samples_per_sec\": {:.3},\n  \"rows\": [\n{}\n  ]\n}}\n",
        reference.protocol,
        opts.stations,
        opts.samples,
        opts.seed,
        iters,
        max_threads,
        serial_sps,
        rows_json.join(",\n"),
    );
    if let Err(e) = std::fs::write(OUT_PATH, &json) {
        eprintln!("warning: could not write {OUT_PATH}: {e}");
    } else {
        println!();
        println!("# wrote {OUT_PATH} (configured_threads={max_threads})");
    }
    println!("# every row is asserted bit-identical to the serial estimate; the speedup");
    println!("# is pure scheduling, not numerical shortcuts. On a single-core host the");
    println!("# ladder collapses to threads=1 and the speedup hovers around 1.0.");
}

/// Doubling ladder 1, 2, 4, … capped at — and always including — `max`.
fn thread_ladder(max: usize) -> Vec<usize> {
    let mut ladder = Vec::new();
    let mut t = 1;
    while t < max {
        ladder.push(t);
        t *= 2;
    }
    ladder.push(max.max(1));
    ladder
}

/// Best observed throughput (samples/sec) over `iters` timed runs.
fn best_samples_per_sec(
    iters: usize,
    samples: usize,
    mut run: impl FnMut() -> BreakdownEstimate,
) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let start = Instant::now();
        let est = run();
        let elapsed = start.elapsed().as_secs_f64();
        assert_eq!(est.stats.count(), samples as u64);
        best = best.min(elapsed);
    }
    samples as f64 / best.max(1e-9)
}
