//! End-to-end shape check: recorded spans drain into a trace-event JSON
//! document that a strict reader accepts (the same invariants Perfetto /
//! `chrome://tracing` rely on).

use ringrt_obs::json::Json;
use ringrt_obs::trace::{render_chrome_trace, validate_chrome_trace};
use ringrt_obs::Recorder;

#[test]
fn recorded_spans_export_as_loadable_trace_json() {
    let rec = Recorder::new();
    {
        let _outer = rec.span("service", "handle");
        let _inner = rec.span("service", "parse");
    }
    {
        let _exec = rec.span("exec", "map");
    }
    let events = rec.drain(16);
    assert_eq!(events.len(), 3);

    let text = render_chrome_trace(&events);
    assert_eq!(validate_chrome_trace(&text), Ok(3), "{text}");

    // The categories and stage names survive the export verbatim.
    let doc = Json::parse(&text).unwrap();
    let names: Vec<&str> = doc
        .get("traceEvents")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .map(|e| e.get("name").unwrap().as_str().unwrap())
        .collect();
    assert!(names.contains(&"parse"), "{names:?}");
    assert!(names.contains(&"map"), "{names:?}");
}

#[test]
fn drain_limit_keeps_most_recent_events() {
    let rec = Recorder::new();
    for _ in 0..10 {
        let _s = rec.span("t", "tick");
    }
    let events = rec.drain(4);
    assert_eq!(events.len(), 4);
    let text = render_chrome_trace(&events);
    assert_eq!(validate_chrome_trace(&text), Ok(4));
}
