//! Traffic sources: periodic synchronous messages and Poisson asynchronous
//! background frames.

use std::collections::VecDeque;

use rand::Rng;

use ringrt_model::MessageSet;
use ringrt_units::{Bits, SimDuration, SimTime};

use crate::Phasing;

/// One in-flight synchronous message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct PendingMessage {
    /// Arrival instant.
    pub arrival: SimTime,
    /// Absolute deadline (arrival + period).
    pub deadline: SimTime,
    /// Payload bits still to transmit.
    pub remaining: Bits,
}

/// Per-station synchronous traffic state: the periodic source and its FIFO
/// backlog of incomplete messages.
///
/// The simulator registers an arrival on every period boundary and
/// consumes payload head-of-line, FIFO within the stream.
#[derive(Debug, Clone)]
pub struct SyncTraffic {
    period: SimDuration,
    /// Relative deadline (= period in the paper's model).
    deadline: SimDuration,
    message_bits: Bits,
    first_arrival: SimTime,
    queue: VecDeque<PendingMessage>,
}

impl SyncTraffic {
    /// Builds one source per stream of `set`, phased per `phasing`.
    #[must_use]
    pub fn build(set: &MessageSet, phasing: Phasing) -> Vec<SyncTraffic> {
        let n = set.len();
        set.iter()
            .enumerate()
            .map(|(i, s)| {
                let period = s.period().to_sim_duration();
                let first_arrival = match phasing {
                    Phasing::Synchronized => SimTime::ZERO,
                    Phasing::Staggered => {
                        SimTime::ZERO
                            + SimDuration::from_picos(period.as_picos() / n as u64 * i as u64)
                    }
                };
                SyncTraffic {
                    period,
                    deadline: s.relative_deadline().to_sim_duration(),
                    message_bits: s.length_bits(),
                    first_arrival,
                    queue: VecDeque::new(),
                }
            })
            .collect()
    }

    /// The instant of the first message arrival.
    #[must_use]
    pub fn first_arrival(&self) -> SimTime {
        self.first_arrival
    }

    /// The message period.
    #[must_use]
    pub fn period(&self) -> SimDuration {
        self.period
    }

    /// The relative deadline.
    #[must_use]
    pub fn relative_deadline(&self) -> SimDuration {
        self.deadline
    }

    /// Registers the arrival at `now`; returns the next arrival instant.
    pub(crate) fn arrive(&mut self, now: SimTime) -> SimTime {
        self.queue.push_back(PendingMessage {
            arrival: now,
            deadline: now + self.deadline,
            remaining: self.message_bits,
        });
        now + self.period
    }

    /// `true` if any message payload is waiting.
    #[must_use]
    pub fn has_backlog(&self) -> bool {
        !self.queue.is_empty()
    }

    /// Total queued payload bits.
    #[must_use]
    pub fn backlog_bits(&self) -> Bits {
        self.queue.iter().map(|m| m.remaining).sum()
    }

    /// Head-of-line message, if any.
    pub(crate) fn head(&self) -> Option<&PendingMessage> {
        self.queue.front()
    }

    /// Consumes up to `budget` payload bits from the head of the queue
    /// (head-of-line only: messages complete in FIFO order). Returns the
    /// bits consumed and, if the head message finished, its record.
    pub(crate) fn consume(&mut self, budget: Bits) -> (Bits, Option<PendingMessage>) {
        let Some(head) = self.queue.front_mut() else {
            return (Bits::ZERO, None);
        };
        let taken = head.remaining.min(budget);
        head.remaining -= taken;
        if head.remaining.is_zero() {
            let done = self.queue.pop_front();
            (taken, done)
        } else {
            (taken, None)
        }
    }
}

/// Per-station asynchronous background traffic: a Poisson frame source and
/// its FIFO queue.
///
/// Only the queue depth matters to the MACs (asynchronous frames have no
/// deadlines); the source exists to exercise the protocols' asynchronous
/// machinery — token priority floors for the PDP, THT/late-count rules and
/// overrun for the TTP.
#[derive(Debug, Clone)]
pub struct AsyncTraffic {
    /// Mean inter-arrival time; `None` disables the source.
    mean_interarrival: Option<SimDuration>,
    queue: VecDeque<SimTime>,
    sent_frames: u64,
}

impl AsyncTraffic {
    /// Builds per-station sources so the fleet offers `load` fraction of
    /// `bandwidth_bps` in `frame_bits`-payload frames, split evenly across
    /// `stations`.
    #[must_use]
    pub fn build(
        stations: usize,
        load: f64,
        frame_bits: u64,
        bandwidth_bps: f64,
    ) -> Vec<AsyncTraffic> {
        let mean = if load > 0.0 {
            // Per-station frame rate: load·BW / (frame_bits · stations).
            let rate = load * bandwidth_bps / (frame_bits as f64 * stations as f64);
            Some(SimDuration::from_seconds(ringrt_units::Seconds::new(
                1.0 / rate,
            )))
        } else {
            None
        };
        (0..stations)
            .map(|_| AsyncTraffic {
                mean_interarrival: mean,
                queue: VecDeque::new(),
                sent_frames: 0,
            })
            .collect()
    }

    /// `true` if this source generates traffic at all.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.mean_interarrival.is_some()
    }

    /// Draws the next exponential inter-arrival gap.
    pub(crate) fn next_gap<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<SimDuration> {
        let mean = self.mean_interarrival?;
        let u: f64 = 1.0 - rng.gen::<f64>(); // (0, 1]
        let gap = -u.ln() * mean.as_picos() as f64;
        Some(SimDuration::from_picos(gap.max(1.0) as u64))
    }

    /// Registers one frame arrival at `now`.
    pub(crate) fn arrive(&mut self, now: SimTime) {
        self.queue.push_back(now);
    }

    /// Number of queued frames.
    #[must_use]
    pub fn queued(&self) -> u64 {
        self.queue.len() as u64
    }

    /// Number of frames transmitted so far.
    #[must_use]
    pub fn sent(&self) -> u64 {
        self.sent_frames
    }

    /// Dequeues one frame for transmission at `now`; returns how long the
    /// frame waited since its arrival.
    ///
    /// # Panics
    ///
    /// Panics if the queue is empty.
    pub(crate) fn take_frame(&mut self, now: SimTime) -> SimDuration {
        let arrival = self
            .queue
            .pop_front()
            .expect("no asynchronous frame queued");
        self.sent_frames += 1;
        now.saturating_duration_since(arrival)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ringrt_model::SyncStream;
    use ringrt_units::Seconds;

    fn set() -> MessageSet {
        MessageSet::new(vec![
            SyncStream::new(Seconds::from_millis(10.0), Bits::new(1_000)),
            SyncStream::new(Seconds::from_millis(20.0), Bits::new(2_000)),
        ])
        .unwrap()
    }

    #[test]
    fn synchronized_phasing_starts_at_zero() {
        let sources = SyncTraffic::build(&set(), Phasing::Synchronized);
        assert!(sources.iter().all(|s| s.first_arrival() == SimTime::ZERO));
    }

    #[test]
    fn staggered_phasing_spreads_starts() {
        let sources = SyncTraffic::build(&set(), Phasing::Staggered);
        assert_eq!(sources[0].first_arrival(), SimTime::ZERO);
        // Station 1 starts at 1·P_1/2 = 10 ms.
        assert_eq!(
            sources[1].first_arrival(),
            SimTime::ZERO + SimDuration::from_millis(10)
        );
    }

    #[test]
    fn arrivals_queue_and_schedule_next() {
        let mut s = SyncTraffic::build(&set(), Phasing::Synchronized).remove(0);
        assert!(!s.has_backlog());
        let next = s.arrive(SimTime::ZERO);
        assert_eq!(next, SimTime::ZERO + SimDuration::from_millis(10));
        assert!(s.has_backlog());
        assert_eq!(s.backlog_bits(), Bits::new(1_000));
        let head = s.head().unwrap();
        assert_eq!(head.deadline, SimTime::ZERO + SimDuration::from_millis(10));
    }

    #[test]
    fn consume_partial_then_complete() {
        let mut s = SyncTraffic::build(&set(), Phasing::Synchronized).remove(0);
        s.arrive(SimTime::ZERO);
        let (taken, done) = s.consume(Bits::new(600));
        assert_eq!(taken, Bits::new(600));
        assert!(done.is_none());
        let (taken, done) = s.consume(Bits::new(600));
        assert_eq!(taken, Bits::new(400));
        let done = done.unwrap();
        assert_eq!(done.arrival, SimTime::ZERO);
        assert!(!s.has_backlog());
        // Consuming from an empty queue is a no-op.
        assert_eq!(s.consume(Bits::new(100)).0, Bits::ZERO);
    }

    #[test]
    fn constrained_deadline_propagates_to_messages() {
        let set = MessageSet::new(vec![SyncStream::new(
            Seconds::from_millis(20.0),
            Bits::new(500),
        )
        .with_relative_deadline(Seconds::from_millis(5.0))])
        .unwrap();
        let mut s = SyncTraffic::build(&set, Phasing::Synchronized).remove(0);
        assert_eq!(s.relative_deadline(), SimDuration::from_millis(5));
        let next = s.arrive(SimTime::ZERO);
        // Deadline 5 ms after arrival, next arrival still one period later.
        assert_eq!(
            s.head().unwrap().deadline,
            SimTime::ZERO + SimDuration::from_millis(5)
        );
        assert_eq!(next, SimTime::ZERO + SimDuration::from_millis(20));
    }

    #[test]
    fn fifo_across_messages() {
        let mut s = SyncTraffic::build(&set(), Phasing::Synchronized).remove(0);
        s.arrive(SimTime::ZERO);
        s.arrive(SimTime::ZERO + SimDuration::from_millis(10));
        assert_eq!(s.backlog_bits(), Bits::new(2_000));
        // One big budget drains only the head message.
        let (taken, done) = s.consume(Bits::new(5_000));
        assert_eq!(taken, Bits::new(1_000));
        assert!(done.is_some());
        assert!(s.has_backlog());
    }

    #[test]
    fn async_load_zero_is_inactive() {
        let sources = AsyncTraffic::build(4, 0.0, 512, 1e8);
        assert!(sources.iter().all(|a| !a.is_active()));
        let mut rng = StdRng::seed_from_u64(1);
        assert!(sources[0].next_gap(&mut rng).is_none());
    }

    #[test]
    fn async_gap_mean_matches_load() {
        let sources = AsyncTraffic::build(2, 0.5, 512, 1e8);
        // Per station: 0.5·1e8/(512·2) ≈ 48 828 frames/s → mean ≈ 20.48 µs.
        let mut rng = StdRng::seed_from_u64(2);
        let n = 20_000;
        let total: u64 = (0..n)
            .map(|_| sources[0].next_gap(&mut rng).unwrap().as_picos())
            .sum();
        let mean_us = total as f64 / n as f64 / 1e6;
        assert!((mean_us - 20.48).abs() < 0.6, "mean {mean_us} µs");
    }

    #[test]
    fn async_queue_accounting_and_waits() {
        let mut a = AsyncTraffic::build(1, 0.1, 512, 1e8).remove(0);
        a.arrive(SimTime::from_picos(100));
        a.arrive(SimTime::from_picos(200));
        assert_eq!(a.queued(), 2);
        // FIFO: the first-arrived frame goes out first, with its own wait.
        let w = a.take_frame(SimTime::from_picos(500));
        assert_eq!(w, SimDuration::from_picos(400));
        assert_eq!(a.queued(), 1);
        assert_eq!(a.sent(), 1);
        let w = a.take_frame(SimTime::from_picos(500));
        assert_eq!(w, SimDuration::from_picos(300));
    }

    #[test]
    #[should_panic(expected = "no asynchronous frame")]
    fn take_from_empty_panics() {
        AsyncTraffic::build(1, 0.1, 512, 1e8)
            .remove(0)
            .take_frame(SimTime::ZERO);
    }
}
