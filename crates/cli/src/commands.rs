//! Command execution.

use std::io::Write;

use ringrt_breakdown::SaturationSearch;
use ringrt_core::pdp::{PdpAnalyzer, PdpVariant};
use ringrt_core::ttp::TtpAnalyzer;
use ringrt_core::SchedulabilityTest;
use ringrt_model::{FrameFormat, MessageSet, RingConfig};
use ringrt_sim::{PdpSimulator, Phasing, SimConfig, TtpSimulator};
use ringrt_units::{Bandwidth, Seconds};

use crate::args::USAGE;
use crate::{Cli, Command, ExitCode, OutputFormat, ProtocolChoice};

/// Executes a parsed command line, writing human-readable output to `out`.
///
/// Returns the process exit code. I/O errors on `out` are ignored (the
/// caller is a CLI writing to stdout).
pub fn run<W: Write>(cli: &Cli, out: &mut W) -> ExitCode {
    match &cli.command {
        Command::Help => {
            let _ = writeln!(out, "{USAGE}");
            ExitCode::Success
        }
        Command::Check {
            file,
            mbps,
            protocol,
            stations,
            format,
        } => with_set(file, out, |set, out| {
            check(set, *mbps, *protocol, *stations, *format, out)
        }),
        Command::Simulate {
            file,
            mbps,
            protocol,
            stations,
            seconds,
            async_load,
            seed,
        } => with_set(file, out, |set, out| {
            simulate(
                set,
                *mbps,
                *protocol,
                *stations,
                *seconds,
                *async_load,
                *seed,
                out,
            )
        }),
        Command::Sweep { file, mbps } => with_set(file, out, |set, out| sweep(set, mbps, out)),
        Command::Abu {
            mbps,
            stations,
            samples,
            seed,
        } => abu(*mbps, *stations, *samples, *seed, out),
        Command::Serve {
            addr,
            workers,
            queue_depth,
            deadline_ms,
        } => serve(addr, *workers, *queue_depth, *deadline_ms, out),
    }
}

fn serve<W: Write>(
    addr: &str,
    workers: usize,
    queue_depth: usize,
    deadline_ms: u64,
    out: &mut W,
) -> ExitCode {
    let config = ringrt_service::ServiceConfig {
        addr: addr.to_owned(),
        workers,
        queue_depth,
        default_deadline_ms: deadline_ms,
        ..ringrt_service::ServiceConfig::default()
    };
    let server = match ringrt_service::spawn(config) {
        Ok(s) => s,
        Err(e) => {
            let _ = writeln!(out, "error: cannot bind `{addr}`: {e}");
            return ExitCode::UsageError;
        }
    };
    let _ = writeln!(
        out,
        "listening on {} ({workers} workers, queue depth {queue_depth}); \
         send SHUTDOWN to stop",
        server.addr()
    );
    let _ = out.flush();
    server.wait();
    let _ = writeln!(out, "shut down cleanly");
    ExitCode::Success
}

fn abu<W: Write>(mbps: f64, stations: usize, samples: usize, seed: u64, out: &mut W) -> ExitCode {
    use ringrt_breakdown::BreakdownEstimator;
    use ringrt_workload::MessageSetGenerator;

    if stations == 0 || samples == 0 {
        let _ = writeln!(out, "error: --stations and --samples must be at least 1");
        return ExitCode::UsageError;
    }
    let bw = Bandwidth::from_mbps(mbps);
    let estimator =
        BreakdownEstimator::new(MessageSetGenerator::paper_population(stations), samples);
    let frame = FrameFormat::paper_default();
    let _ = writeln!(
        out,
        "average breakdown utilization at {bw}, {stations} stations, {samples} samples:"
    );
    let candidates: Vec<(&str, Box<dyn SchedulabilityTest + Sync>)> = vec![
        (
            "802.5",
            Box::new(PdpAnalyzer::new(
                RingConfig::ieee_802_5(stations, bw),
                frame,
                PdpVariant::Standard,
            )),
        ),
        (
            "modified",
            Box::new(PdpAnalyzer::new(
                RingConfig::ieee_802_5(stations, bw),
                frame,
                PdpVariant::Modified,
            )),
        ),
        (
            "fddi",
            Box::new(TtpAnalyzer::with_defaults(RingConfig::fddi(stations, bw))),
        ),
    ];
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    for (name, analyzer) in candidates {
        let est = estimator.estimate_parallel(&*analyzer, bw, seed, threads);
        let _ = writeln!(out, "  {name:<9} {:.4} ± {:.4}", est.mean, est.ci95);
    }
    ExitCode::Success
}

fn with_set<W: Write>(
    file: &str,
    out: &mut W,
    body: impl FnOnce(&MessageSet, &mut W) -> ExitCode,
) -> ExitCode {
    let text = match std::fs::read_to_string(file) {
        Ok(t) => t,
        Err(e) => {
            let _ = writeln!(out, "error: cannot read `{file}`: {e}");
            return ExitCode::UsageError;
        }
    };
    match crate::parse_message_set(&text) {
        Ok(set) => body(&set, out),
        Err(e) => {
            let _ = writeln!(out, "error: `{file}`: {e}");
            ExitCode::UsageError
        }
    }
}

fn ring_for(choice: ProtocolChoice, stations: usize, bw: Bandwidth) -> RingConfig {
    match choice {
        ProtocolChoice::Ieee8025 | ProtocolChoice::Modified => RingConfig::ieee_802_5(stations, bw),
        ProtocolChoice::Fddi => RingConfig::fddi(stations, bw),
    }
}

/// Canonical lower-case protocol token, shared with the admission
/// service's wire protocol and the csv output.
fn protocol_token(protocol: ProtocolChoice) -> &'static str {
    match protocol {
        ProtocolChoice::Ieee8025 => "802.5",
        ProtocolChoice::Modified => "modified",
        ProtocolChoice::Fddi => "fddi",
    }
}

fn check<W: Write>(
    set: &MessageSet,
    mbps: f64,
    protocol: ProtocolChoice,
    stations: Option<usize>,
    format: OutputFormat,
    out: &mut W,
) -> ExitCode {
    let bw = Bandwidth::from_mbps(mbps);
    let stations = stations.unwrap_or(set.len()).max(set.len());
    let ring = ring_for(protocol, stations, bw);
    if format == OutputFormat::Plain {
        let _ = writeln!(
            out,
            "{} streams, U = {:.4} at {bw}, ring of {stations} stations",
            set.len(),
            set.utilization(bw)
        );
    }
    let schedulable = match protocol {
        ProtocolChoice::Ieee8025 | ProtocolChoice::Modified => {
            let variant = if protocol == ProtocolChoice::Ieee8025 {
                PdpVariant::Standard
            } else {
                PdpVariant::Modified
            };
            let report = PdpAnalyzer::new(ring, FrameFormat::paper_default(), variant).analyze(set);
            if format == OutputFormat::Plain {
                let _ = write!(out, "{report}");
            }
            report.schedulable
        }
        ProtocolChoice::Fddi => {
            let report = TtpAnalyzer::with_defaults(ring).analyze(set);
            if format == OutputFormat::Plain {
                let _ = write!(out, "{report}");
            }
            report.schedulable
        }
    };
    if format == OutputFormat::Csv {
        let _ = writeln!(
            out,
            "protocol,mbps,stations,streams,utilization,schedulable"
        );
        let _ = writeln!(
            out,
            "{},{mbps},{stations},{},{:.6},{schedulable}",
            protocol_token(protocol),
            set.len(),
            set.utilization(bw),
        );
    }
    if schedulable {
        ExitCode::Success
    } else {
        ExitCode::Unschedulable
    }
}

#[allow(clippy::too_many_arguments)]
fn simulate<W: Write>(
    set: &MessageSet,
    mbps: f64,
    protocol: ProtocolChoice,
    stations: Option<usize>,
    seconds: f64,
    async_load: f64,
    seed: u64,
    out: &mut W,
) -> ExitCode {
    if !(seconds.is_finite() && seconds > 0.0) {
        let _ = writeln!(out, "error: --seconds must be positive");
        return ExitCode::UsageError;
    }
    if !(0.0..1.0).contains(&async_load) {
        let _ = writeln!(out, "error: --async-load must be in [0, 1)");
        return ExitCode::UsageError;
    }
    let bw = Bandwidth::from_mbps(mbps);
    let stations = stations.unwrap_or(set.len()).max(set.len());
    let ring = ring_for(protocol, stations, bw);
    let config = SimConfig::new(ring, Seconds::new(seconds))
        .with_phasing(Phasing::Synchronized)
        .with_async_load(async_load)
        .with_seed(seed);
    let report = match protocol {
        ProtocolChoice::Ieee8025 | ProtocolChoice::Modified => {
            let variant = if protocol == ProtocolChoice::Ieee8025 {
                PdpVariant::Standard
            } else {
                PdpVariant::Modified
            };
            PdpSimulator::new(set, config, FrameFormat::paper_default(), variant).run()
        }
        ProtocolChoice::Fddi => match TtpSimulator::from_analysis(set, config) {
            Ok(sim) => sim.run(),
            Err(e) => {
                let _ = writeln!(
                    out,
                    "FDDI cannot even allocate synchronous bandwidth for this set: {e}"
                );
                return ExitCode::Unschedulable;
            }
        },
    };
    let _ = write!(out, "{report}");
    if report.all_deadlines_met() {
        ExitCode::Success
    } else {
        ExitCode::Unschedulable
    }
}

fn sweep<W: Write>(set: &MessageSet, mbps_list: &[f64], out: &mut W) -> ExitCode {
    let search = SaturationSearch::default();
    let _ = writeln!(
        out,
        "headroom = largest factor the workload can grow before the criterion breaks"
    );
    let _ = writeln!(out, "mbps,protocol,schedulable,headroom,breakdown_util");
    for &mbps in mbps_list {
        let bw = Bandwidth::from_mbps(mbps);
        let n = set.len();
        let frame = FrameFormat::paper_default();
        let candidates: Vec<(&str, Box<dyn SchedulabilityTest>)> = vec![
            (
                "802.5",
                Box::new(PdpAnalyzer::new(
                    RingConfig::ieee_802_5(n, bw),
                    frame,
                    PdpVariant::Standard,
                )),
            ),
            (
                "modified",
                Box::new(PdpAnalyzer::new(
                    RingConfig::ieee_802_5(n, bw),
                    frame,
                    PdpVariant::Modified,
                )),
            ),
            (
                "fddi",
                Box::new(TtpAnalyzer::with_defaults(RingConfig::fddi(n, bw))),
            ),
        ];
        for (name, analyzer) in candidates {
            let verdict = analyzer.is_schedulable(set);
            match search.saturate(analyzer.as_ref(), set, bw) {
                Some(sat) => {
                    let _ = writeln!(
                        out,
                        "{mbps},{name},{verdict},{:.3},{:.4}",
                        sat.scale, sat.utilization
                    );
                }
                None => {
                    let _ = writeln!(out, "{mbps},{name},{verdict},-,-");
                }
            }
        }
    }
    ExitCode::Success
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_set(contents: &str) -> (tempdir::TempDirGuard, String) {
        tempdir::write_temp("ringrt-cli-test", contents)
    }

    /// Minimal temp-file helper (std-only).
    mod tempdir {
        use std::path::PathBuf;

        pub struct TempDirGuard(PathBuf);
        impl Drop for TempDirGuard {
            fn drop(&mut self) {
                let _ = std::fs::remove_file(&self.0);
            }
        }

        pub fn write_temp(prefix: &str, contents: &str) -> (TempDirGuard, String) {
            let unique = format!(
                "{prefix}-{}-{:p}.txt",
                std::process::id(),
                &contents as *const _
            );
            let path = std::env::temp_dir().join(unique);
            std::fs::write(&path, contents).expect("write temp set file");
            let s = path.to_string_lossy().into_owned();
            (TempDirGuard(path), s)
        }
    }

    fn run_cli(args: &[&str]) -> (ExitCode, String) {
        let cli = Cli::parse(args.iter().map(|s| (*s).to_owned())).expect("parse");
        let mut out = Vec::new();
        let code = run(&cli, &mut out);
        (code, String::from_utf8(out).unwrap())
    }

    #[test]
    fn check_schedulable_set() {
        let (_g, path) = write_set("20, 20000\n50, 60000\n");
        let (code, out) = run_cli(&["check", &path, "--mbps", "16"]);
        assert_eq!(code, ExitCode::Success);
        assert!(out.contains("PASS"), "{out}");
    }

    #[test]
    fn check_unschedulable_set() {
        let (_g, path) = write_set("10, 60000\n10, 60000\n"); // 120 % at 1 Mbps
        let (code, out) = run_cli(&["check", &path, "--mbps", "1"]);
        assert_eq!(code, ExitCode::Unschedulable);
        assert!(out.contains("FAIL"), "{out}");
    }

    #[test]
    fn check_fddi_protocol() {
        let (_g, path) = write_set("20, 200000\n50, 500000\n");
        let (code, out) = run_cli(&["check", &path, "--mbps", "100", "--protocol", "fddi"]);
        assert_eq!(code, ExitCode::Success);
        assert!(out.contains("TTRT"), "{out}");
    }

    #[test]
    fn simulate_reports_misses() {
        let (_g, path) = write_set("10, 30000\n10, 30000\n"); // hopeless at 1 Mbps
        let (code, out) = run_cli(&[
            "simulate",
            &path,
            "--mbps",
            "1",
            "--protocol",
            "802.5",
            "--seconds",
            "0.3",
        ]);
        assert_eq!(code, ExitCode::Unschedulable);
        assert!(out.contains("deadline misses"), "{out}");
    }

    #[test]
    fn simulate_clean_run() {
        let (_g, path) = write_set("20, 4000\n40, 8000\n");
        let (code, out) = run_cli(&["simulate", &path, "--mbps", "4", "--seconds", "0.5"]);
        assert_eq!(code, ExitCode::Success);
        assert!(out.contains("0 deadline misses"), "{out}");
    }

    #[test]
    fn sweep_outputs_csv() {
        let (_g, path) = write_set("20, 20000\n100, 100000\n");
        let (code, out) = run_cli(&["sweep", &path, "--mbps", "4,100"]);
        assert_eq!(code, ExitCode::Success);
        assert!(out.contains("4,802.5,"), "{out}");
        assert!(out.contains("100,fddi,"), "{out}");
    }

    #[test]
    fn check_csv_format() {
        let (_g, path) = write_set("20, 20000\n50, 60000\n");
        let (code, out) = run_cli(&["check", &path, "--mbps", "16", "--format", "csv"]);
        assert_eq!(code, ExitCode::Success);
        let mut lines = out.lines();
        assert_eq!(
            lines.next(),
            Some("protocol,mbps,stations,streams,utilization,schedulable")
        );
        let row = lines.next().unwrap();
        assert!(row.starts_with("modified,16,2,2,"), "{row}");
        assert!(row.ends_with(",true"), "{row}");
        assert_eq!(lines.next(), None, "csv mode must print nothing else");
    }

    #[test]
    fn check_csv_unschedulable_row() {
        let (_g, path) = write_set("10, 60000\n10, 60000\n");
        let (code, out) = run_cli(&[
            "check",
            &path,
            "--mbps",
            "1",
            "--protocol",
            "802.5",
            "--format",
            "csv",
        ]);
        assert_eq!(code, ExitCode::Unschedulable);
        assert!(out.contains("802.5,1,2,2,"), "{out}");
        assert!(out.trim_end().ends_with(",false"), "{out}");
    }

    #[test]
    fn serve_runs_until_shutdown() {
        use std::io::{BufRead, BufReader};
        use std::net::TcpStream;
        use std::sync::{Arc, Mutex};

        #[derive(Clone)]
        struct SharedBuf(Arc<Mutex<Vec<u8>>>);
        impl Write for SharedBuf {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let buf = SharedBuf(Arc::new(Mutex::new(Vec::new())));
        let cli = Cli::parse(
            ["serve", "--addr", "127.0.0.1:0", "--workers", "1"]
                .iter()
                .map(|s| (*s).to_owned()),
        )
        .unwrap();
        let mut thread_out = buf.clone();
        let handle = std::thread::spawn(move || run(&cli, &mut thread_out));

        // Wait for the "listening on …" line to learn the ephemeral port.
        let addr = loop {
            let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
            if let Some(rest) = text.strip_prefix("listening on ") {
                break rest.split_whitespace().next().unwrap().to_owned();
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        };
        let stream = TcpStream::connect(&addr).expect("connect to served port");
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        let mut resp = String::new();
        writeln!(writer, "CHECK mbps=16 set=20,20000;50,60000").unwrap();
        reader.read_line(&mut resp).unwrap();
        assert!(resp.contains("schedulable=true"), "{resp}");
        resp.clear();
        writeln!(writer, "SHUTDOWN").unwrap();
        reader.read_line(&mut resp).unwrap();
        assert!(resp.contains("shutdown"), "{resp}");

        assert_eq!(handle.join().unwrap(), ExitCode::Success);
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert!(text.contains("shut down cleanly"), "{text}");
    }

    #[test]
    fn missing_file_is_usage_error() {
        let (code, out) = run_cli(&["check", "/nonexistent/set.txt", "--mbps", "4"]);
        assert_eq!(code, ExitCode::UsageError);
        assert!(out.contains("cannot read"), "{out}");
    }

    #[test]
    fn bad_set_file_is_usage_error() {
        let (_g, path) = write_set("not a set\n");
        let (code, out) = run_cli(&["check", &path, "--mbps", "4"]);
        assert_eq!(code, ExitCode::UsageError);
        assert!(out.contains("line 1"), "{out}");
    }

    #[test]
    fn simulate_validates_flags() {
        let (_g, path) = write_set("20, 4000\n");
        let (code, _) = run_cli(&["simulate", &path, "--mbps", "4", "--seconds", "-1"]);
        assert_eq!(code, ExitCode::UsageError);
        let (code, _) = run_cli(&["simulate", &path, "--mbps", "4", "--async-load", "1.5"]);
        assert_eq!(code, ExitCode::UsageError);
    }

    #[test]
    fn abu_estimates_three_protocols() {
        let cli = Cli::parse(
            ["abu", "--mbps", "100", "--stations", "8", "--samples", "4"]
                .iter()
                .map(|s| (*s).to_owned()),
        )
        .unwrap();
        let mut out = Vec::new();
        let code = run(&cli, &mut out);
        let text = String::from_utf8(out).unwrap();
        assert_eq!(code, ExitCode::Success);
        assert!(text.contains("802.5"), "{text}");
        assert!(text.contains("fddi"), "{text}");
        assert!(text.contains("±"), "{text}");
    }

    #[test]
    fn help_prints_usage() {
        let (code, out) = run_cli(&["help"]);
        assert_eq!(code, ExitCode::Success);
        assert!(out.contains("USAGE"));
    }
}
