//! Target Token Rotation Time selection (paper §5.2).

use core::fmt;

use ringrt_model::{MessageSet, SetView};
use ringrt_units::Seconds;

use super::visit_count;

/// How the ring chooses its Target Token Rotation Time.
///
/// Johnson's bound (time between consecutive token visits ≤ 2·TTRT) forces
/// `TTRT ≤ D_min/2` for any deadline guarantee (with `D_i = P_i` in the
/// paper's model); within that range the paper shows performance is quite
/// sensitive to the choice and proposes the bidding rule
/// `TTRT = min_i √(Θ'·P_i) = √(Θ'·P_min)`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum TtrtPolicy {
    /// The paper's heuristic: `√(Θ'·P_min)`, clamped to `P_min/2`.
    #[default]
    SqrtHeuristic,
    /// The naive maximal choice `P_min/2` allowed by Johnson's bound.
    HalfMinPeriod,
    /// An externally fixed TTRT (e.g. a network-wide configuration value).
    Fixed(Seconds),
    /// Pick the best of `points` logarithmically spaced candidates in
    /// `(Θ', P_min/2]` by maximizing the Theorem 5.1 slack for the set at
    /// hand. Used by the TTRT-sensitivity experiments as an oracle.
    GridSearch {
        /// Number of candidate TTRT values to evaluate.
        points: usize,
    },
}

impl fmt::Display for TtrtPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TtrtPolicy::SqrtHeuristic => f.write_str("√(Θ'·P_min)"),
            TtrtPolicy::HalfMinPeriod => f.write_str("P_min/2"),
            TtrtPolicy::Fixed(t) => write!(f, "fixed {t}"),
            TtrtPolicy::GridSearch { points } => write!(f, "grid search ({points} points)"),
        }
    }
}

impl TtrtPolicy {
    /// Selects the TTRT for a message set given the per-rotation overhead
    /// `Θ' = Θ + F_async`.
    ///
    /// The returned value is always strictly positive; feasibility (e.g.
    /// `TTRT > Θ'`) is judged by the schedulability test, not here.
    ///
    /// For [`TtrtPolicy::GridSearch`] the candidate maximizing the
    /// Theorem 5.1 slack
    /// `TTRT − Θ' − Σ C_i/(q_i−1) − n·F_ovhd` is returned; candidates where
    /// some `q_i < 2` are skipped (falling back to the √ heuristic if every
    /// candidate is infeasible).
    #[must_use]
    pub fn select(
        &self,
        set: &MessageSet,
        theta_prime: Seconds,
        frame_overhead_time: Seconds,
        bandwidth: ringrt_units::Bandwidth,
    ) -> Seconds {
        self.select_view(set, theta_prime, frame_overhead_time, bandwidth)
    }

    /// [`TtrtPolicy::select`] over a [`SetView`]. The `MessageSet` version
    /// delegates here, so both paths are one implementation: any view whose
    /// extrema and station order match `MessageSet`'s yields a bit-identical
    /// TTRT.
    #[must_use]
    pub fn select_view(
        &self,
        view: &dyn SetView,
        theta_prime: Seconds,
        frame_overhead_time: Seconds,
        bandwidth: ringrt_units::Bandwidth,
    ) -> Seconds {
        // An empty set folds to +∞ in `MessageSet::min_deadline`; preserve
        // that here so the degenerate cases keep their historical answers.
        let p_min = view
            .min_deadline_view()
            .unwrap_or(Seconds::new(f64::INFINITY));
        let half_p_min = p_min / 2.0;
        match *self {
            TtrtPolicy::SqrtHeuristic => {
                let sqrt =
                    Seconds::new(theta_prime.as_secs_f64() * p_min.as_secs_f64()).sqrt_value();
                sqrt.min(half_p_min)
            }
            TtrtPolicy::HalfMinPeriod => half_p_min,
            TtrtPolicy::Fixed(t) => t,
            TtrtPolicy::GridSearch { points } => {
                let points = points.max(2);
                let lo = theta_prime.as_secs_f64().max(1e-12) * 1.001;
                let hi = half_p_min.as_secs_f64();
                if lo >= hi {
                    // Degenerate range: overheads swamp the shortest period.
                    return TtrtPolicy::SqrtHeuristic.select_view(
                        view,
                        theta_prime,
                        frame_overhead_time,
                        bandwidth,
                    );
                }
                let mut best: Option<(f64, Seconds)> = None;
                for j in 0..points {
                    let frac = j as f64 / (points - 1) as f64;
                    let t = Seconds::new(lo * (hi / lo).powf(frac));
                    if let Some(slack) =
                        theorem_5_1_slack_view(view, t, theta_prime, frame_overhead_time, bandwidth)
                    {
                        match best {
                            Some((s, _)) if s >= slack => {}
                            _ => best = Some((slack, t)),
                        }
                    }
                }
                best.map(|(_, t)| t).unwrap_or_else(|| {
                    TtrtPolicy::SqrtHeuristic.select_view(
                        view,
                        theta_prime,
                        frame_overhead_time,
                        bandwidth,
                    )
                })
            }
        }
    }
}

/// The slack of the Theorem 5.1 inequality for a candidate TTRT, or `None`
/// if any stream has `q_i < 2` (no deadline guarantee possible at that
/// TTRT).
#[must_use]
pub(crate) fn theorem_5_1_slack(
    set: &MessageSet,
    ttrt: Seconds,
    theta_prime: Seconds,
    frame_overhead_time: Seconds,
    bandwidth: ringrt_units::Bandwidth,
) -> Option<f64> {
    theorem_5_1_slack_view(set, ttrt, theta_prime, frame_overhead_time, bandwidth)
}

/// [`theorem_5_1_slack`] over a [`SetView`]: the per-stream terms are summed
/// left to right in station order, exactly as the `MessageSet` loop does.
#[must_use]
pub(crate) fn theorem_5_1_slack_view(
    view: &dyn SetView,
    ttrt: Seconds,
    theta_prime: Seconds,
    frame_overhead_time: Seconds,
    bandwidth: ringrt_units::Bandwidth,
) -> Option<f64> {
    let mut lhs = Seconds::ZERO;
    for s in view.stations() {
        // Visits guaranteed within the message's *deadline* window (= the
        // period in the paper's model).
        let q = visit_count(s.relative_deadline(), ttrt);
        if q < 2 {
            return None;
        }
        lhs += s.transmission_time(bandwidth) / (q - 1) as f64 + frame_overhead_time;
    }
    let rhs = ttrt - theta_prime;
    Some((rhs - lhs).as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringrt_model::SyncStream;
    use ringrt_units::{Bandwidth, Bits};

    fn set(periods_ms: &[f64]) -> MessageSet {
        MessageSet::new(
            periods_ms
                .iter()
                .map(|&p| SyncStream::new(Seconds::from_millis(p), Bits::new(1_000)))
                .collect(),
        )
        .unwrap()
    }

    const BW: fn() -> Bandwidth = || Bandwidth::from_mbps(100.0);

    #[test]
    fn sqrt_heuristic_formula() {
        let m = set(&[100.0, 200.0]);
        let theta = Seconds::from_micros(126.0);
        let t = TtrtPolicy::SqrtHeuristic.select(&m, theta, Seconds::ZERO, BW());
        let expect = (126e-6_f64 * 0.1).sqrt();
        assert!((t.as_secs_f64() - expect).abs() < 1e-12);
    }

    #[test]
    fn sqrt_heuristic_clamps_to_half_min_period() {
        // Huge overhead: √(Θ'·P) > P/2 → clamp.
        let m = set(&[10.0]);
        let theta = Seconds::from_millis(9.0);
        let t = TtrtPolicy::SqrtHeuristic.select(&m, theta, Seconds::ZERO, BW());
        assert_eq!(t, Seconds::from_millis(5.0));
    }

    #[test]
    fn half_min_period_and_fixed() {
        let m = set(&[40.0, 80.0]);
        assert_eq!(
            TtrtPolicy::HalfMinPeriod.select(&m, Seconds::ZERO, Seconds::ZERO, BW()),
            Seconds::from_millis(20.0)
        );
        let fixed = Seconds::from_millis(7.0);
        assert_eq!(
            TtrtPolicy::Fixed(fixed).select(&m, Seconds::ZERO, Seconds::ZERO, BW()),
            fixed
        );
    }

    #[test]
    fn grid_search_beats_or_matches_heuristic() {
        let m = MessageSet::new(vec![
            SyncStream::new(Seconds::from_millis(20.0), Bits::new(100_000)),
            SyncStream::new(Seconds::from_millis(45.0), Bits::new(200_000)),
            SyncStream::new(Seconds::from_millis(170.0), Bits::new(800_000)),
        ])
        .unwrap();
        let theta = Seconds::from_micros(126.0);
        let fo = Seconds::from_micros(1.12);
        let t_sqrt = TtrtPolicy::SqrtHeuristic.select(&m, theta, fo, BW());
        let t_grid = TtrtPolicy::GridSearch { points: 200 }.select(&m, theta, fo, BW());
        let s_sqrt = theorem_5_1_slack(&m, t_sqrt, theta, fo, BW());
        let s_grid = theorem_5_1_slack(&m, t_grid, theta, fo, BW());
        match (s_sqrt, s_grid) {
            (Some(a), Some(b)) => assert!(b >= a - 1e-12, "grid {b} < sqrt {a}"),
            (None, Some(_)) => {}
            other => panic!("unexpected slacks: {other:?}"),
        }
    }

    #[test]
    fn slack_none_when_q_below_two() {
        let m = set(&[10.0]);
        // TTRT of 6 ms → q = 1 → no guarantee.
        assert!(theorem_5_1_slack(
            &m,
            Seconds::from_millis(6.0),
            Seconds::ZERO,
            Seconds::ZERO,
            BW()
        )
        .is_none());
    }

    #[test]
    fn display() {
        assert_eq!(TtrtPolicy::SqrtHeuristic.to_string(), "√(Θ'·P_min)");
        assert_eq!(TtrtPolicy::HalfMinPeriod.to_string(), "P_min/2");
        assert!(TtrtPolicy::Fixed(Seconds::from_millis(8.0))
            .to_string()
            .starts_with("fixed"));
        assert!(TtrtPolicy::GridSearch { points: 10 }
            .to_string()
            .contains("10"));
        assert_eq!(TtrtPolicy::default(), TtrtPolicy::SqrtHeuristic);
    }
}
