//! Message-length shapes.

use core::fmt;

use rand::Rng;
use ringrt_units::Seconds;

/// The *relative* shape of message lengths in a random set.
///
/// The breakdown-utilization search multiplies all lengths by a common
/// factor until the set saturates, so only the ratios between stream
/// lengths matter. A shape assigns each stream a positive weight; the
/// generator then converts weights into payload bits.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
#[derive(Default)]
pub enum LengthShape {
    /// Each stream's *utilization share* `C_i/P_i` is an independent
    /// uniform draw from `(0, 1]`. Long-period streams thus get
    /// proportionally longer messages. This mirrors the Lehoczky–Sha–Ding
    /// CPU-task populations and is the default.
    #[default]
    UniformUtilization,
    /// Each stream's *length in bits* is an independent uniform draw from
    /// `(0, 1]` (relative units) regardless of its period: short-period
    /// streams can carry disproportionally heavy messages.
    UniformBits,
    /// All streams transmit equally long messages.
    EqualBits,
}

impl LengthShape {
    /// Draws a relative length weight (interpreted against `period`) and
    /// returns it as an *equivalent transmission-time share*, i.e. a value
    /// proportional to the stream's pre-scaling transmission time in
    /// seconds.
    pub fn sample_relative_time<R: Rng + ?Sized>(&self, rng: &mut R, period: Seconds) -> f64 {
        match self {
            LengthShape::UniformUtilization => {
                // u ∈ (0, 1]; transmission time u·P.
                let u: f64 = 1.0 - rng.gen::<f64>(); // (0, 1]
                u * period.as_secs_f64()
            }
            LengthShape::UniformBits => 1.0 - rng.gen::<f64>(),
            LengthShape::EqualBits => 1.0,
        }
    }
}

impl fmt::Display for LengthShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LengthShape::UniformUtilization => f.write_str("uniform utilization"),
            LengthShape::UniformBits => f.write_str("uniform bits"),
            LengthShape::EqualBits => f.write_str("equal bits"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_utilization_scales_with_period() {
        let mut rng = StdRng::seed_from_u64(11);
        let short = Seconds::from_millis(10.0);
        let long = Seconds::from_millis(1000.0);
        let mean = |p: Seconds, rng: &mut StdRng| {
            (0..5000)
                .map(|_| LengthShape::UniformUtilization.sample_relative_time(rng, p))
                .sum::<f64>()
                / 5000.0
        };
        let m_short = mean(short, &mut rng);
        let m_long = mean(long, &mut rng);
        // Expected means are P/2: ratio ≈ 100.
        assert!((m_long / m_short - 100.0).abs() < 10.0);
    }

    #[test]
    fn uniform_bits_ignores_period() {
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..1000 {
            let w = LengthShape::UniformBits
                .sample_relative_time(&mut rng, Seconds::from_millis(123.0));
            assert!(w > 0.0 && w <= 1.0);
        }
    }

    #[test]
    fn equal_bits_constant() {
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..10 {
            assert_eq!(
                LengthShape::EqualBits.sample_relative_time(&mut rng, Seconds::from_millis(5.0)),
                1.0
            );
        }
    }

    #[test]
    fn default_and_display() {
        assert_eq!(LengthShape::default(), LengthShape::UniformUtilization);
        assert_eq!(LengthShape::EqualBits.to_string(), "equal bits");
        assert_eq!(LengthShape::UniformBits.to_string(), "uniform bits");
    }
}
