//! VALID-SIM as a hard test: the analytical guarantees of Theorems 4.1 and
//! 5.1 must hold in the frame-level simulators, and genuine overloads must
//! visibly miss.

use rand::rngs::StdRng;
use rand::SeedableRng;

use ringrt::analysis::pdp::{PdpAnalyzer, PdpVariant};
use ringrt::analysis::ttp::TtpAnalyzer;
use ringrt::breakdown::SaturationSearch;
use ringrt::model::{FrameFormat, RingConfig};
use ringrt::sim::{PdpSimulator, Phasing, SimConfig, TtpSimulator};
use ringrt::units::{Bandwidth, Seconds};
use ringrt::workload::MessageSetGenerator;

const STATIONS: usize = 12;
fn horizon() -> Seconds {
    Seconds::new(1.0)
}

#[test]
fn ttp_saturated_sets_meet_deadlines_in_simulation() {
    let bw = Bandwidth::from_mbps(100.0);
    let ring = RingConfig::fddi(STATIONS, bw);
    let analyzer = TtpAnalyzer::with_defaults(ring);
    let generator = MessageSetGenerator::paper_population(STATIONS);
    let search = SaturationSearch::with_tolerance(1e-3);
    let mut rng = StdRng::seed_from_u64(0x5A11);
    for k in 0..4u64 {
        let base = generator.generate(&mut rng);
        let sat = search.saturate(&analyzer, &base, bw).expect("feasible");
        let near_boundary = sat.set.with_scaled_lengths(0.97);
        let config = SimConfig::new(ring, horizon())
            .with_phasing(Phasing::Synchronized)
            .with_async_load(0.2)
            .with_seed(k);
        let report = TtpSimulator::from_analysis(&near_boundary, config)
            .expect("schedulable ⇒ feasible allocation")
            .run();
        assert_eq!(
            report.deadline_misses(),
            0,
            "set {k} (boundary U = {:.3}) missed deadlines:\n{report}",
            sat.utilization
        );
    }
}

#[test]
fn pdp_saturated_sets_meet_deadlines_in_simulation() {
    let bw = Bandwidth::from_mbps(4.0);
    let ring = RingConfig::ieee_802_5(STATIONS, bw);
    let frame = FrameFormat::paper_default();
    let generator = MessageSetGenerator::paper_population(STATIONS);
    let search = SaturationSearch::with_tolerance(1e-3);
    // The paper's Theorem 4.1 charges token circulation at Θ/2 per frame
    // *on average* (its own stated assumption). A faithful simulator makes
    // back-to-back frames of one station pay a full Θ walk, so the
    // standard variant's criterion is only accurate up to that averaging:
    // we validate it with a correspondingly wider margin, and the modified
    // variant (token overhead once per message) right at the boundary.
    for (variant, margin) in [(PdpVariant::Standard, 0.85), (PdpVariant::Modified, 0.97)] {
        let analyzer = PdpAnalyzer::new(ring, frame, variant);
        let mut rng = StdRng::seed_from_u64(77);
        for k in 0..3u64 {
            let base = generator.generate(&mut rng);
            let sat = search.saturate(&analyzer, &base, bw).expect("feasible");
            let near_boundary = sat.set.with_scaled_lengths(margin);
            let config = SimConfig::new(ring, horizon())
                .with_phasing(Phasing::Synchronized)
                .with_async_load(0.2)
                .with_seed(k);
            let report = PdpSimulator::new(&near_boundary, config, frame, variant).run();
            assert_eq!(
                report.deadline_misses(),
                0,
                "{variant:?} set {k} (boundary U = {:.3}) missed deadlines:\n{report}",
                sat.utilization
            );
        }
    }
}

#[test]
fn genuine_overload_misses_in_both_simulators() {
    let generator = MessageSetGenerator::paper_population(STATIONS);
    let mut rng = StdRng::seed_from_u64(123);
    let base = generator.generate(&mut rng);

    // Scale the set to raw utilization 1.3: beyond any protocol's capacity.
    let bw = Bandwidth::from_mbps(100.0);
    let u = base.utilization(bw);
    let overloaded = base.with_scaled_lengths(1.3 / u);

    let ring = RingConfig::fddi(STATIONS, bw);
    let config = SimConfig::new(ring, horizon());
    // Give the sim generous (but protocol-legal) allocations by hand.
    let ttrt = Seconds::from_millis(2.0);
    let h = vec![Seconds::from_micros(150.0); STATIONS];
    let ttp = TtpSimulator::with_allocations(&overloaded, config, ttrt, &h)
        .expect("allocations are structurally valid")
        .run();
    assert!(
        ttp.deadline_misses() > 0,
        "FDDI absorbed a 130 % load?\n{ttp}"
    );

    let ring = RingConfig::ieee_802_5(STATIONS, bw);
    let config = SimConfig::new(ring, horizon());
    let pdp = PdpSimulator::new(
        &overloaded,
        config,
        FrameFormat::paper_default(),
        PdpVariant::Modified,
    )
    .run();
    assert!(
        pdp.deadline_misses() > 0,
        "802.5 absorbed a 130 % load?\n{pdp}"
    );
}

#[test]
fn johnson_bound_holds_under_stress() {
    // Sevcik–Johnson: consecutive token arrivals ≤ 2·TTRT apart — the
    // property the deadline constraint is built on. Verified under maximal
    // schedulable sync load plus async pressure.
    let bw = Bandwidth::from_mbps(100.0);
    let ring = RingConfig::fddi(STATIONS, bw);
    let analyzer = TtpAnalyzer::with_defaults(ring);
    let generator = MessageSetGenerator::paper_population(STATIONS);
    let search = SaturationSearch::with_tolerance(1e-3);
    let mut rng = StdRng::seed_from_u64(5);
    let base = generator.generate(&mut rng);
    let sat = search.saturate(&analyzer, &base, bw).expect("feasible");
    let config = SimConfig::new(ring, horizon()).with_async_load(0.4);
    let sim = TtpSimulator::from_analysis(&sat.set, config).expect("feasible");
    let ttrt = sim.ttrt();
    let report = sim.run();
    let max_rot = report.max_rotation().expect("token rotated").as_seconds();
    // One asynchronous overrun frame of slop.
    let slop = 1e-5;
    assert!(
        max_rot.as_secs_f64() <= 2.0 * ttrt.as_secs_f64() + slop,
        "rotation {} exceeded 2·TTRT = {}",
        max_rot,
        2.0 * ttrt.as_secs_f64()
    );
}
