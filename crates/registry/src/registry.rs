//! The registry proper: a thread-safe named-ring store with journaled
//! persistence, incremental admission control, and journal-shipping
//! replication hooks.

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Mutex};

use ringrt_model::SyncStream;

use crate::engine::{self, CheckOutcome, TtpCache};
use crate::journal::{self, JournalOp, ReplayStats, Store, StoreOptions};
use crate::spec::{validate_name, NamedStream, RegistryError, RingSpec, RingState};

/// One ring plus the derived analysis state that never touches disk.
#[derive(Debug)]
struct RingEntry {
    state: RingState,
    /// Cached Theorem 5.1 terms (TTP rings only); rebuilt lazily.
    ttp_cache: Option<TtpCache>,
    /// Mutation generation: the value of the registry-wide counter at this
    /// ring's last mutation. Globally unique across rings *and* across
    /// unregister/re-register cycles, so anything keyed by
    /// `(ring, generation)` — the service's result cache, most notably —
    /// can never confuse two distinct states of the same ring name.
    generation: u64,
}

#[derive(Debug)]
struct Inner {
    rings: BTreeMap<String, RingEntry>,
    /// `None` for a purely in-memory registry (tests, ephemeral servers).
    store: Option<Store>,
    /// Registry-wide mutation counter backing [`RingEntry::generation`];
    /// bumped on **every** committed mutation, including `UNREGISTER`.
    generation: u64,
    /// Live journal-shipping subscribers; every committed record line is
    /// forwarded to each. A subscriber whose receiver is gone — or whose
    /// queue is full ([`SHIP_SUBSCRIBER_CAP`], a stalled-but-connected
    /// follower) — is dropped on the next send, closing its stream so the
    /// follower reconnects and resyncs from its own `next_seq`.
    subscribers: Vec<mpsc::SyncSender<String>>,
}

/// Cap on record lines queued to one shipping subscriber. Commits never
/// block on a slow follower: a subscriber that falls this far behind is
/// dropped instead, bounding primary memory, and the closed stream forces
/// the follower through the normal resync path.
const SHIP_SUBSCRIBER_CAP: usize = 1024;

/// Work counters proving the incremental path's savings; exposed via
/// `STATS` and [`RingRegistry::metrics`].
#[derive(Debug, Default)]
struct Counters {
    incremental_tests: AtomicU64,
    full_tests: AtomicU64,
    incremental_evaluations: AtomicU64,
    full_evaluations: AtomicU64,
}

/// A persistent, thread-safe store of named rings and their admitted
/// streams, with incremental Theorem 4.1/5.1 re-analysis on every
/// mutation.
///
/// All mutations are journaled **before** they touch memory, so the
/// in-memory map never runs ahead of what a crash would recover.
#[derive(Debug)]
pub struct RingRegistry {
    inner: Mutex<Inner>,
    /// Serializes compactions so two concurrent `COMPACT`s cannot
    /// interleave their publish phases; held across the whole three-phase
    /// protocol while `inner` is only held for begin/finish.
    compact_guard: Mutex<()>,
    counters: Counters,
    replay: Option<ReplayStats>,
}

/// Result of an `ADMIT`/`REMOVE` call: the verdict plus ring bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionOutcome {
    /// The schedulability verdict (for `REMOVE`: of the remaining set).
    pub check: CheckOutcome,
    /// Whether the mutation was applied (rejected admits are not).
    pub applied: bool,
    /// Streams in the ring after the call.
    pub streams: usize,
}

/// Result of a full `CHECK ring=…` re-analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct RingCheck {
    /// Whether the stored set is schedulable.
    pub schedulable: bool,
    /// Scheduling-point evaluations the full test performed.
    pub evaluations: u64,
    /// The ring's spec.
    pub spec: RingSpec,
    /// Number of admitted streams.
    pub streams: usize,
    /// Synchronous utilization of the stored set on this ring.
    pub utilization: f64,
}

/// Point-in-time registry gauges for `STATS` and the metrics endpoint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegistryMetrics {
    /// Registered rings.
    pub rings: usize,
    /// Admitted streams across all rings.
    pub streams: usize,
    /// Current journal size in bytes (all segments).
    pub journal_bytes: u64,
    /// Current snapshot size in bytes.
    pub snapshot_bytes: u64,
    /// Startup recovery time in milliseconds.
    pub replay_ms: f64,
    /// Streams restored by startup recovery.
    pub replayed_streams: usize,
    /// Admission checks that took the incremental path.
    pub incremental_tests: u64,
    /// Admission checks that recomputed from scratch.
    pub full_tests: u64,
    /// Evaluations spent on incremental checks.
    pub incremental_evaluations: u64,
    /// Evaluations spent on full checks.
    pub full_evaluations: u64,
    /// Approximate resident bytes of all ring stream stores (columns plus
    /// indexes).
    pub store_bytes: u64,
    /// Sequence-domain index compactions performed across all stores.
    pub index_rebuilds: u64,
}

/// One page of a ring's admission-order stream listing, with the header
/// gauges `SHOW` renders. Produced by [`RingRegistry::ring_page`].
#[derive(Debug, Clone, PartialEq)]
pub struct RingPage {
    /// The ring's spec.
    pub spec: RingSpec,
    /// Total admitted streams in the ring (not just this page).
    pub streams: usize,
    /// Station index of the first stream in `page`.
    pub offset: usize,
    /// The listed streams, `(name, stream)` in admission order.
    pub page: Vec<(String, SyncStream)>,
}

/// Everything a follower needs to catch up and stay caught up, captured
/// atomically under the registry lock by [`RingRegistry::subscribe`]:
/// no committed record can fall between `backlog` and `live`.
#[derive(Debug)]
pub struct ShipSubscription {
    /// The primary's fencing epoch at subscription time.
    pub epoch: u64,
    /// The primary's journal cluster identity at subscription time.
    pub cluster: u64,
    /// Highest committed sequence number at subscription time.
    pub head: u64,
    /// Snapshot text and its covered sequence, when the requested start
    /// lies at or below the snapshot floor (the journal no longer holds
    /// those records).
    pub snapshot: Option<(u64, String)>,
    /// Record lines from the resume point (or just past the snapshot) to
    /// the head.
    pub backlog: Vec<String>,
    /// Record lines committed after subscription, in commit order.
    pub live: mpsc::Receiver<String>,
}

/// What applying one shipped record line did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicatedApply {
    /// The record carried the next sequence and was journaled + applied.
    Applied {
        /// Its sequence number.
        seq: u64,
    },
    /// The record was already applied (duplicate delivery); idempotently
    /// ignored.
    Duplicate {
        /// Its sequence number.
        seq: u64,
    },
    /// The record skips ahead of the journal (lost frames); the caller
    /// must re-sync from `expected`.
    Gap {
        /// The sequence the journal needs next.
        expected: u64,
        /// The sequence the frame carried.
        got: u64,
    },
}

fn in_memory_err() -> RegistryError {
    RegistryError::Storage {
        reason: "operation requires a persistent state directory".to_owned(),
    }
}

/// Refuses a replicated apply whose stream was fenced off by a newer
/// epoch (promotion). `None` skips the check (local/offline replays).
fn check_epoch_fence(store: &Store, expected: Option<u64>) -> Result<(), RegistryError> {
    let Some(expected) = expected else {
        return Ok(());
    };
    let serving = store.epoch();
    if serving != expected {
        return Err(RegistryError::Storage {
            reason: format!(
                "replication stream fenced: stream epoch {expected}, local epoch {serving}"
            ),
        });
    }
    Ok(())
}

impl RingRegistry {
    /// A registry with no backing store; state dies with the process.
    #[must_use]
    pub fn in_memory() -> Self {
        RingRegistry {
            inner: Mutex::new(Inner {
                rings: BTreeMap::new(),
                store: None,
                generation: 0,
                subscribers: Vec::new(),
            }),
            compact_guard: Mutex::new(()),
            counters: Counters::default(),
            replay: None,
        }
    }

    /// Opens (creating if needed) a journaled registry in `dir` with the
    /// default [`StoreOptions`], replaying any persisted state.
    ///
    /// # Errors
    ///
    /// [`RegistryError::Storage`] if the directory cannot be opened or the
    /// journal replays inconsistently.
    pub fn open(dir: &Path) -> Result<Self, RegistryError> {
        Self::open_with(dir, StoreOptions::default())
    }

    /// [`open`](Self::open) with explicit segment size and fault
    /// injection.
    ///
    /// # Errors
    ///
    /// As [`open`](Self::open).
    pub fn open_with(dir: &Path, options: StoreOptions) -> Result<Self, RegistryError> {
        let (store, rings, replay) = Store::open_with(dir, options)?;
        // Replayed rings get fresh, distinct generations; the counter starts
        // past them so post-recovery mutations never reuse one.
        let mut generation = 0u64;
        let rings = rings
            .into_iter()
            .map(|(name, state)| {
                generation += 1;
                (
                    name,
                    RingEntry {
                        state,
                        ttp_cache: None,
                        generation,
                    },
                )
            })
            .collect();
        Ok(RingRegistry {
            inner: Mutex::new(Inner {
                rings,
                store: Some(store),
                generation,
                subscribers: Vec::new(),
            }),
            compact_guard: Mutex::new(()),
            counters: Counters::default(),
            replay: Some(replay),
        })
    }

    /// What startup recovery found, if this registry is persistent.
    #[must_use]
    pub fn replay_stats(&self) -> Option<&ReplayStats> {
        self.replay.as_ref()
    }

    /// Attaches a flight recorder to the backing store (no-op for
    /// in-memory registries): journal appends, fsyncs, and compaction
    /// phases then emit `registry` spans.
    pub fn attach_recorder(&self, recorder: std::sync::Arc<ringrt_obs::Recorder>) {
        if let Some(store) = self.lock().store.as_mut() {
            store.set_recorder(recorder);
        }
    }

    /// Zeroes the incremental/full admission-test counters (the gauges —
    /// ring, stream, and byte counts — are live state and are unaffected).
    /// Backs the service's `STATS RESET` command.
    pub fn reset_counters(&self) {
        self.counters.incremental_tests.store(0, Ordering::Relaxed);
        self.counters.full_tests.store(0, Ordering::Relaxed);
        self.counters
            .incremental_evaluations
            .store(0, Ordering::Relaxed);
        self.counters.full_evaluations.store(0, Ordering::Relaxed);
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Journals `op` (if persistent), applies it to `rings`, and forwards
    /// the journaled record line to live shipping subscribers. The
    /// journal write happens first so memory never runs ahead of disk.
    fn commit(inner: &mut Inner, op: &JournalOp) -> Result<(), RegistryError> {
        let mut frame = None;
        if let Some(store) = inner.store.as_mut() {
            frame = Some(store.append(op)?);
        }
        inner.generation += 1;
        let generation = inner.generation;
        match op {
            JournalOp::Register { ring, spec } => {
                inner.rings.insert(
                    ring.clone(),
                    RingEntry {
                        state: RingState::new(*spec),
                        ttp_cache: None,
                        generation,
                    },
                );
            }
            JournalOp::Admit { ring, stream } => {
                let entry = inner.rings.get_mut(ring).expect("caller validated ring");
                entry.state.store.admit(&stream.name, stream.stream);
                entry.generation = generation;
            }
            JournalOp::Remove { ring, stream } => {
                let entry = inner.rings.get_mut(ring).expect("caller validated ring");
                entry
                    .state
                    .store
                    .remove(stream)
                    .expect("caller validated stream");
                entry.generation = generation;
            }
            JournalOp::Unregister { ring } => {
                inner.rings.remove(ring);
            }
        }
        if let Some(frame) = frame {
            inner
                .subscribers
                .retain(|tx| tx.try_send(frame.clone()).is_ok());
        }
        Ok(())
    }

    fn record(&self, check: &CheckOutcome) {
        if check.incremental {
            self.counters
                .incremental_tests
                .fetch_add(1, Ordering::Relaxed);
            self.counters
                .incremental_evaluations
                .fetch_add(check.evaluations, Ordering::Relaxed);
        } else {
            self.counters.full_tests.fetch_add(1, Ordering::Relaxed);
            self.counters
                .full_evaluations
                .fetch_add(check.evaluations, Ordering::Relaxed);
        }
    }

    /// Registers a new, empty ring.
    ///
    /// # Errors
    ///
    /// Invalid names/specs, duplicate rings, or storage failures.
    pub fn register(&self, ring: &str, spec: RingSpec) -> Result<(), RegistryError> {
        validate_name(ring)?;
        spec.validate()?;
        let mut inner = self.lock();
        if inner.rings.contains_key(ring) {
            return Err(RegistryError::DuplicateRing {
                ring: ring.to_owned(),
            });
        }
        Self::commit(
            &mut inner,
            &JournalOp::Register {
                ring: ring.to_owned(),
                spec,
            },
        )
    }

    /// Drops a ring and all its streams.
    ///
    /// # Errors
    ///
    /// [`RegistryError::UnknownRing`] or storage failures.
    pub fn unregister(&self, ring: &str) -> Result<(), RegistryError> {
        let mut inner = self.lock();
        if !inner.rings.contains_key(ring) {
            return Err(RegistryError::UnknownRing {
                ring: ring.to_owned(),
            });
        }
        Self::commit(
            &mut inner,
            &JournalOp::Unregister {
                ring: ring.to_owned(),
            },
        )
    }

    /// Runs the admission test for `stream` on `ring` and, if it passes,
    /// admits it (journaled). A rejected stream leaves the ring untouched
    /// and is **not** journaled.
    ///
    /// # Errors
    ///
    /// Unknown ring, duplicate stream name, invalid name, or storage
    /// failure. A schedulability rejection is **not** an error — it is an
    /// [`AdmissionOutcome`] with `applied == false`.
    pub fn admit(
        &self,
        ring: &str,
        name: &str,
        stream: SyncStream,
    ) -> Result<AdmissionOutcome, RegistryError> {
        validate_name(name)?;
        let mut inner = self.lock();
        let entry = inner
            .rings
            .get_mut(ring)
            .ok_or_else(|| RegistryError::UnknownRing {
                ring: ring.to_owned(),
            })?;
        if entry.state.store.contains(name) {
            return Err(RegistryError::DuplicateStream {
                ring: ring.to_owned(),
                stream: name.to_owned(),
            });
        }
        let old_len = entry.state.len();
        // Tentatively admit in place: the candidate becomes the store's
        // newest admission and the engine analyzes straight off the
        // maintained indexes — no cloned state, no rebuilt `MessageSet`.
        let handle = entry.state.store.admit(name, stream);
        let (check, cache_update) = engine::admit_check(
            &entry.state.spec,
            entry.ttp_cache.as_ref(),
            &entry.state.store,
            name,
            &stream,
        );
        self.record(&check);
        // Roll back before journaling either way: `commit` re-applies the
        // op through the same code path replay uses, so live state and
        // crash recovery can never drift apart.
        entry.state.store.rollback_admit(handle);
        if !check.schedulable {
            return Ok(AdmissionOutcome {
                check,
                applied: false,
                streams: old_len,
            });
        }
        Self::commit(
            &mut inner,
            &JournalOp::Admit {
                ring: ring.to_owned(),
                stream: NamedStream {
                    name: name.to_owned(),
                    stream,
                },
            },
        )?;
        let entry = inner.rings.get_mut(ring).expect("just committed");
        cache_update.apply(&mut entry.ttp_cache);
        Ok(AdmissionOutcome {
            check,
            applied: true,
            streams: old_len + 1,
        })
    }

    /// Removes a stream (always applied) and reports the remaining set's
    /// verdict — which for TTP can flip to unschedulable if the departure
    /// renegotiates the TTRT.
    ///
    /// # Errors
    ///
    /// Unknown ring or stream, or storage failure.
    pub fn remove(&self, ring: &str, name: &str) -> Result<AdmissionOutcome, RegistryError> {
        let mut inner = self.lock();
        let entry = inner
            .rings
            .get(ring)
            .ok_or_else(|| RegistryError::UnknownRing {
                ring: ring.to_owned(),
            })?;
        let index = entry
            .state
            .stream_index(name)
            .ok_or_else(|| RegistryError::UnknownStream {
                ring: ring.to_owned(),
                stream: name.to_owned(),
            })?;
        let old_len = entry.state.len();
        // Journal + apply first (removals are never rejected, so the
        // verdict does not gate the commit), then judge the remaining set
        // in place: O(log n) index maintenance instead of cloning the ring
        // and shifting a vector.
        Self::commit(
            &mut inner,
            &JournalOp::Remove {
                ring: ring.to_owned(),
                stream: name.to_owned(),
            },
        )?;
        let entry = inner.rings.get_mut(ring).expect("just committed");
        let (check, cache_update) = engine::remove_check(
            &entry.state.spec,
            entry.ttp_cache.as_ref(),
            index,
            old_len,
            &entry.state.store,
        );
        cache_update.apply(&mut entry.ttp_cache);
        self.record(&check);
        Ok(AdmissionOutcome {
            check,
            applied: true,
            streams: old_len - 1,
        })
    }

    /// Runs the full (non-incremental) test on a ring's stored set —
    /// the baseline `ADMIT` is measured against. Refreshes the ring's
    /// term cache as a side effect.
    ///
    /// # Errors
    ///
    /// Unknown or empty ring.
    pub fn check_full(&self, ring: &str) -> Result<RingCheck, RegistryError> {
        let mut inner = self.lock();
        let entry = inner
            .rings
            .get_mut(ring)
            .ok_or_else(|| RegistryError::UnknownRing {
                ring: ring.to_owned(),
            })?;
        if entry.state.is_empty() {
            return Err(RegistryError::EmptyRing {
                ring: ring.to_owned(),
            });
        }
        let (check, cache) = engine::full_check(&entry.state.spec, &entry.state.store);
        entry.ttp_cache = cache;
        self.record(&check);
        let spec = entry.state.spec;
        Ok(RingCheck {
            schedulable: check.schedulable,
            evaluations: check.evaluations,
            spec,
            streams: entry.state.len(),
            utilization: entry.state.store.utilization(spec.bandwidth()),
        })
    }

    /// Names of all registered rings, sorted.
    #[must_use]
    pub fn ring_names(&self) -> Vec<String> {
        self.lock().rings.keys().cloned().collect()
    }

    /// A snapshot of one ring's state.
    ///
    /// # Errors
    ///
    /// [`RegistryError::UnknownRing`].
    pub fn ring_state(&self, ring: &str) -> Result<RingState, RegistryError> {
        self.ring_snapshot(ring).map(|(state, _)| state)
    }

    /// A snapshot of one ring's state together with its **mutation
    /// generation** — a registry-wide counter value assigned at the ring's
    /// last mutation (`REGISTER`/`ADMIT`/`REMOVE`). The generation changes
    /// on every mutation and is never reused, not even by an
    /// unregister/re-register cycle under the same name, so
    /// `(ring, generation)` keys derived caches that go stale exactly when
    /// the ring actually changed.
    ///
    /// # Errors
    ///
    /// [`RegistryError::UnknownRing`].
    pub fn ring_snapshot(&self, ring: &str) -> Result<(RingState, u64), RegistryError> {
        self.lock()
            .rings
            .get(ring)
            .map(|e| (e.state.clone(), e.generation))
            .ok_or_else(|| RegistryError::UnknownRing {
                ring: ring.to_owned(),
            })
    }

    /// One page of a ring's admission-order stream listing: up to `limit`
    /// streams starting at station index `offset`, plus the header gauges
    /// `SHOW` renders. O(log n + page) — the paged `SHOW` path never
    /// clones a large ring's state to print a few lines of it.
    ///
    /// # Errors
    ///
    /// [`RegistryError::UnknownRing`].
    pub fn ring_page(
        &self,
        ring: &str,
        offset: usize,
        limit: usize,
    ) -> Result<RingPage, RegistryError> {
        let inner = self.lock();
        let entry = inner
            .rings
            .get(ring)
            .ok_or_else(|| RegistryError::UnknownRing {
                ring: ring.to_owned(),
            })?;
        Ok(RingPage {
            spec: entry.state.spec,
            streams: entry.state.len(),
            offset,
            page: entry
                .state
                .store
                .page(offset, limit)
                .map(|(name, stream)| (name.to_owned(), stream))
                .collect(),
        })
    }

    /// The registry-wide mutation counter (also the highest generation any
    /// ring carries).
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.lock().generation
    }

    /// Compacts the journal into a snapshot without blocking writers: the
    /// registry lock is held only to seal the tail segment (begin) and to
    /// fold the bookkeeping back in (finish); the snapshot write, fsync,
    /// rename, and sealed-segment GC all run with the lock dropped.
    /// Concurrent compactions are serialized by a dedicated guard. A
    /// no-op for in-memory registries.
    ///
    /// # Errors
    ///
    /// Storage failures from any compaction phase.
    pub fn compact(&self) -> Result<(), RegistryError> {
        let _serialize = self
            .compact_guard
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let plan = {
            let mut inner = self.lock();
            let Inner { rings, store, .. } = &mut *inner;
            match store.as_mut() {
                None => return Ok(()),
                Some(store) => store
                    .begin_compaction(rings.iter().map(|(name, entry)| (name, &entry.state)))?,
            }
        };
        let outcome = plan.publish()?;
        if let Some(store) = self.lock().store.as_mut() {
            store.finish_compaction(outcome);
        }
        Ok(())
    }

    /// The persisted replication fencing epoch (0 for in-memory
    /// registries and stores that never served).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.lock().store.as_ref().map_or(0, Store::epoch)
    }

    /// Persists a new fencing epoch (monotonic; see
    /// [`Store::set_epoch`]).
    ///
    /// # Errors
    ///
    /// [`RegistryError::Storage`] for in-memory registries, an epoch
    /// regression, or failed I/O.
    pub fn set_epoch(&self, epoch: u64) -> Result<(), RegistryError> {
        self.lock()
            .store
            .as_mut()
            .ok_or_else(in_memory_err)?
            .set_epoch(epoch)
    }

    /// The persisted journal cluster identity (0 for in-memory registries
    /// and journals never stamped).
    #[must_use]
    pub fn cluster_id(&self) -> u64 {
        self.lock().store.as_ref().map_or(0, Store::cluster_id)
    }

    /// Persists the journal's set-once cluster identity (see
    /// [`Store::set_cluster_id`]).
    ///
    /// # Errors
    ///
    /// [`RegistryError::Storage`] for in-memory registries, a zero or
    /// conflicting identity, or failed I/O.
    pub fn set_cluster_id(&self, cluster_id: u64) -> Result<(), RegistryError> {
        self.lock()
            .store
            .as_mut()
            .ok_or_else(in_memory_err)?
            .set_cluster_id(cluster_id)
    }

    /// Sequence number the next committed mutation will journal (0 for
    /// in-memory registries).
    #[must_use]
    pub fn next_seq(&self) -> u64 {
        self.lock().store.as_ref().map_or(0, Store::next_seq)
    }

    /// Subscribes to journal shipping, resuming from `from_seq`: captures
    /// (atomically with respect to concurrent commits) the snapshot the
    /// follower needs if the journal no longer reaches back to
    /// `from_seq`, the backlog of records from there to the head, and a
    /// live channel every later commit is forwarded to.
    ///
    /// # Errors
    ///
    /// [`RegistryError::Storage`] for in-memory registries or unreadable
    /// journal files.
    pub fn subscribe(&self, from_seq: u64) -> Result<ShipSubscription, RegistryError> {
        // Hold the compaction guard: `compact`'s publish phase deletes
        // sealed segments and replaces the snapshot with `inner`
        // deliberately dropped, so the inner lock alone cannot keep the
        // files `snapshot_text`/`records_from` read from vanishing
        // mid-subscription.
        let _no_gc = self
            .compact_guard
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut inner = self.lock();
        let Inner {
            store, subscribers, ..
        } = &mut *inner;
        let store = store.as_mut().ok_or_else(in_memory_err)?;
        let head = store.next_seq().saturating_sub(1);
        let floor = store.snapshot_floor();
        let (snapshot, backlog_from) = if from_seq <= floor && floor > 0 {
            (store.snapshot_text()?, floor + 1)
        } else {
            (None, from_seq.max(1))
        };
        let backlog = store.records_from(backlog_from)?;
        let (tx, rx) = mpsc::sync_channel(SHIP_SUBSCRIBER_CAP);
        subscribers.push(tx);
        Ok(ShipSubscription {
            epoch: store.epoch(),
            cluster: store.cluster_id(),
            head,
            snapshot,
            backlog,
            live: rx,
        })
    }

    /// Applies one shipped record line: validates its checksum and
    /// sequence, journals it (byte-identically — the encoding is
    /// deterministic), and applies it to memory. Duplicates are ignored,
    /// gaps are reported for re-sync, and a frame that violates registry
    /// invariants is refused **before** it can reach the journal.
    ///
    /// The affected ring's Theorem 5.1 term cache is invalidated rather
    /// than updated — a follower recomputes it on first read, exactly
    /// like a freshly replayed registry, so cached sums can never drift
    /// from what a full replay would produce.
    ///
    /// # Errors
    ///
    /// [`RegistryError::Storage`] for in-memory registries, malformed
    /// frames, failed I/O, or a re-delivered sequence whose bytes differ
    /// from the local journal's copy (diverged histories); the usual
    /// registry errors for a frame whose operation cannot apply to the
    /// current state.
    pub fn apply_replicated(&self, line: &str) -> Result<ReplicatedApply, RegistryError> {
        self.apply_replicated_at(line, None)
    }

    /// [`apply_replicated`](Self::apply_replicated) fenced by epoch: the
    /// frame is refused outright unless the registry's durable epoch
    /// still equals `expected_epoch`. The check happens under the same
    /// lock as the apply, so once a promotion publishes a new epoch
    /// ([`set_epoch`](Self::set_epoch)) no frame from the superseded
    /// stream can reach the journal — not even one already in flight.
    /// The service's follower loop passes the epoch it synced under.
    ///
    /// # Errors
    ///
    /// As [`apply_replicated`](Self::apply_replicated), plus a fencing
    /// [`RegistryError::Storage`] on epoch mismatch.
    pub fn apply_replicated_fenced(
        &self,
        line: &str,
        expected_epoch: u64,
    ) -> Result<ReplicatedApply, RegistryError> {
        self.apply_replicated_at(line, Some(expected_epoch))
    }

    fn apply_replicated_at(
        &self,
        line: &str,
        expected_epoch: Option<u64>,
    ) -> Result<ReplicatedApply, RegistryError> {
        let (seq, op) = journal::decode_record(line).map_err(|reason| RegistryError::Storage {
            reason: format!("shipped record malformed: {reason}"),
        })?;
        let mut inner = self.lock();
        let store = inner.store.as_ref().ok_or_else(in_memory_err)?;
        check_epoch_fence(store, expected_epoch)?;
        let next = store.next_seq();
        if seq < next {
            // A sequence we claim to already hold must be byte-identical
            // to our own journal's record: two independently bootstrapped
            // histories can collide on sequence numbers, and swallowing
            // the difference as a benign duplicate would fork state
            // silently and permanently. Records at or below the snapshot
            // floor are gone from the journal and cannot be compared —
            // but the snapshot that replaced them came from the same
            // stream that is now re-delivering, so they are safe to skip.
            if seq > store.snapshot_floor() {
                match store.record_at(seq)? {
                    Some(local) if local == line => {}
                    Some(local) => {
                        return Err(RegistryError::Storage {
                            reason: format!(
                                "shipped history diverges at seq {seq}: \
                                 local {local:?}, shipped {line:?}"
                            ),
                        });
                    }
                    None => {
                        return Err(RegistryError::Storage {
                            reason: format!(
                                "local journal is missing seq {seq}; \
                                 cannot verify re-delivered record"
                            ),
                        });
                    }
                }
            }
            return Ok(ReplicatedApply::Duplicate { seq });
        }
        if seq > next {
            return Ok(ReplicatedApply::Gap {
                expected: next,
                got: seq,
            });
        }
        // Pre-validate: `commit` journals first and then applies with
        // `expect`, so an invariant-violating frame must be refused here,
        // before any byte lands in the journal.
        match &op {
            JournalOp::Register { ring, .. } => {
                if inner.rings.contains_key(ring) {
                    return Err(RegistryError::DuplicateRing { ring: ring.clone() });
                }
            }
            JournalOp::Admit { ring, stream } => {
                let entry = inner
                    .rings
                    .get(ring)
                    .ok_or_else(|| RegistryError::UnknownRing { ring: ring.clone() })?;
                if entry.state.store.contains(&stream.name) {
                    return Err(RegistryError::DuplicateStream {
                        ring: ring.clone(),
                        stream: stream.name.clone(),
                    });
                }
            }
            JournalOp::Remove { ring, stream } => {
                let entry = inner
                    .rings
                    .get(ring)
                    .ok_or_else(|| RegistryError::UnknownRing { ring: ring.clone() })?;
                if !entry.state.store.contains(stream) {
                    return Err(RegistryError::UnknownStream {
                        ring: ring.clone(),
                        stream: stream.clone(),
                    });
                }
            }
            JournalOp::Unregister { ring } => {
                if !inner.rings.contains_key(ring) {
                    return Err(RegistryError::UnknownRing { ring: ring.clone() });
                }
            }
        }
        Self::commit(&mut inner, &op)?;
        // Replicated applies skip the admission engine, so any cached
        // terms are stale; drop them and let the next read rebuild.
        if let JournalOp::Admit { ring, .. } | JournalOp::Remove { ring, .. } = &op {
            if let Some(entry) = inner.rings.get_mut(ring) {
                entry.ttp_cache = None;
            }
        }
        Ok(ReplicatedApply::Applied { seq })
    }

    /// Replaces the registry's entire state with a snapshot shipped from
    /// a primary (see [`Store::install_snapshot`]); every ring receives a
    /// fresh generation so stale cache keys cannot resolve.
    ///
    /// # Errors
    ///
    /// [`RegistryError::Storage`] for in-memory registries, a corrupt
    /// snapshot, or failed I/O.
    pub fn install_snapshot(&self, text: &str) -> Result<u64, RegistryError> {
        self.install_snapshot_at(text, None)
    }

    /// [`install_snapshot`](Self::install_snapshot) fenced by epoch, with
    /// the same semantics as
    /// [`apply_replicated_fenced`](Self::apply_replicated_fenced): a
    /// snapshot from a stream superseded by a local promotion must never
    /// clobber the promoted state.
    ///
    /// # Errors
    ///
    /// As [`install_snapshot`](Self::install_snapshot), plus a fencing
    /// [`RegistryError::Storage`] on epoch mismatch.
    pub fn install_snapshot_fenced(
        &self,
        text: &str,
        expected_epoch: u64,
    ) -> Result<u64, RegistryError> {
        self.install_snapshot_at(text, Some(expected_epoch))
    }

    fn install_snapshot_at(
        &self,
        text: &str,
        expected_epoch: Option<u64>,
    ) -> Result<u64, RegistryError> {
        let mut inner = self.lock();
        let Inner {
            rings,
            store,
            generation,
            ..
        } = &mut *inner;
        let store = store.as_mut().ok_or_else(in_memory_err)?;
        check_epoch_fence(store, expected_epoch)?;
        let (seq, new_rings) = store.install_snapshot(text)?;
        let mut entries = BTreeMap::new();
        for (name, state) in new_rings {
            *generation += 1;
            entries.insert(
                name,
                RingEntry {
                    state,
                    ttp_cache: None,
                    generation: *generation,
                },
            );
        }
        *rings = entries;
        Ok(seq)
    }

    /// Current gauges and counters.
    #[must_use]
    pub fn metrics(&self) -> RegistryMetrics {
        let inner = self.lock();
        let (journal_bytes, snapshot_bytes) = inner
            .store
            .as_ref()
            .map_or((0, 0), |s| (s.journal_bytes(), s.snapshot_bytes()));
        RegistryMetrics {
            rings: inner.rings.len(),
            streams: inner.rings.values().map(|e| e.state.len()).sum(),
            journal_bytes,
            snapshot_bytes,
            replay_ms: self
                .replay
                .as_ref()
                .map_or(0.0, |r| r.replay.as_secs_f64() * 1e3),
            replayed_streams: self.replay.as_ref().map_or(0, |r| r.streams_restored),
            incremental_tests: self.counters.incremental_tests.load(Ordering::Relaxed),
            full_tests: self.counters.full_tests.load(Ordering::Relaxed),
            incremental_evaluations: self
                .counters
                .incremental_evaluations
                .load(Ordering::Relaxed),
            full_evaluations: self.counters.full_evaluations.load(Ordering::Relaxed),
            store_bytes: inner
                .rings
                .values()
                .map(|e| e.state.store.approx_bytes() as u64)
                .sum(),
            index_rebuilds: inner
                .rings
                .values()
                .map(|e| e.state.store.index_rebuilds())
                .sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ProtocolKind;
    use ringrt_units::{Bits, Seconds};

    fn stream(period_ms: f64, bits: u64) -> SyncStream {
        SyncStream::new(Seconds::from_millis(period_ms), Bits::new(bits))
    }

    fn fddi_spec() -> RingSpec {
        RingSpec {
            protocol: ProtocolKind::Fddi,
            mbps: 100.0,
            stations: Some(16),
        }
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ringrt-registry-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn register_admit_remove_lifecycle() {
        let reg = RingRegistry::in_memory();
        reg.register("lab", fddi_spec()).unwrap();
        assert!(matches!(
            reg.register("lab", fddi_spec()),
            Err(RegistryError::DuplicateRing { .. })
        ));
        let out = reg.admit("lab", "cam", stream(20.0, 100_000)).unwrap();
        assert!(out.applied && out.check.schedulable);
        assert_eq!(out.streams, 1);
        assert!(matches!(
            reg.admit("lab", "cam", stream(30.0, 1_000)),
            Err(RegistryError::DuplicateStream { .. })
        ));
        let out = reg.admit("lab", "mic", stream(50.0, 200_000)).unwrap();
        assert!(out.applied);
        assert!(out.check.incremental, "second admit should be incremental");
        let rm = reg.remove("lab", "cam").unwrap();
        assert_eq!(rm.streams, 1);
        assert!(matches!(
            reg.remove("lab", "cam"),
            Err(RegistryError::UnknownStream { .. })
        ));
        reg.unregister("lab").unwrap();
        assert!(reg.ring_names().is_empty());
    }

    #[test]
    fn rejected_admit_leaves_ring_untouched() {
        let reg = RingRegistry::in_memory();
        reg.register("r", fddi_spec()).unwrap();
        reg.admit("r", "a", stream(20.0, 100_000)).unwrap();
        // A hog far beyond ring capacity.
        let out = reg.admit("r", "hog", stream(100.0, 12_000_000)).unwrap();
        assert!(!out.applied && !out.check.schedulable);
        assert_eq!(out.streams, 1);
        assert!(reg.ring_state("r").unwrap().stream_index("hog").is_none());
        // The ring still accepts reasonable streams afterwards.
        assert!(reg.admit("r", "b", stream(50.0, 100_000)).unwrap().applied);
    }

    #[test]
    fn counters_track_incremental_vs_full() {
        let reg = RingRegistry::in_memory();
        reg.register("r", fddi_spec()).unwrap();
        reg.admit("r", "s0", stream(20.0, 50_000)).unwrap(); // full (empty ring)
        reg.admit("r", "s1", stream(40.0, 50_000)).unwrap(); // incremental
        reg.admit("r", "s2", stream(80.0, 50_000)).unwrap(); // incremental
        reg.check_full("r").unwrap(); // full
        let m = reg.metrics();
        assert_eq!(m.incremental_tests, 2);
        assert_eq!(m.full_tests, 2);
        assert!(m.incremental_evaluations < m.full_evaluations);
        assert_eq!(m.rings, 1);
        assert_eq!(m.streams, 3);
    }

    #[test]
    fn persistent_registry_survives_reopen() {
        let dir = temp_dir("reopen");
        {
            let reg = RingRegistry::open(&dir).unwrap();
            reg.register("lab", fddi_spec()).unwrap();
            reg.admit("lab", "cam", stream(20.0, 100_000)).unwrap();
            reg.admit("lab", "mic", stream(50.0, 200_000)).unwrap();
            let out = reg.admit("lab", "hog", stream(100.0, 12_000_000)).unwrap();
            assert!(!out.applied); // must NOT reappear after reopen
        }
        let reg = RingRegistry::open(&dir).unwrap();
        let state = reg.ring_state("lab").unwrap();
        assert_eq!(state.len(), 2);
        assert!(state.stream_index("hog").is_none());
        let stats = reg.replay_stats().unwrap();
        assert_eq!(stats.streams_restored, 2);
        // Compact, reopen again: identical state from the snapshot alone.
        reg.compact().unwrap();
        drop(reg);
        let reg = RingRegistry::open(&dir).unwrap();
        assert_eq!(reg.ring_state("lab").unwrap(), state);
        assert_eq!(reg.replay_stats().unwrap().records_applied, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn generation_bumps_on_every_mutation() {
        let reg = RingRegistry::in_memory();
        reg.register("r", fddi_spec()).unwrap();
        let (_, g0) = reg.ring_snapshot("r").unwrap();
        reg.admit("r", "a", stream(20.0, 100_000)).unwrap();
        let (_, g1) = reg.ring_snapshot("r").unwrap();
        assert!(g1 > g0);
        reg.remove("r", "a").unwrap();
        let (_, g2) = reg.ring_snapshot("r").unwrap();
        assert!(g2 > g1);
        // A rejected admit mutates nothing, so the generation holds still.
        reg.admit("r", "hog", stream(100.0, 12_000_000)).unwrap();
        reg.admit("r", "ok", stream(20.0, 100_000)).unwrap();
        let hog = reg.admit("r", "hog2", stream(100.0, 12_000_000)).unwrap();
        assert!(!hog.applied);
        let (_, g3) = reg.ring_snapshot("r").unwrap();
        reg.check_full("r").unwrap(); // reads don't bump either
        assert_eq!(reg.ring_snapshot("r").unwrap().1, g3);
    }

    #[test]
    fn generations_are_unique_across_rings_and_reregistration() {
        let reg = RingRegistry::in_memory();
        reg.register("a", fddi_spec()).unwrap();
        reg.register("b", fddi_spec()).unwrap();
        let (_, ga) = reg.ring_snapshot("a").unwrap();
        let (_, gb) = reg.ring_snapshot("b").unwrap();
        assert_ne!(ga, gb);
        // Rebuilding the exact same ring under the same name must yield a
        // fresh generation: stale (ring, generation) cache keys cannot
        // resolve to the new incarnation.
        reg.admit("a", "s", stream(20.0, 100_000)).unwrap();
        let (_, g_old) = reg.ring_snapshot("a").unwrap();
        reg.unregister("a").unwrap();
        reg.register("a", fddi_spec()).unwrap();
        reg.admit("a", "s", stream(20.0, 100_000)).unwrap();
        let (state, g_new) = reg.ring_snapshot("a").unwrap();
        assert_eq!(state.len(), 1);
        assert!(g_new > g_old);
    }

    #[test]
    fn reopened_registry_assigns_fresh_generations() {
        let dir = temp_dir("gen");
        {
            let reg = RingRegistry::open(&dir).unwrap();
            reg.register("lab", fddi_spec()).unwrap();
            reg.admit("lab", "cam", stream(20.0, 100_000)).unwrap();
        }
        let reg = RingRegistry::open(&dir).unwrap();
        let (_, g) = reg.ring_snapshot("lab").unwrap();
        assert!(g > 0);
        // Post-recovery mutations keep advancing past the replayed ones.
        reg.admit("lab", "mic", stream(50.0, 200_000)).unwrap();
        assert!(reg.ring_snapshot("lab").unwrap().1 > g);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reset_counters_zeroes_work_counters_only() {
        let reg = RingRegistry::in_memory();
        reg.register("r", fddi_spec()).unwrap();
        reg.admit("r", "s0", stream(20.0, 50_000)).unwrap();
        reg.admit("r", "s1", stream(40.0, 50_000)).unwrap();
        assert!(reg.metrics().full_tests + reg.metrics().incremental_tests > 0);
        reg.reset_counters();
        let m = reg.metrics();
        assert_eq!(m.incremental_tests, 0);
        assert_eq!(m.full_tests, 0);
        assert_eq!(m.incremental_evaluations, 0);
        assert_eq!(m.full_evaluations, 0);
        // Gauges reflect live state and must survive the reset.
        assert_eq!(m.rings, 1);
        assert_eq!(m.streams, 2);
    }

    #[test]
    fn attached_recorder_sees_journal_spans() {
        let dir = temp_dir("obs");
        let rec = std::sync::Arc::new(ringrt_obs::Recorder::new());
        let reg = RingRegistry::open(&dir).unwrap();
        reg.attach_recorder(std::sync::Arc::clone(&rec));
        reg.register("lab", fddi_spec()).unwrap();
        reg.admit("lab", "cam", stream(20.0, 100_000)).unwrap();
        reg.compact().unwrap();
        let names: Vec<&str> = rec.drain(64).iter().map(|e| e.name).collect();
        assert!(names.contains(&"journal_append"), "{names:?}");
        assert!(names.contains(&"journal_fsync"), "{names:?}");
        assert!(names.contains(&"compact"), "{names:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn check_full_reports_empty_ring() {
        let reg = RingRegistry::in_memory();
        reg.register("r", fddi_spec()).unwrap();
        assert!(matches!(
            reg.check_full("r"),
            Err(RegistryError::EmptyRing { .. })
        ));
        assert!(matches!(
            reg.check_full("ghost"),
            Err(RegistryError::UnknownRing { .. })
        ));
    }

    #[test]
    fn subscribe_ships_backlog_and_live_records() {
        let primary_dir = temp_dir("sub-primary");
        let follower_dir = temp_dir("sub-follower");
        let primary = RingRegistry::open(&primary_dir).unwrap();
        primary.register("lab", fddi_spec()).unwrap();
        primary.admit("lab", "cam", stream(20.0, 100_000)).unwrap();

        let sub = primary.subscribe(1).unwrap();
        assert_eq!(sub.head, 2);
        assert!(sub.snapshot.is_none());
        assert_eq!(sub.backlog.len(), 2);

        // Live records flow through the channel after subscription.
        primary.admit("lab", "mic", stream(50.0, 200_000)).unwrap();
        let live = sub.live.try_recv().unwrap();

        let follower = RingRegistry::open(&follower_dir).unwrap();
        for frame in sub.backlog.iter().chain(std::iter::once(&live)) {
            assert!(matches!(
                follower.apply_replicated(frame).unwrap(),
                ReplicatedApply::Applied { .. }
            ));
        }
        assert_eq!(
            follower.ring_state("lab").unwrap(),
            primary.ring_state("lab").unwrap()
        );
        // Duplicate delivery is idempotent; a skipped frame reports a gap.
        assert!(matches!(
            follower.apply_replicated(&live).unwrap(),
            ReplicatedApply::Duplicate { .. }
        ));
        primary.admit("lab", "aux1", stream(80.0, 50_000)).unwrap();
        primary.admit("lab", "aux2", stream(90.0, 50_000)).unwrap();
        let skipped = sub.live.try_recv().unwrap();
        let ahead = sub.live.try_recv().unwrap();
        let _ = skipped; // dropped frame
        assert!(matches!(
            follower.apply_replicated(&ahead).unwrap(),
            ReplicatedApply::Gap { expected: 4, .. }
        ));
        let _ = std::fs::remove_dir_all(&primary_dir);
        let _ = std::fs::remove_dir_all(&follower_dir);
    }

    #[test]
    fn subscribe_from_compacted_history_ships_the_snapshot() {
        let primary_dir = temp_dir("snap-primary");
        let follower_dir = temp_dir("snap-follower");
        let primary = RingRegistry::open(&primary_dir).unwrap();
        primary.register("lab", fddi_spec()).unwrap();
        primary.admit("lab", "cam", stream(20.0, 100_000)).unwrap();
        primary.compact().unwrap();
        primary.admit("lab", "mic", stream(50.0, 200_000)).unwrap();

        // Records 1-2 are only in the snapshot now.
        let sub = primary.subscribe(1).unwrap();
        let (snap_seq, snap_text) = sub.snapshot.expect("history is compacted");
        assert_eq!(snap_seq, 2);
        assert_eq!(sub.backlog.len(), 1); // the post-snapshot admit

        let follower = RingRegistry::open(&follower_dir).unwrap();
        assert_eq!(follower.install_snapshot(&snap_text).unwrap(), 2);
        for frame in &sub.backlog {
            follower.apply_replicated(frame).unwrap();
        }
        assert_eq!(
            follower.ring_state("lab").unwrap(),
            primary.ring_state("lab").unwrap()
        );
        assert_eq!(follower.next_seq(), primary.next_seq());
        let _ = std::fs::remove_dir_all(&primary_dir);
        let _ = std::fs::remove_dir_all(&follower_dir);
    }

    #[test]
    fn replicated_apply_refuses_invariant_violations_before_journaling() {
        let primary_dir = temp_dir("bad-primary");
        let follower_dir = temp_dir("bad-follower");
        let primary = RingRegistry::open(&primary_dir).unwrap();
        primary.register("lab", fddi_spec()).unwrap();
        primary.admit("lab", "cam", stream(20.0, 100_000)).unwrap();
        let frames = primary.subscribe(1).unwrap().backlog;

        let follower = RingRegistry::open(&follower_dir).unwrap();
        follower.apply_replicated(&frames[0]).unwrap();
        follower.apply_replicated(&frames[1]).unwrap();
        let before = follower.next_seq();
        // Forge a frame at the right sequence whose op cannot apply: an
        // admit into a ring that does not exist.
        let forged = {
            let reg2 = RingRegistry::open(&temp_dir("bad-forge")).unwrap();
            reg2.register("ghost", fddi_spec()).unwrap();
            reg2.register("lab", fddi_spec()).unwrap();
            reg2.unregister("ghost").unwrap();
            // Build a registry whose 3rd record admits into `ghost`…
            let reg3_dir = temp_dir("bad-forge3");
            let reg3 = RingRegistry::open(&reg3_dir).unwrap();
            reg3.register("x1", fddi_spec()).unwrap();
            reg3.register("ghost", fddi_spec()).unwrap();
            reg3.admit("ghost", "s", stream(20.0, 100_000)).unwrap();
            let frame = reg3.subscribe(3).unwrap().backlog[0].clone();
            let _ = std::fs::remove_dir_all(&reg3_dir);
            frame
        };
        let err = follower.apply_replicated(&forged).unwrap_err();
        assert!(matches!(err, RegistryError::UnknownRing { .. }), "{err}");
        // Nothing was journaled: the sequence did not advance and a
        // reopen sees the same two records.
        assert_eq!(follower.next_seq(), before);
        drop(follower);
        let reopened = RingRegistry::open(&follower_dir).unwrap();
        assert_eq!(reopened.next_seq(), before);
        // A corrupted frame is refused outright.
        let mut corrupt = frames[0].clone();
        corrupt.replace_range(0..1, "f");
        assert!(reopened.apply_replicated(&corrupt).is_err());
        let _ = std::fs::remove_dir_all(&primary_dir);
        let _ = std::fs::remove_dir_all(&follower_dir);
    }

    #[test]
    fn diverged_duplicate_is_refused_not_swallowed() {
        // Two independently bootstrapped histories collide on sequence
        // numbers; re-delivery of the foreign record must surface as a
        // divergence error, never as a benign duplicate.
        let a_dir = temp_dir("div-a");
        let b_dir = temp_dir("div-b");
        let a = RingRegistry::open(&a_dir).unwrap();
        a.register("alpha", fddi_spec()).unwrap();
        a.admit("alpha", "cam", stream(20.0, 100_000)).unwrap();
        let shipped = a.subscribe(1).unwrap().backlog;

        let b = RingRegistry::open(&b_dir).unwrap();
        b.register("beta", fddi_spec()).unwrap(); // different record at seq 1
        let err = b.apply_replicated(&shipped[0]).unwrap_err();
        assert!(err.to_string().contains("diverges"), "{err}");
        // B is untouched: its own ring survives, nothing was journaled.
        assert_eq!(b.ring_names(), vec!["beta".to_owned()]);
        assert_eq!(b.next_seq(), 2);
        // A byte-identical re-delivery is still idempotently ignored.
        let own = b.subscribe(1).unwrap().backlog;
        assert!(matches!(
            b.apply_replicated(&own[0]).unwrap(),
            ReplicatedApply::Duplicate { seq: 1 }
        ));
        for d in [a_dir, b_dir] {
            let _ = std::fs::remove_dir_all(&d);
        }
    }

    #[test]
    fn fenced_apply_refuses_a_superseded_stream() {
        let p_dir = temp_dir("fence-p");
        let f_dir = temp_dir("fence-f");
        let p = RingRegistry::open(&p_dir).unwrap();
        p.set_epoch(1).unwrap();
        p.register("lab", fddi_spec()).unwrap();
        p.admit("lab", "cam", stream(20.0, 100_000)).unwrap();
        let frames = p.subscribe(1).unwrap().backlog;

        let f = RingRegistry::open(&f_dir).unwrap();
        f.set_epoch(1).unwrap();
        assert!(matches!(
            f.apply_replicated_fenced(&frames[0], 1).unwrap(),
            ReplicatedApply::Applied { seq: 1 }
        ));
        // Promotion publishes a new epoch: the old stream's frames —
        // including ones already in flight — are refused atomically.
        f.set_epoch(2).unwrap();
        let err = f.apply_replicated_fenced(&frames[1], 1).unwrap_err();
        assert!(err.to_string().contains("fenced"), "{err}");
        assert_eq!(f.next_seq(), 2, "fenced frame must not reach the journal");
        // A fenced snapshot cannot clobber the promoted state either.
        p.compact().unwrap();
        let (_, text) = p.subscribe(1).unwrap().snapshot.expect("compacted");
        let err = f.install_snapshot_fenced(&text, 1).unwrap_err();
        assert!(err.to_string().contains("fenced"), "{err}");
        assert_eq!(f.next_seq(), 2, "fenced snapshot must not install");
        // Under the matching epoch the same frame and snapshot apply.
        assert!(f.install_snapshot_fenced(&text, 2).is_ok());
        for d in [p_dir, f_dir] {
            let _ = std::fs::remove_dir_all(&d);
        }
    }

    #[test]
    fn a_stalled_subscriber_is_dropped_at_the_queue_cap() {
        let dir = temp_dir("cap");
        let reg = RingRegistry::open(&dir).unwrap();
        reg.register("seed", fddi_spec()).unwrap();
        let sub = reg.subscribe(1).unwrap();
        assert_eq!(sub.backlog.len(), 1);
        // Never drain `sub.live` — a stalled-but-connected follower.
        // Commits past the cap must neither block nor grow the queue;
        // they drop the subscriber instead.
        for i in 0..SHIP_SUBSCRIBER_CAP + 8 {
            reg.register(&format!("r{i}"), fddi_spec()).unwrap();
        }
        let mut drained = 0usize;
        while sub.live.try_recv().is_ok() {
            drained += 1;
        }
        assert_eq!(drained, SHIP_SUBSCRIBER_CAP, "queue must stop at the cap");
        assert!(
            matches!(sub.live.try_recv(), Err(mpsc::TryRecvError::Disconnected)),
            "overflowing subscriber must be dropped, forcing a resync"
        );
        assert_eq!(
            reg.next_seq() as usize,
            SHIP_SUBSCRIBER_CAP + 10,
            "commits must proceed regardless of the stalled subscriber"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn subscribe_races_compaction_without_storage_errors() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;

        // Tiny segments so every few admits seal a segment, and the
        // compactor's publish phase has files to garbage-collect while
        // subscribers read them.
        let dir = temp_dir("race");
        let reg = Arc::new(
            RingRegistry::open_with(
                &dir,
                StoreOptions {
                    segment_bytes: 96,
                    ..StoreOptions::default()
                },
            )
            .unwrap(),
        );
        reg.register("r", fddi_spec()).unwrap();
        let done = Arc::new(AtomicBool::new(false));
        let compactor = {
            let reg = Arc::clone(&reg);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                for i in 0..40u64 {
                    reg.admit("r", &format!("s{i}"), stream(20.0 + i as f64, 1_000))
                        .unwrap();
                    reg.compact().unwrap();
                }
                done.store(true, Ordering::Release);
            })
        };
        while !done.load(Ordering::Acquire) {
            // Must never observe a half-published compaction (deleted
            // sealed segment, swapped snapshot).
            let sub = reg
                .subscribe(1)
                .expect("subscribe raced compaction into a storage error");
            drop(sub);
        }
        compactor.join().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn epoch_persists_through_registry() {
        let dir = temp_dir("epoch");
        {
            let reg = RingRegistry::open(&dir).unwrap();
            assert_eq!(reg.epoch(), 0);
            reg.set_epoch(2).unwrap();
        }
        let reg = RingRegistry::open(&dir).unwrap();
        assert_eq!(reg.epoch(), 2);
        assert!(reg.set_epoch(1).is_err(), "epoch must not regress");
        let mem = RingRegistry::in_memory();
        assert_eq!(mem.epoch(), 0);
        assert!(mem.set_epoch(1).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cluster_identity_persists_and_rides_subscriptions() {
        let dir = temp_dir("cluster-reg");
        {
            let reg = RingRegistry::open(&dir).unwrap();
            assert_eq!(reg.cluster_id(), 0);
            reg.set_cluster_id(0xabad_1dea).unwrap();
            let sub = reg.subscribe(1).unwrap();
            assert_eq!(sub.cluster, 0xabad_1dea, "handshake carries the stamp");
        }
        let reg = RingRegistry::open(&dir).unwrap();
        assert_eq!(reg.cluster_id(), 0xabad_1dea);
        assert!(
            reg.set_cluster_id(1).is_err(),
            "identity is set-once through the registry too"
        );
        let mem = RingRegistry::in_memory();
        assert_eq!(mem.cluster_id(), 0);
        assert!(mem.set_cluster_id(1).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
