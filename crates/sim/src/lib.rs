//! Frame-level discrete-event simulation of the two token ring MACs.
//!
//! The paper's contribution is *analytical* — schedulability criteria — and
//! its authors had no public executable artifact. This crate provides the
//! missing empirical leg: faithful frame-level simulators of
//!
//! * the **priority-driven protocol** ([`PdpSimulator`]) — IEEE 802.5 style
//!   reservation/priority token with rate-monotonic message priorities, in
//!   both the standard (token re-issued per frame) and modified
//!   (hold-while-highest) variants; and
//! * the **timed token protocol** ([`TtpSimulator`]) — FDDI style TRT/THT
//!   timers, per-station synchronous bandwidths, late counters, and
//!   asynchronous overrun;
//!
//! so the Theorem 4.1 / Theorem 5.1 verdicts can be checked against
//! observed deadline behaviour: sets the analysis accepts must sail through
//! worst-case phasing with zero misses; sets just past saturation should
//! (and do) miss.
//!
//! Both simulators share the same traffic model ([`SyncTraffic`],
//! [`AsyncTraffic`]), ring timing (hop-by-hop token movement derived from
//! [`RingConfig`](ringrt_model::RingConfig)), and report format
//! ([`SimReport`]).
//!
//! # Examples
//!
//! ```
//! use ringrt_model::{MessageSet, RingConfig, SyncStream};
//! use ringrt_sim::{Phasing, SimConfig, TtpSimulator};
//! use ringrt_units::{Bandwidth, Bits, Seconds};
//!
//! let ring = RingConfig::fddi(2, Bandwidth::from_mbps(100.0));
//! let set = MessageSet::new(vec![
//!     SyncStream::new(Seconds::from_millis(20.0), Bits::new(100_000)),
//!     SyncStream::new(Seconds::from_millis(40.0), Bits::new(100_000)),
//! ])?;
//! let config = SimConfig::new(ring, Seconds::new(2.0)).with_phasing(Phasing::Synchronized);
//! let report = TtpSimulator::from_analysis(&set, config)?.run();
//! assert_eq!(report.deadline_misses(), 0);
//! assert!(report.completed() >= 140); // ≈ 100 + 50 arrivals in 2 s
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod metrics;
mod pdp;
mod trace;
mod traffic;
mod ttp;

pub use config::{Phasing, SimConfig};
pub use metrics::{SimReport, StreamStats};
pub use pdp::PdpSimulator;
pub use trace::{render_timeline, TraceEvent, TraceKind};
pub use traffic::{AsyncTraffic, SyncTraffic};
pub use ttp::{TtpSimError, TtpSimulator};
