//! Wire formats of the two MACs the paper analyzes.
//!
//! The schedulability analyses of Kamat & Zhao treat frame overhead as a
//! single number (`F_ovhd^b = 112` bits in their evaluation). This crate
//! implements the *actual* frame formats of the two standards —
//! IEEE 802.5-1989 token ring ([`ieee8025`]) and ANSI X3T9.5 FDDI
//! ([`fddi`]) — including
//!
//! * token and data-frame encoding/decoding with field validation,
//! * the 802.5 access-control byte carrying the **priority** and
//!   **reservation** fields the priority-driven protocol arbitrates with,
//! * the IEEE CRC-32 frame check sequence ([`crc`]),
//!
//! so that (a) the simulators' arbitration fields correspond to real bits
//! on a real wire, and (b) the paper's 112-bit overhead assumption can be
//! compared against the standards' true overheads
//! ([`ieee8025::OVERHEAD_BITS`] = 168, [`fddi::OVERHEAD_BITS`] = 224 —
//! see the `overhead_sensitivity` experiment in `ringrt-bench`).
//!
//! # Examples
//!
//! Round-trip an 802.5 data frame and inspect its arbitration fields:
//!
//! ```
//! use ringrt_frames::ieee8025::{AccessControl, DataFrame, Priority};
//!
//! let ac = AccessControl::frame(Priority::new(5).unwrap(), Priority::new(2).unwrap());
//! let frame = DataFrame::new(ac, [0xAA; 6], [0xBB; 6], b"hello ring".to_vec());
//! let wire = frame.encode();
//! let back = DataFrame::decode(&wire).unwrap();
//! assert_eq!(back.payload(), b"hello ring");
//! assert_eq!(back.access_control().priority().value(), 5);
//! assert_eq!(back.access_control().reservation().value(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crc;
pub mod fddi;
pub mod ieee8025;

mod error;

pub use error::FrameError;

use ringrt_model::{FrameFormat, ModelError};
use ringrt_units::Bits;

/// A [`FrameFormat`] for the analysis crates whose per-frame overhead is
/// the *real* IEEE 802.5 framing overhead (168 bits) instead of the
/// paper's 112-bit assumption.
///
/// # Errors
///
/// Returns [`ModelError::InvalidFrame`] if `payload` is zero bits.
pub fn ieee_802_5_frame_format(payload: Bits) -> Result<FrameFormat, ModelError> {
    FrameFormat::new(payload, Bits::new(ieee8025::OVERHEAD_BITS))
}

/// A [`FrameFormat`] with the real FDDI framing overhead (224 bits).
///
/// # Errors
///
/// Returns [`ModelError::InvalidFrame`] if `payload` is zero bits.
pub fn fddi_frame_format(payload: Bits) -> Result<FrameFormat, ModelError> {
    FrameFormat::new(payload, Bits::new(fddi::OVERHEAD_BITS))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_formats_carry_standard_overheads() {
        let f = ieee_802_5_frame_format(Bits::new(512)).unwrap();
        assert_eq!(f.overhead(), Bits::new(168));
        let f = fddi_frame_format(Bits::new(512)).unwrap();
        assert_eq!(f.overhead(), Bits::new(224));
        assert!(ieee_802_5_frame_format(Bits::ZERO).is_err());
    }

    #[test]
    fn paper_overhead_is_between_nothing_and_the_standards() {
        // The paper's 112-bit figure undercuts both standards' overheads;
        // the overhead_sensitivity experiment quantifies the ABU impact.
        const PAPER_OVERHEAD: u64 = 112;
        let standards = [ieee8025::OVERHEAD_BITS, fddi::OVERHEAD_BITS];
        assert!(standards.iter().all(|&o| o > PAPER_OVERHEAD));
    }
}
