//! FIG1 — the paper's Figure 1: average breakdown utilization vs. ring
//! bandwidth (1–1000 Mbps) for IEEE 802.5, modified IEEE 802.5, and FDDI.
//!
//! Also prints the derived headline observations (CLAIM-XOVER and
//! CLAIM-MODIFIED): the bandwidth ranges where each protocol dominates,
//! the crossover point, and the non-monotonicity of the 802.5 curves.

use ringrt_bench::{banner, ExpOptions};
use ringrt_breakdown::sweep::{default_bandwidths_mbps, figure1};
use ringrt_breakdown::table::{cell, Table};

fn main() {
    let opts = ExpOptions::from_env();
    banner(
        "FIG1",
        "average breakdown utilization vs bandwidth (paper Figure 1)",
        &opts,
    );

    let bandwidths = default_bandwidths_mbps();
    let rows = figure1(&bandwidths, &opts.sweep_config());

    let mut table = Table::new(&[
        "bandwidth_mbps",
        "ieee_802_5",
        "ci95",
        "modified_802_5",
        "ci95",
        "fddi",
        "ci95",
    ]);
    for r in &rows {
        table.push_row(&[
            cell(r.mbps, 3),
            cell(r.ieee_802_5.mean, 4),
            cell(r.ieee_802_5.ci95, 4),
            cell(r.modified_802_5.mean, 4),
            cell(r.modified_802_5.ci95, 4),
            cell(r.fddi.mean, 4),
            cell(r.fddi.ci95, 4),
        ]);
    }
    print!("{}", table.to_csv());
    println!();

    // Headline observations.
    let best_pdp = rows
        .iter()
        .max_by(|a, b| a.modified_802_5.mean.total_cmp(&b.modified_802_5.mean))
        .expect("non-empty sweep");
    println!(
        "# modified 802.5 peaks at {:.3} Mbps with ABU {:.3} (non-monotone: falls to {:.3} at {} Mbps)",
        best_pdp.mbps,
        best_pdp.modified_802_5.mean,
        rows.last().unwrap().modified_802_5.mean,
        rows.last().unwrap().mbps,
    );
    match rows.windows(2).find(|w| {
        w[0].modified_802_5.mean >= w[0].fddi.mean && w[1].modified_802_5.mean < w[1].fddi.mean
    }) {
        Some(w) => println!(
            "# FDDI overtakes modified 802.5 between {:.3} and {:.3} Mbps (paper: around 10 Mbps)",
            w[0].mbps, w[1].mbps
        ),
        None => println!("# no crossover found in the swept range"),
    }
    let dominance_violations = rows
        .iter()
        .filter(|r| r.modified_802_5.mean + 1e-9 < r.ieee_802_5.mean)
        .count();
    println!(
        "# modified ≥ standard 802.5 at {}/{} points (paper: modified dominates everywhere)",
        rows.len() - dominance_violations,
        rows.len()
    );
}
