//! The flight recorder: sharded ring buffers of timestamped span events.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Number of independent ring-buffer shards. Events are routed by a hash
/// of the recording thread's id, so with the handful of worker and
/// connection threads the service runs, pushes are almost always
/// uncontended.
const SHARDS: usize = 16;

/// Default per-shard event capacity (so the default recorder retains up to
/// `16 * 256` recent events).
///
/// Deliberately modest: at 48 bytes per event a shard's ring is ~12 KiB,
/// so the write cursor keeps the ring cache-resident instead of cycling
/// hundreds of kilobytes through L2 and evicting the hot request state —
/// with 1024-entry shards the extra cache misses roughly tripled the
/// recorder's measured per-request cost in `exp_trace_overhead`.
pub const DEFAULT_SHARD_CAPACITY: usize = 256;

/// One completed span: a named, categorised interval on one thread.
///
/// `cat` and `name` are `&'static str` so recording never allocates;
/// instrumentation sites use fixed labels ("service"/"execute",
/// "registry"/"journal_fsync", …).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// Coarse subsystem label ("service", "registry", "exec").
    pub cat: &'static str,
    /// Stage label within the subsystem ("parse", "queue_wait", …).
    pub name: &'static str,
    /// Hashed id of the recording thread (stable within a process run).
    pub tid: u64,
    /// Span start, microseconds since the recorder's epoch.
    pub start_us: u64,
    /// Span duration in microseconds.
    pub dur_us: u64,
}

/// Fixed-capacity overwrite-oldest event ring.
///
/// The recorded/dropped tallies live here rather than in process-wide
/// atomics: the push already holds the shard lock, so bumping two plain
/// `u64`s is free, while shared `fetch_add`s would cost two more RMW
/// operations per span on the hot path.
#[derive(Debug)]
struct Ring {
    buf: Vec<SpanEvent>,
    /// Next write position once the buffer has wrapped.
    head: usize,
    /// Events pushed since creation or the last stats reset.
    recorded: u64,
    /// Events overwritten before being drained.
    dropped: u64,
}

impl Ring {
    fn with_capacity(capacity: usize) -> Self {
        Ring {
            buf: Vec::with_capacity(capacity),
            head: 0,
            recorded: 0,
            dropped: 0,
        }
    }

    /// Pushes one event, overwriting the oldest when full.
    fn push(&mut self, ev: SpanEvent, capacity: usize) {
        self.recorded += 1;
        if self.buf.len() < capacity {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % capacity;
            self.dropped += 1;
        }
    }

    /// Takes the buffered events; the recorded/dropped tallies survive.
    fn drain(&mut self) -> Vec<SpanEvent> {
        self.head = 0;
        std::mem::take(&mut self.buf)
    }
}

/// Aggregate recorder health counters, exported over `METRICS`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecorderStats {
    /// Whether span recording is currently enabled.
    pub enabled: bool,
    /// Events recorded since creation (or last [`Recorder::reset_stats`]).
    pub recorded: u64,
    /// Events overwritten before being drained.
    pub dropped: u64,
    /// Total event capacity across all shards.
    pub capacity: usize,
}

/// A lock-light flight recorder of span events.
///
/// One instance is shared (behind an `Arc`) by the service, registry, and
/// exec layers. Recording is gated by a single atomic flag; when off, the
/// [`Span`] guard is inert.
///
/// # Examples
///
/// ```
/// use ringrt_obs::Recorder;
///
/// let rec = Recorder::new();
/// {
///     let _span = rec.span("demo", "work");
///     // ... the timed section ...
/// }
/// let events = rec.drain(16);
/// assert_eq!(events.len(), 1);
/// assert_eq!(events[0].name, "work");
/// ```
#[derive(Debug)]
pub struct Recorder {
    enabled: AtomicBool,
    epoch: Instant,
    shard_capacity: usize,
    shards: Vec<Mutex<Ring>>,
}

impl Recorder {
    /// Creates an enabled recorder with the default capacity.
    #[must_use]
    pub fn new() -> Self {
        Recorder::with_shard_capacity(DEFAULT_SHARD_CAPACITY)
    }

    /// Creates an enabled recorder retaining up to `capacity` events per
    /// shard (clamped to at least 1).
    #[must_use]
    pub fn with_shard_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Recorder {
            enabled: AtomicBool::new(true),
            epoch: Instant::now(),
            shard_capacity: capacity,
            shards: (0..SHARDS)
                .map(|_| Mutex::new(Ring::with_capacity(capacity)))
                .collect(),
        }
    }

    /// Creates a disabled recorder: spans are inert until
    /// [`set_enabled`](Self::set_enabled)`(true)`.
    #[must_use]
    pub fn disabled() -> Self {
        let rec = Recorder::new();
        rec.set_enabled(false);
        rec
    }

    /// Turns span recording on or off. Existing buffered events are kept.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether spans are currently being recorded.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Opens a span. The returned guard records one [`SpanEvent`] when
    /// dropped — wrap the timed section in a scope, or hold the guard for
    /// the rest of the enclosing block.
    ///
    /// The guard always knows its start time, so
    /// [`Span::elapsed`] works even while the recorder is disabled; only
    /// the ring-buffer write is skipped.
    pub fn span(&self, cat: &'static str, name: &'static str) -> Span<'_> {
        Span {
            recorder: self,
            cat,
            name,
            start: Instant::now(),
            armed: self.is_enabled(),
        }
    }

    /// Records one completed span directly (used by [`Span`]'s drop glue
    /// and by call sites that already measured a duration).
    pub fn record(&self, cat: &'static str, name: &'static str, start: Instant, dur: Duration) {
        self.record_many(&[Measured {
            cat,
            name,
            start,
            dur,
        }]);
    }

    /// Records several pre-measured intervals from the current thread in
    /// one shard-lock round trip. Call sites that complete adjacent
    /// stages together — the service worker finishes `queue_wait` and
    /// `execute` back to back — use this to halve the per-event locking
    /// cost on the hot path.
    pub fn record_many(&self, measured: &[Measured]) {
        if measured.is_empty() || !self.is_enabled() {
            return;
        }
        let tid = current_thread_hash();
        let shard = (tid as usize) % self.shards.len();
        let mut ring = match self.shards[shard].lock() {
            Ok(ring) => ring,
            Err(poisoned) => poisoned.into_inner(),
        };
        for m in measured {
            let ev = SpanEvent {
                cat: m.cat,
                name: m.name,
                tid,
                start_us: as_micros_u64(m.start.saturating_duration_since(self.epoch)),
                dur_us: as_micros_u64(m.dur),
            };
            ring.push(ev, self.shard_capacity);
        }
    }

    /// Drains buffered events, returning at most the `limit` most recent
    /// ones ordered by start time. The buffers are left empty.
    #[must_use]
    pub fn drain(&self, limit: usize) -> Vec<SpanEvent> {
        let mut events: Vec<SpanEvent> = Vec::new();
        for shard in &self.shards {
            let mut ring = match shard.lock() {
                Ok(r) => r,
                Err(poisoned) => poisoned.into_inner(),
            };
            events.extend(ring.drain());
        }
        events.sort_by_key(|e| (e.start_us, e.tid, e.dur_us));
        if events.len() > limit {
            events.drain(..events.len() - limit);
        }
        events
    }

    /// Current recorder health counters (sums the per-shard tallies; this
    /// is the cold export path, recording stays lock-per-shard).
    #[must_use]
    pub fn stats(&self) -> RecorderStats {
        let mut recorded = 0;
        let mut dropped = 0;
        for shard in &self.shards {
            let ring = match shard.lock() {
                Ok(r) => r,
                Err(poisoned) => poisoned.into_inner(),
            };
            recorded += ring.recorded;
            dropped += ring.dropped;
        }
        RecorderStats {
            enabled: self.is_enabled(),
            recorded,
            dropped,
            capacity: self.shard_capacity * self.shards.len(),
        }
    }

    /// Zeroes the recorded/dropped counters (buffered events are kept);
    /// part of the service's `STATS RESET` surface.
    pub fn reset_stats(&self) {
        for shard in &self.shards {
            let mut ring = match shard.lock() {
                Ok(r) => r,
                Err(poisoned) => poisoned.into_inner(),
            };
            ring.recorded = 0;
            ring.dropped = 0;
        }
    }
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new()
    }
}

/// One already-measured interval, for [`Recorder::record_many`].
#[derive(Debug, Clone, Copy)]
pub struct Measured {
    /// Coarse subsystem label ("service", "registry", "exec").
    pub cat: &'static str,
    /// Stage label within the subsystem.
    pub name: &'static str,
    /// When the interval began.
    pub start: Instant,
    /// How long it lasted.
    pub dur: Duration,
}

/// Drop guard for one in-progress span; see [`Recorder::span`].
#[derive(Debug)]
#[must_use = "a span records on drop; binding it to _ ends it immediately"]
pub struct Span<'a> {
    recorder: &'a Recorder,
    cat: &'static str,
    name: &'static str,
    start: Instant,
    armed: bool,
}

impl Span<'_> {
    /// Wall-clock time since the span was opened. Valid whether or not
    /// the recorder is enabled, so callers can reuse the measurement
    /// (e.g. the service worker feeds it into `worker_busy_us`).
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Ends the span with a **single** clock read, recording it (when the
    /// recorder is enabled) and returning the measured duration.
    ///
    /// Call sites that need the elapsed time anyway — every service stage
    /// feeds it into a latency histogram — should prefer this over
    /// `elapsed()` + drop, which reads the clock twice.
    pub fn finish(mut self) -> Duration {
        let dur = self.start.elapsed();
        if self.armed {
            self.armed = false;
            self.recorder.record(self.cat, self.name, self.start, dur);
        }
        dur
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.recorder
                .record(self.cat, self.name, self.start, self.start.elapsed());
        }
    }
}

/// Saturating microsecond conversion in pure u64 arithmetic — this sits
/// on the record hot path, where `Duration::as_micros`'s u128 division
/// is measurable (u64 microseconds outlast any realistic process
/// lifetime anyway).
fn as_micros_u64(d: Duration) -> u64 {
    d.as_secs()
        .saturating_mul(1_000_000)
        .saturating_add(u64::from(d.subsec_micros()))
}

thread_local! {
    /// Hash of this thread's id, computed once per thread.
    static TID_HASH: u64 = {
        let mut h = DefaultHasher::new();
        std::thread::current().id().hash(&mut h);
        h.finish()
    };
}

/// A stable per-thread identifier for trace output.
fn current_thread_hash() -> u64 {
    TID_HASH.with(|t| *t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_on_drop() {
        let rec = Recorder::new();
        {
            let _s = rec.span("t", "a");
            std::thread::sleep(Duration::from_millis(2));
        }
        let events = rec.drain(10);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].cat, "t");
        assert_eq!(events[0].name, "a");
        assert!(events[0].dur_us >= 1_000, "{:?}", events[0]);
        assert_eq!(rec.stats().recorded, 1);
    }

    #[test]
    fn finish_records_exactly_once_and_returns_the_duration() {
        let rec = Recorder::new();
        let s = rec.span("t", "f");
        let dur = s.finish();
        assert!(dur < Duration::from_secs(1));
        let events = rec.drain(10);
        assert_eq!(events.len(), 1, "finish + drop must not double-record");
        assert_eq!(events[0].name, "f");
        assert_eq!(rec.stats().recorded, 1);
    }

    #[test]
    fn disabled_recorder_stays_silent_but_spans_still_time() {
        let rec = Recorder::disabled();
        let s = rec.span("t", "a");
        std::thread::sleep(Duration::from_millis(2));
        assert!(s.elapsed() >= Duration::from_millis(1));
        drop(s);
        assert!(rec.drain(10).is_empty());
        assert_eq!(rec.stats().recorded, 0);
    }

    #[test]
    fn ring_overwrites_oldest_when_full() {
        let rec = Recorder::with_shard_capacity(4);
        // All events from this one thread land in the same shard.
        for i in 0..10u64 {
            rec.record("t", "x", Instant::now(), Duration::from_micros(i));
        }
        let events = rec.drain(100);
        assert_eq!(events.len(), 4, "shard capacity bounds retention");
        let stats = rec.stats();
        assert_eq!(stats.recorded, 10);
        assert_eq!(stats.dropped, 6);
    }

    #[test]
    fn drain_keeps_most_recent_and_clears() {
        let rec = Recorder::new();
        for _ in 0..5 {
            let _s = rec.span("t", "e");
        }
        let events = rec.drain(3);
        assert_eq!(events.len(), 3);
        assert!(
            events.windows(2).all(|w| w[0].start_us <= w[1].start_us),
            "events sorted by start"
        );
        assert!(rec.drain(3).is_empty(), "drain clears the buffers");
    }

    #[test]
    fn events_from_many_threads_are_collected() {
        let rec = std::sync::Arc::new(Recorder::new());
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let rec = std::sync::Arc::clone(&rec);
                scope.spawn(move || {
                    let _s = rec.span("t", "worker");
                });
            }
        });
        let events = rec.drain(64);
        assert_eq!(events.len(), 8);
        // Hashed thread ids distinguish at least two of the threads.
        let mut tids: Vec<u64> = events.iter().map(|e| e.tid).collect();
        tids.sort_unstable();
        tids.dedup();
        assert!(tids.len() > 1, "expected distinct tids, got {tids:?}");
    }

    #[test]
    fn reset_stats_zeroes_counters() {
        let rec = Recorder::new();
        let _ = rec.span("t", "a");
        rec.reset_stats();
        let stats = rec.stats();
        assert_eq!((stats.recorded, stats.dropped), (0, 0));
        assert!(stats.capacity > 0);
    }
}
