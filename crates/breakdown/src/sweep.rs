//! Parameter sweeps behind the paper's figure and in-text claims.
//!
//! Every row type here corresponds to one series point of a paper artifact;
//! the `ringrt-bench` experiment binaries print these rows and
//! `EXPERIMENTS.md` records them against the paper.

use rand::rngs::StdRng;
use rand::SeedableRng;

use ringrt_core::pdp::{PdpAnalyzer, PdpVariant};
use ringrt_core::ttp::{SbaScheme, TtpAnalyzer, TtrtPolicy};
use ringrt_model::{FrameFormat, RingConfig};
use ringrt_units::{Bandwidth, Bits, Seconds};
use ringrt_workload::MessageSetGenerator;

use crate::{BreakdownEstimate, BreakdownEstimator, SaturationSearch};

/// Shared knobs for all sweeps.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Number of ring stations (= streams per set). Paper: 100.
    pub stations: usize,
    /// Monte-Carlo samples per point. Paper methodology; more = tighter CI.
    pub samples: usize,
    /// Base RNG seed; each point derives its own deterministic seed.
    pub seed: u64,
    /// Saturation-search tolerance.
    pub tolerance: f64,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            stations: 100,
            samples: 100,
            seed: 0x5EED_0001,
            tolerance: 1e-3,
        }
    }
}

impl SweepConfig {
    /// A down-scaled configuration for quick runs and CI tests.
    #[must_use]
    pub fn quick() -> Self {
        SweepConfig {
            stations: 30,
            samples: 20,
            tolerance: 3e-3,
            ..SweepConfig::default()
        }
    }

    fn estimator(&self) -> BreakdownEstimator {
        BreakdownEstimator::new(
            MessageSetGenerator::paper_population(self.stations),
            self.samples,
        )
        .with_search(SaturationSearch::with_tolerance(self.tolerance))
    }

    fn rng_for_point(&self, point: u64) -> StdRng {
        // Derive one independent deterministic stream per sweep point so
        // adding points does not perturb earlier ones.
        StdRng::seed_from_u64(self.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ point)
    }
}

/// The default Figure-1 bandwidth grid: log-spaced 1–1000 Mbps.
#[must_use]
pub fn default_bandwidths_mbps() -> Vec<f64> {
    // Four points per decade over three decades, endpoints inclusive.
    let mut v = Vec::new();
    for decade in 0..3 {
        for &m in &[1.0, 1.778, 3.162, 5.623] {
            v.push(m * 10f64.powi(decade));
        }
    }
    v.push(1000.0);
    v
}

/// One point of the Figure-1 comparison: the three protocols' average
/// breakdown utilization at a bandwidth.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig1Row {
    /// Ring bandwidth in Mbps.
    pub mbps: f64,
    /// Standard IEEE 802.5 (token re-issued per frame).
    pub ieee_802_5: BreakdownEstimate,
    /// Modified IEEE 802.5 (token overhead once per message).
    pub modified_802_5: BreakdownEstimate,
    /// FDDI timed token with the local allocation scheme.
    pub fddi: BreakdownEstimate,
}

/// Reproduces the paper's Figure 1: average breakdown utilization of the
/// three protocols across a bandwidth sweep (paper §6.2 parameters).
#[must_use]
pub fn figure1(bandwidths_mbps: &[f64], config: &SweepConfig) -> Vec<Fig1Row> {
    let estimator = config.estimator();
    let frame = FrameFormat::paper_default();
    bandwidths_mbps
        .iter()
        .enumerate()
        .map(|(i, &mbps)| {
            let bw = Bandwidth::from_mbps(mbps);
            let ring_pdp = RingConfig::ieee_802_5(config.stations, bw);
            let ring_ttp = RingConfig::fddi(config.stations, bw);

            let std = PdpAnalyzer::new(ring_pdp, frame, PdpVariant::Standard);
            let modified = PdpAnalyzer::new(ring_pdp, frame, PdpVariant::Modified);
            let fddi = TtpAnalyzer::with_defaults(ring_ttp);

            // Identical sample streams per protocol at each point: the three
            // estimates see the same message sets, sharpening the contrast.
            let p = i as u64;
            Fig1Row {
                mbps,
                ieee_802_5: estimator.estimate(&std, bw, &mut config.rng_for_point(p)),
                modified_802_5: estimator.estimate(&modified, bw, &mut config.rng_for_point(p)),
                fddi: estimator.estimate(&fddi, bw, &mut config.rng_for_point(p)),
            }
        })
        .collect()
}

/// One point of the TTRT-sensitivity sweep (paper §5.2's
/// `TTRT ≈ √(Θ'·P)` claim).
#[derive(Debug, Clone, PartialEq)]
pub struct TtrtRow {
    /// The fixed TTRT under test.
    pub ttrt: Seconds,
    /// FDDI ABU at this TTRT.
    pub estimate: BreakdownEstimate,
}

/// Sweeps fixed TTRT values for the FDDI local scheme at one bandwidth.
///
/// `ttrts` are tested verbatim; pair with
/// [`suggested_ttrt_grid`] to bracket the heuristic.
#[must_use]
pub fn ttrt_sweep(mbps: f64, ttrts: &[Seconds], config: &SweepConfig) -> Vec<TtrtRow> {
    let estimator = config.estimator();
    let bw = Bandwidth::from_mbps(mbps);
    let ring = RingConfig::fddi(config.stations, bw);
    ttrts
        .iter()
        .enumerate()
        .map(|(i, &ttrt)| {
            let analyzer =
                TtpAnalyzer::with_defaults(ring).with_ttrt_policy(TtrtPolicy::Fixed(ttrt));
            TtrtRow {
                ttrt,
                estimate: estimator.estimate(&analyzer, bw, &mut config.rng_for_point(i as u64)),
            }
        })
        .collect()
}

/// A log-spaced TTRT grid from `min` to `max` inclusive.
#[must_use]
pub fn suggested_ttrt_grid(min: Seconds, max: Seconds, points: usize) -> Vec<Seconds> {
    assert!(points >= 2, "need at least two grid points");
    assert!(min > Seconds::ZERO && max > min, "need 0 < min < max");
    let (lo, hi) = (min.as_secs_f64().ln(), max.as_secs_f64().ln());
    (0..points)
        .map(|i| {
            let f = i as f64 / (points - 1) as f64;
            Seconds::new((lo + f * (hi - lo)).exp())
        })
        .collect()
}

/// One point of the PDP frame-size trade-off sweep (paper §4.2).
#[derive(Debug, Clone, PartialEq)]
pub struct FrameSizeRow {
    /// Frame payload size in bits.
    pub payload_bits: u64,
    /// Standard-variant ABU with this frame size.
    pub ieee_802_5: BreakdownEstimate,
    /// Modified-variant ABU with this frame size.
    pub modified_802_5: BreakdownEstimate,
}

/// Sweeps the PDP frame payload size at one bandwidth, exposing the paper's
/// granularity-vs-overhead trade-off.
#[must_use]
pub fn frame_size_sweep(
    mbps: f64,
    payloads_bits: &[u64],
    config: &SweepConfig,
) -> Vec<FrameSizeRow> {
    let estimator = config.estimator();
    let bw = Bandwidth::from_mbps(mbps);
    let ring = RingConfig::ieee_802_5(config.stations, bw);
    payloads_bits
        .iter()
        .enumerate()
        .map(|(i, &bits)| {
            let frame = FrameFormat::with_payload(Bits::new(bits)).expect("non-zero payload sizes");
            let std = PdpAnalyzer::new(ring, frame, PdpVariant::Standard);
            let modified = PdpAnalyzer::new(ring, frame, PdpVariant::Modified);
            FrameSizeRow {
                payload_bits: bits,
                ieee_802_5: estimator.estimate(&std, bw, &mut config.rng_for_point(i as u64)),
                modified_802_5: estimator.estimate(
                    &modified,
                    bw,
                    &mut config.rng_for_point(i as u64),
                ),
            }
        })
        .collect()
}

/// One row of the allocation-scheme comparison (paper §5.2's claim that the
/// local scheme is close to optimal on average).
#[derive(Debug, Clone, PartialEq)]
pub struct AllocSchemeRow {
    /// The allocation scheme under test.
    pub scheme: SbaScheme,
    /// FDDI ABU with this scheme.
    pub estimate: BreakdownEstimate,
}

/// Compares all implemented synchronous-bandwidth allocation schemes at one
/// bandwidth.
#[must_use]
pub fn alloc_scheme_sweep(mbps: f64, config: &SweepConfig) -> Vec<AllocSchemeRow> {
    let estimator = config.estimator();
    let bw = Bandwidth::from_mbps(mbps);
    let ring = RingConfig::fddi(config.stations, bw);
    SbaScheme::all()
        .into_iter()
        .map(|scheme| {
            let analyzer = TtpAnalyzer::with_defaults(ring).with_scheme(scheme);
            AllocSchemeRow {
                scheme,
                // Same seed across schemes: identical populations.
                estimate: estimator.estimate(&analyzer, bw, &mut config.rng_for_point(0)),
            }
        })
        .collect()
}

/// Estimates the ideal rate-monotonic average breakdown utilization (the
/// paper's §2 anchor: ≈ 88 % per Lehoczky–Sha–Ding).
///
/// Uses the Lehoczky–Sha–Ding population — task costs drawn uniformly
/// (independently of their periods) and a wide period range (max/min 100)
/// — rather than the paper's §6 ring population, because the 88 % figure
/// belongs to that CPU-scheduling study.
#[must_use]
pub fn ideal_rm_abu(config: &SweepConfig) -> BreakdownEstimate {
    let estimator = BreakdownEstimator::new(
        MessageSetGenerator::paper_population(config.stations)
            .with_lengths(ringrt_workload::LengthShape::UniformBits)
            .with_periods(ringrt_workload::PeriodDistribution::Uniform {
                mean: Seconds::from_millis(100.0),
                max_min_ratio: 100.0,
            }),
        config.samples,
    )
    .with_search(SaturationSearch::with_tolerance(config.tolerance));
    let bw = Bandwidth::from_mbps(100.0);
    let ideal = ringrt_core::rm::IdealRmAnalyzer::new(bw);
    estimator.estimate(&ideal, bw, &mut config.rng_for_point(0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SweepConfig {
        SweepConfig {
            stations: 10,
            samples: 6,
            seed: 1,
            tolerance: 3e-3,
        }
    }

    #[test]
    fn default_grid_spans_three_decades() {
        let g = default_bandwidths_mbps();
        assert_eq!(g.first().copied(), Some(1.0));
        assert_eq!(g.last().copied(), Some(1000.0));
        assert!(g.windows(2).all(|w| w[0] < w[1]));
        assert!(g.len() >= 12);
    }

    #[test]
    fn figure1_row_shape_low_vs_high_bandwidth() {
        // The crossover bandwidth scales with the station count (Θ and the
        // per-rotation F_ovhd bill grow with n); 40 stations keeps this test
        // fast while preserving the paper's qualitative shape.
        let cfg = SweepConfig {
            stations: 40,
            samples: 6,
            seed: 1,
            tolerance: 3e-3,
        };
        let rows = figure1(&[2.0, 200.0], &cfg);
        assert_eq!(rows.len(), 2);
        let low = &rows[0];
        let high = &rows[1];
        // Paper's headline: PDP ahead at low bandwidth, FDDI ahead at high.
        assert!(
            low.modified_802_5.mean > low.fddi.mean,
            "at 2 Mbps modified 802.5 ({:.3}) should beat FDDI ({:.3})",
            low.modified_802_5.mean,
            low.fddi.mean
        );
        assert!(
            high.fddi.mean > high.ieee_802_5.mean,
            "at 200 Mbps FDDI ({:.3}) should beat 802.5 ({:.3})",
            high.fddi.mean,
            high.ieee_802_5.mean
        );
        // Modified variant never loses to the standard.
        for row in &rows {
            assert!(row.modified_802_5.mean >= row.ieee_802_5.mean - 0.02);
        }
    }

    #[test]
    fn ttrt_sweep_peaks_inside_range() {
        let cfg = tiny();
        let grid = suggested_ttrt_grid(Seconds::from_micros(400.0), Seconds::from_millis(9.0), 5);
        let rows = ttrt_sweep(100.0, &grid, &cfg);
        assert_eq!(rows.len(), 5);
        // ABU must not be maximal at the extremes only: interior max.
        let best = rows
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.estimate.mean.total_cmp(&b.1.estimate.mean))
            .unwrap()
            .0;
        assert!(best != 0, "peak at the smallest TTRT is suspicious");
    }

    #[test]
    fn frame_sweep_runs() {
        let cfg = tiny();
        let rows = frame_size_sweep(4.0, &[128, 512, 4096], &cfg);
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(r.ieee_802_5.mean >= 0.0 && r.ieee_802_5.mean <= 1.0);
            assert!(r.modified_802_5.mean >= r.ieee_802_5.mean - 0.05);
        }
    }

    #[test]
    fn alloc_sweep_local_is_competitive() {
        let cfg = tiny();
        let rows = alloc_scheme_sweep(100.0, &cfg);
        assert_eq!(rows.len(), SbaScheme::all().len());
        let local = rows
            .iter()
            .find(|r| r.scheme == SbaScheme::Local)
            .unwrap()
            .estimate
            .mean;
        for r in &rows {
            assert!(
                local >= r.estimate.mean - 0.05,
                "{} ({:.3}) clearly beats local ({:.3})",
                r.scheme,
                r.estimate.mean,
                local
            );
        }
    }

    #[test]
    fn ideal_rm_near_88_percent() {
        let cfg = SweepConfig {
            stations: 30,
            samples: 30,
            seed: 5,
            tolerance: 1e-3,
        };
        let est = ideal_rm_abu(&cfg);
        assert!(
            est.mean > 0.85 && est.mean < 0.95,
            "ideal RM ABU {:.3} out of band",
            est.mean
        );
    }

    #[test]
    fn grid_helpers_validate() {
        let g = suggested_ttrt_grid(Seconds::from_millis(1.0), Seconds::from_millis(10.0), 4);
        assert_eq!(g.len(), 4);
        assert!((g[0].as_millis() - 1.0).abs() < 1e-9);
        assert!((g[3].as_millis() - 10.0).abs() < 1e-9);
        assert!(g.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn grid_needs_two_points() {
        let _ = suggested_ttrt_grid(Seconds::from_millis(1.0), Seconds::from_millis(2.0), 1);
    }
}
