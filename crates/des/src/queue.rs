//! The deterministic event queue.

use core::cmp::Ordering;
use std::collections::BinaryHeap;

use ringrt_units::{SimDuration, SimTime};

/// A future event: ordered by time, then by insertion sequence so that
/// same-time events are FIFO.
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered event queue with a built-in monotone clock.
///
/// The queue *is* the simulation clock: [`EventQueue::now`] is the
/// timestamp of the most recently popped event, and scheduling strictly in
/// the past is rejected. Events carrying equal timestamps pop in the order
/// they were scheduled, making runs bit-for-bit reproducible.
///
/// # Examples
///
/// ```
/// use ringrt_des::EventQueue;
/// use ringrt_units::{SimDuration, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule_at(SimTime::from_picos(10), "b");
/// q.schedule_at(SimTime::from_picos(10), "c");
/// q.schedule_at(SimTime::from_picos(5), "a");
/// let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
/// assert_eq!(order, vec!["a", "b", "c"]);
/// ```
#[derive(Default)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: SimTime,
    popped: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at `t = 0`.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            popped: 0,
        }
    }

    /// The current simulation time: the timestamp of the last popped event.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events popped so far (a cheap progress metric).
    #[must_use]
    pub fn events_processed(&self) -> u64 {
        self.popped
    }

    /// Schedules `event` at absolute time `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than [`EventQueue::now`] — an event in
    /// the past indicates a logic error in the model.
    pub fn schedule_at(&mut self, time: SimTime, event: E) {
        assert!(
            time >= self.now,
            "cannot schedule an event at {time} before the current time {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Schedules `event` at `now + delay`.
    pub fn schedule_after(&mut self, delay: SimDuration, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Timestamp of the next pending event, if any.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Pops the earliest pending event, advancing the clock to its
    /// timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.time >= self.now, "heap returned a past event");
        self.now = entry.time;
        self.popped += 1;
        Some((entry.time, entry.event))
    }

    /// Pops the earliest event only if it is due at or before `deadline`.
    /// The clock never advances past `deadline` through this method.
    pub fn pop_until(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        match self.peek_time() {
            Some(t) if t <= deadline => self.pop(),
            _ => None,
        }
    }

    /// Discards all pending events without advancing the clock.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> core::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("EventQueue")
            .field("now", &self.now)
            .field("pending", &self.heap.len())
            .field("processed", &self.popped)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_picos(30), 3);
        q.schedule_at(SimTime::from_picos(10), 1);
        q.schedule_at(SimTime::from_picos(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_picos(5);
        for i in 0..100 {
            q.schedule_at(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), SimTime::ZERO);
        q.schedule_at(SimTime::from_picos(42), ());
        let (t, ()) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_picos(42));
        assert_eq!(q.now(), t);
        assert_eq!(q.events_processed(), 1);
    }

    #[test]
    fn schedule_after_uses_clock() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_picos(100), "first");
        let _ = q.pop();
        q.schedule_after(SimDuration::from_picos(50), "second");
        let (t, e) = q.pop().unwrap();
        assert_eq!(e, "second");
        assert_eq!(t, SimTime::from_picos(150));
    }

    #[test]
    #[should_panic(expected = "before the current time")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_picos(100), ());
        let _ = q.pop();
        q.schedule_at(SimTime::from_picos(99), ());
    }

    #[test]
    fn pop_until_respects_deadline() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_picos(10), "early");
        q.schedule_at(SimTime::from_picos(100), "late");
        assert_eq!(q.pop_until(SimTime::from_picos(50)).unwrap().1, "early");
        assert!(q.pop_until(SimTime::from_picos(50)).is_none());
        // Clock did not advance past the deadline.
        assert_eq!(q.now(), SimTime::from_picos(10));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn scheduling_at_now_is_allowed() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_picos(10), 1);
        let _ = q.pop();
        q.schedule_at(SimTime::from_picos(10), 2); // same instant: OK
        assert_eq!(q.pop().unwrap().1, 2);
    }

    #[test]
    fn clear_and_debug() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_picos(10), ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        assert!(format!("{q:?}").contains("EventQueue"));
    }
}
