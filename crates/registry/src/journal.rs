//! Append-only journal plus snapshot persistence for the ring registry.
//!
//! # On-disk layout
//!
//! A state directory holds at most three files:
//!
//! * `journal.log` — one CRC-framed record per state mutation:
//!   `<crc32 hex8> <seq> <op…>\n`, where the checksum covers everything
//!   after the first space. Sequence numbers are strictly increasing.
//! * `snapshot.dat` — a full-state snapshot written by compaction: a
//!   header line `ringrt-registry-snapshot v1 seq=<n>`, one `ring` line
//!   per ring and one `stream` line per admitted stream, and a trailing
//!   `crc <hex8>` line covering every preceding byte.
//! * `snapshot.tmp` — a snapshot in the middle of being written; never
//!   read on startup.
//!
//! # Crash recovery
//!
//! Startup loads the snapshot (ignored wholesale if its checksum fails),
//! then replays journal records with `seq >` the snapshot's sequence
//! number. A torn or checksum-corrupt record ends the replay: the tail
//! from that record on is truncated away, exactly like a write-ahead log.
//! Compaction writes `snapshot.tmp`, fsyncs, renames it over
//! `snapshot.dat`, and only then truncates the journal — a crash between
//! any two steps leaves a state that replays to the same registry, because
//! replay skips journal records already covered by the snapshot.
//!
//! Periods and deadlines are persisted as raw seconds with Rust's
//! round-trip `{}` float formatting, so a replayed stream is bit-identical
//! to the one originally admitted — the property behind the "survives
//! restart byte-identically" guarantee.

use std::fs::{self, File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ringrt_frames::crc::crc32;
use ringrt_model::SyncStream;
use ringrt_obs::Recorder;
use ringrt_units::{Bits, Seconds};

use crate::spec::{
    validate_name, NamedStream, ProtocolKind, RegistryError, RingSpec, RingState, Rings,
};

const JOURNAL_FILE: &str = "journal.log";
const SNAPSHOT_FILE: &str = "snapshot.dat";
const SNAPSHOT_TMP: &str = "snapshot.tmp";
const SNAPSHOT_HEADER: &str = "ringrt-registry-snapshot v1";

/// One journaled state mutation.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalOp {
    /// A new ring was registered.
    Register {
        /// Ring name.
        ring: String,
        /// Its configuration.
        spec: RingSpec,
    },
    /// A stream was admitted into a ring.
    Admit {
        /// Ring name.
        ring: String,
        /// The admitted stream.
        stream: NamedStream,
    },
    /// A stream was removed from a ring.
    Remove {
        /// Ring name.
        ring: String,
        /// The removed stream's name.
        stream: String,
    },
    /// A ring (and all its streams) was dropped.
    Unregister {
        /// Ring name.
        ring: String,
    },
}

/// Applies one op to the in-memory ring map; used both by live mutations
/// and by replay so the two can never drift apart.
pub(crate) fn apply(rings: &mut Rings, op: &JournalOp) -> Result<(), RegistryError> {
    match op {
        JournalOp::Register { ring, spec } => {
            if rings.contains_key(ring) {
                return Err(RegistryError::DuplicateRing { ring: ring.clone() });
            }
            rings.insert(
                ring.clone(),
                RingState {
                    spec: *spec,
                    streams: Vec::new(),
                },
            );
        }
        JournalOp::Admit { ring, stream } => {
            let state = rings
                .get_mut(ring)
                .ok_or_else(|| RegistryError::UnknownRing { ring: ring.clone() })?;
            if state.stream_index(&stream.name).is_some() {
                return Err(RegistryError::DuplicateStream {
                    ring: ring.clone(),
                    stream: stream.name.clone(),
                });
            }
            state.streams.push(stream.clone());
        }
        JournalOp::Remove { ring, stream } => {
            let state = rings
                .get_mut(ring)
                .ok_or_else(|| RegistryError::UnknownRing { ring: ring.clone() })?;
            let index = state
                .stream_index(stream)
                .ok_or_else(|| RegistryError::UnknownStream {
                    ring: ring.clone(),
                    stream: stream.clone(),
                })?;
            state.streams.remove(index);
        }
        JournalOp::Unregister { ring } => {
            rings
                .remove(ring)
                .ok_or_else(|| RegistryError::UnknownRing { ring: ring.clone() })?;
        }
    }
    Ok(())
}

fn fmt_stations(stations: Option<usize>) -> String {
    match stations {
        Some(n) => n.to_string(),
        None => "-".to_owned(),
    }
}

fn parse_stations(text: &str) -> Result<Option<usize>, String> {
    if text == "-" {
        return Ok(None);
    }
    text.parse::<usize>()
        .map(Some)
        .map_err(|_| format!("bad stations `{text}`"))
}

fn fmt_deadline(stream: &SyncStream) -> String {
    if stream.has_implicit_deadline() {
        "-".to_owned()
    } else {
        format!("{}", stream.relative_deadline().as_secs_f64())
    }
}

fn build_stream(period_s: f64, bits: u64, deadline_s: Option<f64>) -> Result<SyncStream, String> {
    let stream = SyncStream::try_new(Seconds::new(period_s), Bits::new(bits))
        .map_err(|e| format!("bad stream: {e}"))?;
    match deadline_s {
        None => Ok(stream),
        Some(d) if d > 0.0 && d <= period_s => Ok(stream.with_relative_deadline(Seconds::new(d))),
        Some(d) => Err(format!("bad deadline {d} for period {period_s}")),
    }
}

fn encode_op(op: &JournalOp) -> String {
    match op {
        JournalOp::Register { ring, spec } => format!(
            "register {ring} protocol={} mbps={} stations={}",
            spec.protocol.token(),
            spec.mbps,
            fmt_stations(spec.stations),
        ),
        JournalOp::Admit { ring, stream } => format!(
            "admit {ring} {} period_s={} bits={} deadline_s={}",
            stream.name,
            stream.stream.period().as_secs_f64(),
            stream.stream.length_bits().as_u64(),
            fmt_deadline(&stream.stream),
        ),
        JournalOp::Remove { ring, stream } => format!("remove {ring} {stream}"),
        JournalOp::Unregister { ring } => format!("unregister {ring}"),
    }
}

fn kv<'a>(word: &'a str, key: &str) -> Result<&'a str, String> {
    word.strip_prefix(key)
        .and_then(|r| r.strip_prefix('='))
        .ok_or_else(|| format!("expected {key}=…, found `{word}`"))
}

fn parse_f64(text: &str, what: &str) -> Result<f64, String> {
    text.parse::<f64>()
        .map_err(|_| format!("bad {what} `{text}`"))
}

fn parse_opt_f64(text: &str, what: &str) -> Result<Option<f64>, String> {
    if text == "-" {
        Ok(None)
    } else {
        parse_f64(text, what).map(Some)
    }
}

fn decode_op(text: &str) -> Result<JournalOp, String> {
    let mut words = text.split(' ');
    let verb = words.next().ok_or("empty op")?;
    let mut next = |what: &str| words.next().ok_or_else(|| format!("missing {what}"));
    let op = match verb {
        "register" => {
            let ring = next("ring")?.to_owned();
            let protocol = ProtocolKind::parse(kv(next("protocol")?, "protocol")?)?;
            let mbps = parse_f64(kv(next("mbps")?, "mbps")?, "mbps")?;
            let stations = parse_stations(kv(next("stations")?, "stations")?)?;
            JournalOp::Register {
                ring,
                spec: RingSpec {
                    protocol,
                    mbps,
                    stations,
                },
            }
        }
        "admit" => {
            let ring = next("ring")?.to_owned();
            let name = next("stream")?.to_owned();
            let period_s = parse_f64(kv(next("period_s")?, "period_s")?, "period")?;
            let bits = kv(next("bits")?, "bits")?
                .parse::<u64>()
                .map_err(|_| "bad bits".to_owned())?;
            let deadline_s = parse_opt_f64(kv(next("deadline_s")?, "deadline_s")?, "deadline")?;
            JournalOp::Admit {
                ring,
                stream: NamedStream {
                    name,
                    stream: build_stream(period_s, bits, deadline_s)?,
                },
            }
        }
        "remove" => JournalOp::Remove {
            ring: next("ring")?.to_owned(),
            stream: next("stream")?.to_owned(),
        },
        "unregister" => JournalOp::Unregister {
            ring: next("ring")?.to_owned(),
        },
        other => return Err(format!("unknown op `{other}`")),
    };
    if words.next().is_some() {
        return Err("trailing garbage after op".to_owned());
    }
    match &op {
        JournalOp::Register { ring, spec } => {
            validate_name(ring).map_err(|e| e.to_string())?;
            spec.validate().map_err(|e| e.to_string())?;
        }
        JournalOp::Admit { ring, stream } => {
            validate_name(ring).map_err(|e| e.to_string())?;
            validate_name(&stream.name).map_err(|e| e.to_string())?;
        }
        JournalOp::Remove { ring, stream } => {
            validate_name(ring).map_err(|e| e.to_string())?;
            validate_name(stream).map_err(|e| e.to_string())?;
        }
        JournalOp::Unregister { ring } => validate_name(ring).map_err(|e| e.to_string())?,
    }
    Ok(op)
}

fn encode_record(seq: u64, op: &JournalOp) -> String {
    let payload = format!("{seq} {}", encode_op(op));
    format!("{:08x} {payload}\n", crc32(payload.as_bytes()))
}

fn decode_record(line: &str) -> Result<(u64, JournalOp), String> {
    let (crc_hex, payload) = line.split_once(' ').ok_or("record missing checksum")?;
    let expected = u32::from_str_radix(crc_hex, 16).map_err(|_| "bad checksum field")?;
    if crc32(payload.as_bytes()) != expected {
        return Err("checksum mismatch".to_owned());
    }
    let (seq_text, op_text) = payload.split_once(' ').ok_or("record missing sequence")?;
    let seq = seq_text
        .parse::<u64>()
        .map_err(|_| "bad sequence number".to_owned())?;
    Ok((seq, decode_op(op_text)?))
}

fn encode_snapshot<'a, I>(seq: u64, rings: I) -> String
where
    I: Iterator<Item = (&'a String, &'a RingState)>,
{
    let mut body = format!("{SNAPSHOT_HEADER} seq={seq}\n");
    for (name, state) in rings {
        body.push_str(&format!(
            "ring {name} protocol={} mbps={} stations={}\n",
            state.spec.protocol.token(),
            state.spec.mbps,
            fmt_stations(state.spec.stations),
        ));
        for ns in &state.streams {
            body.push_str(&format!(
                "stream {name} {} period_s={} bits={} deadline_s={}\n",
                ns.name,
                ns.stream.period().as_secs_f64(),
                ns.stream.length_bits().as_u64(),
                fmt_deadline(&ns.stream),
            ));
        }
    }
    let checksum = crc32(body.as_bytes());
    body.push_str(&format!("crc {checksum:08x}\n"));
    body
}

fn load_snapshot(bytes: &[u8]) -> Result<(u64, Rings), String> {
    let text = std::str::from_utf8(bytes).map_err(|_| "snapshot is not UTF-8")?;
    let trimmed = text.strip_suffix('\n').ok_or("snapshot missing newline")?;
    let (body_lines, crc_line) = trimmed
        .rsplit_once('\n')
        .ok_or("snapshot missing crc line")?;
    let crc_hex = crc_line
        .strip_prefix("crc ")
        .ok_or("snapshot crc line malformed")?;
    let expected = u32::from_str_radix(crc_hex, 16).map_err(|_| "bad snapshot checksum")?;
    let body = format!("{body_lines}\n");
    if crc32(body.as_bytes()) != expected {
        return Err("snapshot checksum mismatch".to_owned());
    }
    let mut lines = body_lines.lines();
    let header = lines.next().ok_or("empty snapshot")?;
    let seq_text = header
        .strip_prefix(SNAPSHOT_HEADER)
        .and_then(|r| r.trim().strip_prefix("seq="))
        .ok_or("snapshot header malformed")?;
    let seq = seq_text
        .parse::<u64>()
        .map_err(|_| "bad snapshot sequence")?;
    let mut rings = Rings::new();
    for line in lines {
        let (kind, rest) = line.split_once(' ').ok_or("snapshot line malformed")?;
        match kind {
            "ring" => {
                let op = decode_op(&format!("register {rest}"))?;
                apply(&mut rings, &op).map_err(|e| e.to_string())?;
            }
            "stream" => {
                let op = decode_op(&format!("admit {rest}"))?;
                apply(&mut rings, &op).map_err(|e| e.to_string())?;
            }
            other => return Err(format!("unknown snapshot line kind `{other}`")),
        }
    }
    Ok((seq, rings))
}

fn storage_err(context: &str, e: impl fmt_display::Display) -> RegistryError {
    RegistryError::Storage {
        reason: format!("{context}: {e}"),
    }
}

// `std::fmt::Display` under a private alias so `storage_err` reads cleanly.
mod fmt_display {
    pub use core::fmt::Display;
}

/// What startup replay found and how long it took.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayStats {
    /// Sequence number of the snapshot that seeded the state, if any.
    pub snapshot_seq: Option<u64>,
    /// Journal records applied on top of the snapshot.
    pub records_applied: u64,
    /// Total streams present after recovery.
    pub streams_restored: usize,
    /// Whether a torn or corrupt journal tail was truncated away.
    pub truncated_tail: bool,
    /// Wall-clock time spent recovering.
    pub replay: Duration,
}

/// The open state directory: an append handle on the journal plus the
/// bookkeeping compaction needs.
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    journal: File,
    next_seq: u64,
    journal_bytes: u64,
    snapshot_bytes: u64,
    recorder: Arc<Recorder>,
}

impl Store {
    /// Opens (creating if necessary) a state directory, recovering the ring
    /// map from snapshot + journal.
    ///
    /// # Errors
    ///
    /// [`RegistryError::Storage`] for I/O failures or a journal whose
    /// *interior* records replay inconsistently (e.g. an admit into a ring
    /// that never existed). A torn tail is not an error.
    pub fn open(dir: &Path) -> Result<(Store, Rings, ReplayStats), RegistryError> {
        let started = Instant::now();
        fs::create_dir_all(dir).map_err(|e| storage_err("create state dir", e))?;

        let mut rings = Rings::new();
        let mut snapshot_seq = None;
        let mut snapshot_bytes = 0u64;
        let snapshot_path = dir.join(SNAPSHOT_FILE);
        if let Ok(bytes) = fs::read(&snapshot_path) {
            // A corrupt snapshot is ignored wholesale: the journal alone
            // must then reconstruct the state (it is only truncated *after*
            // a snapshot has safely landed, so nothing is lost).
            if let Ok((seq, loaded)) = load_snapshot(&bytes) {
                snapshot_seq = Some(seq);
                snapshot_bytes = bytes.len() as u64;
                rings = loaded;
            }
        }

        let journal_path = dir.join(JOURNAL_FILE);
        let bytes = fs::read(&journal_path).unwrap_or_default();
        let floor = snapshot_seq.unwrap_or(0);
        let mut max_seq = floor;
        let mut offset = 0usize;
        let mut good_end = 0usize;
        let mut records_applied = 0u64;
        let mut truncated_tail = false;
        while offset < bytes.len() {
            let Some(rel) = bytes[offset..].iter().position(|&b| b == b'\n') else {
                truncated_tail = true; // partial final record (crash mid-write)
                break;
            };
            let line = &bytes[offset..offset + rel];
            let decoded = std::str::from_utf8(line)
                .ok()
                .and_then(|l| decode_record(l).ok());
            let Some((seq, op)) = decoded else {
                truncated_tail = true; // torn/corrupt record ends the log
                break;
            };
            if seq > floor {
                apply(&mut rings, &op)
                    .map_err(|e| storage_err("journal replays inconsistently", e))?;
                records_applied += 1;
            }
            max_seq = max_seq.max(seq);
            offset += rel + 1;
            good_end = offset;
        }
        if truncated_tail {
            let f = OpenOptions::new()
                .write(true)
                .open(&journal_path)
                .map_err(|e| storage_err("open journal for truncation", e))?;
            f.set_len(good_end as u64)
                .map_err(|e| storage_err("truncate torn journal tail", e))?;
            f.sync_all()
                .map_err(|e| storage_err("sync truncated journal", e))?;
        }

        let journal = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&journal_path)
            .map_err(|e| storage_err("open journal", e))?;
        let stats = ReplayStats {
            snapshot_seq,
            records_applied,
            streams_restored: rings.values().map(|r| r.streams.len()).sum(),
            truncated_tail,
            replay: started.elapsed(),
        };
        Ok((
            Store {
                dir: dir.to_owned(),
                journal,
                next_seq: max_seq + 1,
                journal_bytes: good_end as u64,
                snapshot_bytes,
                recorder: Arc::new(Recorder::disabled()),
            },
            rings,
            stats,
        ))
    }

    /// Attaches a flight recorder: subsequent [`append`](Self::append) and
    /// [`compact`](Self::compact) calls emit `registry` spans for the
    /// journal append, the fsync, and each compaction phase (snapshot
    /// write, publish rename, journal truncate).
    pub fn set_recorder(&mut self, recorder: Arc<Recorder>) {
        self.recorder = recorder;
    }

    /// Appends one record and syncs it to disk. Call *before* mutating the
    /// in-memory state so a failed write leaves memory and disk agreeing.
    ///
    /// # Errors
    ///
    /// [`RegistryError::Storage`] if the write or sync fails.
    pub fn append(&mut self, op: &JournalOp) -> Result<(), RegistryError> {
        let _append_span = self.recorder.span("registry", "journal_append");
        let record = encode_record(self.next_seq, op);
        self.journal
            .write_all(record.as_bytes())
            .map_err(|e| storage_err("append journal record", e))?;
        {
            let _fsync_span = self.recorder.span("registry", "journal_fsync");
            self.journal
                .sync_data()
                .map_err(|e| storage_err("sync journal", e))?;
        }
        self.journal_bytes += record.len() as u64;
        self.next_seq += 1;
        Ok(())
    }

    /// Compacts: writes a checksummed snapshot of `rings` (tmp file +
    /// atomic rename), then truncates the journal. Crash-safe at every
    /// step — see the module docs.
    ///
    /// # Errors
    ///
    /// [`RegistryError::Storage`] if any I/O step fails.
    pub fn compact<'a, I>(&mut self, rings: I) -> Result<(), RegistryError>
    where
        I: Iterator<Item = (&'a String, &'a RingState)>,
    {
        let _compact_span = self.recorder.span("registry", "compact");
        let seq = self.next_seq - 1; // highest sequence the snapshot covers
        let body = encode_snapshot(seq, rings);
        let tmp = self.dir.join(SNAPSHOT_TMP);
        {
            let _write_span = self.recorder.span("registry", "snapshot_write");
            let mut f = File::create(&tmp).map_err(|e| storage_err("create snapshot.tmp", e))?;
            f.write_all(body.as_bytes())
                .map_err(|e| storage_err("write snapshot", e))?;
            f.sync_all().map_err(|e| storage_err("sync snapshot", e))?;
        }
        {
            let _publish_span = self.recorder.span("registry", "snapshot_publish");
            fs::rename(&tmp, self.dir.join(SNAPSHOT_FILE))
                .map_err(|e| storage_err("publish snapshot", e))?;
        }
        self.snapshot_bytes = body.len() as u64;
        // Only now is it safe to drop the journal prefix the snapshot covers.
        let _truncate_span = self.recorder.span("registry", "journal_truncate");
        self.journal
            .set_len(0)
            .map_err(|e| storage_err("truncate journal", e))?;
        self.journal
            .sync_all()
            .map_err(|e| storage_err("sync truncated journal", e))?;
        self.journal_bytes = 0;
        Ok(())
    }

    /// Current journal size in bytes.
    #[must_use]
    pub fn journal_bytes(&self) -> u64 {
        self.journal_bytes
    }

    /// Current snapshot size in bytes (0 before the first compaction).
    #[must_use]
    pub fn snapshot_bytes(&self) -> u64 {
        self.snapshot_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> RingSpec {
        RingSpec {
            protocol: ProtocolKind::Fddi,
            mbps: 100.0,
            stations: Some(16),
        }
    }

    fn admit_op(ring: &str, name: &str, period_ms: f64, bits: u64) -> JournalOp {
        JournalOp::Admit {
            ring: ring.to_owned(),
            stream: NamedStream {
                name: name.to_owned(),
                stream: SyncStream::new(Seconds::from_millis(period_ms), Bits::new(bits)),
            },
        }
    }

    #[test]
    fn ops_round_trip_through_records() {
        let ops = [
            JournalOp::Register {
                ring: "lab".into(),
                spec: spec(),
            },
            admit_op("lab", "cam-1", 20.0, 20_000),
            JournalOp::Remove {
                ring: "lab".into(),
                stream: "cam-1".into(),
            },
            JournalOp::Unregister { ring: "lab".into() },
        ];
        for (i, op) in ops.iter().enumerate() {
            let rec = encode_record(i as u64 + 1, op);
            let (seq, decoded) = decode_record(rec.trim_end()).unwrap();
            assert_eq!(seq, i as u64 + 1);
            assert_eq!(&decoded, op);
        }
    }

    #[test]
    fn deadline_round_trips_bit_exactly() {
        let stream = SyncStream::new(Seconds::from_millis(20.0), Bits::new(1_000))
            .with_relative_deadline(Seconds::from_millis(7.3));
        let op = JournalOp::Admit {
            ring: "r".into(),
            stream: NamedStream {
                name: "s".into(),
                stream,
            },
        };
        let rec = encode_record(1, &op);
        let (_, decoded) = decode_record(rec.trim_end()).unwrap();
        match decoded {
            JournalOp::Admit { stream: ns, .. } => {
                assert_eq!(
                    ns.stream.relative_deadline().as_secs_f64().to_bits(),
                    stream.relative_deadline().as_secs_f64().to_bits()
                );
                assert_eq!(
                    ns.stream.period().as_secs_f64().to_bits(),
                    stream.period().as_secs_f64().to_bits()
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn corrupt_records_rejected() {
        let rec = encode_record(1, &admit_op("r", "s", 10.0, 100));
        let line = rec.trim_end();
        // Flip a payload byte: checksum must catch it.
        let mut bad = line.to_owned();
        let n = bad.len();
        bad.replace_range(n - 1..n, "X");
        assert!(decode_record(&bad).is_err());
        assert!(decode_record("zzzzzzzz 1 unregister r").is_err());
        assert!(decode_record("not-a-record").is_err());
    }

    #[test]
    fn apply_enforces_invariants() {
        let mut rings = Rings::new();
        let reg = JournalOp::Register {
            ring: "r".into(),
            spec: spec(),
        };
        apply(&mut rings, &reg).unwrap();
        assert!(matches!(
            apply(&mut rings, &reg),
            Err(RegistryError::DuplicateRing { .. })
        ));
        apply(&mut rings, &admit_op("r", "s", 10.0, 100)).unwrap();
        assert!(matches!(
            apply(&mut rings, &admit_op("r", "s", 12.0, 200)),
            Err(RegistryError::DuplicateStream { .. })
        ));
        assert!(matches!(
            apply(&mut rings, &admit_op("ghost", "s", 10.0, 100)),
            Err(RegistryError::UnknownRing { .. })
        ));
        let rm = JournalOp::Remove {
            ring: "r".into(),
            stream: "ghost".into(),
        };
        assert!(matches!(
            apply(&mut rings, &rm),
            Err(RegistryError::UnknownStream { .. })
        ));
    }

    #[test]
    fn snapshot_round_trips() {
        let mut rings = Rings::new();
        apply(
            &mut rings,
            &JournalOp::Register {
                ring: "a".into(),
                spec: spec(),
            },
        )
        .unwrap();
        apply(&mut rings, &admit_op("a", "s1", 20.0, 1_000)).unwrap();
        apply(&mut rings, &admit_op("a", "s2", 40.0, 2_000)).unwrap();
        let body = encode_snapshot(7, rings.iter());
        let (seq, loaded) = load_snapshot(body.as_bytes()).unwrap();
        assert_eq!(seq, 7);
        assert_eq!(loaded, rings);
        // Any corruption invalidates the whole snapshot.
        let corrupt = body.replace("s1", "sX");
        assert!(load_snapshot(corrupt.as_bytes()).is_err());
    }

    #[test]
    fn attached_recorder_sees_journal_and_compaction_phases() {
        let dir = std::env::temp_dir().join(format!(
            "ringrt-journal-obs-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        let rec = Arc::new(Recorder::new());
        let (mut store, mut rings, _) = Store::open(&dir).unwrap();
        store.set_recorder(Arc::clone(&rec));
        let op = JournalOp::Register {
            ring: "r".into(),
            spec: spec(),
        };
        store.append(&op).unwrap();
        apply(&mut rings, &op).unwrap();
        store.compact(rings.iter()).unwrap();
        let names: Vec<&str> = rec.drain(64).iter().map(|e| e.name).collect();
        for expected in [
            "journal_append",
            "journal_fsync",
            "compact",
            "snapshot_write",
            "snapshot_publish",
            "journal_truncate",
        ] {
            assert!(names.contains(&expected), "missing {expected}: {names:?}");
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_persists_and_replays() {
        let dir = std::env::temp_dir().join(format!(
            "ringrt-journal-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        {
            let (mut store, mut rings, stats) = Store::open(&dir).unwrap();
            assert_eq!(stats.records_applied, 0);
            let ops = [
                JournalOp::Register {
                    ring: "r".into(),
                    spec: spec(),
                },
                admit_op("r", "s1", 20.0, 1_000),
                admit_op("r", "s2", 40.0, 2_000),
            ];
            for op in &ops {
                store.append(op).unwrap();
                apply(&mut rings, op).unwrap();
            }
            assert!(store.journal_bytes() > 0);
        }
        let (mut store, rings, stats) = Store::open(&dir).unwrap();
        assert_eq!(stats.records_applied, 3);
        assert_eq!(stats.streams_restored, 2);
        assert!(!stats.truncated_tail);
        assert_eq!(rings["r"].streams.len(), 2);
        // Compaction: snapshot lands, journal empties, state survives.
        store.compact(rings.iter()).unwrap();
        assert_eq!(store.journal_bytes(), 0);
        assert!(store.snapshot_bytes() > 0);
        drop(store);
        let (_, rings2, stats2) = Store::open(&dir).unwrap();
        assert_eq!(rings2, rings);
        assert_eq!(stats2.records_applied, 0);
        assert_eq!(stats2.snapshot_seq, Some(3));
        let _ = fs::remove_dir_all(&dir);
    }
}
