//! Ring specifications, named streams, in-memory ring state, and the
//! registry error type.

use core::fmt;
use std::collections::BTreeMap;

use ringrt_model::{MessageSet, SyncStream};
use ringrt_store::StreamStore;
use ringrt_units::Bandwidth;

/// Protocol selector shared by the registry, the admission service's wire
/// protocol, and the CLI. The canonical tokens (`802.5`, `modified`,
/// `fddi`) are what `ringrt check --format csv` emits and what the journal
/// persists.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ProtocolKind {
    /// Standard IEEE 802.5 priority-driven protocol.
    Ieee8025,
    /// The paper's modified (token-holding) 802.5 variant.
    #[default]
    Modified,
    /// FDDI timed token protocol with the local allocation scheme.
    Fddi,
}

impl ProtocolKind {
    /// Parses the same aliases the CLI accepts.
    ///
    /// # Errors
    ///
    /// A human-readable message for an unrecognized token.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s.to_ascii_lowercase().as_str() {
            "802.5" | "8025" | "ieee802.5" | "standard" => Ok(ProtocolKind::Ieee8025),
            "modified" | "mod" => Ok(ProtocolKind::Modified),
            "fddi" | "ttp" | "timed-token" => Ok(ProtocolKind::Fddi),
            other => Err(format!(
                "unknown protocol `{other}` (expected 802.5, modified, or fddi)"
            )),
        }
    }

    /// The canonical wire token.
    #[must_use]
    pub fn token(self) -> &'static str {
        match self {
            ProtocolKind::Ieee8025 => "802.5",
            ProtocolKind::Modified => "modified",
            ProtocolKind::Fddi => "fddi",
        }
    }
}

impl fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

/// The long-lived configuration of one registered ring: protocol,
/// bandwidth, and (optionally pinned) station count.
///
/// Pinning `stations` above the expected stream count keeps the ring's
/// overhead terms (`Θ`, and hence the PDP blocking bound and the TTP
/// `Θ'`) constant while streams come and go — the precondition for the
/// registry's incremental admission path. With `stations = None` the
/// effective count tracks the stream count (the service's stateless
/// semantics) and every admission falls back to a full recomputation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RingSpec {
    /// Protocol the ring runs.
    pub protocol: ProtocolKind,
    /// Ring bandwidth in Mbps.
    pub mbps: f64,
    /// Ring stations; `None` tracks the stream count.
    pub stations: Option<usize>,
}

impl RingSpec {
    /// Validates the spec's numeric fields.
    ///
    /// # Errors
    ///
    /// [`RegistryError::InvalidSpec`] for a non-positive or non-finite
    /// bandwidth or a zero station count.
    pub fn validate(&self) -> Result<(), RegistryError> {
        if !(self.mbps.is_finite() && self.mbps > 0.0) {
            return Err(RegistryError::InvalidSpec {
                reason: format!("mbps must be positive, got {}", self.mbps),
            });
        }
        if self.stations == Some(0) {
            return Err(RegistryError::InvalidSpec {
                reason: "stations must be at least 1".to_owned(),
            });
        }
        Ok(())
    }

    /// Effective station count for a ring currently carrying `streams`
    /// streams: the pinned count, but never below the stream count
    /// (one sourcing station per stream).
    #[must_use]
    pub fn effective_stations(&self, streams: usize) -> usize {
        self.stations.unwrap_or(streams).max(streams).max(1)
    }

    /// The ring bandwidth as a typed quantity.
    #[must_use]
    pub fn bandwidth(&self) -> Bandwidth {
        Bandwidth::from_mbps(self.mbps)
    }
}

/// A stream registered under a client-chosen name.
#[derive(Debug, Clone, PartialEq)]
pub struct NamedStream {
    /// Registry-unique (per ring) stream name.
    pub name: String,
    /// The periodic message stream itself.
    pub stream: SyncStream,
}

/// The replayable state of one ring: its spec plus the admitted streams,
/// held in a columnar [`StreamStore`] whose admission order *is* station
/// order.
///
/// Equality compares the spec and the `(name, stream)` sequence in
/// admission order — physical row placement and sequence numbering inside
/// the store are ignored, so a journal-replayed state equals the live one.
#[derive(Debug, Clone, PartialEq)]
pub struct RingState {
    /// The ring's configuration.
    pub spec: RingSpec,
    /// Admitted streams, columnar with maintained indexes.
    pub store: StreamStore,
}

impl RingState {
    /// An empty ring with the given spec.
    #[must_use]
    pub fn new(spec: RingSpec) -> Self {
        RingState {
            spec,
            store: StreamStore::new(),
        }
    }

    /// Number of admitted streams.
    #[must_use]
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// `true` while the ring holds no streams.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Streams as `(name, stream)` pairs in admission (= station) order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, SyncStream)> + '_ {
        self.store.iter().map(|(_, name, stream)| (name, stream))
    }

    /// The admitted streams as a [`MessageSet`] (station order = admission
    /// order), or `None` while the ring is empty.
    #[must_use]
    pub fn message_set(&self) -> Option<MessageSet> {
        self.store
            .message_set()
            .expect("admitted streams are individually validated")
    }

    /// Station index of the named stream, if present (O(log n)).
    #[must_use]
    pub fn stream_index(&self, name: &str) -> Option<usize> {
        self.store.station_index(name)
    }
}

/// All rings by name. `BTreeMap` gives deterministic iteration for
/// snapshots and `SHOW`.
pub type Rings = BTreeMap<String, RingState>;

/// Maximum length of a ring or stream name.
pub const MAX_NAME_LEN: usize = 64;

/// Validates a ring or stream name: 1–[`MAX_NAME_LEN`] characters drawn
/// from `[A-Za-z0-9._-]`. The restriction keeps journal records and wire
/// responses unambiguous (no whitespace, `=`, `;`, `,`, or `:`).
///
/// # Errors
///
/// [`RegistryError::InvalidName`] describing the violation.
pub fn validate_name(name: &str) -> Result<(), RegistryError> {
    if name.is_empty() || name.len() > MAX_NAME_LEN {
        return Err(RegistryError::InvalidName {
            name: name.to_owned(),
            reason: "must be 1-64 characters",
        });
    }
    if !name
        .bytes()
        .all(|b| b.is_ascii_alphanumeric() || b == b'.' || b == b'_' || b == b'-')
    {
        return Err(RegistryError::InvalidName {
            name: name.to_owned(),
            reason: "allowed characters are A-Z a-z 0-9 . _ -",
        });
    }
    Ok(())
}

/// Everything that can go wrong talking to the registry.
#[derive(Debug, Clone, PartialEq)]
pub enum RegistryError {
    /// No ring with that name is registered.
    UnknownRing {
        /// The requested ring name.
        ring: String,
    },
    /// A ring with that name already exists.
    DuplicateRing {
        /// The conflicting ring name.
        ring: String,
    },
    /// The ring has no stream with that name.
    UnknownStream {
        /// The ring that was searched.
        ring: String,
        /// The missing stream name.
        stream: String,
    },
    /// The ring already has a stream with that name; admitting it again
    /// would silently shadow the existing one.
    DuplicateStream {
        /// The ring holding the conflict.
        ring: String,
        /// The conflicting stream name.
        stream: String,
    },
    /// A ring or stream name violates the naming rules.
    InvalidName {
        /// The offending name.
        name: String,
        /// What rule it broke.
        reason: &'static str,
    },
    /// A ring spec or stream parameter is out of range.
    InvalidSpec {
        /// What is wrong with it.
        reason: String,
    },
    /// The ring exists but holds no streams, so there is nothing to check.
    EmptyRing {
        /// The empty ring.
        ring: String,
    },
    /// Journal or snapshot I/O / integrity failure.
    Storage {
        /// What failed, with context.
        reason: String,
    },
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::UnknownRing { ring } => write!(f, "unknown ring `{ring}`"),
            RegistryError::DuplicateRing { ring } => {
                write!(f, "ring `{ring}` is already registered")
            }
            RegistryError::UnknownStream { ring, stream } => {
                write!(f, "unknown stream `{stream}` in ring `{ring}`")
            }
            RegistryError::DuplicateStream { ring, stream } => {
                write!(f, "duplicate stream `{stream}` in ring `{ring}`")
            }
            RegistryError::InvalidName { name, reason } => {
                write!(f, "invalid name `{name}`: {reason}")
            }
            RegistryError::InvalidSpec { reason } => write!(f, "invalid spec: {reason}"),
            RegistryError::EmptyRing { ring } => write!(f, "ring `{ring}` has no streams"),
            RegistryError::Storage { reason } => write!(f, "storage failure: {reason}"),
        }
    }
}

impl std::error::Error for RegistryError {}

#[cfg(test)]
mod tests {
    use super::*;
    use ringrt_units::{Bits, Seconds};

    #[test]
    fn protocol_tokens_round_trip() {
        for p in [
            ProtocolKind::Ieee8025,
            ProtocolKind::Modified,
            ProtocolKind::Fddi,
        ] {
            assert_eq!(ProtocolKind::parse(p.token()).unwrap(), p);
            assert_eq!(p.to_string(), p.token());
        }
        assert!(ProtocolKind::parse("atm").is_err());
        assert_eq!(ProtocolKind::default(), ProtocolKind::Modified);
    }

    #[test]
    fn effective_stations_floor() {
        let pinned = RingSpec {
            protocol: ProtocolKind::Fddi,
            mbps: 100.0,
            stations: Some(8),
        };
        assert_eq!(pinned.effective_stations(3), 8);
        assert_eq!(pinned.effective_stations(12), 12); // never below streams
        let auto = RingSpec {
            stations: None,
            ..pinned
        };
        assert_eq!(auto.effective_stations(0), 1);
        assert_eq!(auto.effective_stations(5), 5);
    }

    #[test]
    fn spec_validation() {
        let ok = RingSpec {
            protocol: ProtocolKind::Modified,
            mbps: 16.0,
            stations: None,
        };
        assert!(ok.validate().is_ok());
        assert!(RingSpec { mbps: 0.0, ..ok }.validate().is_err());
        assert!(RingSpec {
            mbps: f64::NAN,
            ..ok
        }
        .validate()
        .is_err());
        assert!(RingSpec {
            stations: Some(0),
            ..ok
        }
        .validate()
        .is_err());
    }

    #[test]
    fn name_rules() {
        assert!(validate_name("lab-ring.1_a").is_ok());
        assert!(validate_name("").is_err());
        assert!(validate_name("has space").is_err());
        assert!(validate_name("semi;colon").is_err());
        assert!(validate_name("k=v").is_err());
        assert!(validate_name(&"x".repeat(65)).is_err());
        assert!(validate_name(&"x".repeat(64)).is_ok());
    }

    #[test]
    fn ring_state_set_and_lookup() {
        let mut st = RingState::new(RingSpec {
            protocol: ProtocolKind::Modified,
            mbps: 16.0,
            stations: Some(4),
        });
        assert!(st.message_set().is_none());
        assert!(st.is_empty());
        st.store.admit(
            "a",
            SyncStream::new(Seconds::from_millis(20.0), Bits::new(1_000)),
        );
        st.store.admit(
            "b",
            SyncStream::new(Seconds::from_millis(40.0), Bits::new(2_000)),
        );
        let set = st.message_set().unwrap();
        assert_eq!(set.len(), 2);
        assert_eq!(st.len(), 2);
        assert_eq!(st.stream_index("b"), Some(1));
        assert_eq!(st.stream_index("c"), None);
        let names: Vec<&str> = st.iter().map(|(n, _)| n).collect();
        assert_eq!(names, ["a", "b"]);
    }

    #[test]
    fn error_messages_are_structured() {
        let e = RegistryError::DuplicateStream {
            ring: "lab".into(),
            stream: "s1".into(),
        };
        assert_eq!(e.to_string(), "duplicate stream `s1` in ring `lab`");
        assert!(RegistryError::UnknownRing { ring: "r".into() }
            .to_string()
            .contains("unknown ring"));
    }
}
