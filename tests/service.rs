//! End-to-end tests of the admission-control service (`ringrt-service`):
//! a real server on an ephemeral port, concurrent clients over TCP, and
//! the acceptance properties of the subsystem — verdict fidelity against
//! direct analyzer calls, cache behavior, load shedding, and graceful
//! shutdown.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use ringrt::analysis::pdp::{PdpAnalyzer, PdpVariant};
use ringrt::analysis::ttp::TtpAnalyzer;
use ringrt::analysis::SchedulabilityTest;
use ringrt::model::{parse_message_set, FrameFormat, RingConfig};
use ringrt::service::{spawn, ServerHandle, ServiceConfig};
use ringrt::units::Bandwidth;

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        let writer = stream.try_clone().expect("clone stream");
        Client {
            reader: BufReader::new(stream),
            writer,
        }
    }

    fn roundtrip(&mut self, line: &str) -> String {
        self.writer
            .write_all(format!("{line}\n").as_bytes())
            .expect("send request");
        let mut resp = String::new();
        self.reader.read_line(&mut resp).expect("read response");
        assert!(resp.ends_with('\n'), "truncated response: {resp:?}");
        resp.trim_end().to_owned()
    }
}

fn server(workers: usize, queue_depth: usize) -> ServerHandle {
    spawn(ServiceConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers,
        queue_depth,
        ..ServiceConfig::default()
    })
    .expect("spawn service")
}

/// Extracts `key=value` from a response line.
fn field<'a>(resp: &'a str, key: &str) -> &'a str {
    resp.split_whitespace()
        .find_map(|w| w.strip_prefix(&format!("{key}=")[..]))
        .unwrap_or_else(|| panic!("no field `{key}` in `{resp}`"))
}

/// The service's verdicts must equal direct analyzer calls — for a mix of
/// CHECK and SATURATION requests issued by 8 concurrent clients.
#[test]
fn concurrent_verdicts_match_direct_analysis() {
    // (protocol token, mbps, set text) — a mix of tight and loose sets.
    let cases: [(&str, f64, &str); 8] = [
        ("802.5", 16.0, "20,20000\n50,60000\n"),
        ("modified", 16.0, "20,20000\n50,60000\n100,120000\n"),
        ("fddi", 100.0, "20,200000\n50,500000\n"),
        ("802.5", 1.0, "10,60000\n10,60000\n"),
        ("modified", 4.0, "20,4000\n40,8000\n"),
        ("fddi", 100.0, "8,100000\n16,200000\n32,400000\n"),
        ("modified", 1.0, "10,30000\n10,30000\n"),
        ("802.5", 4.0, "50,10000\n100,20000\n200,40000\n"),
    ];
    let srv = server(4, 32);
    let addr = srv.addr();

    let handles: Vec<_> = cases
        .iter()
        .map(|&(proto, mbps, set_text)| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr);
                let inline = set_text.trim_end().replace('\n', ";");
                let check =
                    c.roundtrip(&format!("CHECK mbps={mbps} set={inline} protocol={proto}"));
                let sat = c.roundtrip(&format!(
                    "SATURATION mbps={mbps} set={inline} protocol={proto}"
                ));
                (proto, mbps, set_text, check, sat)
            })
        })
        .collect();

    for h in handles {
        let (proto, mbps, set_text, check, sat) = h.join().expect("client thread");
        let set = parse_message_set(set_text).unwrap();
        let bw = Bandwidth::from_mbps(mbps);
        let n = set.len();
        let expected = match proto {
            "802.5" => PdpAnalyzer::new(
                RingConfig::ieee_802_5(n, bw),
                FrameFormat::paper_default(),
                PdpVariant::Standard,
            )
            .is_schedulable(&set),
            "modified" => PdpAnalyzer::new(
                RingConfig::ieee_802_5(n, bw),
                FrameFormat::paper_default(),
                PdpVariant::Modified,
            )
            .is_schedulable(&set),
            "fddi" => TtpAnalyzer::with_defaults(RingConfig::fddi(n, bw)).is_schedulable(&set),
            other => panic!("unknown protocol {other}"),
        };
        assert!(check.starts_with("OK"), "{check}");
        assert_eq!(
            field(&check, "schedulable"),
            expected.to_string(),
            "CHECK verdict diverged for {proto} @ {mbps} Mbps: {check}"
        );
        // SATURATION reports the same verdict plus a boundary consistent
        // with it: schedulable sets have scale ≥ 1, unschedulable < 1.
        assert_eq!(field(&sat, "schedulable"), expected.to_string(), "{sat}");
        let scale: f64 = field(&sat, "scale").parse().unwrap();
        if expected {
            assert!(scale >= 1.0, "{sat}");
        } else {
            assert!(scale < 1.0, "{sat}");
        }
    }
    srv.join();
}

/// Repeating an identical request must be served from the cache, and STATS
/// must account for the hits.
#[test]
fn repeated_requests_hit_the_cache() {
    let srv = server(2, 16);
    let mut c = Client::connect(srv.addr());
    let req = "CHECK mbps=16 set=20,20000;50,60000 protocol=modified";
    let first = c.roundtrip(req);
    assert_eq!(field(&first, "cached"), "false", "{first}");
    for _ in 0..5 {
        let again = c.roundtrip(req);
        assert_eq!(field(&again, "cached"), "true", "{again}");
        // The cached verdict carries the same canonical fields.
        assert_eq!(field(&again, "schedulable"), field(&first, "schedulable"));
        assert_eq!(field(&again, "utilization"), field(&first, "utilization"));
    }
    // Stream order must not defeat the cache (keys are canonicalized).
    let reordered = c.roundtrip("CHECK mbps=16 set=50,60000;20,20000 protocol=modified");
    assert_eq!(field(&reordered, "cached"), "true", "{reordered}");

    let stats = c.roundtrip("STATS");
    let hits: u64 = field(&stats, "cache_hits").parse().unwrap();
    assert!(hits >= 6, "expected ≥6 cache hits, got {stats}");
    assert_eq!(field(&stats, "cache_entries"), "1", "{stats}");
    srv.join();
}

/// A full queue must shed load with an immediate BUSY — never a hang.
#[test]
fn full_queue_sheds_load_with_busy() {
    let srv = server(1, 1);
    let addr = srv.addr();
    // Occupy the only worker, then the only queue slot.
    let blocker = std::thread::spawn(move || {
        let mut c = Client::connect(addr);
        c.roundtrip("SLEEP ms=700")
    });
    std::thread::sleep(Duration::from_millis(200));
    let filler = std::thread::spawn(move || {
        let mut c = Client::connect(addr);
        c.roundtrip("SLEEP ms=100")
    });
    std::thread::sleep(Duration::from_millis(200));

    let mut c = Client::connect(addr);
    let start = std::time::Instant::now();
    let resp = c.roundtrip("SLEEP ms=1");
    assert!(resp.starts_with("BUSY"), "expected load shed, got {resp}");
    assert_eq!(field(&resp, "queue_capacity"), "1", "{resp}");
    assert!(
        start.elapsed() < Duration::from_millis(250),
        "BUSY took {:?} — the server blocked instead of shedding",
        start.elapsed()
    );

    // The work that was admitted still completes normally.
    assert_eq!(blocker.join().unwrap(), "OK cmd=sleep ms=700");
    assert_eq!(filler.join().unwrap(), "OK cmd=sleep ms=100");
    let stats = c.roundtrip("STATS");
    let busy: u64 = field(&stats, "busy").parse().unwrap();
    assert!(busy >= 1, "{stats}");
    srv.join();
}

/// Graceful shutdown answers all in-flight requests before the threads
/// exit, and stops accepting afterwards.
#[test]
fn graceful_shutdown_drains_in_flight_requests() {
    let srv = server(2, 8);
    let addr = srv.addr();
    // Two in-flight sleeps (one executing, one queued behind it per worker).
    let inflight: Vec<_> = (0..4)
        .map(|i| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr);
                c.roundtrip(&format!("SLEEP ms={}", 300 + i))
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(100));
    srv.shutdown();
    for (i, h) in inflight.into_iter().enumerate() {
        let resp = h.join().expect("in-flight client");
        assert_eq!(resp, format!("OK cmd=sleep ms={}", 300 + i), "client {i}");
    }
    srv.join();
    assert!(
        TcpStream::connect(addr).is_err(),
        "server still accepting after shutdown"
    );
}

/// The SHUTDOWN request behaves like ServerHandle::shutdown, remotely.
#[test]
fn shutdown_request_stops_the_server() {
    let srv = server(1, 4);
    let addr = srv.addr();
    let mut c = Client::connect(addr);
    assert!(c.roundtrip("PING").starts_with("OK"));
    assert_eq!(c.roundtrip("SHUTDOWN"), "OK cmd=shutdown");
    srv.join();
    assert!(TcpStream::connect(addr).is_err());
}

/// SIMULATE runs a bounded simulation and reports deadline outcomes that
/// agree with the analysis for a comfortably schedulable set.
#[test]
fn simulate_round_trip() {
    let srv = server(2, 8);
    let mut c = Client::connect(srv.addr());
    let resp =
        c.roundtrip("SIMULATE mbps=4 set=20,4000;40,8000 seconds=0.2 seed=3 protocol=modified");
    assert!(resp.starts_with("OK"), "{resp}");
    assert_eq!(field(&resp, "deadline_misses"), "0", "{resp}");
    let completed: u64 = field(&resp, "completed").parse().unwrap();
    assert!(completed > 0, "{resp}");
    // Overlong simulations are refused, not executed.
    let refused = c.roundtrip("SIMULATE mbps=4 set=20,4000 seconds=3600");
    assert!(refused.starts_with("ERR"), "{refused}");
    srv.join();
}
