//! The TCP server: acceptor, connection readers, bounded admission queue,
//! worker pool, and graceful shutdown.
//!
//! # Threading model
//!
//! ```text
//! acceptor ──spawns──▶ connection threads ──jobs──▶ bounded queue ──▶ workers
//!                          │    ▲                                       │
//!                          │    └──────────── mpsc reply ◀──────────────┘
//!                          └─ inline: PING / STATS / SHUTDOWN / cache hits
//! ```
//!
//! * Each connection gets a reader thread; cheap requests (PING, STATS,
//!   SHUTDOWN, malformed lines, cache hits) are answered inline without
//!   touching the queue.
//! * Analysis work is pushed onto a bounded queue. A full queue sheds load
//!   with an immediate `BUSY` line — the client is never left hanging.
//! * Workers pop jobs; a job that waited past its deadline is answered
//!   `ERR deadline expired` without being executed.
//! * Shutdown (`SHUTDOWN` request or [`ServerHandle::shutdown`]) stops the
//!   acceptor, lets workers **drain** everything already queued, and closes
//!   reader threads at their next poll tick — in-flight requests still get
//!   their answers.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::cache::{CacheKey, ResultCache};
use crate::engine;
use crate::metrics::Metrics;
use crate::protocol::{parse_request, CommandKind, Request};

/// How often blocked reads and the acceptor wake to check for shutdown.
const POLL_INTERVAL: Duration = Duration::from_millis(25);
/// Extra execution time a client allows beyond the queue deadline before
/// giving up on a reply.
const EXECUTION_GRACE: Duration = Duration::from_secs(60);

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Bind address, e.g. `127.0.0.1:7400` (port 0 picks an ephemeral one).
    pub addr: String,
    /// Worker threads executing analyses (min 1).
    pub workers: usize,
    /// Bounded queue depth; a full queue answers `BUSY` (min 1).
    pub queue_depth: usize,
    /// Default per-request queue deadline, milliseconds.
    pub default_deadline_ms: u64,
    /// Cap on the diagnostic `SLEEP` command, milliseconds.
    pub max_sleep_ms: u64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 4,
            queue_depth: 64,
            default_deadline_ms: 2_000,
            max_sleep_ms: 10_000,
        }
    }
}

/// One queued unit of work.
struct Job {
    request: Request,
    cache_key: Option<CacheKey>,
    reply: mpsc::Sender<String>,
    enqueued: Instant,
    deadline: Duration,
}

/// State shared by every thread of one server instance.
struct Shared {
    config: ServiceConfig,
    queue: Mutex<VecDeque<Job>>,
    queue_cv: Condvar,
    metrics: Metrics,
    cache: ResultCache,
    shutdown: AtomicBool,
    inflight: AtomicU64,
    started: Instant,
}

impl Shared {
    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.queue_cv.notify_all();
    }

    /// Pushes a job unless the queue is full; returns whether it was
    /// admitted. Jobs are still accepted during shutdown drain so
    /// already-connected clients finish cleanly.
    fn try_enqueue(&self, job: Job) -> bool {
        let mut q = self.queue.lock().expect("job queue poisoned");
        if q.len() >= self.config.queue_depth {
            return false;
        }
        q.push_back(job);
        drop(q);
        self.queue_cv.notify_one();
        true
    }

    fn queue_len(&self) -> usize {
        self.queue.lock().expect("job queue poisoned").len()
    }

    fn render_stats(&self) -> String {
        use std::fmt::Write as _;
        let m = &self.metrics;
        let mut out = format!(
            "OK cmd=stats uptime_ms={} requests={} ok={} errors={} busy={} deadline_expired={}",
            self.started.elapsed().as_millis(),
            m.requests.load(Ordering::Relaxed),
            m.ok.load(Ordering::Relaxed),
            m.errors.load(Ordering::Relaxed),
            m.busy.load(Ordering::Relaxed),
            m.deadline_expired.load(Ordering::Relaxed),
        );
        let _ = write!(
            out,
            " cache_hits={} cache_misses={} cache_entries={}",
            self.cache.hits(),
            self.cache.misses(),
            self.cache.entries(),
        );
        let _ = write!(
            out,
            " workers={} queue_capacity={} queue_len={} inflight={}",
            self.config.workers,
            self.config.queue_depth,
            self.queue_len(),
            self.inflight.load(Ordering::Relaxed),
        );
        m.render_latencies(&mut out);
        out
    }
}

/// A running server. Dropping the handle signals shutdown but does not
/// block; call [`ServerHandle::join`] to wait for a full drain.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signals graceful shutdown: stop accepting, drain the queue, answer
    /// everything in flight. Returns immediately.
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Signals shutdown and waits for every thread — acceptor, connection
    /// readers, workers — to finish.
    pub fn join(self) {
        self.shared.begin_shutdown();
        self.wait();
    }

    /// Waits (without signaling) until shutdown is triggered — by a client's
    /// `SHUTDOWN` request or a concurrent [`ServerHandle::shutdown`] — then
    /// drains every thread. This is how `ringrt serve` blocks.
    pub fn wait(mut self) {
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        // The acceptor has exited, so no new connection threads appear.
        let conns =
            std::mem::take(&mut *self.connections.lock().expect("connection list poisoned"));
        for c in conns {
            let _ = c.join();
        }
        for w in std::mem::take(&mut self.workers) {
            let _ = w.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shared.begin_shutdown();
    }
}

/// Binds the listener and spawns the acceptor and worker threads.
///
/// # Errors
///
/// Propagates the bind failure (address in use, permission, …).
pub fn spawn(mut config: ServiceConfig) -> std::io::Result<ServerHandle> {
    config.workers = config.workers.max(1);
    config.queue_depth = config.queue_depth.max(1);
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;

    let shared = Arc::new(Shared {
        config: config.clone(),
        queue: Mutex::new(VecDeque::new()),
        queue_cv: Condvar::new(),
        metrics: Metrics::new(),
        cache: ResultCache::new(),
        shutdown: AtomicBool::new(false),
        inflight: AtomicU64::new(0),
        started: Instant::now(),
    });

    let workers = (0..config.workers)
        .map(|i| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("ringrt-worker-{i}"))
                .spawn(move || worker_loop(&shared))
                .expect("spawn worker thread")
        })
        .collect();

    let connections = Arc::new(Mutex::new(Vec::new()));
    let acceptor = {
        let shared = Arc::clone(&shared);
        let connections = Arc::clone(&connections);
        std::thread::Builder::new()
            .name("ringrt-acceptor".to_owned())
            .spawn(move || accept_loop(&listener, &shared, &connections))
            .expect("spawn acceptor thread")
    };

    Ok(ServerHandle {
        addr,
        shared,
        acceptor: Some(acceptor),
        workers,
        connections,
    })
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    connections: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    let mut next_id = 0u64;
    while !shared.shutting_down() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let shared = Arc::clone(shared);
                let handle = std::thread::Builder::new()
                    .name(format!("ringrt-conn-{next_id}"))
                    .spawn(move || connection_loop(stream, &shared))
                    .expect("spawn connection thread");
                next_id += 1;
                connections
                    .lock()
                    .expect("connection list poisoned")
                    .push(handle);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_INTERVAL);
            }
            Err(_) => std::thread::sleep(POLL_INTERVAL),
        }
    }
}

fn connection_loop(stream: TcpStream, shared: &Arc<Shared>) {
    if stream.set_read_timeout(Some(POLL_INTERVAL)).is_err() {
        return;
    }
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        // `read_line` keeps partially read bytes in `line` across timeouts,
        // so clearing only after a complete line preserves slow writers.
        match reader.read_line(&mut line) {
            Ok(0) => return, // client closed
            Ok(_) => {
                let response = handle_line(line.trim_end(), shared);
                line.clear();
                let stop = matches!(response, Response::Close);
                let text = response.into_text();
                shared.metrics.count_response(&text);
                if writer
                    .write_all(format!("{text}\n").as_bytes())
                    .and_then(|()| writer.flush())
                    .is_err()
                {
                    return;
                }
                if stop {
                    return;
                }
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if shared.shutting_down() {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

/// A response line plus whether the connection should close after it.
enum Response {
    Line(String),
    Close,
}

impl Response {
    fn into_text(self) -> String {
        match self {
            Response::Line(s) => s,
            Response::Close => "OK cmd=shutdown".to_owned(),
        }
    }
}

fn handle_line(line: &str, shared: &Arc<Shared>) -> Response {
    shared.metrics.requests.fetch_add(1, Ordering::Relaxed);
    let request = match parse_request(line) {
        Ok(r) => r,
        Err(msg) => return Response::Line(format!("ERR {msg}")),
    };
    match request {
        Request::Ping => Response::Line("OK cmd=ping".to_owned()),
        Request::Stats => Response::Line(shared.render_stats()),
        Request::Shutdown => {
            shared.begin_shutdown();
            Response::Close
        }
        Request::Sleep { ms, deadline_ms } => {
            let started = Instant::now();
            let text = dispatch(
                shared,
                Request::Sleep { ms, deadline_ms },
                None,
                deadline_ms,
            );
            record_completed(shared, CommandKind::Sleep, started, &text);
            Response::Line(text)
        }
        Request::Analysis(req) => {
            let started = Instant::now();
            let command = req.command;
            let deadline_ms = req.deadline_ms;
            let key = CacheKey::for_request(&req);
            if let Some(k) = &key {
                if let Some(body) = shared.cache.get(k) {
                    shared.metrics.record_latency(command, started.elapsed());
                    return Response::Line(format!("{body} cached=true"));
                }
            }
            let text = dispatch(shared, Request::Analysis(req), key, deadline_ms);
            record_completed(shared, command, started, &text);
            Response::Line(text)
        }
    }
}

/// Records latency only for completed (`OK`) requests, so BUSY fast-rejects
/// and errors do not skew the per-command histograms.
fn record_completed(shared: &Arc<Shared>, command: CommandKind, started: Instant, text: &str) {
    if text.starts_with("OK") {
        shared.metrics.record_latency(command, started.elapsed());
    }
}

/// Queues a job and waits for the worker's reply; sheds load when full.
fn dispatch(
    shared: &Arc<Shared>,
    request: Request,
    cache_key: Option<CacheKey>,
    deadline_ms: Option<u64>,
) -> String {
    let deadline = Duration::from_millis(deadline_ms.unwrap_or(shared.config.default_deadline_ms));
    let (reply, rx) = mpsc::channel();
    let job = Job {
        request,
        cache_key,
        reply,
        enqueued: Instant::now(),
        deadline,
    };
    if !shared.try_enqueue(job) {
        return format!("BUSY queue_capacity={}", shared.config.queue_depth);
    }
    match rx.recv_timeout(deadline + EXECUTION_GRACE) {
        Ok(text) => text,
        Err(_) => "ERR request lost (worker gave no reply)".to_owned(),
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let job = {
            let mut q = shared.queue.lock().expect("job queue poisoned");
            loop {
                if let Some(job) = q.pop_front() {
                    break job;
                }
                if shared.shutting_down() {
                    return; // queue drained, shutdown requested
                }
                q = shared.queue_cv.wait(q).expect("job queue poisoned");
            }
        };
        if job.enqueued.elapsed() > job.deadline {
            shared
                .metrics
                .deadline_expired
                .fetch_add(1, Ordering::Relaxed);
            let _ = job.reply.send(format!(
                "ERR deadline expired after {} ms in queue",
                job.enqueued.elapsed().as_millis()
            ));
            continue;
        }
        shared.inflight.fetch_add(1, Ordering::Relaxed);
        let text = run_job(&job, shared);
        shared.inflight.fetch_sub(1, Ordering::Relaxed);
        let _ = job.reply.send(text);
    }
}

fn run_job(job: &Job, shared: &Arc<Shared>) -> String {
    match &job.request {
        Request::Sleep { ms, .. } => {
            let ms = (*ms).min(shared.config.max_sleep_ms);
            std::thread::sleep(Duration::from_millis(ms));
            format!("OK cmd=sleep ms={ms}")
        }
        Request::Analysis(req) => {
            let body = engine::execute(req);
            if !body.starts_with("OK") {
                return body;
            }
            if let Some(key) = &job.cache_key {
                shared.cache.insert(key.clone(), body.clone());
            }
            format!("{body} cached=false")
        }
        other => format!("ERR internal: non-queueable request {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufRead;

    struct Client {
        reader: BufReader<TcpStream>,
        writer: TcpStream,
    }

    impl Client {
        fn connect(addr: SocketAddr) -> Client {
            let stream = TcpStream::connect(addr).expect("connect");
            let writer = stream.try_clone().expect("clone");
            Client {
                reader: BufReader::new(stream),
                writer,
            }
        }

        fn roundtrip(&mut self, line: &str) -> String {
            self.writer
                .write_all(format!("{line}\n").as_bytes())
                .expect("send");
            let mut resp = String::new();
            self.reader.read_line(&mut resp).expect("recv");
            resp.trim_end().to_owned()
        }
    }

    fn test_server(workers: usize, queue_depth: usize) -> ServerHandle {
        spawn(ServiceConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers,
            queue_depth,
            ..ServiceConfig::default()
        })
        .expect("spawn server")
    }

    #[test]
    fn ping_and_malformed_lines() {
        let server = test_server(1, 4);
        let mut c = Client::connect(server.addr());
        assert_eq!(c.roundtrip("PING"), "OK cmd=ping");
        assert!(c.roundtrip("NONSENSE").starts_with("ERR"));
        assert!(c.roundtrip("").starts_with("ERR"));
        server.join();
    }

    #[test]
    fn check_roundtrip_and_cache() {
        let server = test_server(2, 8);
        let mut c = Client::connect(server.addr());
        let first = c.roundtrip("CHECK mbps=16 set=20,20000;50,60000");
        assert!(first.contains("schedulable=true"), "{first}");
        assert!(first.ends_with("cached=false"), "{first}");
        let second = c.roundtrip("CHECK mbps=16 set=50,60000;20,20000"); // reordered
        assert!(second.ends_with("cached=true"), "{second}");
        let stats = c.roundtrip("STATS");
        assert!(stats.contains("cache_hits=1"), "{stats}");
        assert!(stats.contains("cache_entries=1"), "{stats}");
        server.join();
    }

    #[test]
    fn busy_when_queue_full() {
        let server = test_server(1, 1);
        let addr = server.addr();
        // Occupy the single worker…
        let blocker = std::thread::spawn(move || {
            let mut c = Client::connect(addr);
            c.roundtrip("SLEEP ms=600")
        });
        std::thread::sleep(Duration::from_millis(150));
        // …fill the one queue slot…
        let filler = std::thread::spawn(move || {
            let mut c = Client::connect(addr);
            c.roundtrip("SLEEP ms=100")
        });
        std::thread::sleep(Duration::from_millis(150));
        // …and the next request must be shed, not left hanging.
        let mut c = Client::connect(addr);
        let resp = c.roundtrip("SLEEP ms=1");
        assert!(resp.starts_with("BUSY"), "{resp}");
        assert!(resp.contains("queue_capacity=1"), "{resp}");
        assert_eq!(blocker.join().unwrap(), "OK cmd=sleep ms=600");
        assert_eq!(filler.join().unwrap(), "OK cmd=sleep ms=100");
        let stats = c.roundtrip("STATS");
        assert!(stats.contains("busy=1"), "{stats}");
        server.join();
    }

    #[test]
    fn graceful_shutdown_answers_in_flight_work() {
        let server = test_server(1, 4);
        let addr = server.addr();
        let inflight = std::thread::spawn(move || {
            let mut c = Client::connect(addr);
            c.roundtrip("SLEEP ms=300")
        });
        std::thread::sleep(Duration::from_millis(100));
        server.shutdown();
        assert_eq!(inflight.join().unwrap(), "OK cmd=sleep ms=300");
        server.join();
    }

    #[test]
    fn shutdown_command_closes_and_stops_accepting() {
        let server = test_server(1, 4);
        let addr = server.addr();
        let mut c = Client::connect(addr);
        assert_eq!(c.roundtrip("SHUTDOWN"), "OK cmd=shutdown");
        server.join();
        assert!(TcpStream::connect(addr).is_err(), "still accepting");
    }

    #[test]
    fn deadline_expires_in_queue() {
        let server = test_server(1, 4);
        let addr = server.addr();
        let blocker = std::thread::spawn(move || {
            let mut c = Client::connect(addr);
            c.roundtrip("SLEEP ms=300")
        });
        std::thread::sleep(Duration::from_millis(100));
        let mut c = Client::connect(addr);
        let resp = c.roundtrip("CHECK mbps=16 set=20,20000 deadline_ms=50");
        assert!(resp.starts_with("ERR deadline expired"), "{resp}");
        blocker.join().unwrap();
        let stats = c.roundtrip("STATS");
        assert!(stats.contains("deadline_expired=1"), "{stats}");
        server.join();
    }
}
