//! Request execution: maps a parsed [`AnalysisRequest`] onto the analysis
//! kernels and renders the response body.
//!
//! Kept free of any server state so the verdict logic is unit-testable and
//! provably identical to calling the analyzers directly — the service
//! integration tests rely on that equivalence.

use std::fmt::Write as _;

use ringrt_breakdown::SaturationSearch;
use ringrt_core::pdp::{PdpAnalyzer, PdpVariant};
use ringrt_core::ttp::TtpAnalyzer;
use ringrt_core::SchedulabilityTest;
use ringrt_model::{FrameFormat, MessageSet, RingConfig};
use ringrt_sim::{PdpSimulator, Phasing, SimConfig, TtpSimulator};
use ringrt_units::{Bandwidth, Seconds};

use crate::protocol::{AnalysisRequest, CommandKind, ProtocolKind};

/// Hard cap on SIMULATE length; requests beyond it are rejected so a single
/// client cannot pin a worker for minutes.
pub const MAX_SIM_SECONDS: f64 = 5.0;

fn analyzer_for(
    protocol: ProtocolKind,
    stations: usize,
    bw: Bandwidth,
) -> Box<dyn SchedulabilityTest> {
    match protocol {
        ProtocolKind::Ieee8025 => Box::new(PdpAnalyzer::new(
            RingConfig::ieee_802_5(stations, bw),
            FrameFormat::paper_default(),
            PdpVariant::Standard,
        )),
        ProtocolKind::Modified => Box::new(PdpAnalyzer::new(
            RingConfig::ieee_802_5(stations, bw),
            FrameFormat::paper_default(),
            PdpVariant::Modified,
        )),
        ProtocolKind::Fddi => Box::new(TtpAnalyzer::with_defaults(RingConfig::fddi(stations, bw))),
    }
}

/// Runs one analysis request to completion and renders the response body.
///
/// The body uses the same canonical field names as `ringrt check
/// --format csv` (`protocol`, `mbps`, `stations`, `streams`,
/// `utilization`, `schedulable`); the server appends `cached=…` before
/// sending.
#[must_use]
pub fn execute(req: &AnalysisRequest) -> String {
    let bw = Bandwidth::from_mbps(req.mbps);
    let stations = req.effective_stations();
    let set = &req.set;
    let mut body = format!(
        "OK cmd={} protocol={} mbps={} stations={stations} streams={} utilization={:.6}",
        req.command.token(),
        req.protocol,
        req.mbps,
        set.len(),
        set.utilization(bw),
    );
    match req.command {
        CommandKind::Check => {
            let verdict = analyzer_for(req.protocol, stations, bw).is_schedulable(set);
            let _ = write!(body, " schedulable={verdict}");
        }
        CommandKind::Saturation => {
            let analyzer = analyzer_for(req.protocol, stations, bw);
            let verdict = analyzer.is_schedulable(set);
            let _ = write!(body, " schedulable={verdict}");
            match SaturationSearch::default().saturate(analyzer.as_ref(), set, bw) {
                Some(sat) => {
                    let _ = write!(
                        body,
                        " scale={:.6} breakdown_util={:.6}",
                        sat.scale, sat.utilization
                    );
                }
                None => {
                    let _ = write!(body, " scale=nan breakdown_util=nan");
                }
            }
        }
        CommandKind::Simulate => match simulate(req, set, bw, stations) {
            Ok(extra) => body.push_str(&extra),
            Err(msg) => return format!("ERR {msg}"),
        },
        CommandKind::Sleep => unreachable!("SLEEP is not an analysis command"),
    }
    body
}

fn simulate(
    req: &AnalysisRequest,
    set: &MessageSet,
    bw: Bandwidth,
    stations: usize,
) -> Result<String, String> {
    if req.seconds > MAX_SIM_SECONDS {
        return Err(format!(
            "seconds={} exceeds the server limit of {MAX_SIM_SECONDS}",
            req.seconds
        ));
    }
    let config = SimConfig::new(
        ring_for(req.protocol, stations, bw),
        Seconds::new(req.seconds),
    )
    .with_phasing(Phasing::Synchronized)
    .with_async_load(req.async_load)
    .with_seed(req.seed);
    let report = match req.protocol {
        ProtocolKind::Ieee8025 => PdpSimulator::new(
            set,
            config,
            FrameFormat::paper_default(),
            PdpVariant::Standard,
        )
        .run(),
        ProtocolKind::Modified => PdpSimulator::new(
            set,
            config,
            FrameFormat::paper_default(),
            PdpVariant::Modified,
        )
        .run(),
        ProtocolKind::Fddi => TtpSimulator::from_analysis(set, config)
            .map_err(|e| format!("FDDI cannot allocate synchronous bandwidth: {e}"))?
            .run(),
    };
    Ok(format!(
        " seconds={} seed={} schedulable={} completed={} deadline_misses={} \
         medium_utilization={:.6} events={}",
        req.seconds,
        req.seed,
        report.all_deadlines_met(),
        report.completed(),
        report.deadline_misses(),
        report.medium_utilization,
        report.events,
    ))
}

fn ring_for(protocol: ProtocolKind, stations: usize, bw: Bandwidth) -> RingConfig {
    match protocol {
        ProtocolKind::Ieee8025 | ProtocolKind::Modified => RingConfig::ieee_802_5(stations, bw),
        ProtocolKind::Fddi => RingConfig::fddi(stations, bw),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{parse_request, Request};

    fn exec(line: &str) -> String {
        match parse_request(line).unwrap() {
            Request::Analysis(a) => execute(&a),
            other => panic!("not an analysis request: {other:?}"),
        }
    }

    #[test]
    fn check_matches_direct_analyzer_call() {
        let set = ringrt_model::parse_message_set("20, 20000\n50, 60000\n").unwrap();
        let bw = Bandwidth::from_mbps(16.0);
        let direct = PdpAnalyzer::new(
            RingConfig::ieee_802_5(2, bw),
            FrameFormat::paper_default(),
            PdpVariant::Modified,
        )
        .is_schedulable(&set);
        let body = exec("CHECK mbps=16 set=20,20000;50,60000 protocol=modified");
        assert!(body.contains(&format!("schedulable={direct}")), "{body}");
        assert!(
            body.starts_with("OK cmd=check protocol=modified mbps=16 stations=2"),
            "{body}"
        );
    }

    #[test]
    fn saturation_reports_boundary() {
        let body = exec("SATURATION mbps=100 set=20,20000;50,60000 protocol=fddi");
        assert!(body.contains(" scale="), "{body}");
        assert!(body.contains(" breakdown_util="), "{body}");
        let scale: f64 = body
            .split(" scale=")
            .nth(1)
            .unwrap()
            .split_whitespace()
            .next()
            .unwrap()
            .parse()
            .unwrap();
        // This light set at 100 Mbps has lots of headroom.
        assert!(scale > 1.0, "{body}");
    }

    #[test]
    fn simulate_runs_and_reports() {
        let body = exec("SIMULATE mbps=4 set=20,4000;40,8000 seconds=0.2 seed=7");
        assert!(body.contains(" completed="), "{body}");
        assert!(body.contains(" deadline_misses=0"), "{body}");
        assert!(body.contains(" seed=7"), "{body}");
    }

    #[test]
    fn simulate_rejects_overlong_runs() {
        let body = exec("SIMULATE mbps=4 set=20,4000 seconds=3600");
        assert!(body.starts_with("ERR"), "{body}");
        assert!(body.contains("server limit"), "{body}");
    }

    #[test]
    fn unschedulable_set_says_so() {
        // 120 % utilization at 1 Mbps: hopeless.
        let body = exec("CHECK mbps=1 set=10,60000;10,60000");
        assert!(body.contains("schedulable=false"), "{body}");
    }
}
