//! Sharded, canonicalizing result cache.
//!
//! Admission checks are pure functions of (message set, ring config,
//! protocol), so identical requests — a common pattern when clients retry
//! or several front-ends ask about the same set — can be answered without
//! re-running the analysis. Keys canonicalize the message set by *sorting*
//! the streams, so two requests that list the same streams in different
//! order hit the same entry.
//!
//! The map is split into [`SHARDS`] independently locked shards (hash of
//! the key picks the shard) so concurrent workers and connection threads
//! rarely contend on the same mutex.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::protocol::{AnalysisRequest, CommandKind, ProtocolKind};

/// Number of independently locked shards. Power of two, comfortably above
/// any realistic worker count.
pub const SHARDS: usize = 16;

/// A canonical description of an analysis request.
///
/// Floats are compared by their IEEE-754 bit patterns: requests must be
/// *literally* identical (after stream reordering) to share an entry,
/// which is exactly the semantics a result cache needs — no epsilon
/// surprises.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    command: CommandKind,
    protocol: ProtocolKind,
    mbps_bits: u64,
    stations: usize,
    /// `(period seconds as bits, payload bits)` per stream, sorted.
    streams: Vec<(u64, u64)>,
    /// SIMULATE-only parameters; zeroed for the analytic commands so that
    /// e.g. a CHECK and a SATURATION of the same set stay distinct only
    /// via `command`.
    sim: (u64, u64, u64),
}

impl CommandKind {
    fn cacheable(self) -> bool {
        !matches!(self, CommandKind::Sleep)
    }
}

impl CacheKey {
    /// Builds the canonical key for a request, or `None` if the command's
    /// results are not cacheable.
    #[must_use]
    pub fn for_request(req: &AnalysisRequest) -> Option<CacheKey> {
        if !req.command.cacheable() {
            return None;
        }
        let mut streams: Vec<(u64, u64)> = req
            .set
            .as_slice()
            .iter()
            .map(|s| (s.period().as_secs_f64().to_bits(), s.length_bits().as_u64()))
            .collect();
        streams.sort_unstable();
        let sim = if req.command == CommandKind::Simulate {
            (req.seconds.to_bits(), req.async_load.to_bits(), req.seed)
        } else {
            (0, 0, 0)
        };
        Some(CacheKey {
            command: req.command,
            protocol: req.protocol,
            mbps_bits: req.mbps.to_bits(),
            stations: req.effective_stations(),
            streams,
            sim,
        })
    }

    fn shard(&self) -> usize {
        let mut h = DefaultHasher::new();
        self.hash(&mut h);
        (h.finish() as usize) % SHARDS
    }
}

/// The sharded verdict cache with hit/miss accounting.
#[derive(Debug)]
pub struct ResultCache {
    shards: Vec<Mutex<HashMap<CacheKey, String>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ResultCache {
    /// Creates an empty cache.
    #[must_use]
    pub fn new() -> Self {
        ResultCache {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Looks up a cached response body, counting the hit or miss.
    #[must_use]
    pub fn get(&self, key: &CacheKey) -> Option<String> {
        let shard = self.shards[key.shard()]
            .lock()
            .expect("cache shard poisoned");
        let found = shard.get(key).cloned();
        drop(shard);
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Stores a successful response body.
    pub fn insert(&self, key: CacheKey, body: String) {
        let mut shard = self.shards[key.shard()]
            .lock()
            .expect("cache shard poisoned");
        shard.insert(key, body);
    }

    /// Cache hits so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of distinct entries currently stored.
    #[must_use]
    pub fn entries(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").len())
            .sum()
    }
}

impl Default for ResultCache {
    fn default() -> Self {
        ResultCache::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{parse_request, Request};

    fn key_of(line: &str) -> Option<CacheKey> {
        match parse_request(line).unwrap() {
            Request::Analysis(a) => CacheKey::for_request(&a),
            other => panic!("not an analysis request: {other:?}"),
        }
    }

    #[test]
    fn stream_order_is_canonicalized() {
        let a = key_of("CHECK mbps=16 set=20,1000;50,2000").unwrap();
        let b = key_of("CHECK mbps=16 set=50,2000;20,1000").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_parameters_differ() {
        let base = key_of("CHECK mbps=16 set=20,1000").unwrap();
        assert_ne!(base, key_of("CHECK mbps=4 set=20,1000").unwrap());
        assert_ne!(base, key_of("CHECK mbps=16 set=20,1001").unwrap());
        assert_ne!(
            base,
            key_of("CHECK mbps=16 set=20,1000 protocol=fddi").unwrap()
        );
        assert_ne!(
            base,
            key_of("CHECK mbps=16 set=20,1000 stations=9").unwrap()
        );
        assert_ne!(base, key_of("SATURATION mbps=16 set=20,1000").unwrap());
    }

    #[test]
    fn simulate_keys_include_sim_parameters() {
        let a = key_of("SIMULATE mbps=16 set=20,1000 seed=1").unwrap();
        let b = key_of("SIMULATE mbps=16 set=20,1000 seed=2").unwrap();
        let c = key_of("SIMULATE mbps=16 set=20,1000 seconds=0.25").unwrap();
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn deadline_does_not_affect_key() {
        let a = key_of("CHECK mbps=16 set=20,1000").unwrap();
        let b = key_of("CHECK mbps=16 set=20,1000 deadline_ms=5").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn hit_miss_accounting() {
        let cache = ResultCache::new();
        let key = key_of("CHECK mbps=16 set=20,1000").unwrap();
        assert_eq!(cache.get(&key), None);
        cache.insert(key.clone(), "schedulable=true".into());
        assert_eq!(cache.get(&key).as_deref(), Some("schedulable=true"));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.entries(), 1);
    }
}
