//! The Theorem 4.1 schedulability test for the priority-driven protocol.

use core::fmt;

use ringrt_model::{FrameFormat, MessageSet, RingConfig, SetView, StreamId};
use ringrt_units::Seconds;

use crate::rm::{self, RmTask};
use crate::SchedulabilityTest;

use super::levels::{is_schedulable_quantized, quantize_ranks, quantized_response_time};
use super::{augmented_length, blocking_bound, PdpVariant};

/// Schedulability analyzer for the priority-driven protocol
/// (paper Theorem 4.1).
///
/// Messages are assigned rate-monotonic priorities (shorter period = higher
/// priority); each message's augmented length `C'_i` folds in the protocol
/// overheads of the chosen [`PdpVariant`], and the blocking bound
/// `B = 2·max(F, Θ)` covers priority inversion from lower-priority and
/// asynchronous frames.
///
/// # Examples
///
/// ```
/// use ringrt_core::pdp::{PdpAnalyzer, PdpVariant};
/// use ringrt_core::SchedulabilityTest;
/// use ringrt_model::{FrameFormat, MessageSet, RingConfig, SyncStream};
/// use ringrt_units::{Bandwidth, Bits, Seconds};
///
/// let ring = RingConfig::ieee_802_5(3, Bandwidth::from_mbps(4.0));
/// let pdp = PdpAnalyzer::new(ring, FrameFormat::paper_default(), PdpVariant::Modified);
/// let set = MessageSet::new(vec![
///     SyncStream::new(Seconds::from_millis(20.0), Bits::new(8_000)),
///     SyncStream::new(Seconds::from_millis(40.0), Bits::new(16_000)),
///     SyncStream::new(Seconds::from_millis(80.0), Bits::new(32_000)),
/// ])?;
/// let report = pdp.analyze(&set);
/// assert!(report.schedulable);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PdpAnalyzer {
    ring: RingConfig,
    frame: FrameFormat,
    variant: PdpVariant,
    /// Hardware priority levels available for arbitration; `None` models
    /// the paper's idealized one-level-per-stream assumption.
    priority_levels: Option<usize>,
}

impl PdpAnalyzer {
    /// Creates an analyzer for the given ring, frame format, and protocol
    /// variant.
    #[must_use]
    pub fn new(ring: RingConfig, frame: FrameFormat, variant: PdpVariant) -> Self {
        PdpAnalyzer {
            ring,
            frame,
            variant,
            priority_levels: None,
        }
    }

    /// Returns a copy restricted to `levels` hardware priority classes
    /// (IEEE 802.5 provides 8). Streams are mapped onto levels in
    /// deadline-monotonic order, as evenly as possible; same-level streams
    /// cannot preempt each other and are charged as mutual interference.
    ///
    /// # Panics
    ///
    /// Panics if `levels` is zero.
    #[must_use]
    pub fn with_priority_levels(mut self, levels: usize) -> Self {
        assert!(levels > 0, "need at least one priority level");
        self.priority_levels = Some(levels);
        self
    }

    /// The hardware priority-level limit, if any.
    #[must_use]
    pub fn priority_levels(&self) -> Option<usize> {
        self.priority_levels
    }

    /// The ring configuration under analysis.
    #[must_use]
    pub fn ring(&self) -> &RingConfig {
        &self.ring
    }

    /// The frame format under analysis.
    #[must_use]
    pub fn frame(&self) -> &FrameFormat {
        &self.frame
    }

    /// The protocol variant under analysis.
    #[must_use]
    pub fn variant(&self) -> PdpVariant {
        self.variant
    }

    /// The blocking bound `B = 2·max(F, Θ)` for this configuration.
    #[must_use]
    pub fn blocking(&self) -> Seconds {
        blocking_bound(&self.ring, &self.frame)
    }

    /// Builds the fixed-priority task view of `set`: augmented costs in
    /// deadline-monotonic priority order (rate-monotonic for the paper's
    /// implicit-deadline sets), together with the permutation of station
    /// indices.
    fn rm_view(&self, set: &MessageSet) -> (Vec<RmTask>, Vec<usize>) {
        let order = set.dm_order();
        let tasks = order
            .iter()
            .map(|&i| {
                let s = set.stream(StreamId(i));
                RmTask::with_deadline(
                    augmented_length(s, &self.ring, &self.frame, self.variant),
                    s.period(),
                    s.relative_deadline(),
                )
            })
            .collect();
        (tasks, order)
    }

    /// The quantized level of each task (in priority order), or one level
    /// per task when unrestricted.
    fn level_map(&self, n: usize) -> Vec<usize> {
        match self.priority_levels {
            Some(k) => quantize_ranks(n, k),
            None => (0..n).collect(),
        }
    }

    /// Full diagnostic analysis of a message set under Theorem 4.1.
    #[must_use]
    pub fn analyze(&self, set: &MessageSet) -> PdpReport {
        let (tasks, order) = self.rm_view(set);
        let blocking = self.blocking();
        let levels = self.level_map(tasks.len());
        let response: Vec<Option<Seconds>> = if self.priority_levels.is_some() {
            (0..tasks.len())
                .map(|i| quantized_response_time(&tasks, &levels, i, blocking))
                .collect()
        } else {
            rm::response_times(&tasks, blocking)
        };

        let mut per_stream: Vec<PdpStreamReport> = Vec::with_capacity(tasks.len());
        for (rank, (&station, task)) in order.iter().zip(&tasks).enumerate() {
            per_stream.push(PdpStreamReport {
                stream: StreamId(station),
                priority_rank: rank,
                augmented_cost: task.cost,
                response_time: response[rank],
                schedulable: response[rank].is_some(),
            });
        }
        let schedulable = per_stream.iter().all(|s| s.schedulable);
        PdpReport {
            variant: self.variant,
            blocking,
            per_stream,
            schedulable,
        }
    }

    /// Verdict via the literal scheduling-point form of Theorem 4.1
    /// (equation 4). Slower than [`SchedulabilityTest::is_schedulable`]
    /// (which uses response-time analysis) but textually faithful to the
    /// paper; the two verdicts always agree.
    #[must_use]
    pub fn is_schedulable_by_points(&self, set: &MessageSet) -> bool {
        let (tasks, _) = self.rm_view(set);
        rm::is_schedulable_points(&tasks, self.blocking())
    }

    /// Deadline-monotonic rank (0 = highest priority) of `stream` in `set`.
    ///
    /// # Panics
    ///
    /// Panics if `stream` is out of range for `set`.
    #[must_use]
    pub fn priority_rank(&self, set: &MessageSet, stream: StreamId) -> usize {
        assert!(stream.0 < set.len(), "stream index out of range");
        set.dm_order()
            .iter()
            .position(|&i| i == stream.0)
            .expect("dm_order is a permutation")
    }

    /// Response-time verdict restricted to deadline-monotonic ranks
    /// `from_rank..n`, counting fixed-point demand evaluations.
    ///
    /// Admitting a stream leaves every higher-priority stream's response
    /// time untouched (interference only flows downward and the blocking
    /// bound is configuration-only), so an admission engine that knows the
    /// previous set was schedulable only needs to re-test from the new
    /// stream's rank on — the Lehoczky scheduling-point structure of
    /// Theorem 4.1. `from_rank = 0` is a full check; its verdict equals
    /// [`SchedulabilityTest::is_schedulable`].
    ///
    /// # Panics
    ///
    /// Panics if `from_rank >= set.len()`, or if this analyzer restricts
    /// hardware priority levels (quantized levels couple streams across
    /// ranks, so partial re-tests would be unsound).
    #[must_use]
    pub fn check_from_rank(&self, set: &MessageSet, from_rank: usize) -> CountedCheck {
        assert!(from_rank < set.len(), "from_rank out of range");
        let (tasks, _) = self.rm_view(set);
        self.check_tasks_from_rank(tasks, from_rank)
    }

    /// [`PdpAnalyzer::check_from_rank`] over a [`SetView`], without
    /// materializing a `MessageSet`. Bit-identical to the set path when the
    /// view iterates the same streams: the tasks are built from
    /// [`SetView::dm_streams`] (the same deadline-monotonic order
    /// `rm_view` sorts into), so the utilization quick-check and every
    /// fixed-point iteration perform the same float operations in the same
    /// order.
    ///
    /// # Panics
    ///
    /// Same contract as [`PdpAnalyzer::check_from_rank`].
    #[must_use]
    pub fn check_from_rank_view(&self, view: &dyn SetView, from_rank: usize) -> CountedCheck {
        assert!(from_rank < view.view_len(), "from_rank out of range");
        let tasks: Vec<RmTask> = view
            .dm_streams()
            .map(|s| {
                RmTask::with_deadline(
                    augmented_length(&s, &self.ring, &self.frame, self.variant),
                    s.period(),
                    s.relative_deadline(),
                )
            })
            .collect();
        self.check_tasks_from_rank(tasks, from_rank)
    }

    fn check_tasks_from_rank(&self, tasks: Vec<RmTask>, from_rank: usize) -> CountedCheck {
        assert!(
            self.priority_levels.is_none(),
            "counted partial checks require the unquantized analyzer"
        );
        // Same quick necessary condition as `rm::is_schedulable_rta`: the
        // lowest-priority task (always within any suffix) diverges when
        // utilization exceeds 1.
        let u: f64 = tasks.iter().map(RmTask::utilization).sum();
        if u > 1.0 + 1e-9 {
            return CountedCheck {
                schedulable: false,
                evaluations: 0,
            };
        }
        let blocking = self.blocking();
        let mut evaluations = 0u64;
        for i in from_rank..tasks.len() {
            let (response, evals) = rm::response_time_counted(&tasks, i, blocking);
            evaluations += evals;
            if response.is_none() {
                return CountedCheck {
                    schedulable: false,
                    evaluations,
                };
            }
        }
        CountedCheck {
            schedulable: true,
            evaluations,
        }
    }
}

/// Outcome of a counted (possibly partial) response-time check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CountedCheck {
    /// Whether every tested rank meets its deadline.
    pub schedulable: bool,
    /// Fixed-point demand evaluations performed.
    pub evaluations: u64,
}

impl SchedulabilityTest for PdpAnalyzer {
    fn is_schedulable(&self, set: &MessageSet) -> bool {
        let (tasks, _) = self.rm_view(set);
        match self.priority_levels {
            Some(_) => {
                let levels = self.level_map(tasks.len());
                is_schedulable_quantized(&tasks, &levels, self.blocking())
            }
            None => rm::is_schedulable_rta(&tasks, self.blocking()),
        }
    }

    fn protocol_name(&self) -> &'static str {
        self.variant.label()
    }
}

/// Diagnostic output of [`PdpAnalyzer::analyze`].
#[derive(Debug, Clone, PartialEq)]
pub struct PdpReport {
    /// Variant that was analyzed.
    pub variant: PdpVariant,
    /// Blocking bound `B = 2·max(F, Θ)` applied to every stream.
    pub blocking: Seconds,
    /// Per-stream verdicts, in rate-monotonic priority order.
    pub per_stream: Vec<PdpStreamReport>,
    /// `true` iff every stream meets its deadline.
    pub schedulable: bool,
}

impl fmt::Display for PdpReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} schedulability: {} (B = {})",
            self.variant,
            if self.schedulable { "PASS" } else { "FAIL" },
            self.blocking
        )?;
        for s in &self.per_stream {
            writeln!(f, "  {s}")?;
        }
        Ok(())
    }
}

/// Verdict for a single stream under the priority-driven protocol.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PdpStreamReport {
    /// The stream (= sourcing station index).
    pub stream: StreamId,
    /// Rate-monotonic priority rank (0 = highest priority).
    pub priority_rank: usize,
    /// Augmented message length `C'_i`.
    pub augmented_cost: Seconds,
    /// Worst-case response time, if the stream is schedulable.
    pub response_time: Option<Seconds>,
    /// Whether the stream always meets its deadline.
    pub schedulable: bool,
}

impl fmt::Display for PdpStreamReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.response_time {
            Some(r) => write!(
                f,
                "{} (priority {}): C' = {}, R = {} — ok",
                self.stream, self.priority_rank, self.augmented_cost, r
            ),
            None => write!(
                f,
                "{} (priority {}): C' = {} — deadline miss",
                self.stream, self.priority_rank, self.augmented_cost
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringrt_model::SyncStream;
    use ringrt_units::{Bandwidth, Bits};

    fn set(streams: &[(f64, u64)]) -> MessageSet {
        MessageSet::new(
            streams
                .iter()
                .map(|&(p, c)| SyncStream::new(Seconds::from_millis(p), Bits::new(c)))
                .collect(),
        )
        .unwrap()
    }

    fn analyzer(mbps: f64, variant: PdpVariant) -> PdpAnalyzer {
        PdpAnalyzer::new(
            RingConfig::ieee_802_5(100, Bandwidth::from_mbps(mbps)),
            FrameFormat::paper_default(),
            variant,
        )
    }

    #[test]
    fn light_load_schedulable_heavy_load_not() {
        let a = analyzer(4.0, PdpVariant::Standard);
        // ~1 % utilization.
        let light = set(&[(100.0, 4_000), (200.0, 4_000)]);
        assert!(a.is_schedulable(&light));
        // >100 % utilization.
        let heavy = set(&[(10.0, 30_000), (10.0, 30_000)]);
        assert!(!a.is_schedulable(&heavy));
    }

    #[test]
    fn rta_and_point_test_agree() {
        for mbps in [1.0, 4.0, 16.0] {
            for variant in [PdpVariant::Standard, PdpVariant::Modified] {
                let a = analyzer(mbps, variant);
                for scale in [1_u64, 4, 8, 12, 16, 24] {
                    let m = set(&[
                        (20.0, 1_000 * scale),
                        (40.0, 2_000 * scale),
                        (100.0, 5_000 * scale),
                    ]);
                    assert_eq!(
                        a.is_schedulable(&m),
                        a.is_schedulable_by_points(&m),
                        "disagreement at {mbps} Mbps, scale {scale}, {variant:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn modified_dominates_standard() {
        // Any set schedulable under the standard variant must also be
        // schedulable under the modified one (C' only shrinks).
        for scale in 1..30 {
            let m = set(&[
                (20.0, 800 * scale),
                (50.0, 2_000 * scale),
                (120.0, 4_000 * scale),
            ]);
            let std = analyzer(4.0, PdpVariant::Standard).is_schedulable(&m);
            let modv = analyzer(4.0, PdpVariant::Modified).is_schedulable(&m);
            if std {
                assert!(modv, "standard schedulable but modified not, scale {scale}");
            }
        }
    }

    #[test]
    fn analyze_reports_per_stream_details() {
        let a = analyzer(4.0, PdpVariant::Modified);
        let m = set(&[(100.0, 4_000), (20.0, 2_000)]);
        let report = a.analyze(&m);
        assert!(report.schedulable);
        assert_eq!(report.per_stream.len(), 2);
        // Station 1 (20 ms period) gets priority rank 0.
        assert_eq!(report.per_stream[0].stream, StreamId(1));
        assert_eq!(report.per_stream[0].priority_rank, 0);
        assert!(report.per_stream[0].response_time.is_some());
        // Response times are nondecreasing with rank in this simple case.
        let r0 = report.per_stream[0].response_time.unwrap();
        let r1 = report.per_stream[1].response_time.unwrap();
        assert!(r1 >= r0);
        // Display contains the verdict.
        assert!(report.to_string().contains("PASS"));
    }

    #[test]
    fn unschedulable_report_marks_victims() {
        let a = analyzer(1.0, PdpVariant::Standard);
        // High-frequency stream with big messages at 1 Mbps: hopeless.
        let m = set(&[(5.0, 20_000), (50.0, 1_000)]);
        let report = a.analyze(&m);
        assert!(!report.schedulable);
        assert!(report.per_stream.iter().any(|s| !s.schedulable));
        assert!(report.to_string().contains("FAIL"));
        assert!(report.to_string().contains("deadline miss"));
    }

    #[test]
    fn blocking_applies_even_to_highest_priority() {
        // A single stream that exactly fits without blocking must fail once
        // the blocking term is added.
        let a = analyzer(4.0, PdpVariant::Modified);
        let ring = a.ring();
        let bw = ring.bandwidth();
        // Choose a period barely above C' for a one-frame message.
        let m_bits = 512;
        let s = SyncStream::new(Seconds::from_millis(1.0), Bits::new(m_bits));
        let c_prime = augmented_length(&s, ring, a.frame(), PdpVariant::Modified);
        let b = a.blocking();
        // Period between C' and C' + B → unschedulable due to blocking alone.
        let p = c_prime + b / 2.0;
        let m = MessageSet::new(vec![SyncStream::new(p, Bits::new(m_bits))]).unwrap();
        assert!(!a.is_schedulable(&m));
        // Period beyond C' + B → schedulable.
        let p = c_prime + b * 1.01;
        let m = MessageSet::new(vec![SyncStream::new(p, Bits::new(m_bits))]).unwrap();
        assert!(a.is_schedulable(&m));
        let _ = bw;
    }

    #[test]
    fn constrained_deadline_changes_verdict_and_priorities() {
        let a = analyzer(4.0, PdpVariant::Modified);
        // Schedulable with implicit deadlines…
        let relaxed = set(&[(50.0, 20_000), (100.0, 40_000)]);
        assert!(a.is_schedulable(&relaxed));
        // …but squeezing stream 2's deadline below its own service time
        // breaks it.
        let streams: Vec<SyncStream> = relaxed
            .iter()
            .enumerate()
            .map(|(i, s)| {
                if i == 1 {
                    s.with_relative_deadline(Seconds::from_millis(8.0))
                } else {
                    *s
                }
            })
            .collect();
        let tight = MessageSet::new(streams).unwrap();
        assert!(!a.is_schedulable(&tight));
        // The tight-deadline stream is now the highest priority.
        let report = a.analyze(&tight);
        assert_eq!(report.per_stream[0].stream, StreamId(1));
        // Both exact tests agree on the constrained set too.
        assert_eq!(a.is_schedulable(&tight), a.is_schedulable_by_points(&tight));
    }

    #[test]
    fn priority_level_limit_only_hurts() {
        let a = analyzer(4.0, PdpVariant::Modified);
        for scale in (1..25).map(|k| k as u64 * 1_500) {
            let m = set(&[
                (20.0, scale),
                (35.0, scale),
                (60.0, 2 * scale),
                (90.0, 2 * scale),
                (140.0, 3 * scale),
                (180.0, 3 * scale),
            ]);
            let limited = a.with_priority_levels(2).is_schedulable(&m);
            let full = a.is_schedulable(&m);
            if limited {
                assert!(
                    full,
                    "2 levels schedulable but unlimited not, scale {scale}"
                );
            }
        }
        // With as many levels as streams the verdicts coincide.
        let m = set(&[(20.0, 8_000), (40.0, 16_000), (80.0, 24_000)]);
        assert_eq!(
            a.with_priority_levels(3).is_schedulable(&m),
            a.is_schedulable(&m)
        );
        assert_eq!(a.priority_levels(), None);
        assert_eq!(a.with_priority_levels(8).priority_levels(), Some(8));
    }

    #[test]
    fn single_level_is_round_robin_like() {
        // One level: everyone interferes with everyone — much weaker.
        let a = analyzer(4.0, PdpVariant::Modified);
        let m = set(&[(20.0, 14_000), (40.0, 28_000), (80.0, 56_000)]);
        assert!(a.is_schedulable(&m));
        assert!(!a.with_priority_levels(1).is_schedulable(&m));
    }

    #[test]
    fn accessors() {
        let a = analyzer(4.0, PdpVariant::Standard);
        assert_eq!(a.variant(), PdpVariant::Standard);
        assert_eq!(a.ring().stations(), 100);
        assert_eq!(a.frame().payload().as_u64(), 512);
        assert_eq!(a.protocol_name(), "IEEE 802.5");
    }
}
