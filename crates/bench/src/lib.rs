//! Shared infrastructure for the `exp_*` experiment binaries.
//!
//! Every binary regenerates one artifact of Kamat & Zhao (ICDCS 1993) —
//! Figure 1 or one of the quantitative in-text claims — and prints a CSV
//! table plus a short interpretation. `EXPERIMENTS.md` at the workspace
//! root records the outputs against the paper.
//!
//! All binaries accept the same flags:
//!
//! ```text
//! --quick            down-scaled run (fewer stations/samples)
//! --stations <n>     ring stations / streams per set   [default 100]
//! --samples <n>      Monte-Carlo samples per point      [default 100]
//! --seed <n>         base RNG seed                      [default fixed]
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ringrt_breakdown::sweep::SweepConfig;

/// Command-line options shared by the experiment binaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExpOptions {
    /// Ring stations / streams per generated set.
    pub stations: usize,
    /// Monte-Carlo samples per sweep point.
    pub samples: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Whether `--quick` was given.
    pub quick: bool,
}

impl Default for ExpOptions {
    fn default() -> Self {
        ExpOptions {
            stations: 100,
            samples: 100,
            seed: 0x5EED_0001,
            quick: false,
        }
    }
}

impl ExpOptions {
    /// Parses options from an argument iterator (excluding the program
    /// name).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown flags or malformed
    /// values.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut opts = ExpOptions::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--quick" => {
                    opts.quick = true;
                    opts.stations = 30;
                    opts.samples = 20;
                }
                "--stations" => {
                    opts.stations = take_value(&mut it, "--stations")?;
                }
                "--samples" => {
                    opts.samples = take_value(&mut it, "--samples")?;
                }
                "--seed" => {
                    opts.seed = take_value(&mut it, "--seed")?;
                }
                "--help" | "-h" => {
                    return Err(concat!(
                        "usage: exp_* [--quick] [--stations N] [--samples N] [--seed N]\n",
                        "  --quick     down-scaled run (30 stations, 20 samples)\n",
                        "  --stations  ring stations / streams per set (default 100)\n",
                        "  --samples   Monte-Carlo samples per point (default 100)\n",
                        "  --seed      base RNG seed"
                    )
                    .to_owned());
                }
                other => return Err(format!("unknown flag `{other}` (try --help)")),
            }
        }
        if opts.stations == 0 {
            return Err("--stations must be at least 1".into());
        }
        if opts.samples == 0 {
            return Err("--samples must be at least 1".into());
        }
        Ok(opts)
    }

    /// Parses from the process arguments, exiting with a message on error.
    #[must_use]
    pub fn from_env() -> Self {
        match Self::parse(std::env::args().skip(1)) {
            Ok(o) => o,
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }

    /// The sweep configuration corresponding to these options.
    #[must_use]
    pub fn sweep_config(&self) -> SweepConfig {
        SweepConfig {
            stations: self.stations,
            samples: self.samples,
            seed: self.seed,
            tolerance: if self.quick { 3e-3 } else { 1e-3 },
        }
    }
}

fn take_value<T: std::str::FromStr, I: Iterator<Item = String>>(
    it: &mut I,
    flag: &str,
) -> Result<T, String> {
    let raw = it.next().ok_or_else(|| format!("{flag} needs a value"))?;
    raw.parse()
        .map_err(|_| format!("invalid value `{raw}` for {flag}"))
}

/// Prints the standard experiment banner.
pub fn banner(id: &str, title: &str, opts: &ExpOptions) {
    println!("# {id}: {title}");
    println!(
        "# stations = {}, samples/point = {}, seed = {:#x}{}",
        opts.stations,
        opts.samples,
        opts.seed,
        if opts.quick { " (quick mode)" } else { "" }
    );
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<ExpOptions, String> {
        ExpOptions::parse(args.iter().map(|s| (*s).to_owned()))
    }

    #[test]
    fn defaults() {
        let o = parse(&[]).unwrap();
        assert_eq!(o.stations, 100);
        assert_eq!(o.samples, 100);
        assert!(!o.quick);
    }

    #[test]
    fn quick_downscales() {
        let o = parse(&["--quick"]).unwrap();
        assert!(o.quick);
        assert_eq!(o.stations, 30);
        assert_eq!(o.samples, 20);
        assert!((o.sweep_config().tolerance - 3e-3).abs() < 1e-12);
    }

    #[test]
    fn explicit_values_override() {
        let o = parse(&[
            "--quick",
            "--stations",
            "64",
            "--samples",
            "7",
            "--seed",
            "42",
        ])
        .unwrap();
        assert_eq!(o.stations, 64);
        assert_eq!(o.samples, 7);
        assert_eq!(o.seed, 42);
        let cfg = o.sweep_config();
        assert_eq!(cfg.stations, 64);
        assert_eq!(cfg.samples, 7);
        assert_eq!(cfg.seed, 42);
    }

    #[test]
    fn errors() {
        assert!(parse(&["--bogus"]).is_err());
        assert!(parse(&["--stations"]).is_err());
        assert!(parse(&["--stations", "zero"]).is_err());
        assert!(parse(&["--stations", "0"]).is_err());
        assert!(parse(&["--samples", "0"]).is_err());
        assert!(parse(&["--help"]).is_err());
    }
}
