//! A space-station-backbone workload on a 100 Mbps ring — the regime where
//! the paper recommends the **timed token protocol** (§7: "the timed token
//! protocol ... is found to perform better at high bandwidths such as
//! 100 Mbps and above"). The paper's introduction notes that an FDDI ring
//! was selected as the backbone for NASA's Space Station Freedom.
//!
//! Sixteen stations carry video, voice, telemetry, and housekeeping
//! streams. The example shows that:
//!
//! * FDDI guarantees the set (Theorem 5.1) with the `√(Θ'·P_min)` TTRT and
//!   local bandwidth allocation, and the simulator confirms zero misses
//!   even with 25 % asynchronous background load;
//! * the standard IEEE 802.5 implementation of rate-monotonic scheduling
//!   **cannot** guarantee the same set at the same bandwidth — its
//!   per-frame token-passing and header-return overheads (`Θ ≫ F`) eat the
//!   capacity, and the simulator shows the resulting deadline misses.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example space_station_fddi
//! ```

use ringrt::prelude::*;
use ringrt::workload::scenarios;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let set = scenarios::space_station_backbone();
    let bw = Bandwidth::from_mbps(100.0);
    println!(
        "space-station backbone: {} streams, raw utilization {:.3} at {bw}\n",
        set.len(),
        set.utilization(bw)
    );

    // --- FDDI analysis ---------------------------------------------------
    let ring_ttp = RingConfig::fddi(set.len(), bw);
    let ttp = TtpAnalyzer::with_defaults(ring_ttp);
    let report = ttp.analyze(&set);
    print!("{report}");
    println!(
        "rotation budget: Σh = {} of TTRT − Θ' = {} ({:.1} % allocated)\n",
        report.total_allocated,
        report.capacity,
        report.allocation_ratio() * 100.0
    );
    assert!(report.schedulable, "FDDI must guarantee the backbone set");

    // --- 802.5 analysis at the same bandwidth -----------------------------
    let ring_pdp = RingConfig::ieee_802_5(set.len(), bw);
    let frame = FrameFormat::paper_default();
    let pdp = PdpAnalyzer::new(ring_pdp, frame, PdpVariant::Standard);
    let pdp_report = pdp.analyze(&set);
    println!(
        "standard IEEE 802.5 at {bw}: {} (Θ = {}, frame time = {} ⇒ every frame occupies Θ)",
        if pdp_report.schedulable {
            "PASS"
        } else {
            "FAIL"
        },
        ring_pdp.token_circulation_time(),
        frame.frame_time(bw),
    );
    assert!(
        !pdp_report.schedulable,
        "the standard 802.5 implementation must fail at 100 Mbps"
    );

    // --- Simulation: FDDI delivers, 802.5 misses --------------------------
    let horizon = Seconds::new(2.0);
    let ttp_sim = TtpSimulator::from_analysis(
        &set,
        SimConfig::new(ring_ttp, horizon)
            .with_phasing(Phasing::Synchronized)
            .with_async_load(0.25),
    )?
    .run();
    println!("\n--- simulated 2 s of FDDI ring time, 25 % async background ---");
    print!("{ttp_sim}");
    assert!(
        ttp_sim.all_deadlines_met(),
        "Theorem 5.1 guarantee violated"
    );
    if let Some(max_rot) = ttp_sim.max_rotation() {
        println!(
            "worst token rotation {} ≤ 2·TTRT = {} (Johnson's bound)\n",
            max_rot,
            report.ttrt * 2.0
        );
    }

    let pdp_sim = PdpSimulator::new(
        &set,
        SimConfig::new(ring_pdp, horizon).with_phasing(Phasing::Synchronized),
        frame,
        PdpVariant::Standard,
    )
    .run();
    println!("--- simulated 2 s of standard 802.5 at the same bandwidth ---");
    println!(
        "{}: {} completed, {} deadline misses",
        pdp_sim.protocol,
        pdp_sim.completed(),
        pdp_sim.deadline_misses()
    );
    assert!(
        pdp_sim.deadline_misses() > 0,
        "802.5 should visibly miss deadlines on this overload"
    );
    Ok(())
}
