//! # ringrt-registry — persistent rings with incremental admission
//!
//! A named-ring registry for long-running admission-control servers: each
//! ring carries a protocol configuration ([`RingSpec`]) and the set of
//! streams admitted so far, persisted through an append-only journal with
//! periodic snapshot compaction (std-only, no external storage engine).
//!
//! On top of the store sits an **incremental admission engine**: admitting
//! or removing a single stream re-runs only the part of the paper's
//! schedulability test that can actually change —
//!
//! * **PDP (Theorem 4.1):** only deadline-monotonic priority levels at or
//!   below the new stream's rank are re-tested; removal is free.
//! * **TTP (Theorem 5.1):** the single inequality is updated by the new
//!   stream's term when the negotiated TTRT is bit-identical, reproducing
//!   the full test's floating-point result exactly.
//!
//! Debug builds assert that every incremental verdict matches a
//! from-scratch recomputation; [`CheckOutcome::evaluations`] exposes the
//! work saved so servers can prove the speedup in their metrics.
//!
//! ## Example
//!
//! ```
//! use ringrt_registry::{ProtocolKind, RingRegistry, RingSpec};
//! use ringrt_model::SyncStream;
//! use ringrt_units::{Bits, Seconds};
//!
//! let registry = RingRegistry::in_memory();
//! registry.register(
//!     "lab",
//!     RingSpec { protocol: ProtocolKind::Fddi, mbps: 100.0, stations: Some(16) },
//! )?;
//! let out = registry.admit(
//!     "lab",
//!     "camera-1",
//!     SyncStream::new(Seconds::from_millis(20.0), Bits::new(100_000)),
//! )?;
//! assert!(out.applied);
//! let out = registry.admit(
//!     "lab",
//!     "camera-2",
//!     SyncStream::new(Seconds::from_millis(50.0), Bits::new(200_000)),
//! )?;
//! assert!(out.check.incremental); // delta-updated Theorem 5.1
//! # Ok::<(), ringrt_registry::RegistryError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod failpoint;
mod journal;
mod registry;
mod spec;

pub use engine::CheckOutcome;
pub use failpoint::{FailpointFs, FaultPlan};
pub use journal::{
    CompactionOutcome, CompactionPlan, JournalOp, ReplayStats, Store, StoreOptions,
    DEFAULT_SEGMENT_BYTES,
};
pub use registry::{
    AdmissionOutcome, RegistryMetrics, ReplicatedApply, RingCheck, RingPage, RingRegistry,
    ShipSubscription,
};
pub use ringrt_store::{StoreStats, StreamHandle, StreamStore};
pub use spec::{
    validate_name, NamedStream, ProtocolKind, RegistryError, RingSpec, RingState, Rings,
    MAX_NAME_LEN,
};
