//! Best-effort CPU affinity for pool workers.
//!
//! Mirrors `ringrt-net`'s `sys.rs` vendoring discipline: the workspace
//! builds offline with no external crates, so the one syscall we need —
//! `sched_setaffinity(2)` — is declared directly against the C library
//! that `std` already links. **All `unsafe` in `ringrt-exec` lives in
//! this file**; the rest of the crate sees only the safe
//! [`pin_current_thread`] wrapper.
//!
//! On non-Linux targets the entry point exists but returns
//! [`std::io::ErrorKind::Unsupported`]; the pool treats any error as
//! "run unpinned", so affinity is strictly best-effort everywhere.

use std::io;

/// Bits in the affinity mask we pass to the kernel (16 × 64 = 1024,
/// matching glibc's default `cpu_set_t` width).
const MASK_WORDS: usize = 16;
const MASK_BITS: usize = MASK_WORDS * 64;

#[cfg(target_os = "linux")]
mod imp {
    use super::{io, MASK_BITS, MASK_WORDS};
    use std::os::raw::c_int;

    extern "C" {
        /// `pid` 0 means the calling thread.
        fn sched_setaffinity(pid: c_int, cpusetsize: usize, mask: *const u64) -> c_int;
    }

    pub fn pin_current_thread(cpu: usize) -> io::Result<()> {
        if cpu >= MASK_BITS {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "cpu index beyond affinity mask width",
            ));
        }
        let mut mask = [0u64; MASK_WORDS];
        mask[cpu / 64] |= 1u64 << (cpu % 64);
        // SAFETY: `mask` is a live, readable buffer of exactly
        // `MASK_WORDS * 8` bytes, which is the size we pass; the kernel
        // only reads it.
        let ret = unsafe { sched_setaffinity(0, MASK_WORDS * 8, mask.as_ptr()) };
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(())
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    use super::io;

    pub fn pin_current_thread(_cpu: usize) -> io::Result<()> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "thread affinity requires Linux sched_setaffinity",
        ))
    }
}

/// Pins the calling thread to `cpu` (best effort). Errors mean "the
/// scheduler keeps placing this thread"; callers ignore them.
pub(crate) use imp::pin_current_thread;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pin_is_best_effort() {
        // On Linux pinning to CPU 0 must succeed (every machine has one);
        // elsewhere the call reports Unsupported. Either way it never
        // panics — that is the whole contract.
        match pin_current_thread(0) {
            Ok(()) => {
                let on_linux = cfg!(target_os = "linux");
                assert!(on_linux, "only the Linux shim can succeed");
            }
            Err(e) => assert_ne!(e.kind(), io::ErrorKind::InvalidInput),
        }
    }

    #[test]
    fn out_of_range_cpu_is_rejected_not_undefined() {
        let err = pin_current_thread(MASK_BITS + 1).unwrap_err();
        let expected = if cfg!(target_os = "linux") {
            io::ErrorKind::InvalidInput
        } else {
            io::ErrorKind::Unsupported
        };
        assert_eq!(err.kind(), expected);
    }
}
