//! The shared parallel execution layer for ringrt's hot paths.
//!
//! Every compute-bound loop in the workspace — Monte-Carlo ABU sampling,
//! saturation multisection, service `ABU` fan-out, experiment sweeps —
//! runs on the same primitive: a **scoped, chunked, self-scheduling work
//! pool** built from nothing but `std::thread::scope` and one atomic
//! cursor. There is no persistent thread pool and no channel machinery:
//! a [`Pool`] is just a thread-count policy, and each [`Pool::map`] call
//! spawns scoped workers that race down a shared index, stealing one
//! chunk of iterations at a time (classic self-scheduling, which is what
//! "work stealing" degenerates to for a single flat range).
//!
//! # Determinism
//!
//! `map(n, f)` always returns `f(0), f(1), …, f(n-1)` **in index order**
//! regardless of thread count or scheduling: workers collect
//! `(start, results)` runs locally and the runs are merge-sorted by start
//! index before returning. Combined with per-index seed derivation
//! ([`splitmix64`]) this is what lets `BreakdownEstimator` promise
//! bit-identical estimates at any thread count.
//!
//! # Thread-count policy
//!
//! [`Pool::from_env`] honors the `RINGRT_THREADS` environment variable
//! (clamped to ≥ 1) and falls back to
//! [`std::thread::available_parallelism`]. Set `RINGRT_THREADS=1` to force
//! every parallel path through its serial fallback — CI runs the whole
//! test suite once in that mode.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use ringrt_obs::Recorder;

/// Environment variable overriding the worker thread count.
pub const THREADS_ENV: &str = "RINGRT_THREADS";

/// SplitMix64's finalizing mix: a bijective avalanche of all 64 bits.
///
/// Used to turn structured inputs (a master seed, a sample index, one word
/// of a parent RNG stream) into decorrelated per-task seeds. The constants
/// are Vigna's reference SplitMix64 — the same mixer the vendored
/// `rand::rngs::StdRng` uses to expand its seed.
#[must_use]
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the `k`-th task seed from a master seed: the splitmix-style
/// stream `splitmix64(master + k·GOLDEN)`, statistically independent
/// across both `k` and nearby master seeds.
#[must_use]
pub fn derive_seed(master: u64, k: u64) -> u64 {
    splitmix64(master ^ splitmix64(k))
}

/// Parses a thread-count override string: `Some(n ≥ 1)` for a valid
/// positive integer, `None` otherwise (empty, garbage, or zero).
#[must_use]
pub fn parse_threads(raw: &str) -> Option<usize> {
    raw.trim().parse::<usize>().ok().filter(|&n| n > 0)
}

/// The configured worker thread count: `RINGRT_THREADS` if set to a
/// positive integer, else the machine's available parallelism, else 1.
#[must_use]
pub fn configured_threads() -> usize {
    std::env::var(THREADS_ENV)
        .ok()
        .as_deref()
        .and_then(parse_threads)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// Cumulative counters for one pool: how much work ran and how it spread
/// over workers. Cheap relaxed atomics, bumped once per chunk.
#[derive(Debug, Default)]
struct PoolCounters {
    /// `map` invocations that actually spawned threads.
    parallel_runs: AtomicU64,
    /// `map` invocations served on the calling thread.
    serial_runs: AtomicU64,
    /// Total items processed.
    items: AtomicU64,
    /// Total chunks claimed by workers (parallel runs only).
    chunks: AtomicU64,
}

/// A snapshot of a pool's lifetime counters (see [`Pool::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Configured worker thread count.
    pub threads: usize,
    /// `map` calls that fanned out across scoped threads.
    pub parallel_runs: u64,
    /// `map` calls answered serially (1 thread or ≤ 1 item).
    pub serial_runs: u64,
    /// Items processed across all calls.
    pub items: u64,
    /// Chunks claimed across all parallel calls.
    pub chunks: u64,
}

/// A scoped work pool: a thread-count policy plus usage counters.
///
/// Cloning or sharing: the pool is `Sync`; one instance can serve any
/// number of concurrent `map` calls (each call spawns its own scoped
/// workers, so calls never contend beyond the atomic counters).
///
/// # Examples
///
/// ```
/// use ringrt_exec::Pool;
///
/// let pool = Pool::new(4);
/// let squares = pool.map(10, |i| i * i);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49, 64, 81]);
/// ```
#[derive(Debug)]
pub struct Pool {
    threads: usize,
    counters: PoolCounters,
    recorder: Arc<Recorder>,
}

impl Pool {
    /// A pool running `threads` workers per `map` call.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero — need at least one worker thread.
    #[must_use]
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "need at least one worker thread");
        Pool {
            threads,
            counters: PoolCounters::default(),
            recorder: Arc::new(Recorder::disabled()),
        }
    }

    /// Attaches a flight recorder: subsequent [`Pool::map`] calls emit an
    /// `exec`/`map` span per call and an `exec`/`chunk` span per claimed
    /// chunk (parallel runs), so pool fan-out shows up alongside the
    /// service and registry stages in `TRACE` output.
    #[must_use]
    pub fn with_recorder(mut self, recorder: Arc<Recorder>) -> Self {
        self.recorder = recorder;
        self
    }

    /// A single-threaded pool: every `map` runs inline on the caller.
    #[must_use]
    pub fn serial() -> Self {
        Pool::new(1)
    }

    /// A pool sized by [`configured_threads`] (`RINGRT_THREADS` override,
    /// else available parallelism).
    #[must_use]
    pub fn from_env() -> Self {
        Pool::new(configured_threads())
    }

    /// The configured worker count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Lifetime usage counters.
    #[must_use]
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            threads: self.threads,
            parallel_runs: self.counters.parallel_runs.load(Ordering::Relaxed),
            serial_runs: self.counters.serial_runs.load(Ordering::Relaxed),
            items: self.counters.items.load(Ordering::Relaxed),
            chunks: self.counters.chunks.load(Ordering::Relaxed),
        }
    }

    /// Applies `f` to every index in `0..n` and returns the results in
    /// index order, fanning the work across up to `self.threads()` scoped
    /// worker threads.
    ///
    /// Work distribution is chunked self-scheduling: workers repeatedly
    /// claim the next `chunk` indices from a shared atomic cursor, so a
    /// slow item (a deep saturation search) cannot leave the other
    /// workers idle behind a static partition. Results are reassembled in
    /// index order, making the output independent of thread count and
    /// scheduling.
    ///
    /// # Panics
    ///
    /// Propagates a panic from `f` (the surrounding scope re-raises it).
    pub fn map<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let workers = self.threads.min(n);
        self.counters.items.fetch_add(n as u64, Ordering::Relaxed);
        let _map_span = self.recorder.span("exec", "map");
        if workers <= 1 {
            self.counters.serial_runs.fetch_add(1, Ordering::Relaxed);
            return (0..n).map(f).collect();
        }
        self.counters.parallel_runs.fetch_add(1, Ordering::Relaxed);

        // Chunk size: every worker should get several claims (steals) so
        // uneven item costs still balance, without hammering the cursor
        // for trivial items. 4 claims per worker, at least 1 item each.
        let chunk = (n / (4 * workers)).max(1);
        let cursor = AtomicUsize::new(0);
        let runs: Mutex<Vec<(usize, Vec<T>)>> = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut local: Vec<(usize, Vec<T>)> = Vec::new();
                    loop {
                        let lo = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if lo >= n {
                            break;
                        }
                        let hi = (lo + chunk).min(n);
                        self.counters.chunks.fetch_add(1, Ordering::Relaxed);
                        let _chunk_span = self.recorder.span("exec", "chunk");
                        local.push((lo, (lo..hi).map(&f).collect()));
                    }
                    if !local.is_empty() {
                        runs.lock()
                            .expect("exec result buffer poisoned")
                            .extend(local);
                    }
                });
            }
        });
        let mut runs = runs.into_inner().expect("exec result buffer poisoned");
        runs.sort_unstable_by_key(|(lo, _)| *lo);
        let mut out = Vec::with_capacity(n);
        for (_, part) in runs {
            out.extend(part);
        }
        debug_assert_eq!(out.len(), n);
        out
    }

    /// Like [`Pool::map`] over an explicit slice of inputs: returns
    /// `f(&items[0]), …` in order.
    pub fn map_slice<'a, I, T, F>(&self, items: &'a [I], f: F) -> Vec<T>
    where
        I: Sync,
        T: Send,
        F: Fn(&'a I) -> T + Sync,
    {
        self.map(items.len(), |i| f(&items[i]))
    }
}

impl Default for Pool {
    fn default() -> Self {
        Pool::from_env()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_index_order() {
        let pool = Pool::new(8);
        for n in [0usize, 1, 2, 7, 64, 1000] {
            let out = pool.map(n, |i| i * 3);
            assert_eq!(out, (0..n).map(|i| i * 3).collect::<Vec<_>>(), "n={n}");
        }
    }

    #[test]
    fn map_matches_serial_for_any_thread_count() {
        let serial = Pool::serial().map(123, |i| (i as u64).wrapping_mul(0x9E37));
        for threads in [2, 3, 5, 16] {
            let parallel = Pool::new(threads).map(123, |i| (i as u64).wrapping_mul(0x9E37));
            assert_eq!(serial, parallel, "threads={threads}");
        }
    }

    #[test]
    fn map_actually_uses_multiple_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let pool = Pool::new(4);
        let ids = Mutex::new(HashSet::new());
        // Enough items that the four workers all claim at least one chunk;
        // a short sleep keeps the first worker from draining the cursor
        // before the others start.
        pool.map(64, |_| {
            std::thread::sleep(std::time::Duration::from_micros(200));
            ids.lock().unwrap().insert(std::thread::current().id());
        });
        assert!(ids.lock().unwrap().len() > 1, "expected fan-out");
    }

    #[test]
    fn uneven_item_costs_rebalance() {
        // One pathologically slow item must not serialize the rest: with
        // static partitioning, worker 0 would own all the slow indices.
        let pool = Pool::new(4);
        let out = pool.map(32, |i| {
            if i == 0 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            i
        });
        assert_eq!(out.len(), 32);
    }

    #[test]
    fn stats_accumulate() {
        let pool = Pool::new(2);
        let _ = pool.map(10, |i| i);
        let _ = pool.map(0, |i| i);
        let s = pool.stats();
        assert_eq!(s.threads, 2);
        assert_eq!(s.items, 10);
        assert_eq!(s.parallel_runs + s.serial_runs, 2);
    }

    #[test]
    fn serial_pool_runs_inline() {
        let pool = Pool::serial();
        let caller = std::thread::current().id();
        let ran_on = pool.map(4, |_| std::thread::current().id());
        assert!(ran_on.iter().all(|&id| id == caller));
        assert_eq!(pool.stats().serial_runs, 1);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_rejected() {
        let _ = Pool::new(0);
    }

    #[test]
    fn parse_threads_accepts_positive_integers_only() {
        assert_eq!(parse_threads("4"), Some(4));
        assert_eq!(parse_threads(" 12 "), Some(12));
        assert_eq!(parse_threads("0"), None);
        assert_eq!(parse_threads("-3"), None);
        assert_eq!(parse_threads("four"), None);
        assert_eq!(parse_threads(""), None);
    }

    #[test]
    fn configured_threads_is_at_least_one() {
        assert!(configured_threads() >= 1);
    }

    #[test]
    fn splitmix_mixes_and_derive_decorrelates() {
        // Bijective mixer: distinct inputs stay distinct.
        let a = splitmix64(1);
        let b = splitmix64(2);
        assert_ne!(a, b);
        // Neighboring (master, k) pairs land far apart.
        let s: Vec<u64> = (0..4).map(|k| derive_seed(7, k)).collect();
        for i in 0..s.len() {
            for j in 0..i {
                assert_ne!(s[i], s[j]);
                assert!((s[i] ^ s[j]).count_ones() > 8, "weak mixing");
            }
        }
        assert_ne!(derive_seed(7, 0), derive_seed(8, 0));
    }

    #[test]
    fn map_slice_borrows_inputs() {
        let words = ["alpha".to_owned(), "beta".to_owned()];
        let lens = Pool::new(2).map_slice(&words, |w| w.len());
        assert_eq!(lens, vec![5, 4]);
    }

    #[test]
    fn attached_recorder_sees_map_and_chunk_spans() {
        let rec = Arc::new(Recorder::new());
        let pool = Pool::new(4).with_recorder(Arc::clone(&rec));
        let _ = pool.map(64, |i| i);
        let events = rec.drain(1024);
        assert!(
            events.iter().any(|e| e.cat == "exec" && e.name == "map"),
            "{events:?}"
        );
        assert!(
            events.iter().any(|e| e.cat == "exec" && e.name == "chunk"),
            "{events:?}"
        );
    }

    #[test]
    fn default_pool_records_nothing() {
        let pool = Pool::new(2);
        let _ = pool.map(16, |i| i);
        // The built-in recorder is disabled: no retained events.
        assert!(!pool.recorder.is_enabled());
        assert!(pool.recorder.drain(16).is_empty());
    }

    #[test]
    fn panic_in_worker_propagates() {
        let result = std::panic::catch_unwind(|| {
            Pool::new(2).map(8, |i| {
                assert!(i != 5, "boom");
                i
            })
        });
        assert!(result.is_err());
    }
}
