//! Error type for model construction.

use core::fmt;

/// Errors raised when constructing or validating model objects.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ModelError {
    /// A stream period was not finite and strictly positive.
    InvalidPeriod {
        /// Index of the offending stream within the candidate set.
        index: usize,
        /// The rejected period value in seconds.
        period_secs: f64,
    },
    /// A stream payload length was zero bits.
    EmptyMessage {
        /// Index of the offending stream within the candidate set.
        index: usize,
    },
    /// The message set was empty.
    EmptySet,
    /// A ring parameter was out of range.
    InvalidRing {
        /// Name of the offending parameter.
        parameter: &'static str,
        /// Human-readable description of the violation.
        reason: String,
    },
    /// A frame format parameter was out of range.
    InvalidFrame {
        /// Name of the offending parameter.
        parameter: &'static str,
        /// Human-readable description of the violation.
        reason: String,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InvalidPeriod { index, period_secs } => write!(
                f,
                "stream {index} has invalid period {period_secs} s (must be finite and positive)"
            ),
            ModelError::EmptyMessage { index } => {
                write!(f, "stream {index} has a zero-length message")
            }
            ModelError::EmptySet => write!(f, "message set contains no streams"),
            ModelError::InvalidRing { parameter, reason } => {
                write!(f, "invalid ring parameter `{parameter}`: {reason}")
            }
            ModelError::InvalidFrame { parameter, reason } => {
                write!(f, "invalid frame parameter `{parameter}`: {reason}")
            }
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = ModelError::InvalidPeriod {
            index: 3,
            period_secs: -1.0,
        };
        assert!(e.to_string().contains("stream 3"));
        assert!(ModelError::EmptySet.to_string().contains("no streams"));
        let e = ModelError::InvalidRing {
            parameter: "stations",
            reason: "must be at least 1".into(),
        };
        assert!(e.to_string().contains("stations"));
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync>() {}
        assert_err::<ModelError>();
    }
}
