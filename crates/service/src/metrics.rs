//! Server observability: request/outcome counters and per-command latency
//! histograms.
//!
//! Latencies reuse [`ringrt_des::stats::DurationHistogram`] — the same
//! log₂-bucketed structure the simulator uses for response times — so the
//! `STATS` quantiles carry the identical "upper edge of the bucket"
//! semantics documented there. Counters are lock-free atomics; each
//! command's histogram sits behind its own mutex, touched once per
//! completed request.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use ringrt_des::stats::DurationHistogram;
use ringrt_units::SimDuration;

use crate::protocol::CommandKind;

/// Converts a wall-clock duration to the simulator's picosecond duration,
/// saturating at the (≈213-day) representable maximum.
#[must_use]
pub fn sim_duration(d: Duration) -> SimDuration {
    let ps = d.as_nanos().saturating_mul(1000);
    SimDuration::from_picos(u64::try_from(ps).unwrap_or(u64::MAX))
}

/// One command's latency record.
#[derive(Debug, Default)]
struct CommandStats {
    histogram: Mutex<DurationHistogram>,
}

/// All server counters and histograms.
#[derive(Debug)]
pub struct Metrics {
    /// Request lines received (including malformed ones).
    pub requests: AtomicU64,
    /// `OK` responses sent.
    pub ok: AtomicU64,
    /// `ERR` responses sent.
    pub errors: AtomicU64,
    /// `BUSY` responses sent (queue full, load shed).
    pub busy: AtomicU64,
    /// Requests answered `ERR` because they overstayed their queue deadline.
    pub deadline_expired: AtomicU64,
    per_command: [CommandStats; CommandKind::ALL.len()],
}

impl Metrics {
    /// Creates zeroed metrics.
    #[must_use]
    pub fn new() -> Self {
        Metrics {
            requests: AtomicU64::new(0),
            ok: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            busy: AtomicU64::new(0),
            deadline_expired: AtomicU64::new(0),
            per_command: Default::default(),
        }
    }

    /// Records a completed request's end-to-end latency.
    pub fn record_latency(&self, command: CommandKind, elapsed: Duration) {
        let mut h = self.per_command[command.index()]
            .histogram
            .lock()
            .expect("metrics histogram poisoned");
        h.push(sim_duration(elapsed));
    }

    /// Classifies a response line into the ok/err/busy counters.
    pub fn count_response(&self, response: &str) {
        let counter = if response.starts_with("OK") {
            &self.ok
        } else if response.starts_with("BUSY") {
            &self.busy
        } else {
            &self.errors
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Appends `<cmd>_count / <cmd>_p50_us / <cmd>_p99_us` fields for every
    /// command to a `STATS` response body.
    pub fn render_latencies(&self, out: &mut String) {
        use std::fmt::Write as _;
        for cmd in CommandKind::ALL {
            let h = self.per_command[cmd.index()]
                .histogram
                .lock()
                .expect("metrics histogram poisoned");
            let name = cmd.token();
            let _ = write!(out, " {name}_count={}", h.count());
            for (label, q) in [("p50", 0.5), ("p99", 0.99)] {
                match h.quantile(q) {
                    Some(d) => {
                        let us = d.as_picos() as f64 / 1e6;
                        let _ = write!(out, " {name}_{label}_us={us:.1}");
                    }
                    None => {
                        let _ = write!(out, " {name}_{label}_us=nan");
                    }
                }
            }
        }
    }
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_conversion() {
        assert_eq!(sim_duration(Duration::from_micros(3)).as_picos(), 3_000_000);
        assert_eq!(sim_duration(Duration::ZERO).as_picos(), 0);
        // Far beyond the picosecond range: saturates instead of panicking.
        assert_eq!(
            sim_duration(Duration::from_secs(1 << 40)).as_picos(),
            u64::MAX
        );
    }

    #[test]
    fn response_classification() {
        let m = Metrics::new();
        m.count_response("OK cmd=ping");
        m.count_response("ERR nope");
        m.count_response("BUSY queue_capacity=4");
        m.count_response("garbage");
        assert_eq!(m.ok.load(Ordering::Relaxed), 1);
        assert_eq!(m.errors.load(Ordering::Relaxed), 2);
        assert_eq!(m.busy.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn latency_fields_render() {
        let m = Metrics::new();
        m.record_latency(CommandKind::Check, Duration::from_micros(100));
        m.record_latency(CommandKind::Check, Duration::from_micros(200));
        let mut out = String::new();
        m.render_latencies(&mut out);
        assert!(out.contains(" check_count=2"));
        assert!(out.contains(" check_p50_us="));
        assert!(out.contains(" simulate_count=0"));
        assert!(out.contains(" simulate_p50_us=nan"));
        // p50 upper bucket edge for ~100–200 µs samples stays in range.
        let p50: f64 = out
            .split(" check_p50_us=")
            .nth(1)
            .unwrap()
            .split_whitespace()
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!((100.0..=600.0).contains(&p50), "p50 = {p50}");
    }
}
