//! Argument parsing (hand-rolled; the surface is small enough that a CLI
//! framework dependency is not warranted).

use core::fmt;

use ringrt_service::Frontend;

/// Which protocol a command targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProtocolChoice {
    /// Standard IEEE 802.5.
    Ieee8025,
    /// Modified IEEE 802.5 (the paper's more efficient variant).
    #[default]
    Modified,
    /// FDDI timed token with the local allocation scheme.
    Fddi,
}

impl ProtocolChoice {
    fn parse(s: &str) -> Result<Self, String> {
        match s.to_ascii_lowercase().as_str() {
            "802.5" | "8025" | "ieee802.5" | "standard" => Ok(ProtocolChoice::Ieee8025),
            "modified" | "mod" => Ok(ProtocolChoice::Modified),
            "fddi" | "ttp" | "timed-token" => Ok(ProtocolChoice::Fddi),
            other => Err(format!(
                "unknown protocol `{other}` (expected 802.5, modified, or fddi)"
            )),
        }
    }
}

impl fmt::Display for ProtocolChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolChoice::Ieee8025 => f.write_str("IEEE 802.5"),
            ProtocolChoice::Modified => f.write_str("Modified IEEE 802.5"),
            ProtocolChoice::Fddi => f.write_str("FDDI"),
        }
    }
}

/// Output mode for `check`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OutputFormat {
    /// Human-readable report (the default).
    #[default]
    Plain,
    /// One machine-readable CSV row with the same canonical field names
    /// the admission service's wire protocol uses.
    Csv,
}

impl OutputFormat {
    fn parse(s: &str) -> Result<Self, String> {
        match s.to_ascii_lowercase().as_str() {
            "plain" | "text" => Ok(OutputFormat::Plain),
            "csv" => Ok(OutputFormat::Csv),
            other => Err(format!("unknown format `{other}` (expected plain or csv)")),
        }
    }
}

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub struct Cli {
    /// The subcommand to execute.
    pub command: Command,
}

/// The `ringrt` subcommands.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Analyze a message set under one protocol.
    Check {
        /// Path of the message-set file.
        file: String,
        /// Ring bandwidth in Mbps.
        mbps: f64,
        /// Protocol to test.
        protocol: ProtocolChoice,
        /// Ring stations (defaults to the stream count).
        stations: Option<usize>,
        /// Output mode.
        format: OutputFormat,
    },
    /// Simulate a message set under one protocol.
    Simulate {
        /// Path of the message-set file.
        file: String,
        /// Ring bandwidth in Mbps.
        mbps: f64,
        /// Protocol to simulate.
        protocol: ProtocolChoice,
        /// Ring stations (defaults to the stream count).
        stations: Option<usize>,
        /// Simulated seconds.
        seconds: f64,
        /// Offered asynchronous load fraction.
        async_load: f64,
        /// RNG seed.
        seed: u64,
    },
    /// Monte-Carlo average-breakdown-utilization estimate for the paper's
    /// random population at one bandwidth, all three protocols.
    Abu {
        /// Ring bandwidth in Mbps.
        mbps: f64,
        /// Ring stations / streams per set.
        stations: usize,
        /// Monte-Carlo samples.
        samples: usize,
        /// RNG seed.
        seed: u64,
    },
    /// Report all three protocols' headroom for a set across bandwidths.
    Sweep {
        /// Path of the message-set file.
        file: String,
        /// Bandwidth list in Mbps.
        mbps: Vec<f64>,
    },
    /// Run the online admission-control service (`ringrt-service`).
    Serve {
        /// Bind address (`host:port`; port 0 picks an ephemeral one).
        addr: String,
        /// Worker threads executing analyses.
        workers: usize,
        /// Bounded queue depth before requests are answered `BUSY`.
        queue_depth: usize,
        /// Default per-request queue deadline in milliseconds.
        deadline_ms: u64,
        /// Persistent registry state directory (`None` = in-memory).
        state_dir: Option<String>,
        /// Result-cache entry capacity (`None` = service default).
        cache_entries: Option<usize>,
        /// Log requests slower than this many milliseconds to stderr
        /// (`None` disables the slow-request log).
        slow_ms: Option<u64>,
        /// Whether the flight recorder captures spans (`--trace on|off`,
        /// default on). Off, spans cost one atomic load and `TRACE`
        /// returns an empty document.
        trace: bool,
        /// Run as a warm standby replicating the primary at this address
        /// (requires `--state-dir`).
        follow: Option<String>,
        /// Journal segment rotation threshold in bytes (`None` = the
        /// registry default).
        segment_bytes: Option<u64>,
        /// Auto-promote after the primary has been silent this long
        /// (`None` = promote only on an explicit `PROMOTE`).
        promote_timeout_ms: Option<u64>,
        /// Connection front end: blocking thread-per-connection, or epoll
        /// readiness loops (`--frontend threads|event`).
        frontend: Frontend,
        /// Open-connection cap; accepts beyond it answer `BUSY` (0 = off).
        max_conns: usize,
        /// Readiness loops for the event front end.
        event_loops: usize,
        /// Event front end: close connections idle this long (`None` keeps
        /// idle clients forever).
        idle_timeout_ms: Option<u64>,
        /// Close connections stalled mid-line this long (slow-loris guard;
        /// `None` = service default, 0 disables).
        read_deadline_ms: Option<u64>,
    },
    /// Drain a running server's flight recorder as Chrome trace JSON.
    Trace {
        /// Server address (`host:port`).
        addr: String,
        /// Maximum span events to drain.
        events: usize,
    },
    /// Promote a running follower to primary under a fresh epoch.
    Promote {
        /// Follower address (`host:port`).
        addr: String,
    },
    /// Print a running server's one-line replication status.
    Replication {
        /// Server address (`host:port`).
        addr: String,
    },
    /// Operate directly on a persistent ring-registry state directory.
    Registry {
        /// Directory holding the journal and snapshot.
        state_dir: String,
        /// What to do to the registry.
        action: RegistryAction,
    },
    /// Print usage.
    Help,
}

/// The `ringrt registry <action>` verbs.
#[derive(Debug, Clone, PartialEq)]
pub enum RegistryAction {
    /// Create a named ring.
    Register {
        /// Ring name.
        ring: String,
        /// Ring bandwidth in Mbps.
        mbps: f64,
        /// Protocol the ring runs.
        protocol: ProtocolChoice,
        /// Pinned station count (defaults to the stream count).
        stations: Option<usize>,
    },
    /// Admit one stream into a ring (incremental schedulability test).
    Admit {
        /// Ring name.
        ring: String,
        /// Stream name.
        stream: String,
        /// Stream period in milliseconds.
        period_ms: f64,
        /// Payload bits per period.
        bits: u64,
        /// Relative deadline in milliseconds (defaults to the period).
        deadline_ms: Option<f64>,
    },
    /// Remove one stream from a ring.
    Remove {
        /// Ring name.
        ring: String,
        /// Stream name.
        stream: String,
    },
    /// Delete a ring and its admitted streams.
    Unregister {
        /// Ring name.
        ring: String,
    },
    /// List rings, or show one ring's spec and admitted streams.
    Show {
        /// Ring to show (all rings when omitted).
        ring: Option<String>,
    },
    /// Fold the journal into a fresh snapshot.
    Compact,
}

/// Usage text.
pub const USAGE: &str = "\
ringrt — real-time token ring schedulability toolkit (Kamat & Zhao, ICDCS 1993)

USAGE:
  ringrt check    <set-file> --mbps <N> [--protocol 802.5|modified|fddi] [--stations N]
                  [--format plain|csv]
  ringrt simulate <set-file> --mbps <N> [--protocol 802.5|modified|fddi] [--stations N]
                  [--seconds S] [--async-load X] [--seed N]
  ringrt sweep    <set-file> --mbps <N>[,<N>...]
  ringrt abu      --mbps <N> [--stations N] [--samples N] [--seed N]
  ringrt serve    [--addr HOST:PORT] [--workers N] [--queue-depth N] [--deadline-ms N]
                  [--state-dir DIR] [--cache-entries N] [--slow-ms N] [--trace on|off]
                  [--segment-bytes N] [--follow HOST:PORT] [--promote-timeout-ms N]
                  [--frontend threads|event] [--event-loops N] [--max-conns N]
                  [--idle-timeout-ms N] [--read-deadline-ms N]
  ringrt trace    [--addr HOST:PORT] [--events N]
  ringrt promote     [--addr HOST:PORT]
  ringrt replication [--addr HOST:PORT]
  ringrt registry register   <ring> --state-dir DIR --mbps <N>
                             [--protocol 802.5|modified|fddi] [--stations N]
  ringrt registry admit      <ring> <stream> --state-dir DIR --period-ms <N> --bits <N>
                             [--deadline-ms N]
  ringrt registry remove     <ring> <stream> --state-dir DIR
  ringrt registry unregister <ring> --state-dir DIR
  ringrt registry show       [<ring>] --state-dir DIR
  ringrt registry compact    --state-dir DIR
  ringrt help

SET FILE: one `period_ms, payload_bits` pair per line; `#` comments allowed.

EXIT CODES: 0 schedulable/success · 1 unschedulable/misses · 2 usage error";

impl Cli {
    /// Parses the given arguments (excluding the program name).
    ///
    /// # Errors
    ///
    /// A human-readable message describing the first problem found.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Cli, String> {
        let mut it = args.into_iter().peekable();
        let sub = it.next().ok_or_else(|| USAGE.to_owned())?;
        match sub.as_str() {
            "help" | "--help" | "-h" => Ok(Cli {
                command: Command::Help,
            }),
            "check" => {
                let (file, flags) = split_flags(&mut it)?;
                let mbps = required_f64(&flags, "--mbps")?;
                Ok(Cli {
                    command: Command::Check {
                        file,
                        mbps,
                        protocol: optional_protocol(&flags)?,
                        stations: optional_usize(&flags, "--stations")?,
                        format: optional_format(&flags)?,
                    },
                })
            }
            "simulate" => {
                let (file, flags) = split_flags(&mut it)?;
                let mbps = required_f64(&flags, "--mbps")?;
                Ok(Cli {
                    command: Command::Simulate {
                        file,
                        mbps,
                        protocol: optional_protocol(&flags)?,
                        stations: optional_usize(&flags, "--stations")?,
                        seconds: optional_f64(&flags, "--seconds")?.unwrap_or(1.0),
                        async_load: optional_f64(&flags, "--async-load")?.unwrap_or(0.0),
                        seed: optional_u64(&flags, "--seed")?.unwrap_or(1),
                    },
                })
            }
            "abu" => {
                // No positional file: flags only.
                let flags = flags_only(&mut it)?;
                let mbps = required_f64(&flags, "--mbps")?;
                Ok(Cli {
                    command: Command::Abu {
                        mbps,
                        stations: optional_usize(&flags, "--stations")?.unwrap_or(100),
                        samples: optional_usize(&flags, "--samples")?.unwrap_or(50),
                        seed: optional_u64(&flags, "--seed")?.unwrap_or(1),
                    },
                })
            }
            "sweep" => {
                let (file, flags) = split_flags(&mut it)?;
                let raw = flag_value(&flags, "--mbps")
                    .ok_or_else(|| "sweep requires --mbps <N>[,<N>...]".to_owned())?;
                let mbps: Result<Vec<f64>, _> = raw.split(',').map(str::parse::<f64>).collect();
                let mbps = mbps.map_err(|_| format!("cannot parse bandwidth list `{raw}`"))?;
                if mbps.is_empty() || mbps.iter().any(|&m| !(m.is_finite() && m > 0.0)) {
                    return Err("bandwidths must be positive numbers".into());
                }
                Ok(Cli {
                    command: Command::Sweep { file, mbps },
                })
            }
            "serve" => {
                let flags = flags_only(&mut it)?;
                let workers = optional_usize(&flags, "--workers")?.unwrap_or(4);
                let queue_depth = optional_usize(&flags, "--queue-depth")?.unwrap_or(64);
                if workers == 0 || queue_depth == 0 {
                    return Err("--workers and --queue-depth must be at least 1".into());
                }
                let frontend = match flag_value(&flags, "--frontend") {
                    Some(raw) => raw.parse::<Frontend>()?,
                    None => Frontend::default(),
                };
                let event_loops = optional_usize(&flags, "--event-loops")?.unwrap_or(1);
                if event_loops == 0 {
                    return Err("--event-loops must be at least 1".into());
                }
                Ok(Cli {
                    command: Command::Serve {
                        addr: flag_value(&flags, "--addr")
                            .unwrap_or("127.0.0.1:7400")
                            .to_owned(),
                        workers,
                        queue_depth,
                        deadline_ms: optional_u64(&flags, "--deadline-ms")?.unwrap_or(2_000),
                        state_dir: flag_value(&flags, "--state-dir").map(str::to_owned),
                        cache_entries: optional_usize(&flags, "--cache-entries")?,
                        slow_ms: optional_u64(&flags, "--slow-ms")?,
                        trace: optional_switch(&flags, "--trace")?.unwrap_or(true),
                        follow: flag_value(&flags, "--follow").map(str::to_owned),
                        segment_bytes: optional_u64(&flags, "--segment-bytes")?,
                        promote_timeout_ms: optional_u64(&flags, "--promote-timeout-ms")?,
                        frontend,
                        max_conns: optional_usize(&flags, "--max-conns")?.unwrap_or(0),
                        event_loops,
                        idle_timeout_ms: optional_u64(&flags, "--idle-timeout-ms")?,
                        read_deadline_ms: optional_u64(&flags, "--read-deadline-ms")?,
                    },
                })
            }
            "trace" => {
                let flags = flags_only(&mut it)?;
                let events = optional_usize(&flags, "--events")?.unwrap_or(256);
                if events == 0 {
                    return Err("--events must be at least 1".into());
                }
                Ok(Cli {
                    command: Command::Trace {
                        addr: flag_value(&flags, "--addr")
                            .unwrap_or("127.0.0.1:7400")
                            .to_owned(),
                        events,
                    },
                })
            }
            "promote" | "replication" => {
                let flags = flags_only(&mut it)?;
                let addr = flag_value(&flags, "--addr")
                    .unwrap_or("127.0.0.1:7400")
                    .to_owned();
                Ok(Cli {
                    command: if sub == "promote" {
                        Command::Promote { addr }
                    } else {
                        Command::Replication { addr }
                    },
                })
            }
            "registry" => {
                let action = it.next().ok_or_else(|| {
                    format!(
                        "registry needs an action \
                         (register, admit, remove, unregister, show, compact)\n\n{USAGE}"
                    )
                })?;
                let (positionals, flags) = positionals_and_flags(&mut it)?;
                let state_dir = flag_value(&flags, "--state-dir")
                    .ok_or_else(|| "registry commands require --state-dir <DIR>".to_owned())?
                    .to_owned();
                let action = registry_action(&action, &positionals, &flags)?;
                Ok(Cli {
                    command: Command::Registry { state_dir, action },
                })
            }
            other => Err(format!("unknown command `{other}`\n\n{USAGE}")),
        }
    }
}

fn registry_action(
    action: &str,
    positionals: &[String],
    flags: &Flags,
) -> Result<RegistryAction, String> {
    match action {
        "register" => {
            let [ring] = fixed_positionals(positionals, "registry register", &["<ring>"])?;
            Ok(RegistryAction::Register {
                ring,
                mbps: required_f64(flags, "--mbps")?,
                protocol: optional_protocol(flags)?,
                stations: optional_usize(flags, "--stations")?,
            })
        }
        "admit" => {
            let [ring, stream] =
                fixed_positionals(positionals, "registry admit", &["<ring>", "<stream>"])?;
            Ok(RegistryAction::Admit {
                ring,
                stream,
                period_ms: required_f64(flags, "--period-ms")?,
                bits: optional_u64(flags, "--bits")?
                    .ok_or_else(|| "--bits is required".to_owned())?,
                deadline_ms: optional_f64(flags, "--deadline-ms")?,
            })
        }
        "remove" => {
            let [ring, stream] =
                fixed_positionals(positionals, "registry remove", &["<ring>", "<stream>"])?;
            Ok(RegistryAction::Remove { ring, stream })
        }
        "unregister" => {
            let [ring] = fixed_positionals(positionals, "registry unregister", &["<ring>"])?;
            Ok(RegistryAction::Unregister { ring })
        }
        "show" => match positionals {
            [] => Ok(RegistryAction::Show { ring: None }),
            [ring] => Ok(RegistryAction::Show {
                ring: Some(ring.clone()),
            }),
            more => Err(format!(
                "registry show takes at most one ring name, got {}",
                more.len()
            )),
        },
        "compact" => {
            if positionals.is_empty() {
                Ok(RegistryAction::Compact)
            } else {
                Err("registry compact takes no positional arguments".into())
            }
        }
        other => Err(format!(
            "unknown registry action `{other}` \
             (expected register, admit, remove, unregister, show, or compact)"
        )),
    }
}

/// Demands exactly `N` positional arguments, named in the error message.
fn fixed_positionals<const N: usize>(
    positionals: &[String],
    what: &str,
    names: &[&str; N],
) -> Result<[String; N], String> {
    <[String; N]>::try_from(positionals.to_vec())
        .map_err(|_| format!("{what} takes exactly: {}", names.join(" ")))
}

type Flags = Vec<(String, String)>;

/// Splits `<positional>* (--flag value)*`; positionals must come first.
fn positionals_and_flags<I: Iterator<Item = String>>(
    it: &mut I,
) -> Result<(Vec<String>, Flags), String> {
    let mut positionals = Vec::new();
    let mut flags = Vec::new();
    while let Some(arg) = it.next() {
        if arg.starts_with("--") {
            let value = it
                .next()
                .ok_or_else(|| format!("flag {arg} needs a value"))?;
            flags.push((arg, value));
        } else if flags.is_empty() {
            positionals.push(arg);
        } else {
            return Err(format!(
                "unexpected positional argument `{arg}` after flags"
            ));
        }
    }
    Ok((positionals, flags))
}

/// Collects `(--flag value)*` for subcommands without a positional file.
fn flags_only<I: Iterator<Item = String>>(it: &mut I) -> Result<Flags, String> {
    let mut flags = Vec::new();
    while let Some(flag) = it.next() {
        if !flag.starts_with("--") {
            return Err(format!("unexpected positional argument `{flag}`"));
        }
        let value = it
            .next()
            .ok_or_else(|| format!("flag {flag} needs a value"))?;
        flags.push((flag, value));
    }
    Ok(flags)
}

/// Splits `<file> (--flag value)*` into the positional file and flag pairs.
fn split_flags<I: Iterator<Item = String>>(it: &mut I) -> Result<(String, Flags), String> {
    let file = it
        .next()
        .filter(|f| !f.starts_with("--"))
        .ok_or_else(|| "expected a message-set file path".to_owned())?;
    let mut flags = Vec::new();
    while let Some(flag) = it.next() {
        if !flag.starts_with("--") {
            return Err(format!("unexpected positional argument `{flag}`"));
        }
        let value = it
            .next()
            .ok_or_else(|| format!("flag {flag} needs a value"))?;
        flags.push((flag, value));
    }
    Ok((file, flags))
}

fn flag_value<'a>(flags: &'a Flags, name: &str) -> Option<&'a str> {
    flags
        .iter()
        .rev()
        .find(|(f, _)| f == name)
        .map(|(_, v)| v.as_str())
}

fn required_f64(flags: &Flags, name: &str) -> Result<f64, String> {
    optional_f64(flags, name)?.ok_or_else(|| format!("{name} is required"))
}

fn optional_f64(flags: &Flags, name: &str) -> Result<Option<f64>, String> {
    flag_value(flags, name)
        .map(|v| {
            v.parse::<f64>()
                .map_err(|_| format!("invalid value `{v}` for {name}"))
        })
        .transpose()
}

fn optional_u64(flags: &Flags, name: &str) -> Result<Option<u64>, String> {
    flag_value(flags, name)
        .map(|v| {
            v.parse::<u64>()
                .map_err(|_| format!("invalid value `{v}` for {name}"))
        })
        .transpose()
}

/// Parses an `on`/`off` switch flag.
fn optional_switch(flags: &Flags, name: &str) -> Result<Option<bool>, String> {
    flag_value(flags, name)
        .map(|v| match v.to_ascii_lowercase().as_str() {
            "on" | "true" | "1" => Ok(true),
            "off" | "false" | "0" => Ok(false),
            other => Err(format!(
                "invalid value `{other}` for {name} (expected on or off)"
            )),
        })
        .transpose()
}

fn optional_usize(flags: &Flags, name: &str) -> Result<Option<usize>, String> {
    flag_value(flags, name)
        .map(|v| {
            v.parse::<usize>()
                .map_err(|_| format!("invalid value `{v}` for {name}"))
        })
        .transpose()
}

fn optional_protocol(flags: &Flags) -> Result<ProtocolChoice, String> {
    flag_value(flags, "--protocol")
        .map(ProtocolChoice::parse)
        .transpose()
        .map(Option::unwrap_or_default)
}

fn optional_format(flags: &Flags) -> Result<OutputFormat, String> {
    flag_value(flags, "--format")
        .map(OutputFormat::parse)
        .transpose()
        .map(Option::unwrap_or_default)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Cli, String> {
        Cli::parse(args.iter().map(|s| (*s).to_owned()))
    }

    #[test]
    fn check_command() {
        let cli = parse(&["check", "set.txt", "--mbps", "16", "--protocol", "fddi"]).unwrap();
        assert_eq!(
            cli.command,
            Command::Check {
                file: "set.txt".into(),
                mbps: 16.0,
                protocol: ProtocolChoice::Fddi,
                stations: None,
                format: OutputFormat::Plain,
            }
        );
    }

    #[test]
    fn check_format_flag() {
        let cli = parse(&["check", "set.txt", "--mbps", "4", "--format", "csv"]).unwrap();
        match cli.command {
            Command::Check { format, .. } => assert_eq!(format, OutputFormat::Csv),
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse(&["check", "f", "--mbps", "4", "--format", "xml"]).is_err());
    }

    #[test]
    fn serve_command() {
        let cli = parse(&["serve"]).unwrap();
        assert_eq!(
            cli.command,
            Command::Serve {
                addr: "127.0.0.1:7400".into(),
                workers: 4,
                queue_depth: 64,
                deadline_ms: 2_000,
                state_dir: None,
                cache_entries: None,
                slow_ms: None,
                trace: true,
                follow: None,
                segment_bytes: None,
                promote_timeout_ms: None,
                frontend: Frontend::Threads,
                max_conns: 0,
                event_loops: 1,
                idle_timeout_ms: None,
                read_deadline_ms: None,
            }
        );
        let cli = parse(&[
            "serve",
            "--addr",
            "0.0.0.0:9000",
            "--workers",
            "2",
            "--queue-depth",
            "8",
            "--deadline-ms",
            "500",
            "--state-dir",
            "/tmp/rings",
            "--cache-entries",
            "128",
            "--slow-ms",
            "250",
            "--trace",
            "off",
            "--follow",
            "10.0.0.9:7400",
            "--segment-bytes",
            "65536",
            "--promote-timeout-ms",
            "3000",
            "--frontend",
            "event",
            "--max-conns",
            "20000",
            "--event-loops",
            "2",
            "--idle-timeout-ms",
            "60000",
            "--read-deadline-ms",
            "5000",
        ])
        .unwrap();
        assert_eq!(
            cli.command,
            Command::Serve {
                addr: "0.0.0.0:9000".into(),
                workers: 2,
                queue_depth: 8,
                deadline_ms: 500,
                state_dir: Some("/tmp/rings".into()),
                cache_entries: Some(128),
                slow_ms: Some(250),
                trace: false,
                follow: Some("10.0.0.9:7400".into()),
                segment_bytes: Some(65536),
                promote_timeout_ms: Some(3000),
                frontend: Frontend::Event,
                max_conns: 20000,
                event_loops: 2,
                idle_timeout_ms: Some(60000),
                read_deadline_ms: Some(5000),
            }
        );
        assert!(parse(&["serve", "--workers", "0"]).is_err());
        assert!(parse(&["serve", "stray"]).is_err());
        assert!(parse(&["serve", "--trace", "maybe"]).is_err());
        assert!(parse(&["serve", "--frontend", "uring"]).is_err());
        assert!(parse(&["serve", "--event-loops", "0"]).is_err());
    }

    #[test]
    fn promote_and_replication_commands() {
        assert_eq!(
            parse(&["promote"]).unwrap().command,
            Command::Promote {
                addr: "127.0.0.1:7400".into()
            }
        );
        assert_eq!(
            parse(&["promote", "--addr", "10.0.0.2:7401"])
                .unwrap()
                .command,
            Command::Promote {
                addr: "10.0.0.2:7401".into()
            }
        );
        assert_eq!(
            parse(&["replication", "--addr", "10.0.0.2:7401"])
                .unwrap()
                .command,
            Command::Replication {
                addr: "10.0.0.2:7401".into()
            }
        );
        assert!(parse(&["promote", "stray"]).is_err());
    }

    #[test]
    fn trace_command() {
        let cli = parse(&["trace"]).unwrap();
        assert_eq!(
            cli.command,
            Command::Trace {
                addr: "127.0.0.1:7400".into(),
                events: 256,
            }
        );
        let cli = parse(&["trace", "--addr", "10.0.0.1:7401", "--events", "64"]).unwrap();
        assert_eq!(
            cli.command,
            Command::Trace {
                addr: "10.0.0.1:7401".into(),
                events: 64,
            }
        );
        assert!(parse(&["trace", "--events", "0"]).is_err());
        assert!(parse(&["trace", "stray"]).is_err());
    }

    #[test]
    fn registry_register() {
        let cli = parse(&[
            "registry",
            "register",
            "lab",
            "--state-dir",
            "/tmp/s",
            "--mbps",
            "16",
            "--protocol",
            "fddi",
            "--stations",
            "12",
        ])
        .unwrap();
        assert_eq!(
            cli.command,
            Command::Registry {
                state_dir: "/tmp/s".into(),
                action: RegistryAction::Register {
                    ring: "lab".into(),
                    mbps: 16.0,
                    protocol: ProtocolChoice::Fddi,
                    stations: Some(12),
                },
            }
        );
    }

    #[test]
    fn registry_admit_takes_two_positionals() {
        let cli = parse(&[
            "registry",
            "admit",
            "lab",
            "video",
            "--state-dir",
            "/tmp/s",
            "--period-ms",
            "20",
            "--bits",
            "20000",
        ])
        .unwrap();
        assert_eq!(
            cli.command,
            Command::Registry {
                state_dir: "/tmp/s".into(),
                action: RegistryAction::Admit {
                    ring: "lab".into(),
                    stream: "video".into(),
                    period_ms: 20.0,
                    bits: 20_000,
                    deadline_ms: None,
                },
            }
        );
        // Missing the stream positional.
        let err = parse(&[
            "registry",
            "admit",
            "lab",
            "--state-dir",
            "/tmp/s",
            "--period-ms",
            "20",
            "--bits",
            "1",
        ])
        .unwrap_err();
        assert!(err.contains("<ring> <stream>"), "{err}");
    }

    #[test]
    fn registry_show_and_compact() {
        let cli = parse(&["registry", "show", "--state-dir", "/tmp/s"]).unwrap();
        assert_eq!(
            cli.command,
            Command::Registry {
                state_dir: "/tmp/s".into(),
                action: RegistryAction::Show { ring: None },
            }
        );
        let cli = parse(&["registry", "show", "lab", "--state-dir", "/tmp/s"]).unwrap();
        match cli.command {
            Command::Registry {
                action: RegistryAction::Show { ring },
                ..
            } => assert_eq!(ring.as_deref(), Some("lab")),
            other => panic!("unexpected {other:?}"),
        }
        let cli = parse(&["registry", "compact", "--state-dir", "/tmp/s"]).unwrap();
        match cli.command {
            Command::Registry { action, .. } => assert_eq!(action, RegistryAction::Compact),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn registry_errors() {
        assert!(parse(&["registry"]).unwrap_err().contains("action"));
        assert!(parse(&["registry", "frob", "--state-dir", "/tmp/s"])
            .unwrap_err()
            .contains("unknown registry action"));
        assert!(parse(&["registry", "show"])
            .unwrap_err()
            .contains("--state-dir"));
        assert!(parse(&["registry", "compact", "x", "--state-dir", "/tmp/s"]).is_err());
        assert!(parse(&[
            "registry",
            "admit",
            "lab",
            "v",
            "--state-dir",
            "/tmp/s",
            "--period-ms",
            "20"
        ])
        .unwrap_err()
        .contains("--bits"));
        // Positionals after flags are rejected.
        assert!(parse(&["registry", "remove", "lab", "--state-dir", "/tmp/s", "v"]).is_err());
    }

    #[test]
    fn simulate_defaults() {
        let cli = parse(&["simulate", "set.txt", "--mbps", "4"]).unwrap();
        match cli.command {
            Command::Simulate {
                protocol,
                seconds,
                async_load,
                seed,
                stations,
                ..
            } => {
                assert_eq!(protocol, ProtocolChoice::Modified);
                assert_eq!(seconds, 1.0);
                assert_eq!(async_load, 0.0);
                assert_eq!(seed, 1);
                assert_eq!(stations, None);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn sweep_list() {
        let cli = parse(&["sweep", "set.txt", "--mbps", "1,10,100"]).unwrap();
        assert_eq!(
            cli.command,
            Command::Sweep {
                file: "set.txt".into(),
                mbps: vec![1.0, 10.0, 100.0],
            }
        );
    }

    #[test]
    fn protocol_aliases() {
        for (alias, want) in [
            ("802.5", ProtocolChoice::Ieee8025),
            ("standard", ProtocolChoice::Ieee8025),
            ("mod", ProtocolChoice::Modified),
            ("TTP", ProtocolChoice::Fddi),
        ] {
            let cli = parse(&["check", "f", "--mbps", "1", "--protocol", alias]).unwrap();
            match cli.command {
                Command::Check { protocol, .. } => assert_eq!(protocol, want, "{alias}"),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn errors() {
        assert!(parse(&[]).is_err());
        assert!(parse(&["frobnicate"]).is_err());
        assert!(parse(&["check"]).is_err());
        assert!(parse(&["check", "f"]).unwrap_err().contains("--mbps"));
        assert!(parse(&["check", "f", "--mbps", "NaNx"]).is_err());
        assert!(parse(&["check", "f", "--mbps", "1", "--protocol", "atm"]).is_err());
        assert!(parse(&["sweep", "f", "--mbps", "1,-2"]).is_err());
        assert!(parse(&["check", "f", "--mbps"])
            .unwrap_err()
            .contains("needs a value"));
        assert!(parse(&["check", "f", "--mbps", "1", "stray"]).is_err());
    }

    #[test]
    fn abu_command() {
        let cli = parse(&[
            "abu",
            "--mbps",
            "100",
            "--stations",
            "20",
            "--samples",
            "10",
        ])
        .unwrap();
        assert_eq!(
            cli.command,
            Command::Abu {
                mbps: 100.0,
                stations: 20,
                samples: 10,
                seed: 1,
            }
        );
        assert!(parse(&["abu"]).unwrap_err().contains("--mbps"));
        assert!(parse(&["abu", "positional"]).is_err());
    }

    #[test]
    fn help() {
        assert_eq!(parse(&["help"]).unwrap().command, Command::Help);
        assert_eq!(parse(&["--help"]).unwrap().command, Command::Help);
        assert!(USAGE.contains("ringrt check"));
    }

    #[test]
    fn last_flag_wins() {
        let cli = parse(&["check", "f", "--mbps", "1", "--mbps", "2"]).unwrap();
        match cli.command {
            Command::Check { mbps, .. } => assert_eq!(mbps, 2.0),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn display() {
        assert_eq!(ProtocolChoice::Fddi.to_string(), "FDDI");
        assert_eq!(ProtocolChoice::Ieee8025.to_string(), "IEEE 802.5");
        assert_eq!(ProtocolChoice::default(), ProtocolChoice::Modified);
    }
}
