//! The shared parallel execution layer for ringrt's hot paths.
//!
//! Every compute-bound loop in the workspace — Monte-Carlo ABU sampling,
//! saturation multisection, service `ABU`/`BATCH` fan-out, experiment
//! sweeps — runs on the same primitive: a **sharded, work-stealing,
//! scoped pool** built from nothing but `std::thread::scope` and one
//! atomic word per worker group. There is no persistent thread pool and
//! no channel machinery: a [`Pool`] is a thread-count policy plus an
//! arbitration counter, and each [`Pool::map`] call spawns scoped
//! workers, seeds each with its own contiguous index range (a
//! [`shard`](crate::map) packed into one `AtomicU64`), and lets idle
//! workers steal half-ranges from the busiest victim when their own
//! shard runs dry.
//!
//! Compared to the original single shared cursor, the common case —
//! evenly priced items — touches only the worker's *own* cache line,
//! and the uncommon case — one pathologically slow item — rebalances by
//! splitting the straggler's remaining range instead of serializing
//! behind it.
//!
//! # Determinism
//!
//! `map(n, f)` always returns `f(0), f(1), …, f(n-1)` **in index order**
//! regardless of thread count, stealing, or scheduling: workers collect
//! `(start, results)` runs locally and the runs are merge-sorted by
//! start index before returning. Combined with per-index seed derivation
//! ([`splitmix64`]) this is what lets `BreakdownEstimator` promise
//! bit-identical estimates at any thread count — with stealing active.
//!
//! # Nested parallelism
//!
//! A `map` issued from *inside* a pool worker (a huge analytic job
//! splitting its sample work) is arbitrated against the pool's live
//! worker count: it may claim only idle slots plus the caller's own
//! (the caller parks while the scope runs), and when nothing is idle it
//! degrades to an inline serial loop. Arbitration never blocks waiting
//! for slots, so nesting can never deadlock — the worst case is serial
//! execution on the calling thread. Top-level calls arbitrate the same
//! way, so concurrent `BATCH` fan-out cannot oversubscribe the machine.
//!
//! # Affinity
//!
//! Workers are spawned affinity-aware: worker *g* is pinned (best
//! effort, via a thin `sched_setaffinity` FFI shim mirroring
//! `ringrt-net`'s epoll module) to CPU `g mod ncpus`. Pinning failures
//! — and non-Linux targets, where the shim reports `Unsupported` — are
//! silently ignored; the pool is correct unpinned.
//!
//! # Thread-count policy
//!
//! [`Pool::from_env`] honors the `RINGRT_THREADS` environment variable
//! (clamped to ≥ 1) and falls back to
//! [`std::thread::available_parallelism`]. Set `RINGRT_THREADS=1` to force
//! every parallel path through its serial fallback — CI runs the whole
//! test suite under `RINGRT_THREADS=1`, `2`, and `4`.

#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

mod affinity;
mod shard;

use std::cell::Cell;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use ringrt_obs::Recorder;
use shard::RangeShard;

/// Environment variable overriding the worker thread count.
pub const THREADS_ENV: &str = "RINGRT_THREADS";

thread_local! {
    /// How many pool scopes enclose the current thread: 0 on ordinary
    /// threads, ≥ 1 inside a pool worker. Drives nested-map arbitration.
    static POOL_DEPTH: Cell<usize> = const { Cell::new(0) };
}

/// SplitMix64's finalizing mix: a bijective avalanche of all 64 bits.
///
/// Used to turn structured inputs (a master seed, a sample index, one word
/// of a parent RNG stream) into decorrelated per-task seeds. The constants
/// are Vigna's reference SplitMix64 — the same mixer the vendored
/// `rand::rngs::StdRng` uses to expand its seed.
#[must_use]
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the `k`-th task seed from a master seed: the splitmix-style
/// stream `splitmix64(master + k·GOLDEN)`, statistically independent
/// across both `k` and nearby master seeds.
#[must_use]
pub fn derive_seed(master: u64, k: u64) -> u64 {
    splitmix64(master ^ splitmix64(k))
}

/// Parses a thread-count override string: `Some(n ≥ 1)` for a valid
/// positive integer, `None` otherwise (empty, garbage, or zero).
#[must_use]
pub fn parse_threads(raw: &str) -> Option<usize> {
    raw.trim().parse::<usize>().ok().filter(|&n| n > 0)
}

/// The configured worker thread count: `RINGRT_THREADS` if set to a
/// positive integer, else the machine's available parallelism, else 1.
#[must_use]
pub fn configured_threads() -> usize {
    std::env::var(THREADS_ENV)
        .ok()
        .as_deref()
        .and_then(parse_threads)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// Cumulative counters for one pool: how much work ran and how it spread
/// over workers. Cheap relaxed atomics, bumped once per chunk/steal.
#[derive(Debug, Default)]
struct PoolCounters {
    /// `map` invocations that actually spawned threads.
    parallel_runs: AtomicU64,
    /// `map` invocations served on the calling thread.
    serial_runs: AtomicU64,
    /// Total items processed.
    items: AtomicU64,
    /// Total chunks claimed by workers (parallel runs only).
    chunks: AtomicU64,
    /// Rounds in which a worker went looking for a victim shard.
    steal_attempts: AtomicU64,
    /// Steals that actually transferred a half-range.
    steals_ok: AtomicU64,
    /// `map` calls issued from inside a worker that fanned out again.
    nested_splits: AtomicU64,
}

/// A snapshot of a pool's lifetime counters (see [`Pool::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Configured worker thread count.
    pub threads: usize,
    /// `map` calls that fanned out across scoped threads.
    pub parallel_runs: u64,
    /// `map` calls answered serially (1 thread, ≤ 1 item, or no idle
    /// slots to arbitrate onto).
    pub serial_runs: u64,
    /// Items processed across all calls.
    pub items: u64,
    /// Chunks claimed across all parallel calls.
    pub chunks: u64,
    /// Victim-search rounds (every worker performs at least one as it
    /// drains — a zero here means no parallel run ever happened).
    pub steal_attempts: u64,
    /// Successful half-range transfers between worker shards.
    pub steals_ok: u64,
    /// Nested `map` calls that split across idle workers.
    pub nested_splits: u64,
}

/// The deterministic steal-injection hook: called once per worker
/// scheduling round with `(worker_index, round)`; returning `true`
/// forces that worker to attempt a steal before touching its own shard.
/// Test-only machinery for driving the take/steal race on demand.
pub type StealInjector = dyn Fn(usize, u64) -> bool + Send + Sync;

/// A scoped work pool: a thread-count policy plus usage counters and a
/// live-worker arbitration count.
///
/// Cloning or sharing: the pool is `Sync`; one instance can serve any
/// number of concurrent `map` calls. Calls arbitrate over the same slot
/// budget, so simultaneous maps share the machine instead of
/// oversubscribing it.
///
/// # Examples
///
/// ```
/// use ringrt_exec::Pool;
///
/// let pool = Pool::new(4);
/// let squares = pool.map(10, |i| i * i);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49, 64, 81]);
/// ```
pub struct Pool {
    threads: usize,
    counters: PoolCounters,
    recorder: Arc<Recorder>,
    /// Worker slots currently reserved by in-flight `map` calls.
    active: AtomicUsize,
    /// Pin worker *g* to CPU `g % ncpus` (best effort).
    affinity: bool,
    /// Fixed chunk size override (`None` = auto: ~4 claims per worker).
    chunk: Option<usize>,
    steal_injector: Option<Arc<StealInjector>>,
}

impl fmt::Debug for Pool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Pool")
            .field("threads", &self.threads)
            .field("active", &self.active.load(Ordering::Relaxed))
            .field("affinity", &self.affinity)
            .field("chunk", &self.chunk)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl Pool {
    /// A pool running up to `threads` workers per `map` call.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero — need at least one worker thread.
    #[must_use]
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "need at least one worker thread");
        Pool {
            threads,
            counters: PoolCounters::default(),
            recorder: Arc::new(Recorder::disabled()),
            active: AtomicUsize::new(0),
            affinity: true,
            chunk: None,
            steal_injector: None,
        }
    }

    /// Attaches a flight recorder: subsequent [`Pool::map`] calls emit an
    /// `exec`/`map` span per call and an `exec`/`chunk` span per claimed
    /// chunk (parallel runs), so pool fan-out shows up alongside the
    /// service and registry stages in `TRACE` output.
    #[must_use]
    pub fn with_recorder(mut self, recorder: Arc<Recorder>) -> Self {
        self.recorder = recorder;
        self
    }

    /// Enables or disables best-effort worker CPU pinning (default on;
    /// a no-op off Linux or when `sched_setaffinity` fails).
    #[must_use]
    pub fn with_affinity(mut self, enabled: bool) -> Self {
        self.affinity = enabled;
        self
    }

    /// Overrides the per-claim chunk size (`0` restores the automatic
    /// policy of roughly four claims per worker). Exists so property
    /// tests can sweep pathological chunkings.
    #[must_use]
    pub fn with_chunk_size(mut self, chunk: usize) -> Self {
        self.chunk = (chunk > 0).then_some(chunk);
        self
    }

    /// Installs a deterministic steal-injection hook (see
    /// [`StealInjector`]): a forced-steal schedule for tests that need
    /// to exercise the take/steal race or prove stealing leaves results
    /// bit-identical. Production pools leave this unset.
    #[must_use]
    pub fn with_steal_injection<F>(mut self, decide: F) -> Self
    where
        F: Fn(usize, u64) -> bool + Send + Sync + 'static,
    {
        self.steal_injector = Some(Arc::new(decide));
        self
    }

    /// A single-threaded pool: every `map` runs inline on the caller.
    #[must_use]
    pub fn serial() -> Self {
        Pool::new(1)
    }

    /// A pool sized by [`configured_threads`] (`RINGRT_THREADS` override,
    /// else available parallelism).
    #[must_use]
    pub fn from_env() -> Self {
        Pool::new(configured_threads())
    }

    /// The configured worker count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Lifetime usage counters, read in a single pass. Each field is an
    /// independent monotone counter, so the snapshot is internally
    /// consistent up to in-flight increments (no torn multi-shard
    /// reads: every counter lives in one atomic word).
    #[must_use]
    pub fn stats(&self) -> PoolStats {
        let c = &self.counters;
        PoolStats {
            threads: self.threads,
            parallel_runs: c.parallel_runs.load(Ordering::Relaxed),
            serial_runs: c.serial_runs.load(Ordering::Relaxed),
            items: c.items.load(Ordering::Relaxed),
            chunks: c.chunks.load(Ordering::Relaxed),
            steal_attempts: c.steal_attempts.load(Ordering::Relaxed),
            steals_ok: c.steals_ok.load(Ordering::Relaxed),
            nested_splits: c.nested_splits.load(Ordering::Relaxed),
        }
    }

    /// Applies `f` to every index in `0..n` and returns the results in
    /// index order, fanning the work across idle worker slots (up to
    /// `self.threads()`).
    ///
    /// Work distribution is sharded stealing: each worker is seeded with
    /// a contiguous range shard and drains it chunk-by-chunk off the
    /// front; a worker whose shard runs dry steals the upper half of the
    /// busiest victim's remaining range, banks the excess in its own
    /// shard (re-stealable), and keeps going. A slow item therefore
    /// cannot leave the other workers idle behind a static partition,
    /// and evenly priced items never contend on a shared cursor.
    ///
    /// Results are reassembled in index order, making the output
    /// independent of thread count, stealing, and scheduling.
    ///
    /// # Panics
    ///
    /// Propagates a panic from `f` (the surrounding scope re-raises it).
    /// Panics if `n` exceeds `u32::MAX` (ranges are packed per shard).
    pub fn map<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.counters.items.fetch_add(n as u64, Ordering::Relaxed);
        let _map_span = self.recorder.span("exec", "map");
        let depth = POOL_DEPTH.with(Cell::get);

        // Arbitrate: claim idle slots (plus the caller's own when the
        // caller *is* a parked worker). Never waits — zero idle slots
        // just means an inline serial run, so nesting cannot deadlock.
        let (workers, reserved) = loop {
            let cur = self.active.load(Ordering::Acquire);
            let idle = self.threads.saturating_sub(cur);
            let budget = if depth > 0 { idle + 1 } else { idle.max(1) };
            let want = budget.min(n);
            if want <= 1 {
                break (1usize, 0usize);
            }
            match self.active.compare_exchange_weak(
                cur,
                cur + want,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => break (want, want),
                Err(_) => continue,
            }
        };
        if workers <= 1 {
            self.counters.serial_runs.fetch_add(1, Ordering::Relaxed);
            return (0..n).map(f).collect();
        }
        assert!(u32::try_from(n).is_ok(), "map range exceeds u32::MAX items");
        self.counters.parallel_runs.fetch_add(1, Ordering::Relaxed);
        if depth > 0 {
            self.counters.nested_splits.fetch_add(1, Ordering::Relaxed);
        }
        let _release = ReleaseSlots(&self.active, reserved);

        let chunk = self.chunk.unwrap_or_else(|| (n / (4 * workers)).max(1));
        // Balanced static partition seeds the shards; stealing handles
        // whatever imbalance the items themselves introduce.
        let shards: Vec<RangeShard> = (0..workers)
            .map(|g| {
                let (base, rem) = (n / workers, n % workers);
                let lo = g * base + g.min(rem);
                RangeShard::new(lo, lo + base + usize::from(g < rem))
            })
            .collect();
        let ncpus = std::thread::available_parallelism().map_or(1, |p| p.get());
        let injector = self.steal_injector.as_deref();
        let runs: Mutex<Vec<(usize, Vec<T>)>> = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            let (shards, runs, f) = (&shards, &runs, &f);
            for g in 0..workers {
                let pin = self.affinity;
                scope.spawn(move || {
                    if pin {
                        // Best effort: failure means the OS scheduler
                        // keeps placing this worker.
                        let _ = affinity::pin_current_thread(g % ncpus);
                    }
                    POOL_DEPTH.with(|d| d.set(depth + 1));
                    let mut local: Vec<(usize, Vec<T>)> = Vec::new();
                    self.worker_loop(g, shards, chunk, injector, f, &mut local);
                    if !local.is_empty() {
                        runs.lock()
                            .expect("exec result buffer poisoned")
                            .extend(local);
                    }
                });
            }
        });
        let mut runs = runs.into_inner().expect("exec result buffer poisoned");
        runs.sort_unstable_by_key(|(lo, _)| *lo);
        let mut out = Vec::with_capacity(n);
        for (_, part) in runs {
            out.extend(part);
        }
        debug_assert_eq!(out.len(), n);
        out
    }

    /// One worker's schedule: drain own shard off the front; when dry
    /// (or when the steal injector forces it), split the busiest
    /// victim's remaining range off the back.
    fn worker_loop<T, F>(
        &self,
        g: usize,
        shards: &[RangeShard],
        chunk: usize,
        injector: Option<&StealInjector>,
        f: &F,
        local: &mut Vec<(usize, Vec<T>)>,
    ) where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let mut round: u64 = 0;
        loop {
            round += 1;
            let forced = injector.is_some_and(|inj| inj(g, round));
            if !forced {
                if let Some((lo, hi)) = shards[g].take(chunk) {
                    self.run_chunk(f, local, lo, hi);
                    continue;
                }
            }
            // Own shard dry (or a forced-steal round): pick the victim
            // with the most remaining work. The remaining() reads race
            // with the victims' own progress — stale choices only cost
            // an extra round, never correctness.
            self.counters.steal_attempts.fetch_add(1, Ordering::Relaxed);
            let victim = shards
                .iter()
                .enumerate()
                .filter(|&(v, _)| v != g)
                .map(|(v, s)| (s.remaining(), v))
                .max()
                .filter(|&(rem, _)| rem > 0)
                .map(|(_, v)| v);
            let Some(victim) = victim else {
                // Nothing stealable. Forced rounds fall back to their
                // own shard; a genuinely dry worker is done.
                if let Some((lo, hi)) = shards[g].take(chunk) {
                    self.run_chunk(f, local, lo, hi);
                    continue;
                }
                break;
            };
            if let Some((lo, hi)) = shards[victim].steal_half() {
                self.counters.steals_ok.fetch_add(1, Ordering::Relaxed);
                if shards[g].remaining() == 0 {
                    // Bank everything past the first chunk in our own
                    // (empty, hence inert) shard so other idle workers
                    // can re-steal from us.
                    let split = (lo + chunk).min(hi);
                    if split < hi {
                        shards[g].put(split, hi);
                    }
                    self.run_chunk(f, local, lo, split);
                } else {
                    // Forced steal while our shard still holds work: the
                    // banked-slot invariant (put only into an empty
                    // shard) forbids banking, so run the range inline.
                    let mut cur = lo;
                    while cur < hi {
                        let end = (cur + chunk).min(hi);
                        self.run_chunk(f, local, cur, end);
                        cur = end;
                    }
                }
            }
        }
    }

    fn run_chunk<T, F>(&self, f: &F, local: &mut Vec<(usize, Vec<T>)>, lo: usize, hi: usize)
    where
        F: Fn(usize) -> T,
    {
        self.counters.chunks.fetch_add(1, Ordering::Relaxed);
        let _chunk_span = self.recorder.span("exec", "chunk");
        local.push((lo, (lo..hi).map(f).collect()));
    }

    /// Like [`Pool::map`] over an explicit slice of inputs: returns
    /// `f(&items[0]), …` in order.
    pub fn map_slice<'a, I, T, F>(&self, items: &'a [I], f: F) -> Vec<T>
    where
        I: Sync,
        T: Send,
        F: Fn(&'a I) -> T + Sync,
    {
        self.map(items.len(), |i| f(&items[i]))
    }
}

/// Panic-safe release of arbitration slots: runs even when a worker
/// panic unwinds out of the scope, so a poisoned `map` cannot leak
/// reserved width and wedge later calls into serial mode.
struct ReleaseSlots<'a>(&'a AtomicUsize, usize);

impl Drop for ReleaseSlots<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(self.1, Ordering::AcqRel);
    }
}

impl Default for Pool {
    fn default() -> Self {
        Pool::from_env()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_index_order() {
        let pool = Pool::new(8);
        for n in [0usize, 1, 2, 7, 64, 1000] {
            let out = pool.map(n, |i| i * 3);
            assert_eq!(out, (0..n).map(|i| i * 3).collect::<Vec<_>>(), "n={n}");
        }
    }

    #[test]
    fn map_matches_serial_for_any_thread_count() {
        let serial = Pool::serial().map(123, |i| (i as u64).wrapping_mul(0x9E37));
        for threads in [2, 3, 5, 16] {
            let parallel = Pool::new(threads).map(123, |i| (i as u64).wrapping_mul(0x9E37));
            assert_eq!(serial, parallel, "threads={threads}");
        }
    }

    #[test]
    fn map_actually_uses_multiple_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let pool = Pool::new(4);
        let ids = Mutex::new(HashSet::new());
        // Enough items that the four workers all claim at least one chunk;
        // a short sleep keeps the first worker from draining everything
        // before the others start.
        pool.map(64, |_| {
            std::thread::sleep(std::time::Duration::from_micros(200));
            ids.lock().unwrap().insert(std::thread::current().id());
        });
        assert!(ids.lock().unwrap().len() > 1, "expected fan-out");
    }

    #[test]
    fn uneven_item_costs_rebalance() {
        // One pathologically slow item must not serialize the rest: the
        // other workers drain their shards and then steal the slow
        // worker's banked remainder out from under it.
        let pool = Pool::new(4);
        let out = pool.map(32, |i| {
            if i == 0 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            i
        });
        assert_eq!(out.len(), 32);
    }

    #[test]
    fn stats_accumulate() {
        let pool = Pool::new(2);
        let _ = pool.map(10, |i| i);
        let _ = pool.map(0, |i| i);
        let s = pool.stats();
        assert_eq!(s.threads, 2);
        assert_eq!(s.items, 10);
        assert_eq!(s.parallel_runs + s.serial_runs, 2);
    }

    #[test]
    fn every_parallel_run_ends_in_a_victim_search() {
        // A worker only exits after one failed steal round, so a
        // parallel map always contributes at least `workers` attempts.
        let pool = Pool::new(3);
        let _ = pool.map(300, |i| i);
        let s = pool.stats();
        if s.parallel_runs == 1 {
            assert!(s.steal_attempts >= 3, "{s:?}");
        }
    }

    #[test]
    fn forced_steals_transfer_work_and_preserve_results() {
        // Worker 1 is forced to steal every round; worker 0 is slow
        // enough that its shard is still populated when the steal lands.
        let pool = Pool::new(2).with_steal_injection(|g, _round| g == 1);
        let out = pool.map(16, |i| {
            std::thread::sleep(std::time::Duration::from_millis(1));
            i * 7
        });
        assert_eq!(out, (0..16).map(|i| i * 7).collect::<Vec<_>>());
        let s = pool.stats();
        assert!(s.steals_ok >= 1, "forced schedule must steal: {s:?}");
    }

    #[test]
    fn nested_map_splits_across_idle_workers() {
        let pool = Pool::new(4);
        // Outer width 2 leaves two idle slots; each inner map may claim
        // idle slots + the parked caller's own.
        let out = pool.map(2, |i| {
            std::thread::sleep(std::time::Duration::from_millis(2));
            pool.map(8, move |j| i * 100 + j)
        });
        assert_eq!(out[0], (0..8).collect::<Vec<_>>());
        assert_eq!(out[1], (0..8).map(|j| 100 + j).collect::<Vec<_>>());
        // At least one of the inner maps should have found idle width.
        assert!(pool.stats().nested_splits >= 1, "{:?}", pool.stats());
    }

    #[test]
    fn nested_map_on_a_saturated_pool_runs_serial_not_deadlocked() {
        let pool = Pool::new(2);
        // Outer map claims both slots; inner maps see zero idle slots
        // plus their own parked one → inline serial. Completion at all
        // is the deadlock-freedom assertion.
        let out = pool.map(2, |i| pool.map(64, move |j| i * 1000 + j).len());
        assert_eq!(out, vec![64, 64]);
    }

    #[test]
    fn arbitration_releases_slots_between_runs() {
        let pool = Pool::new(4);
        let _ = pool.map(64, |i| i);
        let _ = pool.map(64, |i| i);
        // Both runs saw a fully idle pool, so both fanned out.
        assert_eq!(pool.stats().parallel_runs, 2, "{:?}", pool.stats());
        assert_eq!(pool.active.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn chunk_override_still_matches_serial() {
        let serial = Pool::serial().map(97, |i| (i as u64).wrapping_mul(31));
        for chunk in [1usize, 2, 7, 97, 4096] {
            let pool = Pool::new(4).with_chunk_size(chunk);
            assert_eq!(
                pool.map(97, |i| (i as u64).wrapping_mul(31)),
                serial,
                "chunk={chunk}"
            );
        }
    }

    #[test]
    fn serial_pool_runs_inline() {
        let pool = Pool::serial();
        let caller = std::thread::current().id();
        let ran_on = pool.map(4, |_| std::thread::current().id());
        assert!(ran_on.iter().all(|&id| id == caller));
        assert_eq!(pool.stats().serial_runs, 1);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_rejected() {
        let _ = Pool::new(0);
    }

    #[test]
    fn parse_threads_accepts_positive_integers_only() {
        assert_eq!(parse_threads("4"), Some(4));
        assert_eq!(parse_threads(" 12 "), Some(12));
        assert_eq!(parse_threads("0"), None);
        assert_eq!(parse_threads("-3"), None);
        assert_eq!(parse_threads("four"), None);
        assert_eq!(parse_threads(""), None);
    }

    #[test]
    fn configured_threads_is_at_least_one() {
        assert!(configured_threads() >= 1);
    }

    #[test]
    fn splitmix_mixes_and_derive_decorrelates() {
        // Bijective mixer: distinct inputs stay distinct.
        let a = splitmix64(1);
        let b = splitmix64(2);
        assert_ne!(a, b);
        // Neighboring (master, k) pairs land far apart.
        let s: Vec<u64> = (0..4).map(|k| derive_seed(7, k)).collect();
        for i in 0..s.len() {
            for j in 0..i {
                assert_ne!(s[i], s[j]);
                assert!((s[i] ^ s[j]).count_ones() > 8, "weak mixing");
            }
        }
        assert_ne!(derive_seed(7, 0), derive_seed(8, 0));
    }

    #[test]
    fn map_slice_borrows_inputs() {
        let words = ["alpha".to_owned(), "beta".to_owned()];
        let lens = Pool::new(2).map_slice(&words, |w| w.len());
        assert_eq!(lens, vec![5, 4]);
    }

    #[test]
    fn attached_recorder_sees_map_and_chunk_spans() {
        let rec = Arc::new(Recorder::new());
        let pool = Pool::new(4).with_recorder(Arc::clone(&rec));
        let _ = pool.map(64, |i| i);
        let events = rec.drain(1024);
        assert!(
            events.iter().any(|e| e.cat == "exec" && e.name == "map"),
            "{events:?}"
        );
        assert!(
            events.iter().any(|e| e.cat == "exec" && e.name == "chunk"),
            "{events:?}"
        );
    }

    #[test]
    fn default_pool_records_nothing() {
        let pool = Pool::new(2);
        let _ = pool.map(16, |i| i);
        // The built-in recorder is disabled: no retained events.
        assert!(!pool.recorder.is_enabled());
        assert!(pool.recorder.drain(16).is_empty());
    }

    #[test]
    fn panic_in_worker_propagates_and_releases_slots() {
        let pool = Pool::new(2);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.map(8, |i| {
                assert!(i != 5, "boom");
                i
            })
        }));
        assert!(result.is_err());
        // The slot guard ran during unwinding: the pool is not wedged.
        assert_eq!(pool.active.load(Ordering::Relaxed), 0);
    }
}
