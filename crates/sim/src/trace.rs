//! Optional event tracing for the MAC simulators.
//!
//! Tracing is off by default (simulations allocate nothing for it); enable
//! it with [`SimConfig::with_trace`](crate::SimConfig::with_trace) to
//! capture a bounded, time-ordered log of protocol-level events — token
//! movements, frame transmissions, message completions, faults — for
//! debugging a schedule or teaching how the MACs behave.
//!
//! # Examples
//!
//! ```
//! use ringrt_model::{MessageSet, RingConfig, SyncStream};
//! use ringrt_sim::{SimConfig, TraceKind, TtpSimulator};
//! use ringrt_units::{Bandwidth, Bits, Seconds};
//!
//! let ring = RingConfig::fddi(2, Bandwidth::from_mbps(100.0));
//! let set = MessageSet::new(vec![
//!     SyncStream::new(Seconds::from_millis(20.0), Bits::new(10_000)),
//! ])?;
//! let config = SimConfig::new(ring, Seconds::from_millis(5.0)).with_trace(1_000);
//! let report = TtpSimulator::from_analysis(&set, config)?.run();
//! assert!(report.trace.iter().any(|e| matches!(e.kind, TraceKind::TokenArrive { .. })));
//! assert!(report.trace.iter().any(|e| matches!(e.kind, TraceKind::MessageComplete { .. })));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use core::fmt;

use ringrt_units::SimTime;

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum TraceKind {
    /// The (free) token arrived at a station.
    TokenArrive {
        /// Station index.
        station: usize,
    },
    /// A station began transmitting.
    FrameStart {
        /// Station index.
        station: usize,
        /// `true` for synchronous payload, `false` for asynchronous.
        synchronous: bool,
        /// Payload bits in this transmission.
        bits: u64,
    },
    /// A synchronous message finished transmission.
    MessageComplete {
        /// Sourcing stream/station index.
        stream: usize,
        /// Whether it finished past its deadline.
        late: bool,
    },
    /// The free token was lost (fault injection).
    TokenLost,
    /// The ring recovered and a fresh token appeared.
    TokenRecovered,
}

/// One timestamped trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// When it happened.
    pub at: SimTime,
    /// What happened.
    pub kind: TraceKind,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] ", self.at)?;
        match self.kind {
            TraceKind::TokenArrive { station } => write!(f, "token → station {station}"),
            TraceKind::FrameStart {
                station,
                synchronous,
                bits,
            } => write!(
                f,
                "station {station} sends {} bits ({})",
                bits,
                if synchronous { "sync" } else { "async" }
            ),
            TraceKind::MessageComplete { stream, late } => write!(
                f,
                "stream {stream} message complete{}",
                if late { " (LATE)" } else { "" }
            ),
            TraceKind::TokenLost => write!(f, "token LOST"),
            TraceKind::TokenRecovered => write!(f, "token recovered"),
        }
    }
}

/// A bounded trace recorder: keeps the first `capacity` events and counts
/// the overflow.
#[derive(Debug, Clone, Default)]
pub(crate) struct TraceRecorder {
    events: Vec<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl TraceRecorder {
    /// A recorder keeping at most `capacity` events (0 disables tracing).
    pub fn new(capacity: usize) -> Self {
        TraceRecorder {
            events: Vec::new(),
            capacity,
            dropped: 0,
        }
    }

    /// Records one event (cheap no-op when disabled or full).
    pub fn record(&mut self, at: SimTime, kind: TraceKind) {
        if self.capacity == 0 {
            return;
        }
        if self.events.len() < self.capacity {
            self.events.push(TraceEvent { at, kind });
        } else {
            self.dropped += 1;
        }
    }

    /// Consumes the recorder, returning the captured events.
    pub fn into_events(self) -> (Vec<TraceEvent>, u64) {
        (self.events, self.dropped)
    }
}

/// Renders a trace as a plain-text timeline, one event per line.
#[must_use]
pub fn render_timeline(events: &[TraceEvent]) -> String {
    use core::fmt::Write as _;
    let mut out = String::new();
    for e in events {
        let _ = writeln!(out, "{e}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_respects_capacity() {
        let mut r = TraceRecorder::new(2);
        for i in 0..5 {
            r.record(SimTime::from_picos(i), TraceKind::TokenLost);
        }
        let (events, dropped) = r.into_events();
        assert_eq!(events.len(), 2);
        assert_eq!(dropped, 3);
        assert_eq!(events[0].at, SimTime::from_picos(0));
    }

    #[test]
    fn disabled_recorder_is_a_no_op() {
        let mut r = TraceRecorder::new(0);
        r.record(SimTime::ZERO, TraceKind::TokenLost);
        let (events, dropped) = r.into_events();
        assert!(events.is_empty());
        assert_eq!(dropped, 0);
    }

    #[test]
    fn display_formats() {
        let cases = [
            (TraceKind::TokenArrive { station: 3 }, "token → station 3"),
            (
                TraceKind::FrameStart {
                    station: 1,
                    synchronous: true,
                    bits: 512,
                },
                "512 bits (sync)",
            ),
            (
                TraceKind::MessageComplete {
                    stream: 2,
                    late: true,
                },
                "(LATE)",
            ),
            (TraceKind::TokenLost, "LOST"),
            (TraceKind::TokenRecovered, "recovered"),
        ];
        for (kind, needle) in cases {
            let e = TraceEvent {
                at: SimTime::from_picos(1),
                kind,
            };
            assert!(e.to_string().contains(needle), "{e}");
        }
    }

    #[test]
    fn timeline_renders_lines() {
        let events = vec![
            TraceEvent {
                at: SimTime::ZERO,
                kind: TraceKind::TokenArrive { station: 0 },
            },
            TraceEvent {
                at: SimTime::from_picos(10),
                kind: TraceKind::TokenLost,
            },
        ];
        let text = render_timeline(&events);
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("station 0"));
    }
}
