//! Std-only readiness event-loop primitives for the ringrt service.
//!
//! The admission service historically ran one blocking thread per
//! connection, which caps the client population a node can hold at
//! thread-spawn scale. This crate supplies the pieces of a classic
//! readiness loop — the shape that holds 10⁵ connections per node —
//! without adding any external dependency, in keeping with the
//! workspace's offline vendoring discipline:
//!
//! - [`Poller`] — a level-triggered epoll instance behind a safe API
//!   ([`Poller::register`] / [`Poller::wait`]); the only `unsafe` in the
//!   workspace lives in this crate's `sys`-module FFI bindings.
//! - [`Waker`] — a nonblocking pipe that lets worker threads interrupt a
//!   blocked [`Poller::wait`] when responses are ready to flush.
//! - [`LineBuffer`] / [`WriteBuffer`] — per-connection newline framing
//!   over arbitrary read fragments, with an enforced maximum line length,
//!   and write buffering across partial sends.
//! - [`IdleWheel`] — a coarse hashed timer wheel (lazy re-arm) driving
//!   idle timeouts and partial-line read deadlines.
//! - [`ConnTable`] — a bounded slab whose tokens carry a generation
//!   stamp, so readiness events for already-closed connections cannot
//!   alias onto their slot's next tenant.
//! - [`rlimit`] — fd-limit introspection so servers and benchmarks can
//!   size themselves to what the host allows.
//!
//! Only [`Poller`] and [`Waker`] require Linux; on other targets their
//! constructors return [`std::io::ErrorKind::Unsupported`] and the
//! service falls back to its blocking thread-per-connection front end.
//! The framing buffers, wheel, and table are pure data structures and
//! work (and are tested) everywhere.
//!
//! # Example
//!
//! ```no_run
//! use ringrt_net::{Interest, Poller, Token, Waker};
//! use std::sync::Arc;
//! use std::time::Duration;
//!
//! let poller = Poller::new(1024)?;
//! let waker = Arc::new(Waker::new()?);
//! waker.register(&poller, Token(u64::MAX))?;
//!
//! let mut events = Vec::new();
//! poller.wait(&mut events, Some(Duration::from_millis(25)))?;
//! for event in &events {
//!     if event.token == Token(u64::MAX) {
//!         waker.drain();
//!         // ... drain completion queue, flush responses ...
//!     }
//! }
//! # Ok::<(), std::io::Error>(())
//! ```

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

mod buffer;
mod poller;
pub mod rlimit;
mod sys;
mod table;
mod timer;
mod wake;

pub use buffer::{LineBuffer, LineTooLong, WriteBuffer};
pub use poller::{Event, Interest, Poller, Token};
pub use table::ConnTable;
pub use timer::IdleWheel;
pub use wake::Waker;
