//! Schedulability of the timed token protocol (paper §5).
//!
//! The timed token protocol (TTP) is the FDDI-style MAC: a priority-less
//! token circulates from station to station; at ring initialization the
//! stations agree on a **Target Token Rotation Time** (TTRT), and each
//! station `i` receives a **synchronous bandwidth** `h_i` — the maximum time
//! it may spend transmitting synchronous frames per token visit. Stations
//! may send asynchronous traffic only when the token arrives early, for at
//! most the earliness (with up to one frame of *asynchronous overrun*).
//!
//! Two constraints govern deadline guarantees (paper §5.3):
//!
//! * the **protocol constraint** `Σ h_i ≤ TTRT − Θ'`, with
//!   `Θ' = Θ + F_async` covering the token walk and one asynchronous
//!   overrun per rotation;
//! * the **deadline constraint** `X_i ≥ C'_i`, where
//!   `X_i = (⌊P_i/TTRT⌋ − 1)·h_i` is the minimum transmission time
//!   available to station `i` within one period (Sevcik–Johnson bound:
//!   consecutive token visits are at most `2·TTRT` apart).
//!
//! With the **local allocation scheme** `h_i = C_i/(q_i−1) + F_ovhd`
//! (`q_i = ⌊P_i/TTRT⌋`) the deadline constraint holds with equality and the
//! two constraints collapse into the paper's Theorem 5.1:
//!
//! ```text
//! Σ C_i/(⌊P_i/TTRT⌋ − 1)  +  n·F_ovhd  ≤  TTRT − Θ'
//! ```
//!
//! This module also implements the paper's TTRT selection heuristic
//! (`TTRT = √(Θ'·P_min)`, clamped to `P_min/2`) and a family of alternative
//! allocation schemes for the comparison experiments.

mod alloc;
mod test;
mod ttrt;

pub use alloc::SbaScheme;
pub use test::{TtpAnalyzer, TtpReport, TtpStreamReport};
pub use ttrt::TtrtPolicy;

use ringrt_units::Seconds;

/// Relative tolerance for near-integer `P_i / TTRT` ratios.
pub(crate) const RATIO_EPS: f64 = 1e-9;

/// `q_i = ⌊P_i / TTRT⌋`, the guaranteed token-visit count parameter, with
/// tolerance for near-integer ratios.
///
/// # Examples
///
/// ```
/// use ringrt_core::ttp::visit_count;
/// use ringrt_units::Seconds;
///
/// let q = visit_count(Seconds::from_millis(100.0), Seconds::from_millis(8.0));
/// assert_eq!(q, 12);
/// ```
#[must_use]
pub fn visit_count(period: Seconds, ttrt: Seconds) -> u64 {
    let r = period / ttrt;
    let nearest = r.round();
    let v = if (r - nearest).abs() <= RATIO_EPS * nearest.abs().max(1.0) {
        nearest
    } else {
        r.floor()
    };
    if v < 0.0 {
        0
    } else {
        v as u64
    }
}

/// Minimum transmission time available to a station within one period:
/// `X_i = (q_i − 1)·h_i` (Sevcik–Johnson worst case).
#[must_use]
pub fn worst_case_available_time(q: u64, h: Seconds) -> Seconds {
    h * (q.saturating_sub(1)) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn visit_count_basic() {
        let p = Seconds::from_millis(100.0);
        assert_eq!(visit_count(p, Seconds::from_millis(30.0)), 3);
        assert_eq!(visit_count(p, Seconds::from_millis(50.0)), 2);
        assert_eq!(visit_count(p, Seconds::from_millis(200.0)), 0);
    }

    #[test]
    fn visit_count_near_integer_tolerance() {
        // 0.3 / 0.1 = 2.9999999999999996 must count as 3 visits.
        assert_eq!(visit_count(Seconds::new(0.3), Seconds::new(0.1)), 3);
    }

    #[test]
    fn available_time_guard_on_q_zero() {
        let h = Seconds::from_millis(1.0);
        assert_eq!(worst_case_available_time(0, h), Seconds::ZERO);
        assert_eq!(worst_case_available_time(1, h), Seconds::ZERO);
        assert_eq!(worst_case_available_time(5, h), Seconds::from_millis(4.0));
    }
}
