//! OVHD — sensitivity of Figure 1 to the frame-overhead assumption.
//!
//! The paper's evaluation fixes `F_ovhd^b = 112` bits for both protocols.
//! The standards' actual fixed framing overheads are larger: 168 bits for
//! an IEEE 802.5 data frame and 224 bits for an FDDI frame (see the
//! `ringrt-frames` codecs). This experiment re-runs the bandwidth sweep at
//! the real overheads to check that the paper's qualitative conclusions do
//! not hinge on the 112-bit choice.

use rand::rngs::StdRng;
use rand::SeedableRng;

use ringrt_bench::{banner, ExpOptions};
use ringrt_breakdown::table::{cell, Table};
use ringrt_breakdown::{BreakdownEstimator, SaturationSearch};
use ringrt_core::pdp::{PdpAnalyzer, PdpVariant};
use ringrt_core::ttp::TtpAnalyzer;
use ringrt_model::RingConfig;
use ringrt_units::{Bandwidth, Bits};
use ringrt_workload::MessageSetGenerator;

fn main() {
    let opts = ExpOptions::from_env();
    banner(
        "OVHD",
        "ABU with the paper's 112-bit overhead vs the standards' real overheads",
        &opts,
    );

    let estimator = BreakdownEstimator::new(
        MessageSetGenerator::paper_population(opts.stations),
        opts.samples,
    )
    .with_search(SaturationSearch::with_tolerance(if opts.quick {
        3e-3
    } else {
        1e-3
    }));

    let mut table = Table::new(&[
        "bandwidth_mbps",
        "mod_802_5_paper112",
        "mod_802_5_real168",
        "fddi_paper112",
        "fddi_real224",
    ]);
    for (i, mbps) in [2.0f64, 5.623, 10.0, 31.62, 100.0, 1000.0]
        .into_iter()
        .enumerate()
    {
        let bw = Bandwidth::from_mbps(mbps);
        let seed = opts.seed ^ i as u64;

        let ring = RingConfig::ieee_802_5(opts.stations, bw);
        let paper_frame = ringrt_model::FrameFormat::paper_default();
        let real_frame =
            ringrt_frames::ieee_802_5_frame_format(Bits::new(512)).expect("valid payload");
        let pdp_paper = estimator.estimate(
            &PdpAnalyzer::new(ring, paper_frame, PdpVariant::Modified),
            bw,
            &mut StdRng::seed_from_u64(seed),
        );
        let pdp_real = estimator.estimate(
            &PdpAnalyzer::new(ring, real_frame, PdpVariant::Modified),
            bw,
            &mut StdRng::seed_from_u64(seed),
        );

        let ring = RingConfig::fddi(opts.stations, bw);
        let ttp_paper = estimator.estimate(
            &TtpAnalyzer::with_defaults(ring),
            bw,
            &mut StdRng::seed_from_u64(seed),
        );
        let ttp_real = estimator.estimate(
            &TtpAnalyzer::new(
                ring,
                ringrt_core::ttp::TtrtPolicy::SqrtHeuristic,
                ringrt_core::ttp::SbaScheme::Local,
                Bits::new(ringrt_frames::fddi::OVERHEAD_BITS),
                Bits::new(512 + ringrt_frames::fddi::OVERHEAD_BITS),
            ),
            bw,
            &mut StdRng::seed_from_u64(seed),
        );

        table.push_row(&[
            cell(mbps, 3),
            cell(pdp_paper.mean, 4),
            cell(pdp_real.mean, 4),
            cell(ttp_paper.mean, 4),
            cell(ttp_real.mean, 4),
        ]);
    }
    print!("{}", table.to_csv());
    println!();
    println!("# real overheads shave a few points off both protocols' ABU but preserve");
    println!("# the crossover and the high-bandwidth collapse of the 802.5 curves.");
}
