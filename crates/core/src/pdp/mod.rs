//! Schedulability of the priority-driven protocol (paper §4).
//!
//! The priority-driven protocol (PDP) is the IEEE 802.5 style MAC: the
//! token carries a priority field, stations bid through the reservation
//! field of passing frame headers, and the station with the highest-priority
//! pending message transmits next. With rate-monotonic message priorities
//! and a one-frame token-holding time, the ring approximates preemptive RM
//! scheduling at frame granularity.
//!
//! The paper's Theorem 4.1 reduces schedulability to the Lehoczky–Sha–Ding
//! exact test applied to **augmented message lengths** `C'_i` (accounting
//! for per-frame overhead, header-return stalls, and token circulation) plus
//! a **blocking term** `B = 2·max(F, Θ)` that bounds priority inversion.
//!
//! Two implementation variants are analyzed:
//!
//! * [`PdpVariant::Standard`] — literal IEEE 802.5: a free token is issued
//!   after every frame, so the `Θ/2` average token-circulation overhead is
//!   paid **per frame**;
//! * [`PdpVariant::Modified`] — the paper's more efficient version: the
//!   transmitting station keeps transmitting while it remains the
//!   highest-priority active station, so `Θ/2` is paid **once per message**.

mod levels;
mod overhead;
mod test;

pub use levels::quantize_ranks;
pub use overhead::{augmented_length, blocking_bound, effective_last_frame_time};
pub use test::{CountedCheck, PdpAnalyzer, PdpReport, PdpStreamReport};

/// Which implementation of the priority-driven protocol is analyzed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PdpVariant {
    /// Standard IEEE 802.5: token released (and `Θ/2` paid) after every
    /// frame.
    Standard,
    /// Modified protocol: consecutive frames without re-issuing the token;
    /// `Θ/2` paid once per message.
    Modified,
}

impl PdpVariant {
    /// Short human-readable protocol name, matching the Figure 1 legend.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            PdpVariant::Standard => "IEEE 802.5",
            PdpVariant::Modified => "Modified IEEE 802.5",
        }
    }
}

impl core::fmt::Display for PdpVariant {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(PdpVariant::Standard.label(), "IEEE 802.5");
        assert_eq!(PdpVariant::Modified.to_string(), "Modified IEEE 802.5");
    }
}
