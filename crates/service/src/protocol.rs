//! The wire protocol: newline-delimited, human-readable requests and
//! single-line responses.
//!
//! # Request grammar
//!
//! ```text
//! CHECK      mbps=<f64> set=<p_ms,bits[;p_ms,bits…]> [protocol=802.5|modified|fddi] [stations=<n>] [deadline_ms=<n>]
//! CHECK      ring=<name> [deadline_ms=<n>]          # stored-ring mode
//! SATURATION mbps=<f64> set=<…> [protocol=<…>] [stations=<n>] [deadline_ms=<n>]   (or ring=<name>)
//! SIMULATE   mbps=<f64> set=<…> [protocol=<…>] [stations=<n>] [seconds=<f64>] [async_load=<f64>] [seed=<n>] [deadline_ms=<n>]   (or ring=<name>)
//! ABU        mbps=<f64> stations=<n> [samples=<n>] [seed=<n>] [protocol=<…>] [deadline_ms=<n>]
//! REGISTER   ring=<name> protocol=<…> mbps=<f64> [stations=<n>]
//! ADMIT      ring=<name> stream=<name> period_ms=<f64> bits=<u64> [deadline_ms=<f64>]
//! REMOVE     ring=<name> stream=<name>
//! UNREGISTER ring=<name>
//! SHOW       [ring=<name>]
//! BATCH      <n>                          # next n lines answered in one write
//! SLEEP      ms=<n>                       # diagnostic: occupies a worker
//! TRACE      [n]                          # drain ≤ n recent spans as trace JSON
//! STATS RESET                             # zero counters and histograms
//! SYNC       [epoch=<n>] [seq=<n>]        # subscribe to journal shipping (follower → primary)
//! PROMOTE                                 # promote a follower to primary with a fresh epoch
//! REPLICATION                             # one-line replication status
//! PING | STATS | METRICS | EVICT | COMPACT | SHUTDOWN
//! ```
//!
//! `set` carries the CLI's message-set records inline: the same
//! `period_ms, payload_bits` pairs a set file holds, `;`-separated instead
//! of newline-separated (see [`ringrt_model::setfmt`]).
//!
//! The registry commands (`REGISTER`/`ADMIT`/`REMOVE`/`UNREGISTER`/`SHOW`)
//! operate on the server's persistent ring registry; `ADMIT`'s
//! `deadline_ms` is the **stream's relative deadline**, not a queue
//! deadline — registry commands are answered inline and never queue.
//! `BATCH <n>` reads the next `n` request lines, answers them in order,
//! and writes all responses in a single syscall.
//!
//! # Responses
//!
//! One line per request: `OK key=value …`, `BUSY queue_capacity=<n>` when
//! the admission queue is full (load shedding), or `ERR <message>`.
//!
//! Two commands answer with a framed multi-line body after the `OK` line:
//! `METRICS` (`OK cmd=metrics lines=<n>` followed by `n` Prometheus text
//! exposition lines) and `TRACE` (`OK cmd=trace events=<k>` followed by
//! one line of Chrome trace-event JSON). The header tells a client exactly
//! how many further lines to read.
//!
//! A server running as a warm standby (`serve --follow`) answers every
//! mutation (`REGISTER`/`ADMIT`/`REMOVE`/`UNREGISTER`/`COMPACT`) with a
//! structured redirect instead of an error:
//! `READONLY cmd=<c> primary=<addr> epoch=<n>` — inside a `BATCH`, only
//! the mutating frames are redirected; reads in the same batch answer
//! normally.
//!
//! `SYNC` turns the connection into a one-way journal-shipping stream:
//! after `OK cmd=sync epoch=<e> head=<h> snapshot=<0|1> backlog=<n>` the
//! server sends `SHIP snapshot seq=<s> lines=<k>` (plus `k` raw snapshot
//! lines) when the requested start predates the journal, then one
//! `SHIP record <record-line>` per backlog and live journal record, with
//! periodic `SHIP ping epoch=<e> head=<h>` keepalives. A `SYNC` whose
//! nonzero `epoch` does not match the serving epoch is refused with the
//! fencing error (`ERR cmd=sync fenced …`) so a revived stale primary and
//! its orphans cannot split-brain; `epoch=0` means "fresh follower,
//! adopt yours".

use ringrt_model::{MessageSet, SyncStream};
use ringrt_units::{Bits, Seconds};

pub use ringrt_registry::{ProtocolKind, RingSpec};

/// Largest pipelined batch a single `BATCH` header may announce.
pub const MAX_BATCH: usize = 1024;

/// Largest request line (bytes, excluding the newline) either front end
/// accepts. Longer lines are answered with an error and the connection is
/// closed — an unbounded line is memory a client controls.
pub const MAX_LINE_BYTES: usize = 64 * 1024;

/// Largest Monte-Carlo sample count a single `ABU` request may demand —
/// it pins a worker (and fans over the execution pool) for the duration.
pub const MAX_ABU_SAMPLES: usize = 5_000;

/// `ABU` sample count when the request does not say.
pub const DEFAULT_ABU_SAMPLES: usize = 100;

/// Largest event count a single `TRACE` request may drain.
pub const MAX_TRACE_EVENTS: usize = 65_536;

/// `TRACE` event count when the request does not say.
pub const DEFAULT_TRACE_EVENTS: usize = 256;

/// Which analysis a queued request runs; indexes the per-command metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CommandKind {
    /// Admission verdict (Theorem 4.1 / 5.1).
    Check,
    /// Saturation boundary search.
    Saturation,
    /// Bounded frame-level simulation.
    Simulate,
    /// Monte-Carlo average-breakdown-utilization estimation.
    Abu,
    /// Diagnostic worker occupation.
    Sleep,
}

impl CommandKind {
    /// All queued commands, in metrics order.
    pub const ALL: [CommandKind; 5] = [
        CommandKind::Check,
        CommandKind::Saturation,
        CommandKind::Simulate,
        CommandKind::Abu,
        CommandKind::Sleep,
    ];

    /// Metrics slot.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            CommandKind::Check => 0,
            CommandKind::Saturation => 1,
            CommandKind::Simulate => 2,
            CommandKind::Abu => 3,
            CommandKind::Sleep => 4,
        }
    }

    /// Lower-case wire token (also the metrics field prefix).
    #[must_use]
    pub fn token(self) -> &'static str {
        match self {
            CommandKind::Check => "check",
            CommandKind::Saturation => "saturation",
            CommandKind::Simulate => "simulate",
            CommandKind::Abu => "abu",
            CommandKind::Sleep => "sleep",
        }
    }
}

/// Shared parameters of the three analysis commands.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalysisRequest {
    /// Which analysis to run.
    pub command: CommandKind,
    /// Protocol under test.
    pub protocol: ProtocolKind,
    /// Ring bandwidth in Mbps.
    pub mbps: f64,
    /// The synchronous message set to admit.
    pub set: MessageSet,
    /// Ring stations (defaults to the stream count; never below it).
    pub stations: Option<usize>,
    /// Simulated seconds (SIMULATE only).
    pub seconds: f64,
    /// Offered asynchronous load fraction (SIMULATE only).
    pub async_load: f64,
    /// RNG seed (SIMULATE only).
    pub seed: u64,
    /// Per-request queue deadline override, milliseconds.
    pub deadline_ms: Option<u64>,
}

impl AnalysisRequest {
    /// Effective station count (at least the stream count).
    #[must_use]
    pub fn effective_stations(&self) -> usize {
        self.stations.unwrap_or(self.set.len()).max(self.set.len())
    }
}

/// Parameters of an `ABU` request: estimate the average breakdown
/// utilization of the paper's Monte-Carlo population on a ring, fanning
/// the samples across the server's execution pool. The sample stream is
/// seed-deterministic and **bit-identical at any pool width**, which is
/// what makes the result cacheable.
#[derive(Debug, Clone, PartialEq)]
pub struct AbuRequest {
    /// Protocol under test.
    pub protocol: ProtocolKind,
    /// Ring bandwidth in Mbps.
    pub mbps: f64,
    /// Stations on the ring (also the population's stream count).
    pub stations: usize,
    /// Monte-Carlo samples, `1..=`[`MAX_ABU_SAMPLES`].
    pub samples: usize,
    /// Master RNG seed for the sample stream.
    pub seed: u64,
    /// Per-request queue deadline override, milliseconds.
    pub deadline_ms: Option<u64>,
}

/// A parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// An analysis to run on the worker pool.
    Analysis(AnalysisRequest),
    /// A Monte-Carlo ABU estimation on the worker pool.
    Abu(AbuRequest),
    /// An analysis of a **stored ring**'s admitted set; the server resolves
    /// the ring before execution. `CHECK` is answered inline with a full
    /// (counted) re-analysis; the other commands queue like any analysis.
    RingAnalysis {
        /// Which analysis to run.
        command: CommandKind,
        /// The registered ring to analyze.
        ring: String,
        /// Simulated seconds (SIMULATE only).
        seconds: f64,
        /// Offered asynchronous load fraction (SIMULATE only).
        async_load: f64,
        /// RNG seed (SIMULATE only).
        seed: u64,
        /// Per-request queue deadline override, milliseconds.
        deadline_ms: Option<u64>,
    },
    /// Register a new named ring.
    Register {
        /// Ring name.
        ring: String,
        /// Its configuration.
        spec: RingSpec,
    },
    /// Admission-test a stream and, if schedulable, admit it.
    Admit {
        /// Target ring.
        ring: String,
        /// Client-chosen stream name (unique within the ring).
        stream: String,
        /// The candidate stream.
        candidate: SyncStream,
    },
    /// Remove a named stream from a ring.
    Remove {
        /// Target ring.
        ring: String,
        /// Stream to remove.
        stream: String,
    },
    /// Drop a ring and all its streams.
    Unregister {
        /// Ring to drop.
        ring: String,
    },
    /// List rings, or dump one ring's admitted set.
    Show {
        /// `None` lists ring names; `Some` dumps that ring.
        ring: Option<String>,
        /// Page size: dump at most this many streams (requires `ring`).
        limit: Option<usize>,
        /// Skip this many streams in admission order before the page.
        offset: Option<usize>,
    },
    /// Answer the next `count` request lines in one write.
    Batch {
        /// Number of pipelined request lines that follow.
        count: usize,
    },
    /// Drop every result-cache entry, reporting how many were evicted.
    Evict,
    /// Fold the registry journal into a snapshot.
    Compact,
    /// Diagnostic: occupy a worker for the given milliseconds.
    Sleep {
        /// Sleep length (capped by the server).
        ms: u64,
        /// Per-request queue deadline override.
        deadline_ms: Option<u64>,
    },
    /// Liveness probe, answered inline.
    Ping,
    /// Metrics snapshot, answered inline.
    Stats,
    /// Zero the server's counters and latency histograms (gauges such as
    /// `exec_threads` or the cache entry count reflect live state and are
    /// untouched), so load experiments can take clean deltas.
    StatsReset,
    /// All counters, gauges, and latency histograms in Prometheus text
    /// exposition format, answered inline.
    Metrics,
    /// Drain up to `count` recent flight-recorder spans as Chrome
    /// trace-event JSON, answered inline.
    Trace {
        /// Maximum events to return (most recent first retained).
        count: usize,
    },
    /// Subscribe this connection to journal shipping: the server streams
    /// `SHIP` frames from `seq` onward until the connection drops.
    Sync {
        /// The epoch the requester last replicated under (0 = fresh
        /// follower with no history; adopts the serving epoch).
        epoch: u64,
        /// First journal sequence number the requester still needs.
        seq: u64,
        /// Cluster identity of the requester's journal (0 = fresh journal
        /// with no identity yet; adopts the primary's). A nonzero mismatch
        /// is refused — shipping frames between unrelated journals would
        /// silently interleave two histories.
        cluster: u64,
    },
    /// Promote a follower to primary under a freshly fenced epoch.
    Promote,
    /// One-line replication status (role, epoch, lag, peers).
    Replication,
    /// Begin graceful shutdown.
    Shutdown,
}

/// Parses one request line.
///
/// # Errors
///
/// A human-readable message describing the first problem found; the server
/// sends it back as `ERR <message>`.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let mut words = line.split_whitespace();
    let cmd = words.next().ok_or_else(|| "empty request".to_owned())?;
    if cmd.eq_ignore_ascii_case("BATCH") {
        // BATCH is the one positional command: `BATCH <n>`.
        let count = words
            .next()
            .ok_or_else(|| "BATCH requires a line count".to_owned())?;
        if words.next().is_some() {
            return Err("BATCH takes exactly one argument".to_owned());
        }
        let count: usize = count
            .parse()
            .map_err(|_| format!("invalid batch count `{count}`"))?;
        if count == 0 || count > MAX_BATCH {
            return Err(format!("batch count must be in 1..={MAX_BATCH}"));
        }
        return Ok(Request::Batch { count });
    }
    if cmd.eq_ignore_ascii_case("TRACE") {
        // TRACE is positional like BATCH: `TRACE [n]`.
        let count = match words.next() {
            None => DEFAULT_TRACE_EVENTS,
            Some(text) => {
                if words.next().is_some() {
                    return Err("TRACE takes at most one argument".to_owned());
                }
                let count: usize = text
                    .parse()
                    .map_err(|_| format!("invalid trace event count `{text}`"))?;
                if count == 0 || count > MAX_TRACE_EVENTS {
                    return Err(format!(
                        "trace event count must be in 1..={MAX_TRACE_EVENTS}"
                    ));
                }
                count
            }
        };
        return Ok(Request::Trace { count });
    }
    if cmd.eq_ignore_ascii_case("STATS") {
        // `STATS` alone is the snapshot; `STATS RESET` is the bare-word
        // reset subcommand (no `=`, so it must bypass the key=value loop).
        return match words.next() {
            None => Ok(Request::Stats),
            Some(sub) if sub.eq_ignore_ascii_case("RESET") => {
                if words.next().is_some() {
                    Err("STATS RESET takes no further arguments".to_owned())
                } else {
                    Ok(Request::StatsReset)
                }
            }
            Some(other) => Err(format!("unknown STATS subcommand `{other}`")),
        };
    }
    let mut pairs: Vec<(&str, &str)> = Vec::new();
    for w in words {
        let (k, v) = w
            .split_once('=')
            .ok_or_else(|| format!("expected key=value, found `{w}`"))?;
        pairs.push((k, v));
    }
    let command = match cmd.to_ascii_uppercase().as_str() {
        "PING" => return reject_extras(pairs, Request::Ping),
        "METRICS" => return reject_extras(pairs, Request::Metrics),
        "SHUTDOWN" => return reject_extras(pairs, Request::Shutdown),
        "EVICT" => return reject_extras(pairs, Request::Evict),
        "COMPACT" => return reject_extras(pairs, Request::Compact),
        "PROMOTE" => return reject_extras(pairs, Request::Promote),
        "REPLICATION" => return reject_extras(pairs, Request::Replication),
        "SYNC" => {
            check_keys(&pairs, &["epoch", "seq", "cluster"])?;
            let seq: u64 = optional(&pairs, "seq")?.unwrap_or(1);
            if seq == 0 {
                return Err("seq must be at least 1 (journal sequences start there)".to_owned());
            }
            return Ok(Request::Sync {
                epoch: optional(&pairs, "epoch")?.unwrap_or(0),
                seq,
                cluster: optional(&pairs, "cluster")?.unwrap_or(0),
            });
        }
        "SLEEP" => {
            check_keys(&pairs, &["ms", "deadline_ms"])?;
            return Ok(Request::Sleep {
                ms: required(&pairs, "ms")?,
                deadline_ms: optional(&pairs, "deadline_ms")?,
            });
        }
        "REGISTER" => {
            check_keys(&pairs, &["ring", "protocol", "mbps", "stations"])?;
            let protocol = ProtocolKind::parse(
                lookup(&pairs, "protocol").ok_or_else(|| "protocol is required".to_owned())?,
            )?;
            return Ok(Request::Register {
                ring: required_name(&pairs, "ring")?,
                spec: RingSpec {
                    protocol,
                    mbps: required(&pairs, "mbps")?,
                    stations: optional(&pairs, "stations")?,
                },
            });
        }
        "ADMIT" => {
            check_keys(
                &pairs,
                &["ring", "stream", "period_ms", "bits", "deadline_ms"],
            )?;
            let period_ms: f64 = required(&pairs, "period_ms")?;
            let bits: u64 = required(&pairs, "bits")?;
            let candidate = SyncStream::try_new(Seconds::from_millis(period_ms), Bits::new(bits))
                .map_err(|e| format!("invalid stream: {e}"))?;
            let candidate = match optional::<f64>(&pairs, "deadline_ms")? {
                None => candidate,
                Some(d) if d > 0.0 && d <= period_ms => {
                    candidate.with_relative_deadline(Seconds::from_millis(d))
                }
                Some(d) => {
                    return Err(format!(
                        "deadline_ms must be in (0, period_ms={period_ms}], got {d}"
                    ))
                }
            };
            return Ok(Request::Admit {
                ring: required_name(&pairs, "ring")?,
                stream: required_name(&pairs, "stream")?,
                candidate,
            });
        }
        "REMOVE" => {
            check_keys(&pairs, &["ring", "stream"])?;
            return Ok(Request::Remove {
                ring: required_name(&pairs, "ring")?,
                stream: required_name(&pairs, "stream")?,
            });
        }
        "UNREGISTER" => {
            check_keys(&pairs, &["ring"])?;
            return Ok(Request::Unregister {
                ring: required_name(&pairs, "ring")?,
            });
        }
        "SHOW" => {
            check_keys(&pairs, &["ring", "limit", "offset"])?;
            let ring = lookup(&pairs, "ring").map(str::to_owned);
            let limit = optional::<usize>(&pairs, "limit")?;
            let offset = optional::<usize>(&pairs, "offset")?;
            if ring.is_none() && (limit.is_some() || offset.is_some()) {
                return Err("limit/offset require ring=".into());
            }
            return Ok(Request::Show {
                ring,
                limit,
                offset,
            });
        }
        "ABU" => {
            check_keys(
                &pairs,
                &[
                    "mbps",
                    "stations",
                    "samples",
                    "seed",
                    "protocol",
                    "deadline_ms",
                ],
            )?;
            let mbps: f64 = required(&pairs, "mbps")?;
            if !(mbps.is_finite() && mbps > 0.0) {
                return Err(format!("mbps must be positive, got {mbps}"));
            }
            let stations: usize = required(&pairs, "stations")?;
            if stations == 0 {
                return Err("stations must be at least 1".to_owned());
            }
            let samples: usize = optional(&pairs, "samples")?.unwrap_or(DEFAULT_ABU_SAMPLES);
            if samples == 0 || samples > MAX_ABU_SAMPLES {
                return Err(format!("samples must be in 1..={MAX_ABU_SAMPLES}"));
            }
            let protocol = match lookup(&pairs, "protocol") {
                Some(p) => ProtocolKind::parse(p)?,
                None => ProtocolKind::default(),
            };
            return Ok(Request::Abu(AbuRequest {
                protocol,
                mbps,
                stations,
                samples,
                seed: optional(&pairs, "seed")?.unwrap_or(1),
                deadline_ms: optional(&pairs, "deadline_ms")?,
            }));
        }
        "CHECK" => CommandKind::Check,
        "SATURATION" => CommandKind::Saturation,
        "SIMULATE" => CommandKind::Simulate,
        other => return Err(format!("unknown command `{other}`")),
    };
    if lookup(&pairs, "ring").is_some() {
        // Stored-ring mode: the set comes from the registry, so the inline
        // set parameters are contradictory.
        let allowed: &[&str] = if command == CommandKind::Simulate {
            &["ring", "seconds", "async_load", "seed", "deadline_ms"]
        } else {
            &["ring", "deadline_ms"]
        };
        check_keys(&pairs, allowed)
            .map_err(|e| format!("{e} (ring=… mode takes the set from the registry)"))?;
        let (seconds, async_load) = sim_params(&pairs)?;
        return Ok(Request::RingAnalysis {
            command,
            ring: required_name(&pairs, "ring")?,
            seconds,
            async_load,
            seed: optional(&pairs, "seed")?.unwrap_or(1),
            deadline_ms: optional(&pairs, "deadline_ms")?,
        });
    }
    let allowed: &[&str] = if command == CommandKind::Simulate {
        &[
            "mbps",
            "set",
            "protocol",
            "stations",
            "seconds",
            "async_load",
            "seed",
            "deadline_ms",
        ]
    } else {
        &["mbps", "set", "protocol", "stations", "deadline_ms"]
    };
    check_keys(&pairs, allowed)?;

    let mbps: f64 = required(&pairs, "mbps")?;
    if !(mbps.is_finite() && mbps > 0.0) {
        return Err(format!("mbps must be positive, got {mbps}"));
    }
    let set_text = lookup(&pairs, "set").ok_or_else(|| "set is required".to_owned())?;
    let set = ringrt_model::parse_message_set(&set_text.replace(';', "\n"))
        .map_err(|e| format!("invalid set: {e}"))?;
    let protocol = match lookup(&pairs, "protocol") {
        Some(p) => ProtocolKind::parse(p)?,
        None => ProtocolKind::default(),
    };
    let (seconds, async_load) = sim_params(&pairs)?;
    Ok(Request::Analysis(AnalysisRequest {
        command,
        protocol,
        mbps,
        set,
        stations: optional(&pairs, "stations")?,
        seconds,
        async_load,
        seed: optional(&pairs, "seed")?.unwrap_or(1),
        deadline_ms: optional(&pairs, "deadline_ms")?,
    }))
}

fn sim_params(pairs: &[(&str, &str)]) -> Result<(f64, f64), String> {
    let seconds: f64 = optional(pairs, "seconds")?.unwrap_or(0.5);
    if !(seconds.is_finite() && seconds > 0.0) {
        return Err(format!("seconds must be positive, got {seconds}"));
    }
    let async_load: f64 = optional(pairs, "async_load")?.unwrap_or(0.0);
    if !(0.0..1.0).contains(&async_load) {
        return Err(format!("async_load must be in [0, 1), got {async_load}"));
    }
    Ok((seconds, async_load))
}

fn reject_extras(pairs: Vec<(&str, &str)>, req: Request) -> Result<Request, String> {
    if let Some((k, _)) = pairs.first() {
        return Err(format!("unexpected parameter `{k}`"));
    }
    Ok(req)
}

fn check_keys(pairs: &[(&str, &str)], allowed: &[&str]) -> Result<(), String> {
    for (k, _) in pairs {
        if !allowed.contains(k) {
            return Err(format!("unknown parameter `{k}`"));
        }
    }
    Ok(())
}

fn lookup<'a>(pairs: &[(&'a str, &'a str)], key: &str) -> Option<&'a str> {
    pairs.iter().rev().find(|(k, _)| *k == key).map(|(_, v)| *v)
}

/// A required name-valued parameter, validated against the registry's
/// naming rules so malformed names fail fast at the protocol edge.
fn required_name(pairs: &[(&str, &str)], key: &str) -> Result<String, String> {
    let value = lookup(pairs, key).ok_or_else(|| format!("{key} is required"))?;
    ringrt_registry::validate_name(value).map_err(|e| e.to_string())?;
    Ok(value.to_owned())
}

fn required<T: std::str::FromStr>(pairs: &[(&str, &str)], key: &str) -> Result<T, String> {
    optional(pairs, key)?.ok_or_else(|| format!("{key} is required"))
}

fn optional<T: std::str::FromStr>(pairs: &[(&str, &str)], key: &str) -> Result<Option<T>, String> {
    lookup(pairs, key)
        .map(|v| {
            v.parse::<T>()
                .map_err(|_| format!("invalid value `{v}` for {key}"))
        })
        .transpose()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_check() {
        let r = parse_request("CHECK mbps=16 set=20,20000;50,60000 protocol=fddi").unwrap();
        match r {
            Request::Analysis(a) => {
                assert_eq!(a.command, CommandKind::Check);
                assert_eq!(a.protocol, ProtocolKind::Fddi);
                assert_eq!(a.mbps, 16.0);
                assert_eq!(a.set.len(), 2);
                assert_eq!(a.effective_stations(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn stations_never_below_stream_count() {
        let r = parse_request("check mbps=4 set=20,1000;30,1000;40,1000 stations=2").unwrap();
        match r {
            Request::Analysis(a) => assert_eq!(a.effective_stations(), 3),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_simulate_defaults() {
        let r = parse_request("SIMULATE mbps=4 set=20,4000").unwrap();
        match r {
            Request::Analysis(a) => {
                assert_eq!(a.command, CommandKind::Simulate);
                assert_eq!(a.seconds, 0.5);
                assert_eq!(a.async_load, 0.0);
                assert_eq!(a.seed, 1);
                assert_eq!(a.protocol, ProtocolKind::Modified);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_control_commands() {
        assert_eq!(parse_request("PING").unwrap(), Request::Ping);
        assert_eq!(parse_request("stats").unwrap(), Request::Stats);
        assert_eq!(parse_request("Shutdown").unwrap(), Request::Shutdown);
        assert_eq!(parse_request("EVICT").unwrap(), Request::Evict);
        assert_eq!(parse_request("compact").unwrap(), Request::Compact);
        assert_eq!(
            parse_request("SLEEP ms=50").unwrap(),
            Request::Sleep {
                ms: 50,
                deadline_ms: None
            }
        );
    }

    #[test]
    fn parses_registry_commands() {
        match parse_request("REGISTER ring=lab protocol=fddi mbps=100 stations=16").unwrap() {
            Request::Register { ring, spec } => {
                assert_eq!(ring, "lab");
                assert_eq!(spec.protocol, ProtocolKind::Fddi);
                assert_eq!(spec.mbps, 100.0);
                assert_eq!(spec.stations, Some(16));
            }
            other => panic!("unexpected {other:?}"),
        }
        match parse_request("ADMIT ring=lab stream=cam period_ms=20 bits=100000").unwrap() {
            Request::Admit {
                ring,
                stream,
                candidate,
            } => {
                assert_eq!((ring.as_str(), stream.as_str()), ("lab", "cam"));
                assert!(candidate.has_implicit_deadline());
            }
            other => panic!("unexpected {other:?}"),
        }
        match parse_request("ADMIT ring=lab stream=cam period_ms=20 bits=1000 deadline_ms=7.5")
            .unwrap()
        {
            Request::Admit { candidate, .. } => {
                assert!(!candidate.has_implicit_deadline());
                assert_eq!(candidate.relative_deadline(), Seconds::from_millis(7.5));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(
            parse_request("REMOVE ring=lab stream=cam").unwrap(),
            Request::Remove {
                ring: "lab".into(),
                stream: "cam".into()
            }
        );
        assert_eq!(
            parse_request("UNREGISTER ring=lab").unwrap(),
            Request::Unregister { ring: "lab".into() }
        );
        assert_eq!(
            parse_request("SHOW").unwrap(),
            Request::Show {
                ring: None,
                limit: None,
                offset: None
            }
        );
        assert_eq!(
            parse_request("SHOW ring=lab").unwrap(),
            Request::Show {
                ring: Some("lab".into()),
                limit: None,
                offset: None
            }
        );
        assert_eq!(
            parse_request("SHOW ring=lab limit=10 offset=30").unwrap(),
            Request::Show {
                ring: Some("lab".into()),
                limit: Some(10),
                offset: Some(30)
            }
        );
        assert!(parse_request("SHOW limit=10").is_err());
        assert!(parse_request("SHOW ring=lab limit=x").is_err());
    }

    #[test]
    fn ring_mode_analysis() {
        match parse_request("CHECK ring=lab").unwrap() {
            Request::RingAnalysis { command, ring, .. } => {
                assert_eq!(command, CommandKind::Check);
                assert_eq!(ring, "lab");
            }
            other => panic!("unexpected {other:?}"),
        }
        match parse_request("SIMULATE ring=lab seconds=0.25 seed=3").unwrap() {
            Request::RingAnalysis {
                command,
                seconds,
                seed,
                ..
            } => {
                assert_eq!(command, CommandKind::Simulate);
                assert_eq!(seconds, 0.25);
                assert_eq!(seed, 3);
            }
            other => panic!("unexpected {other:?}"),
        }
        // ring= and set= are mutually exclusive.
        let err = parse_request("CHECK ring=lab mbps=16 set=20,1000").unwrap_err();
        assert!(err.contains("ring=…"), "{err}");
    }

    #[test]
    fn parses_abu() {
        match parse_request("ABU mbps=100 stations=16 samples=50 seed=9 protocol=fddi").unwrap() {
            Request::Abu(a) => {
                assert_eq!(a.protocol, ProtocolKind::Fddi);
                assert_eq!(a.mbps, 100.0);
                assert_eq!(a.stations, 16);
                assert_eq!(a.samples, 50);
                assert_eq!(a.seed, 9);
                assert_eq!(a.deadline_ms, None);
            }
            other => panic!("unexpected {other:?}"),
        }
        match parse_request("abu mbps=16 stations=8").unwrap() {
            Request::Abu(a) => {
                assert_eq!(a.samples, DEFAULT_ABU_SAMPLES);
                assert_eq!(a.seed, 1);
                assert_eq!(a.protocol, ProtocolKind::default());
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse_request("ABU stations=8")
            .unwrap_err()
            .contains("mbps"));
        assert!(parse_request("ABU mbps=16")
            .unwrap_err()
            .contains("stations"));
        assert!(parse_request("ABU mbps=16 stations=0").is_err());
        assert!(parse_request("ABU mbps=16 stations=8 samples=0").is_err());
        assert!(parse_request(&format!(
            "ABU mbps=16 stations=8 samples={}",
            MAX_ABU_SAMPLES + 1
        ))
        .is_err());
        assert!(parse_request("ABU mbps=16 stations=8 set=20,1000").is_err());
    }

    #[test]
    fn parses_observability_commands() {
        assert_eq!(parse_request("METRICS").unwrap(), Request::Metrics);
        assert_eq!(parse_request("metrics").unwrap(), Request::Metrics);
        assert!(parse_request("METRICS extra=1").is_err());

        assert_eq!(
            parse_request("TRACE").unwrap(),
            Request::Trace {
                count: DEFAULT_TRACE_EVENTS
            }
        );
        assert_eq!(
            parse_request("TRACE 16").unwrap(),
            Request::Trace { count: 16 }
        );
        assert_eq!(
            parse_request("trace 1000").unwrap(),
            Request::Trace { count: 1000 }
        );
        assert!(parse_request("TRACE 0").is_err());
        assert!(parse_request("TRACE twelve").is_err());
        assert!(parse_request(&format!("TRACE {}", MAX_TRACE_EVENTS + 1)).is_err());
        assert!(parse_request("TRACE 3 4").is_err());

        assert_eq!(parse_request("STATS RESET").unwrap(), Request::StatsReset);
        assert_eq!(parse_request("stats reset").unwrap(), Request::StatsReset);
        assert!(parse_request("STATS RESET now").is_err());
        assert!(parse_request("STATS FLIP").is_err());
    }

    #[test]
    fn parses_batch_header() {
        assert_eq!(
            parse_request("BATCH 32").unwrap(),
            Request::Batch { count: 32 }
        );
        assert!(parse_request("BATCH").is_err());
        assert!(parse_request("BATCH 0").is_err());
        assert!(parse_request("BATCH 100000").is_err());
        assert!(parse_request("BATCH twelve").is_err());
        assert!(parse_request("BATCH 3 4").is_err());
    }

    #[test]
    fn rejects_bad_requests() {
        assert!(parse_request("").is_err());
        assert!(parse_request("FROBNICATE").is_err());
        assert!(parse_request("CHECK set=20,1000")
            .unwrap_err()
            .contains("mbps"));
        assert!(parse_request("CHECK mbps=4").unwrap_err().contains("set"));
        assert!(parse_request("CHECK mbps=-1 set=20,1000").is_err());
        assert!(parse_request("CHECK mbps=4 set=bogus").is_err());
        assert!(parse_request("CHECK mbps=4 set=20,1000 protocol=atm").is_err());
        assert!(parse_request("CHECK mbps=4 set=20,1000 bogus_key=1").is_err());
        assert!(parse_request("PING extra=1").is_err());
        assert!(parse_request("SIMULATE mbps=4 set=20,1000 seconds=-1").is_err());
        assert!(parse_request("SIMULATE mbps=4 set=20,1000 async_load=1.5").is_err());
        assert!(parse_request("SLEEP").unwrap_err().contains("ms"));
        assert!(parse_request("CHECK mbps=4 set").is_err());
        // Registry parameter validation at the protocol edge.
        assert!(parse_request("REGISTER ring=has;semicolon protocol=fddi mbps=100").is_err());
        assert!(
            parse_request("ADMIT ring=r stream=s period_ms=20 bits=1000 deadline_ms=25")
                .unwrap_err()
                .contains("deadline_ms")
        );
        assert!(parse_request("ADMIT ring=r stream=s period_ms=-3 bits=1000").is_err());
        assert!(parse_request("REGISTER protocol=fddi mbps=100")
            .unwrap_err()
            .contains("ring"));
    }

    #[test]
    fn simulate_only_keys_rejected_elsewhere() {
        assert!(parse_request("CHECK mbps=4 set=20,1000 seed=3").is_err());
        assert!(parse_request("SIMULATE mbps=4 set=20,1000 seed=3").is_ok());
        assert!(parse_request("CHECK ring=lab seconds=1").is_err());
        assert!(parse_request("SIMULATE ring=lab seconds=1").is_ok());
    }

    #[test]
    fn last_duplicate_key_wins() {
        match parse_request("CHECK mbps=4 mbps=8 set=20,1000").unwrap() {
            Request::Analysis(a) => assert_eq!(a.mbps, 8.0),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn protocol_tokens_round_trip() {
        for p in [
            ProtocolKind::Ieee8025,
            ProtocolKind::Modified,
            ProtocolKind::Fddi,
        ] {
            assert_eq!(ProtocolKind::parse(p.token()).unwrap(), p);
            assert_eq!(p.to_string(), p.token());
        }
    }
}
