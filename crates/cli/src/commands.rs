//! Command execution.

use std::io::Write;
use std::path::{Path, PathBuf};

use ringrt_breakdown::SaturationSearch;
use ringrt_core::pdp::{PdpAnalyzer, PdpVariant};
use ringrt_core::ttp::TtpAnalyzer;
use ringrt_core::SchedulabilityTest;
use ringrt_model::{FrameFormat, MessageSet, RingConfig, SyncStream};
use ringrt_registry::{ProtocolKind, RingRegistry, RingSpec};
use ringrt_sim::{PdpSimulator, Phasing, SimConfig, TtpSimulator};
use ringrt_units::{Bandwidth, Bits, Seconds};

use crate::args::{RegistryAction, USAGE};
use crate::{Cli, Command, ExitCode, OutputFormat, ProtocolChoice};

/// Executes a parsed command line, writing human-readable output to `out`.
///
/// Returns the process exit code. I/O errors on `out` are ignored (the
/// caller is a CLI writing to stdout).
pub fn run<W: Write>(cli: &Cli, out: &mut W) -> ExitCode {
    match &cli.command {
        Command::Help => {
            let _ = writeln!(out, "{USAGE}");
            ExitCode::Success
        }
        Command::Check {
            file,
            mbps,
            protocol,
            stations,
            format,
        } => with_set(file, out, |set, out| {
            check(set, *mbps, *protocol, *stations, *format, out)
        }),
        Command::Simulate {
            file,
            mbps,
            protocol,
            stations,
            seconds,
            async_load,
            seed,
        } => with_set(file, out, |set, out| {
            simulate(
                set,
                *mbps,
                *protocol,
                *stations,
                *seconds,
                *async_load,
                *seed,
                out,
            )
        }),
        Command::Sweep { file, mbps } => with_set(file, out, |set, out| sweep(set, mbps, out)),
        Command::Abu {
            mbps,
            stations,
            samples,
            seed,
        } => abu(*mbps, *stations, *samples, *seed, out),
        Command::Serve {
            addr,
            workers,
            queue_depth,
            deadline_ms,
            state_dir,
            cache_entries,
            slow_ms,
            trace,
            follow,
            segment_bytes,
            promote_timeout_ms,
            frontend,
            max_conns,
            event_loops,
            idle_timeout_ms,
            read_deadline_ms,
        } => serve(
            ServeOptions {
                addr,
                workers: *workers,
                queue_depth: *queue_depth,
                deadline_ms: *deadline_ms,
                state_dir: state_dir.as_deref(),
                cache_entries: *cache_entries,
                slow_ms: *slow_ms,
                trace: *trace,
                follow: follow.as_deref(),
                segment_bytes: *segment_bytes,
                promote_timeout_ms: *promote_timeout_ms,
                frontend: *frontend,
                max_conns: *max_conns,
                event_loops: *event_loops,
                idle_timeout_ms: *idle_timeout_ms,
                read_deadline_ms: *read_deadline_ms,
            },
            out,
        ),
        Command::Trace { addr, events } => trace(addr, *events, out),
        Command::Promote { addr } => remote_line(addr, "PROMOTE", out),
        Command::Replication { addr } => remote_line(addr, "REPLICATION", out),
        Command::Registry { state_dir, action } => registry(state_dir, action, out),
    }
}

/// The `serve` parameters, bundled so the signature stays readable as
/// flags accrete.
struct ServeOptions<'a> {
    addr: &'a str,
    workers: usize,
    queue_depth: usize,
    deadline_ms: u64,
    state_dir: Option<&'a str>,
    cache_entries: Option<usize>,
    slow_ms: Option<u64>,
    trace: bool,
    follow: Option<&'a str>,
    segment_bytes: Option<u64>,
    promote_timeout_ms: Option<u64>,
    frontend: ringrt_service::Frontend,
    max_conns: usize,
    event_loops: usize,
    idle_timeout_ms: Option<u64>,
    read_deadline_ms: Option<u64>,
}

fn serve<W: Write>(opts: ServeOptions<'_>, out: &mut W) -> ExitCode {
    let ServeOptions {
        addr,
        workers,
        queue_depth,
        deadline_ms,
        state_dir,
        cache_entries,
        slow_ms,
        trace,
        follow,
        segment_bytes,
        promote_timeout_ms,
        frontend,
        max_conns,
        event_loops,
        idle_timeout_ms,
        read_deadline_ms,
    } = opts;
    let defaults = ringrt_service::ServiceConfig::default();
    let config = ringrt_service::ServiceConfig {
        addr: addr.to_owned(),
        workers,
        queue_depth,
        default_deadline_ms: deadline_ms,
        state_dir: state_dir.map(PathBuf::from),
        cache_entries: cache_entries.unwrap_or(defaults.cache_entries),
        slow_ms,
        trace_enabled: trace,
        follow: follow.map(str::to_owned),
        segment_bytes,
        promote_timeout_ms,
        frontend,
        max_conns,
        event_loops,
        idle_timeout_ms,
        read_deadline_ms: read_deadline_ms.unwrap_or(defaults.read_deadline_ms),
        ..defaults
    };
    let server = match ringrt_service::spawn(config) {
        Ok(s) => s,
        Err(e) => {
            let _ = writeln!(out, "error: cannot bind `{addr}`: {e}");
            return ExitCode::UsageError;
        }
    };
    let _ = match follow {
        Some(primary) => writeln!(
            out,
            "listening on {} as a standby of {primary} ({workers} workers, queue depth \
             {queue_depth}); send PROMOTE to take over, SHUTDOWN to stop",
            server.addr()
        ),
        None => writeln!(
            out,
            "listening on {} ({} front end, {workers} workers, queue depth {queue_depth}); \
             send SHUTDOWN to stop",
            server.addr(),
            frontend.token()
        ),
    };
    let _ = out.flush();
    server.wait();
    let _ = writeln!(out, "shut down cleanly");
    ExitCode::Success
}

/// Connects to a running server, drains up to `events` recent span events
/// from its flight recorder, and prints the Chrome trace-event JSON
/// document — redirect it to a file and load it in Perfetto or
/// `chrome://tracing`.
fn trace<W: Write>(addr: &str, events: usize, out: &mut W) -> ExitCode {
    use std::io::{BufRead, BufReader};
    let fail = |out: &mut W, msg: String| {
        let _ = writeln!(out, "error: {msg}");
        ExitCode::UsageError
    };
    let stream = match std::net::TcpStream::connect(addr) {
        Ok(s) => s,
        Err(e) => return fail(out, format!("cannot connect to `{addr}`: {e}")),
    };
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(e) => return fail(out, format!("cannot clone connection: {e}")),
    };
    if let Err(e) = writer
        .write_all(format!("TRACE {events}\n").as_bytes())
        .and_then(|()| writer.flush())
    {
        return fail(out, format!("cannot send TRACE: {e}"));
    }
    let mut reader = BufReader::new(stream);
    let mut header = String::new();
    if let Err(e) = reader.read_line(&mut header) {
        return fail(out, format!("cannot read TRACE response: {e}"));
    }
    if !header.starts_with("OK cmd=trace") {
        return fail(out, format!("server refused TRACE: {}", header.trim_end()));
    }
    let mut json = String::new();
    if let Err(e) = reader.read_line(&mut json) {
        return fail(out, format!("cannot read trace document: {e}"));
    }
    let _ = writeln!(out, "{}", json.trim_end());
    ExitCode::Success
}

/// Sends one request line (`PROMOTE`, `REPLICATION`) to a running server
/// and prints its one-line answer. Exit code follows the response status.
fn remote_line<W: Write>(addr: &str, line: &str, out: &mut W) -> ExitCode {
    use std::io::{BufRead, BufReader};
    let fail = |out: &mut W, msg: String| {
        let _ = writeln!(out, "error: {msg}");
        ExitCode::UsageError
    };
    let stream = match std::net::TcpStream::connect(addr) {
        Ok(s) => s,
        Err(e) => return fail(out, format!("cannot connect to `{addr}`: {e}")),
    };
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(e) => return fail(out, format!("cannot clone connection: {e}")),
    };
    if let Err(e) = writer
        .write_all(format!("{line}\n").as_bytes())
        .and_then(|()| writer.flush())
    {
        return fail(out, format!("cannot send {line}: {e}"));
    }
    let mut reply = String::new();
    if let Err(e) = BufReader::new(stream).read_line(&mut reply) {
        return fail(out, format!("cannot read {line} response: {e}"));
    }
    let reply = reply.trim_end();
    let _ = writeln!(out, "{reply}");
    if reply.starts_with("OK") {
        ExitCode::Success
    } else {
        ExitCode::UsageError
    }
}

/// The registry-side protocol enum for a CLI protocol choice.
fn registry_protocol(choice: ProtocolChoice) -> ProtocolKind {
    match choice {
        ProtocolChoice::Ieee8025 => ProtocolKind::Ieee8025,
        ProtocolChoice::Modified => ProtocolKind::Modified,
        ProtocolChoice::Fddi => ProtocolKind::Fddi,
    }
}

fn registry<W: Write>(state_dir: &str, action: &RegistryAction, out: &mut W) -> ExitCode {
    let reg = match RingRegistry::open(Path::new(state_dir)) {
        Ok(r) => r,
        Err(e) => {
            let _ = writeln!(out, "error: cannot open state dir `{state_dir}`: {e}");
            return ExitCode::UsageError;
        }
    };
    match action {
        RegistryAction::Register {
            ring,
            mbps,
            protocol,
            stations,
        } => {
            let spec = RingSpec {
                protocol: registry_protocol(*protocol),
                mbps: *mbps,
                stations: *stations,
            };
            match reg.register(ring, spec) {
                Ok(()) => {
                    let _ = writeln!(
                        out,
                        "registered ring `{ring}`: protocol={} mbps={mbps} stations={}",
                        registry_protocol(*protocol).token(),
                        stations.map_or("-".to_owned(), |s| s.to_string()),
                    );
                    ExitCode::Success
                }
                Err(e) => {
                    let _ = writeln!(out, "error: {e}");
                    ExitCode::UsageError
                }
            }
        }
        RegistryAction::Admit {
            ring,
            stream,
            period_ms,
            bits,
            deadline_ms,
        } => {
            let candidate =
                match SyncStream::try_new(Seconds::from_millis(*period_ms), Bits::new(*bits)) {
                    Ok(s) => s,
                    Err(e) => {
                        let _ = writeln!(out, "error: invalid stream: {e}");
                        return ExitCode::UsageError;
                    }
                };
            let candidate = match deadline_ms {
                None => candidate,
                Some(d) if *d > 0.0 && *d <= *period_ms => {
                    candidate.with_relative_deadline(Seconds::from_millis(*d))
                }
                Some(d) => {
                    let _ = writeln!(
                        out,
                        "error: --deadline-ms must be in (0, period_ms={period_ms}], got {d}"
                    );
                    return ExitCode::UsageError;
                }
            };
            match reg.admit(ring, stream, candidate) {
                Ok(outcome) => {
                    let verdict = if outcome.applied {
                        "admitted"
                    } else {
                        "rejected (unschedulable)"
                    };
                    let _ = writeln!(
                        out,
                        "{verdict} `{stream}` into ring `{ring}`: {} test, \
                         {} evaluations, {} streams now admitted",
                        if outcome.check.incremental {
                            "incremental"
                        } else {
                            "full"
                        },
                        outcome.check.evaluations,
                        outcome.streams,
                    );
                    if outcome.applied {
                        ExitCode::Success
                    } else {
                        ExitCode::Unschedulable
                    }
                }
                Err(e) => {
                    let _ = writeln!(out, "error: {e}");
                    ExitCode::UsageError
                }
            }
        }
        RegistryAction::Remove { ring, stream } => match reg.remove(ring, stream) {
            Ok(outcome) => {
                let _ = writeln!(
                    out,
                    "removed `{stream}` from ring `{ring}`: {} streams remain \
                     (remaining set schedulable={})",
                    outcome.streams, outcome.check.schedulable,
                );
                ExitCode::Success
            }
            Err(e) => {
                let _ = writeln!(out, "error: {e}");
                ExitCode::UsageError
            }
        },
        RegistryAction::Unregister { ring } => match reg.unregister(ring) {
            Ok(()) => {
                let _ = writeln!(out, "unregistered ring `{ring}`");
                ExitCode::Success
            }
            Err(e) => {
                let _ = writeln!(out, "error: {e}");
                ExitCode::UsageError
            }
        },
        RegistryAction::Show { ring: Some(ring) } => match reg.ring_state(ring) {
            Ok(state) => {
                let _ = writeln!(
                    out,
                    "ring `{ring}`: protocol={} mbps={} stations={} streams={}",
                    state.spec.protocol.token(),
                    state.spec.mbps,
                    state
                        .spec
                        .stations
                        .map_or("-".to_owned(), |s| s.to_string()),
                    state.len(),
                );
                for (name, stream) in state.iter() {
                    let _ = writeln!(
                        out,
                        "  {}: period_ms={} bits={} deadline_ms={}",
                        name,
                        stream.period().as_millis(),
                        stream.length_bits().as_u64(),
                        stream.relative_deadline().as_millis(),
                    );
                }
                if let Ok(check) = reg.check_full(ring) {
                    let _ = writeln!(
                        out,
                        "  schedulable={} utilization={:.6} evaluations={}",
                        check.schedulable, check.utilization, check.evaluations,
                    );
                }
                ExitCode::Success
            }
            Err(e) => {
                let _ = writeln!(out, "error: {e}");
                ExitCode::UsageError
            }
        },
        RegistryAction::Show { ring: None } => {
            let names = reg.ring_names();
            let _ = writeln!(out, "{} ring(s) in `{state_dir}`", names.len());
            for name in names {
                if let Ok(state) = reg.ring_state(&name) {
                    let _ = writeln!(
                        out,
                        "  {name}: protocol={} mbps={} streams={}",
                        state.spec.protocol.token(),
                        state.spec.mbps,
                        state.len(),
                    );
                }
            }
            ExitCode::Success
        }
        RegistryAction::Compact => match reg.compact() {
            Ok(()) => {
                let m = reg.metrics();
                let _ = writeln!(
                    out,
                    "compacted: journal_bytes={} snapshot_bytes={}",
                    m.journal_bytes, m.snapshot_bytes,
                );
                ExitCode::Success
            }
            Err(e) => {
                let _ = writeln!(out, "error: {e}");
                ExitCode::UsageError
            }
        },
    }
}

fn abu<W: Write>(mbps: f64, stations: usize, samples: usize, seed: u64, out: &mut W) -> ExitCode {
    use ringrt_breakdown::BreakdownEstimator;
    use ringrt_workload::MessageSetGenerator;

    if stations == 0 || samples == 0 {
        let _ = writeln!(out, "error: --stations and --samples must be at least 1");
        return ExitCode::UsageError;
    }
    let bw = Bandwidth::from_mbps(mbps);
    let estimator =
        BreakdownEstimator::new(MessageSetGenerator::paper_population(stations), samples);
    let frame = FrameFormat::paper_default();
    let _ = writeln!(
        out,
        "average breakdown utilization at {bw}, {stations} stations, {samples} samples:"
    );
    let candidates: Vec<(&str, Box<dyn SchedulabilityTest + Sync>)> = vec![
        (
            "802.5",
            Box::new(PdpAnalyzer::new(
                RingConfig::ieee_802_5(stations, bw),
                frame,
                PdpVariant::Standard,
            )),
        ),
        (
            "modified",
            Box::new(PdpAnalyzer::new(
                RingConfig::ieee_802_5(stations, bw),
                frame,
                PdpVariant::Modified,
            )),
        ),
        (
            "fddi",
            Box::new(TtpAnalyzer::with_defaults(RingConfig::fddi(stations, bw))),
        ),
    ];
    let pool = ringrt_exec::Pool::from_env();
    for (name, analyzer) in candidates {
        let est = estimator.estimate_parallel(&*analyzer, bw, seed, &pool);
        let _ = writeln!(out, "  {name:<9} {:.4} ± {:.4}", est.mean, est.ci95);
    }
    ExitCode::Success
}

fn with_set<W: Write>(
    file: &str,
    out: &mut W,
    body: impl FnOnce(&MessageSet, &mut W) -> ExitCode,
) -> ExitCode {
    let text = match std::fs::read_to_string(file) {
        Ok(t) => t,
        Err(e) => {
            let _ = writeln!(out, "error: cannot read `{file}`: {e}");
            return ExitCode::UsageError;
        }
    };
    match crate::parse_message_set(&text) {
        Ok(set) => body(&set, out),
        Err(e) => {
            let _ = writeln!(out, "error: `{file}`: {e}");
            ExitCode::UsageError
        }
    }
}

fn ring_for(choice: ProtocolChoice, stations: usize, bw: Bandwidth) -> RingConfig {
    match choice {
        ProtocolChoice::Ieee8025 | ProtocolChoice::Modified => RingConfig::ieee_802_5(stations, bw),
        ProtocolChoice::Fddi => RingConfig::fddi(stations, bw),
    }
}

/// Canonical lower-case protocol token, shared with the admission
/// service's wire protocol and the csv output.
fn protocol_token(protocol: ProtocolChoice) -> &'static str {
    match protocol {
        ProtocolChoice::Ieee8025 => "802.5",
        ProtocolChoice::Modified => "modified",
        ProtocolChoice::Fddi => "fddi",
    }
}

fn check<W: Write>(
    set: &MessageSet,
    mbps: f64,
    protocol: ProtocolChoice,
    stations: Option<usize>,
    format: OutputFormat,
    out: &mut W,
) -> ExitCode {
    let bw = Bandwidth::from_mbps(mbps);
    let stations = stations.unwrap_or(set.len()).max(set.len());
    let ring = ring_for(protocol, stations, bw);
    if format == OutputFormat::Plain {
        let _ = writeln!(
            out,
            "{} streams, U = {:.4} at {bw}, ring of {stations} stations",
            set.len(),
            set.utilization(bw)
        );
    }
    let schedulable = match protocol {
        ProtocolChoice::Ieee8025 | ProtocolChoice::Modified => {
            let variant = if protocol == ProtocolChoice::Ieee8025 {
                PdpVariant::Standard
            } else {
                PdpVariant::Modified
            };
            let report = PdpAnalyzer::new(ring, FrameFormat::paper_default(), variant).analyze(set);
            if format == OutputFormat::Plain {
                let _ = write!(out, "{report}");
            }
            report.schedulable
        }
        ProtocolChoice::Fddi => {
            let report = TtpAnalyzer::with_defaults(ring).analyze(set);
            if format == OutputFormat::Plain {
                let _ = write!(out, "{report}");
            }
            report.schedulable
        }
    };
    if format == OutputFormat::Csv {
        let _ = writeln!(
            out,
            "protocol,mbps,stations,streams,utilization,schedulable"
        );
        let _ = writeln!(
            out,
            "{},{mbps},{stations},{},{:.6},{schedulable}",
            protocol_token(protocol),
            set.len(),
            set.utilization(bw),
        );
    }
    if schedulable {
        ExitCode::Success
    } else {
        ExitCode::Unschedulable
    }
}

#[allow(clippy::too_many_arguments)]
fn simulate<W: Write>(
    set: &MessageSet,
    mbps: f64,
    protocol: ProtocolChoice,
    stations: Option<usize>,
    seconds: f64,
    async_load: f64,
    seed: u64,
    out: &mut W,
) -> ExitCode {
    if !(seconds.is_finite() && seconds > 0.0) {
        let _ = writeln!(out, "error: --seconds must be positive");
        return ExitCode::UsageError;
    }
    if !(0.0..1.0).contains(&async_load) {
        let _ = writeln!(out, "error: --async-load must be in [0, 1)");
        return ExitCode::UsageError;
    }
    let bw = Bandwidth::from_mbps(mbps);
    let stations = stations.unwrap_or(set.len()).max(set.len());
    let ring = ring_for(protocol, stations, bw);
    let config = SimConfig::new(ring, Seconds::new(seconds))
        .with_phasing(Phasing::Synchronized)
        .with_async_load(async_load)
        .with_seed(seed);
    let report = match protocol {
        ProtocolChoice::Ieee8025 | ProtocolChoice::Modified => {
            let variant = if protocol == ProtocolChoice::Ieee8025 {
                PdpVariant::Standard
            } else {
                PdpVariant::Modified
            };
            PdpSimulator::new(set, config, FrameFormat::paper_default(), variant).run()
        }
        ProtocolChoice::Fddi => match TtpSimulator::from_analysis(set, config) {
            Ok(sim) => sim.run(),
            Err(e) => {
                let _ = writeln!(
                    out,
                    "FDDI cannot even allocate synchronous bandwidth for this set: {e}"
                );
                return ExitCode::Unschedulable;
            }
        },
    };
    let _ = write!(out, "{report}");
    if report.all_deadlines_met() {
        ExitCode::Success
    } else {
        ExitCode::Unschedulable
    }
}

fn sweep<W: Write>(set: &MessageSet, mbps_list: &[f64], out: &mut W) -> ExitCode {
    let search = SaturationSearch::default();
    let _ = writeln!(
        out,
        "headroom = largest factor the workload can grow before the criterion breaks"
    );
    let _ = writeln!(out, "mbps,protocol,schedulable,headroom,breakdown_util");
    for &mbps in mbps_list {
        let bw = Bandwidth::from_mbps(mbps);
        let n = set.len();
        let frame = FrameFormat::paper_default();
        let candidates: Vec<(&str, Box<dyn SchedulabilityTest>)> = vec![
            (
                "802.5",
                Box::new(PdpAnalyzer::new(
                    RingConfig::ieee_802_5(n, bw),
                    frame,
                    PdpVariant::Standard,
                )),
            ),
            (
                "modified",
                Box::new(PdpAnalyzer::new(
                    RingConfig::ieee_802_5(n, bw),
                    frame,
                    PdpVariant::Modified,
                )),
            ),
            (
                "fddi",
                Box::new(TtpAnalyzer::with_defaults(RingConfig::fddi(n, bw))),
            ),
        ];
        for (name, analyzer) in candidates {
            let verdict = analyzer.is_schedulable(set);
            match search.saturate(analyzer.as_ref(), set, bw) {
                Some(sat) => {
                    let _ = writeln!(
                        out,
                        "{mbps},{name},{verdict},{:.3},{:.4}",
                        sat.scale, sat.utilization
                    );
                }
                None => {
                    let _ = writeln!(out, "{mbps},{name},{verdict},-,-");
                }
            }
        }
    }
    ExitCode::Success
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_set(contents: &str) -> (tempdir::TempDirGuard, String) {
        tempdir::write_temp("ringrt-cli-test", contents)
    }

    /// Minimal temp-file helper (std-only).
    mod tempdir {
        use std::path::PathBuf;

        pub struct TempDirGuard(PathBuf);
        impl Drop for TempDirGuard {
            fn drop(&mut self) {
                let _ = std::fs::remove_file(&self.0);
            }
        }

        pub fn write_temp(prefix: &str, contents: &str) -> (TempDirGuard, String) {
            let unique = format!(
                "{prefix}-{}-{:p}.txt",
                std::process::id(),
                &contents as *const _
            );
            let path = std::env::temp_dir().join(unique);
            std::fs::write(&path, contents).expect("write temp set file");
            let s = path.to_string_lossy().into_owned();
            (TempDirGuard(path), s)
        }
    }

    fn run_cli(args: &[&str]) -> (ExitCode, String) {
        let cli = Cli::parse(args.iter().map(|s| (*s).to_owned())).expect("parse");
        let mut out = Vec::new();
        let code = run(&cli, &mut out);
        (code, String::from_utf8(out).unwrap())
    }

    #[test]
    fn check_schedulable_set() {
        let (_g, path) = write_set("20, 20000\n50, 60000\n");
        let (code, out) = run_cli(&["check", &path, "--mbps", "16"]);
        assert_eq!(code, ExitCode::Success);
        assert!(out.contains("PASS"), "{out}");
    }

    #[test]
    fn check_unschedulable_set() {
        let (_g, path) = write_set("10, 60000\n10, 60000\n"); // 120 % at 1 Mbps
        let (code, out) = run_cli(&["check", &path, "--mbps", "1"]);
        assert_eq!(code, ExitCode::Unschedulable);
        assert!(out.contains("FAIL"), "{out}");
    }

    #[test]
    fn check_fddi_protocol() {
        let (_g, path) = write_set("20, 200000\n50, 500000\n");
        let (code, out) = run_cli(&["check", &path, "--mbps", "100", "--protocol", "fddi"]);
        assert_eq!(code, ExitCode::Success);
        assert!(out.contains("TTRT"), "{out}");
    }

    #[test]
    fn simulate_reports_misses() {
        let (_g, path) = write_set("10, 30000\n10, 30000\n"); // hopeless at 1 Mbps
        let (code, out) = run_cli(&[
            "simulate",
            &path,
            "--mbps",
            "1",
            "--protocol",
            "802.5",
            "--seconds",
            "0.3",
        ]);
        assert_eq!(code, ExitCode::Unschedulable);
        assert!(out.contains("deadline misses"), "{out}");
    }

    #[test]
    fn simulate_clean_run() {
        let (_g, path) = write_set("20, 4000\n40, 8000\n");
        let (code, out) = run_cli(&["simulate", &path, "--mbps", "4", "--seconds", "0.5"]);
        assert_eq!(code, ExitCode::Success);
        assert!(out.contains("0 deadline misses"), "{out}");
    }

    #[test]
    fn sweep_outputs_csv() {
        let (_g, path) = write_set("20, 20000\n100, 100000\n");
        let (code, out) = run_cli(&["sweep", &path, "--mbps", "4,100"]);
        assert_eq!(code, ExitCode::Success);
        assert!(out.contains("4,802.5,"), "{out}");
        assert!(out.contains("100,fddi,"), "{out}");
    }

    #[test]
    fn check_csv_format() {
        let (_g, path) = write_set("20, 20000\n50, 60000\n");
        let (code, out) = run_cli(&["check", &path, "--mbps", "16", "--format", "csv"]);
        assert_eq!(code, ExitCode::Success);
        let mut lines = out.lines();
        assert_eq!(
            lines.next(),
            Some("protocol,mbps,stations,streams,utilization,schedulable")
        );
        let row = lines.next().unwrap();
        assert!(row.starts_with("modified,16,2,2,"), "{row}");
        assert!(row.ends_with(",true"), "{row}");
        assert_eq!(lines.next(), None, "csv mode must print nothing else");
    }

    #[test]
    fn check_csv_unschedulable_row() {
        let (_g, path) = write_set("10, 60000\n10, 60000\n");
        let (code, out) = run_cli(&[
            "check",
            &path,
            "--mbps",
            "1",
            "--protocol",
            "802.5",
            "--format",
            "csv",
        ]);
        assert_eq!(code, ExitCode::Unschedulable);
        assert!(out.contains("802.5,1,2,2,"), "{out}");
        assert!(out.trim_end().ends_with(",false"), "{out}");
    }

    #[test]
    fn serve_runs_until_shutdown() {
        use std::io::{BufRead, BufReader};
        use std::net::TcpStream;
        use std::sync::{Arc, Mutex};

        #[derive(Clone)]
        struct SharedBuf(Arc<Mutex<Vec<u8>>>);
        impl Write for SharedBuf {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let buf = SharedBuf(Arc::new(Mutex::new(Vec::new())));
        let cli = Cli::parse(
            ["serve", "--addr", "127.0.0.1:0", "--workers", "1"]
                .iter()
                .map(|s| (*s).to_owned()),
        )
        .unwrap();
        let mut thread_out = buf.clone();
        let handle = std::thread::spawn(move || run(&cli, &mut thread_out));

        // Wait for the "listening on …" line to learn the ephemeral port.
        let addr = loop {
            let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
            if let Some(rest) = text.strip_prefix("listening on ") {
                break rest.split_whitespace().next().unwrap().to_owned();
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        };
        let stream = TcpStream::connect(&addr).expect("connect to served port");
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        let mut resp = String::new();
        writeln!(writer, "CHECK mbps=16 set=20,20000;50,60000").unwrap();
        reader.read_line(&mut resp).unwrap();
        assert!(resp.contains("schedulable=true"), "{resp}");
        resp.clear();
        writeln!(writer, "SHUTDOWN").unwrap();
        reader.read_line(&mut resp).unwrap();
        assert!(resp.contains("shutdown"), "{resp}");

        assert_eq!(handle.join().unwrap(), ExitCode::Success);
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert!(text.contains("shut down cleanly"), "{text}");
    }

    #[test]
    fn trace_cli_drains_a_running_server() {
        use std::io::{BufRead, BufReader};
        use std::net::TcpStream;

        let server = ringrt_service::spawn(ringrt_service::ServiceConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 1,
            queue_depth: 4,
            ..Default::default()
        })
        .expect("spawn server");
        let addr = server.addr().to_string();
        // One uncached analysis so the recorder has lifecycle spans.
        let stream = TcpStream::connect(&addr).expect("connect");
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        writeln!(writer, "CHECK mbps=16 set=20,20000").unwrap();
        let mut resp = String::new();
        reader.read_line(&mut resp).unwrap();
        assert!(resp.contains("schedulable=true"), "{resp}");

        let (code, out) = run_cli(&["trace", "--addr", &addr, "--events", "64"]);
        assert_eq!(code, ExitCode::Success, "{out}");
        let json = out.trim_end();
        assert!(json.starts_with("{\"traceEvents\":["), "{json}");
        for stage in ["parse", "cache", "queue_wait", "execute"] {
            assert!(json.contains(&format!("\"name\":\"{stage}\"")), "{json}");
        }
        server.join();
        // Against a dead server the command fails with a usage error.
        let (code, out) = run_cli(&["trace", "--addr", &addr]);
        assert_eq!(code, ExitCode::UsageError, "{out}");
        assert!(out.starts_with("error:"), "{out}");
    }

    #[test]
    fn registry_cli_roundtrip_persists_across_invocations() {
        let dir = std::env::temp_dir().join(format!("ringrt-cli-reg-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let d = dir.to_string_lossy().into_owned();

        let (code, out) = run_cli(&[
            "registry",
            "register",
            "lab",
            "--state-dir",
            &d,
            "--mbps",
            "16",
        ]);
        assert_eq!(code, ExitCode::Success, "{out}");
        assert!(out.contains("registered ring `lab`"), "{out}");

        let (code, out) = run_cli(&[
            "registry",
            "admit",
            "lab",
            "video",
            "--state-dir",
            &d,
            "--period-ms",
            "20",
            "--bits",
            "20000",
        ]);
        assert_eq!(code, ExitCode::Success, "{out}");
        assert!(out.contains("admitted `video`"), "{out}");

        // Duplicate stream names are a structured error, not a crash.
        let (code, out) = run_cli(&[
            "registry",
            "admit",
            "lab",
            "video",
            "--state-dir",
            &d,
            "--period-ms",
            "50",
            "--bits",
            "1000",
        ]);
        assert_eq!(code, ExitCode::UsageError, "{out}");
        assert!(out.contains("duplicate stream"), "{out}");

        // Each invocation reopens the store: the state survived.
        let (code, out) = run_cli(&["registry", "show", "lab", "--state-dir", &d]);
        assert_eq!(code, ExitCode::Success, "{out}");
        assert!(out.contains("video: period_ms=20 bits=20000"), "{out}");
        assert!(out.contains("schedulable=true"), "{out}");

        let (code, out) = run_cli(&["registry", "compact", "--state-dir", &d]);
        assert_eq!(code, ExitCode::Success, "{out}");
        assert!(out.contains("journal_bytes=0"), "{out}");

        let (code, out) = run_cli(&["registry", "remove", "lab", "video", "--state-dir", &d]);
        assert_eq!(code, ExitCode::Success, "{out}");
        assert!(out.contains("0 streams remain"), "{out}");

        let (code, out) = run_cli(&["registry", "show", "--state-dir", &d]);
        assert_eq!(code, ExitCode::Success, "{out}");
        assert!(
            out.contains("lab: protocol=modified mbps=16 streams=0"),
            "{out}"
        );

        let (code, out) = run_cli(&["registry", "unregister", "lab", "--state-dir", &d]);
        assert_eq!(code, ExitCode::Success, "{out}");
        let (_, out) = run_cli(&["registry", "show", "--state-dir", &d]);
        assert!(out.contains("0 ring(s)"), "{out}");

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn registry_rejected_admit_exits_unschedulable() {
        let dir = std::env::temp_dir().join(format!("ringrt-cli-rej-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let d = dir.to_string_lossy().into_owned();

        let (code, _) = run_cli(&[
            "registry",
            "register",
            "slow",
            "--state-dir",
            &d,
            "--mbps",
            "1",
        ]);
        assert_eq!(code, ExitCode::Success);
        // 60 kbit every 10 ms at 1 Mbps is a 600 % load: rejected.
        let (code, out) = run_cli(&[
            "registry",
            "admit",
            "slow",
            "hog",
            "--state-dir",
            &d,
            "--period-ms",
            "10",
            "--bits",
            "60000",
        ]);
        assert_eq!(code, ExitCode::Unschedulable, "{out}");
        assert!(out.contains("rejected"), "{out}");
        // The rejected stream was not stored.
        let (_, out) = run_cli(&["registry", "show", "slow", "--state-dir", &d]);
        assert!(out.contains("streams=0"), "{out}");

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_is_usage_error() {
        let (code, out) = run_cli(&["check", "/nonexistent/set.txt", "--mbps", "4"]);
        assert_eq!(code, ExitCode::UsageError);
        assert!(out.contains("cannot read"), "{out}");
    }

    #[test]
    fn bad_set_file_is_usage_error() {
        let (_g, path) = write_set("not a set\n");
        let (code, out) = run_cli(&["check", &path, "--mbps", "4"]);
        assert_eq!(code, ExitCode::UsageError);
        assert!(out.contains("line 1"), "{out}");
    }

    #[test]
    fn simulate_validates_flags() {
        let (_g, path) = write_set("20, 4000\n");
        let (code, _) = run_cli(&["simulate", &path, "--mbps", "4", "--seconds", "-1"]);
        assert_eq!(code, ExitCode::UsageError);
        let (code, _) = run_cli(&["simulate", &path, "--mbps", "4", "--async-load", "1.5"]);
        assert_eq!(code, ExitCode::UsageError);
    }

    #[test]
    fn abu_estimates_three_protocols() {
        let cli = Cli::parse(
            ["abu", "--mbps", "100", "--stations", "8", "--samples", "4"]
                .iter()
                .map(|s| (*s).to_owned()),
        )
        .unwrap();
        let mut out = Vec::new();
        let code = run(&cli, &mut out);
        let text = String::from_utf8(out).unwrap();
        assert_eq!(code, ExitCode::Success);
        assert!(text.contains("802.5"), "{text}");
        assert!(text.contains("fddi"), "{text}");
        assert!(text.contains("±"), "{text}");
    }

    #[test]
    fn help_prints_usage() {
        let (code, out) = run_cli(&["help"]);
        assert_eq!(code, ExitCode::Success);
        assert!(out.contains("USAGE"));
    }
}
