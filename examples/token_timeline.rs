//! Watch the token work: a protocol-event timeline of the first couple of
//! milliseconds on a small ring, under both MACs.
//!
//! Uses the simulators' tracing facility
//! ([`SimConfig::with_trace`](ringrt::sim::SimConfig::with_trace)) — handy
//! for debugging a schedule or for teaching how the two protocols differ:
//! the 802.5 token chases the highest-priority backlog while the FDDI
//! token marches around the ring metronomically.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example token_timeline
//! ```

use ringrt::prelude::*;
use ringrt::sim::{render_timeline, TraceKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let set = MessageSet::new(vec![
        SyncStream::new(Seconds::from_millis(4.0), Bits::new(1_200)),
        SyncStream::new(Seconds::from_millis(8.0), Bits::new(2_000)),
        SyncStream::new(Seconds::from_millis(16.0), Bits::new(3_000)),
    ])?;
    let horizon = Seconds::from_millis(6.0);

    // --- IEEE 802.5 ----------------------------------------------------
    let ring = RingConfig::ieee_802_5(set.len(), Bandwidth::from_mbps(4.0));
    let config = SimConfig::new(ring, horizon).with_trace(100_000);
    let report = PdpSimulator::new(
        &set,
        config,
        FrameFormat::paper_default(),
        PdpVariant::Standard,
    )
    .run();
    println!("=== IEEE 802.5 at 4 Mbps: first 25 non-hop events ===");
    let interesting: Vec<_> = report
        .trace
        .iter()
        .filter(|e| !matches!(e.kind, TraceKind::TokenArrive { .. }))
        .take(25)
        .copied()
        .collect();
    print!("{}", render_timeline(&interesting));
    println!(
        "(plus {} token hops traced; {} messages completed in {horizon})\n",
        report
            .trace
            .iter()
            .filter(|e| matches!(e.kind, TraceKind::TokenArrive { .. }))
            .count(),
        report.completed()
    );

    // --- FDDI ------------------------------------------------------------
    let ring = RingConfig::fddi(set.len(), Bandwidth::from_mbps(100.0));
    let config = SimConfig::new(ring, horizon).with_trace(100_000);
    let report = TtpSimulator::from_analysis(&set, config)?.run();
    println!("=== FDDI at 100 Mbps: first 25 non-hop events ===");
    let interesting: Vec<_> = report
        .trace
        .iter()
        .filter(|e| !matches!(e.kind, TraceKind::TokenArrive { .. }))
        .take(25)
        .copied()
        .collect();
    print!("{}", render_timeline(&interesting));
    println!(
        "(plus {} token visits traced; mean rotation {})",
        report
            .trace
            .iter()
            .filter(|e| matches!(e.kind, TraceKind::TokenArrive { .. }))
            .count(),
        report
            .rotations
            .mean()
            .map(|d| d.to_string())
            .unwrap_or_default()
    );
    Ok(())
}
