//! Message-set and ring-network models shared by all `ringrt` crates.
//!
//! This crate captures the *system model* of Kamat & Zhao (ICDCS 1993),
//! Section 3:
//!
//! * [`SyncStream`] / [`MessageSet`] — `n` periodic synchronous message
//!   streams `S_1 … S_n`, one per ring station, each with period `P_i` and
//!   payload length `C_i^b` bits (deadline = end of period);
//! * [`RingConfig`] — the physical ring: station count, spacing, per-station
//!   bit delay, token length, signal propagation speed, and bandwidth, from
//!   which the token walk time `WT` and the token circulation time
//!   `Θ = WT + token transmission time` are derived;
//! * [`FrameFormat`] / [`FrameSplit`] — the frame geometry used by the
//!   priority-driven protocol: payload `F_info^b`, overhead `F_ovhd^b`, and
//!   the message split counts `L_i = ⌊C_i^b/F_info^b⌋`,
//!   `K_i = ⌈C_i^b/F_info^b⌉`.
//!
//! # Examples
//!
//! ```
//! use ringrt_model::{MessageSet, RingConfig, SyncStream};
//! use ringrt_units::{Bandwidth, Bits, Seconds};
//!
//! // The paper's evaluation ring: 100 stations, 100 m apart.
//! let ring = RingConfig::ieee_802_5(100, Bandwidth::from_mbps(4.0));
//! assert_eq!(ring.stations(), 100);
//!
//! let set = MessageSet::new(vec![
//!     SyncStream::new(Seconds::from_millis(50.0), Bits::new(20_000)),
//!     SyncStream::new(Seconds::from_millis(100.0), Bits::new(40_000)),
//! ])
//! .unwrap();
//! let u = set.utilization(ring.bandwidth());
//! assert!(u > 0.0 && u < 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod frame;
mod network;
pub mod setfmt;
mod stream;
mod view;

pub use error::ModelError;
pub use frame::{FrameFormat, FrameSplit};
pub use network::{RingConfig, RingConfigBuilder, SPEED_OF_LIGHT_M_S};
pub use setfmt::{parse_message_set, ParseSetError};
pub use stream::{MessageSet, StreamId, SyncStream};
pub use view::SetView;
