//! The `ringrt` command-line entry point; all logic lives in the library
//! half of this crate.

fn main() {
    let code = match ringrt_cli::Cli::parse(std::env::args().skip(1)) {
        Ok(cli) => {
            let stdout = std::io::stdout();
            let mut out = stdout.lock();
            ringrt_cli::run(&cli, &mut out)
        }
        Err(msg) => {
            eprintln!("{msg}");
            ringrt_cli::ExitCode::UsageError
        }
    };
    std::process::exit(code.code());
}
