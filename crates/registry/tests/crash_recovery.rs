//! Crash-recovery scenarios for the journaled registry: torn journal
//! tails, interrupted compactions, and snapshot/journal precedence. These
//! also run in release mode in CI, where the engine's `debug_assert`
//! equivalence checks are compiled out — recovery must not depend on them.

use std::fs;
use std::path::PathBuf;

use ringrt_model::SyncStream;
use ringrt_registry::{
    FailpointFs, FaultPlan, ProtocolKind, RegistryError, RingRegistry, RingSpec, RingState,
    StoreOptions,
};
use ringrt_units::{Bits, Seconds};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ringrt-crash-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn stream(period_ms: f64, bits: u64) -> SyncStream {
    SyncStream::new(Seconds::from_millis(period_ms), Bits::new(bits))
}

fn spec() -> RingSpec {
    RingSpec {
        protocol: ProtocolKind::Fddi,
        mbps: 100.0,
        stations: Some(64),
    }
}

fn populate(reg: &RingRegistry, ring: &str, n: usize) {
    reg.register(ring, spec()).unwrap();
    for i in 0..n {
        let out = reg
            .admit(
                ring,
                &format!("s{i:03}"),
                stream(20.0 + i as f64, 1_000 + 10 * i as u64),
            )
            .unwrap();
        assert!(out.applied, "stream {i} should be admissible");
    }
}

#[test]
fn truncated_last_record_drops_only_the_torn_write() {
    let dir = temp_dir("torn-tail");
    {
        let reg = RingRegistry::open(&dir).unwrap();
        populate(&reg, "lab", 5);
    }
    // Simulate a crash mid-append: chop bytes off the journal's last record.
    let journal = dir.join("journal.000001.log");
    let bytes = fs::read(&journal).unwrap();
    fs::write(&journal, &bytes[..bytes.len() - 7]).unwrap();

    let reg = RingRegistry::open(&dir).unwrap();
    let stats = reg.replay_stats().unwrap().clone();
    assert!(stats.truncated_tail, "torn tail must be detected");
    // Exactly one record (the torn one) is lost.
    assert_eq!(stats.streams_restored, 4);
    let state = reg.ring_state("lab").unwrap();
    assert_eq!(state.len(), 4);
    assert!(state.stream_index("s004").is_none());

    // The registry keeps working after truncation: the same stream can be
    // re-admitted and survives another reopen.
    assert!(
        reg.admit("lab", "s004", stream(24.0, 1_040))
            .unwrap()
            .applied
    );
    drop(reg);
    let reg = RingRegistry::open(&dir).unwrap();
    assert_eq!(reg.ring_state("lab").unwrap().len(), 5);
    assert!(!reg.replay_stats().unwrap().truncated_tail);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_interior_record_truncates_the_rest() {
    let dir = temp_dir("interior");
    {
        let reg = RingRegistry::open(&dir).unwrap();
        populate(&reg, "lab", 5);
    }
    // Flip a byte inside the 4th record (register + 5 admits = 6 records).
    let journal = dir.join("journal.000001.log");
    let text = fs::read_to_string(&journal).unwrap();
    let corrupted: Vec<String> = text
        .lines()
        .enumerate()
        .map(|(i, l)| {
            if i == 3 {
                l.replace("s002", "sXXX")
            } else {
                l.to_owned()
            }
        })
        .collect();
    fs::write(&journal, corrupted.join("\n") + "\n").unwrap();

    let reg = RingRegistry::open(&dir).unwrap();
    let stats = reg.replay_stats().unwrap();
    assert!(stats.truncated_tail);
    // Records after the corruption are gone too — a WAL never replays
    // past a hole.
    assert_eq!(reg.ring_state("lab").unwrap().len(), 2);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn crash_mid_compaction_leaves_tmp_snapshot_ignored() {
    let dir = temp_dir("mid-compaction");
    {
        let reg = RingRegistry::open(&dir).unwrap();
        populate(&reg, "lab", 8);
    }
    // Simulate dying after writing snapshot.tmp but before the rename:
    // plant a bogus tmp file; recovery must ignore it entirely.
    fs::write(
        dir.join("snapshot.tmp"),
        "ringrt-registry-snapshot v1 seq=999\ngarbage\n",
    )
    .unwrap();
    let reg = RingRegistry::open(&dir).unwrap();
    assert_eq!(reg.ring_state("lab").unwrap().len(), 8);
    assert_eq!(reg.replay_stats().unwrap().snapshot_seq, None);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_snapshot_falls_back_to_journal_replay() {
    let dir = temp_dir("bad-snapshot");
    {
        let reg = RingRegistry::open(&dir).unwrap();
        populate(&reg, "lab", 6);
        // Compact, then keep mutating so both snapshot and journal matter.
        reg.compact().unwrap();
    }
    // Corrupt the published snapshot. The journal was truncated by the
    // compaction, so state is lost — but recovery must come up EMPTY and
    // consistent rather than crash or half-load.
    let snap = dir.join("snapshot.dat");
    let text = fs::read_to_string(&snap).unwrap();
    fs::write(&snap, text.replace("s003", "sBAD")).unwrap();
    let reg = RingRegistry::open(&dir).unwrap();
    assert_eq!(reg.replay_stats().unwrap().snapshot_seq, None);
    assert!(reg.ring_names().is_empty());
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn snapshot_plus_journal_precedence() {
    let dir = temp_dir("precedence");
    {
        let reg = RingRegistry::open(&dir).unwrap();
        populate(&reg, "lab", 4);
        reg.compact().unwrap();
        // Post-snapshot mutations land in the journal only.
        assert!(
            reg.admit("lab", "late-a", stream(30.0, 2_000))
                .unwrap()
                .applied
        );
        assert!(
            reg.admit("lab", "late-b", stream(35.0, 2_000))
                .unwrap()
                .applied
        );
        reg.remove("lab", "s001").unwrap();
    }
    let reg = RingRegistry::open(&dir).unwrap();
    let stats = reg.replay_stats().unwrap();
    assert!(stats.snapshot_seq.is_some());
    assert_eq!(
        stats.records_applied, 3,
        "only post-snapshot records replay"
    );
    let state = reg.ring_state("lab").unwrap();
    assert_eq!(state.len(), 5);
    assert!(state.stream_index("late-b").is_some());
    assert!(state.stream_index("s001").is_none());
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn fifty_streams_survive_restart_byte_identically() {
    let dir = temp_dir("fifty");
    let before;
    {
        let reg = RingRegistry::open(&dir).unwrap();
        populate(&reg, "big", 50);
        before = reg.ring_state("big").unwrap();
        assert_eq!(before.len(), 50);
    }
    let reg = RingRegistry::open(&dir).unwrap();
    let after = reg.ring_state("big").unwrap();
    assert_eq!(reg.replay_stats().unwrap().streams_restored, 50);
    // Bit-exact equality of every persisted float, not approximate.
    assert_eq!(before.len(), after.len());
    for ((b_name, b), (a_name, a)) in before.iter().zip(after.iter()) {
        assert_eq!(b_name, a_name);
        assert_eq!(
            b.period().as_secs_f64().to_bits(),
            a.period().as_secs_f64().to_bits()
        );
        assert_eq!(
            b.relative_deadline().as_secs_f64().to_bits(),
            a.relative_deadline().as_secs_f64().to_bits()
        );
        assert_eq!(b.length_bits(), a.length_bits());
    }
    assert_eq!(before, after);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn kill_between_every_pair_of_compaction_steps_recovers() {
    // Walk the compaction protocol manually and verify recovery at each
    // intermediate disk state: (1) tmp written, (2) tmp renamed over
    // snapshot, (3) journal truncated. Steps are emulated by copying the
    // directory before compaction and replaying the file operations.
    let dir = temp_dir("steps");
    {
        let reg = RingRegistry::open(&dir).unwrap();
        populate(&reg, "lab", 4);
    }
    let journal_before = fs::read(dir.join("journal.000001.log")).unwrap();

    // Full compaction for reference snapshot bytes.
    {
        let reg = RingRegistry::open(&dir).unwrap();
        reg.compact().unwrap();
    }
    let snapshot = fs::read(dir.join("snapshot.dat")).unwrap();

    // State A: snapshot.tmp exists, journal intact, no snapshot.dat.
    let a = temp_dir("steps-a");
    fs::create_dir_all(&a).unwrap();
    fs::write(a.join("journal.000001.log"), &journal_before).unwrap();
    fs::write(a.join("snapshot.tmp"), &snapshot).unwrap();
    let reg = RingRegistry::open(&a).unwrap();
    assert_eq!(reg.ring_state("lab").unwrap().len(), 4);
    drop(reg);

    // State B: snapshot.dat published, journal NOT yet truncated — replay
    // must skip the journal records the snapshot already covers.
    let b = temp_dir("steps-b");
    fs::create_dir_all(&b).unwrap();
    fs::write(b.join("journal.000001.log"), &journal_before).unwrap();
    fs::write(b.join("snapshot.dat"), &snapshot).unwrap();
    let reg = RingRegistry::open(&b).unwrap();
    assert_eq!(reg.ring_state("lab").unwrap().len(), 4);
    assert_eq!(reg.replay_stats().unwrap().records_applied, 0);
    drop(reg);

    // State C: the completed compaction (snapshot + empty journal).
    let reg = RingRegistry::open(&dir).unwrap();
    assert_eq!(reg.ring_state("lab").unwrap().len(), 4);

    for d in [a, b, dir] {
        let _ = fs::remove_dir_all(&d);
    }
}

#[test]
fn legacy_single_file_journal_migrates_on_open() {
    let dir = temp_dir("legacy");
    {
        let reg = RingRegistry::open(&dir).unwrap();
        populate(&reg, "lab", 3);
    }
    // Rewind the layout to the pre-segmentation era: one journal.log.
    fs::rename(dir.join("journal.000001.log"), dir.join("journal.log")).unwrap();
    let reg = RingRegistry::open(&dir).unwrap();
    assert_eq!(reg.ring_state("lab").unwrap().len(), 3);
    assert!(dir.join("journal.000001.log").exists());
    assert!(!dir.join("journal.log").exists());
    let _ = fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Segmented kill matrix: enumerate EVERY durable filesystem operation a
// churn workload performs — appends, fsyncs, segment seals/rotations,
// snapshot writes/publishes, sealed-segment GC — and crash at each one
// (clean and torn variants), asserting recovery lands on the pre-crash
// state or, for a record that became durable before its ack was lost, the
// state one committed operation later. Tiny segments force rotations
// between nearly every pair of records so the matrix covers the rotation
// and compaction machinery densely.
// ---------------------------------------------------------------------------

const TINY_SEGMENT: u64 = 128;

type LogicalState = Vec<(String, RingState)>;

fn logical_state(reg: &RingRegistry) -> LogicalState {
    reg.ring_names()
        .into_iter()
        .map(|n| {
            let state = reg.ring_state(&n).unwrap();
            (n, state)
        })
        .collect()
}

type ChurnOp = Box<dyn Fn(&RingRegistry) -> Result<(), RegistryError>>;

fn churn_ops() -> Vec<ChurnOp> {
    let mut ops: Vec<ChurnOp> = Vec::new();
    ops.push(Box::new(|r| r.register("a", spec())));
    ops.push(Box::new(|r| r.register("b", spec())));
    for i in 0..4u64 {
        ops.push(Box::new(move |r| {
            r.admit("a", &format!("a{i}"), stream(20.0 + i as f64, 1_000))
                .map(|out| assert!(out.applied))
        }));
        ops.push(Box::new(move |r| {
            r.admit("b", &format!("b{i}"), stream(25.0 + i as f64, 2_000))
                .map(|out| assert!(out.applied))
        }));
    }
    ops.push(Box::new(|r| r.compact()));
    for i in 4..7u64 {
        ops.push(Box::new(move |r| {
            r.admit("a", &format!("a{i}"), stream(20.0 + i as f64, 1_000))
                .map(|out| assert!(out.applied))
        }));
    }
    ops.push(Box::new(|r| r.remove("a", "a1").map(|_| ())));
    ops.push(Box::new(|r| r.remove("b", "b0").map(|_| ())));
    ops.push(Box::new(|r| r.compact()));
    ops.push(Box::new(|r| r.unregister("b")));
    ops.push(Box::new(|r| {
        r.admit("a", "tail", stream(40.0, 3_000))
            .map(|out| assert!(out.applied))
    }));
    ops
}

/// Runs the churn until the first error; returns how many logical ops
/// committed and the error, if any.
fn run_churn(reg: &RingRegistry) -> (usize, Option<RegistryError>) {
    let mut done = 0;
    for op in churn_ops() {
        match op(reg) {
            Ok(()) => done += 1,
            Err(e) => return (done, Some(e)),
        }
    }
    (done, None)
}

#[test]
fn kill_at_every_durable_op_during_segmented_churn_recovers() {
    // Dry run: learn the total durable-op count and the logical state
    // after each committed operation.
    let dry = temp_dir("matrix-dry");
    let probe = FailpointFs::new();
    let reg = RingRegistry::open_with(
        &dry,
        StoreOptions {
            segment_bytes: TINY_SEGMENT,
            fs: probe.clone(),
        },
    )
    .unwrap();
    probe.reset_ops();
    let mut states: Vec<LogicalState> = vec![logical_state(&reg)];
    for op in churn_ops() {
        op(&reg).unwrap();
        states.push(logical_state(&reg));
    }
    let total_ops = probe.ops();
    assert!(
        reg.metrics().journal_bytes > 0 && total_ops > 30,
        "workload too small to exercise the matrix: {total_ops} durable ops"
    );
    drop(reg);
    let _ = fs::remove_dir_all(&dry);

    for torn in [None, Some(0), Some(7)] {
        for k in 1..=total_ops {
            let dir = temp_dir(&format!("matrix-{k}-{}", torn.map_or(0, |t| t + 1)));
            let fp = FailpointFs::new();
            let reg = RingRegistry::open_with(
                &dir,
                StoreOptions {
                    segment_bytes: TINY_SEGMENT,
                    fs: fp.clone(),
                },
            )
            .unwrap();
            fp.reset_ops();
            fp.arm(FaultPlan {
                fail_at_op: k,
                torn_bytes: torn,
            });
            let (done, err) = run_churn(&reg);
            fp.disarm();
            if let Some(err) = &err {
                assert!(
                    FailpointFs::is_injected(err),
                    "op {k} torn {torn:?}: unexpected real error: {err}"
                );
            }
            drop(reg);
            let reopened = RingRegistry::open(&dir)
                .unwrap_or_else(|e| panic!("op {k} torn {torn:?}: recovery failed: {e}"));
            let recovered = logical_state(&reopened);
            // Every acked op must survive. The op in flight at the crash
            // may or may not have become durable before its ack was lost —
            // both outcomes are consistent.
            let acked = &states[done];
            let in_flight = states.get(done + 1);
            assert!(
                recovered == *acked || Some(&recovered) == in_flight,
                "op {k} torn {torn:?}: recovered state matches neither the \
                 {done} acked ops nor the in-flight op"
            );
            let _ = fs::remove_dir_all(&dir);
        }
    }
}
