//! Frame codec errors.

use core::fmt;

/// Errors raised while decoding a MAC frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FrameError {
    /// The byte buffer is shorter than the fixed framing fields.
    TooShort {
        /// Bytes available.
        got: usize,
        /// Minimum bytes required.
        need: usize,
    },
    /// A delimiter byte did not match the expected code.
    BadDelimiter {
        /// Name of the field ("SD", "ED", …).
        field: &'static str,
        /// The byte found on the wire.
        found: u8,
    },
    /// The frame check sequence did not match the frame contents.
    BadChecksum {
        /// CRC computed over the covered fields.
        computed: u32,
        /// CRC carried by the frame.
        carried: u32,
    },
    /// The access-control byte describes a token, not a data frame (or
    /// vice versa).
    WrongKind,
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::TooShort { got, need } => {
                write!(f, "frame too short: {got} bytes, need at least {need}")
            }
            FrameError::BadDelimiter { field, found } => {
                write!(f, "bad {field} delimiter byte {found:#04x}")
            }
            FrameError::BadChecksum { computed, carried } => write!(
                f,
                "frame check sequence mismatch: computed {computed:#010x}, carried {carried:#010x}"
            ),
            FrameError::WrongKind => write!(f, "frame kind does not match the decoder"),
        }
    }
}

impl std::error::Error for FrameError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = FrameError::TooShort { got: 3, need: 21 };
        assert!(e.to_string().contains("3 bytes"));
        let e = FrameError::BadDelimiter {
            field: "SD",
            found: 0xFF,
        };
        assert!(e.to_string().contains("SD"));
        let e = FrameError::BadChecksum {
            computed: 1,
            carried: 2,
        };
        assert!(e.to_string().contains("mismatch"));
        assert!(FrameError::WrongKind.to_string().contains("kind"));
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync>() {}
        assert_err::<FrameError>();
    }
}
