//! The epoll event-loop connection front end (`--frontend=event`).
//!
//! Each loop owns a [`Poller`], a wakeup pipe, a bounded [`ConnTable`] of
//! nonblocking sockets, and a coarse [`IdleWheel`]; the acceptor
//! round-robins new sockets to the loops over an injection channel. The
//! loop parses newline-framed requests out of whatever byte fragments
//! arrive, answers cheap requests inline (same [`handle_request`] path as
//! the blocking front end), and submits analysis work to the shared worker
//! queue with [`SubmitMode::Queue`]; workers push the finished text back
//! over the loop's completion channel and wake it through the pipe.
//!
//! # fd ownership
//!
//! A socket is owned by exactly one party at a time: the acceptor (between
//! `accept` and injection), then the loop's connection table, and — for a
//! connection that issues `SYNC` — a dedicated ship thread after the loop
//! deregisters the fd and flips it back to blocking. Closing is always by
//! drop of the owning [`TcpStream`]; the loop deregisters from epoll first
//! so a recycled fd number cannot surface stale readiness (and the
//! generation-stamped [`ConnTable`] tokens make any already-drained stale
//! event miss).
//!
//! # Ordering
//!
//! Pipelined requests on one connection are answered in arrival order: the
//! per-connection reply queue holds one entry per request (a `BATCH`
//! collapses to one entry), and only the *front* entry may flush. A slow
//! analysis therefore delays later replies on its own connection — exactly
//! the contract the blocking front end provides — while other connections
//! proceed.
//!
//! # Shutdown
//!
//! On shutdown the acceptor stops injecting; the loop keeps pumping until
//! every connection has no reply in flight and no unflushed bytes, closing
//! each as it drains (workers drain the queue fully, so every awaited
//! completion arrives). Connections still waiting after
//! [`EXECUTION_GRACE`] are force-closed. The loop thread exits once its
//! table is empty; [`ServerHandle::wait`](crate::server::ServerHandle)
//! joins loops before workers so completions keep flowing during the
//! drain.

use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ringrt_net::{
    ConnTable, Event, IdleWheel, Interest, LineBuffer, Poller, Token, Waker, WriteBuffer,
};
use ringrt_registry::ShipSubscription;

use crate::metrics::Stage;
use crate::protocol::{CommandKind, MAX_LINE_BYTES};
use crate::server::{
    handle_request, record_completed, serve_ship, Completion, Handled, QueueTicket, Response,
    Shared, SubmitMode, EXECUTION_GRACE, POLL_INTERVAL,
};

/// Reserved token for the wakeup pipe; connection tokens are
/// `(generation << 32) | index` and can never collide with it.
const WAKE_TOKEN: Token = Token(u64::MAX);
/// Read granularity per readiness event.
const READ_CHUNK: usize = 16 * 1024;
/// Reads taken per readable event before yielding to other connections;
/// level-triggered epoll re-reports anything left unread.
const MAX_READS_PER_EVENT: usize = 4;
/// Timer-wheel shape: 64 slots × 100 ms ≈ 6.4 s horizon; longer deadlines
/// surface early and re-arm (lazy revalidation).
const WHEEL_SLOTS: usize = 64;
const WHEEL_GRANULARITY: Duration = Duration::from_millis(100);
/// How far out a connection with no armed deadline is rescheduled for a
/// routine revalidation pass.
const RECHECK: Duration = Duration::from_secs(30);
/// Per-loop connection-table bound when `--max-conns` is unlimited.
const DEFAULT_TABLE_CAP: usize = 65_536;

/// One reply position: already renderable, or awaiting a worker.
enum Part {
    Ready(String),
    Waiting {
        slot: u64,
        command: CommandKind,
        started: Instant,
    },
}

/// One entry in a connection's in-order reply queue. A `BATCH` is a single
/// entry so its replies leave in one write, like the blocking front end.
enum Entry {
    Single(Part),
    Batch { parts: Vec<Part>, waiting: usize },
}

/// A `BATCH n` whose `n` request lines have not all arrived yet.
struct BatchInProgress {
    expected: usize,
    parts: Vec<Part>,
    waiting: usize,
}

/// Per-connection state owned by one event loop.
struct Conn {
    stream: TcpStream,
    input: LineBuffer,
    out: WriteBuffer,
    queue: VecDeque<Entry>,
    batch: Option<BatchInProgress>,
    /// Next reply-slot id; completions match on `(token, slot)`.
    next_slot: u64,
    last_activity: Instant,
    /// When the currently buffered partial line started (slow-loris clock).
    partial_since: Option<Instant>,
    /// Whether the fd is currently registered for writable readiness.
    writable_interest: bool,
    /// Close once the queue and write buffer drain (`SHUTDOWN` reply,
    /// oversized line, pipelined-`SYNC` refusal).
    closing: bool,
}

impl Conn {
    fn new(stream: TcpStream, now: Instant) -> Conn {
        Conn {
            stream,
            input: LineBuffer::new(MAX_LINE_BYTES),
            out: WriteBuffer::new(),
            queue: VecDeque::new(),
            batch: None,
            next_slot: 0,
            last_activity: now,
            partial_since: None,
            writable_interest: false,
            closing: false,
        }
    }

    /// Replies still owed by workers (queue entries plus the open batch).
    fn waiting_replies(&self) -> usize {
        let queued: usize = self
            .queue
            .iter()
            .map(|entry| match entry {
                Entry::Single(Part::Waiting { .. }) => 1,
                Entry::Single(Part::Ready(_)) => 0,
                Entry::Batch { waiting, .. } => *waiting,
            })
            .sum();
        queued + self.batch.as_ref().map_or(0, |b| b.waiting)
    }
}

#[cfg(unix)]
fn raw_fd(stream: &TcpStream) -> i32 {
    std::os::unix::io::AsRawFd::as_raw_fd(stream)
}

#[cfg(not(unix))]
fn raw_fd(_stream: &TcpStream) -> i32 {
    // Unreachable in practice: Poller::new already failed with
    // `Unsupported` on non-unix targets, so no loop ever runs.
    -1
}

/// Handle for the acceptor to push a fresh socket to a loop.
pub(crate) struct Injector {
    tx: mpsc::Sender<TcpStream>,
    waker: Arc<Waker>,
}

impl Injector {
    /// Transfers the socket; `false` means the loop is gone (shutdown
    /// race) and the caller keeps ownership implicitly by the drop.
    pub(crate) fn send(&self, stream: TcpStream) -> bool {
        if self.tx.send(stream).is_err() {
            return false;
        }
        self.waker.wake();
        true
    }
}

/// One spawned event loop, joinable at shutdown.
pub(crate) struct LoopHandle {
    tx: mpsc::Sender<TcpStream>,
    waker: Arc<Waker>,
    thread: JoinHandle<()>,
}

impl LoopHandle {
    pub(crate) fn injector(&self) -> Injector {
        Injector {
            tx: self.tx.clone(),
            waker: Arc::clone(&self.waker),
        }
    }

    /// Nudges the loop (it may be parked in `epoll_wait`) and waits for it
    /// to drain its connections and exit.
    pub(crate) fn join(self) {
        self.waker.wake();
        let _ = self.thread.join();
    }
}

/// Creates `count` event loops. The epoll instance and wakeup pipe are
/// created on the caller's thread so an unsupported platform or fd
/// exhaustion surfaces as a bind-time error, not a dead loop.
pub(crate) fn spawn_loops(
    shared: &Arc<Shared>,
    count: usize,
    connections: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) -> std::io::Result<Vec<LoopHandle>> {
    // Best effort: the whole point of this front end is holding more
    // sockets than the default soft fd limit allows.
    let _ = ringrt_net::rlimit::raise_nofile_to_hard();
    let capacity = if shared.config.max_conns > 0 {
        shared.config.max_conns
    } else {
        DEFAULT_TABLE_CAP
    };
    let mut loops = Vec::with_capacity(count);
    for i in 0..count {
        let poller = Poller::new(1024)?;
        let waker = Arc::new(Waker::new()?);
        waker.register(&poller, WAKE_TOKEN)?;
        let (tx, inject_rx) = mpsc::channel();
        let (completion_tx, completion_rx) = mpsc::channel();
        let event_loop = EventLoop {
            shared: Arc::clone(shared),
            poller,
            waker: Arc::clone(&waker),
            inject_rx,
            completion_tx,
            completion_rx,
            table: ConnTable::new(capacity),
            wheel: IdleWheel::new(WHEEL_SLOTS, WHEEL_GRANULARITY, Instant::now()),
            connections: Arc::clone(connections),
        };
        let thread = std::thread::Builder::new()
            .name(format!("ringrt-loop-{i}"))
            .spawn(move || event_loop.run())?;
        loops.push(LoopHandle { tx, waker, thread });
    }
    Ok(loops)
}

struct EventLoop {
    shared: Arc<Shared>,
    poller: Poller,
    waker: Arc<Waker>,
    inject_rx: mpsc::Receiver<TcpStream>,
    completion_tx: mpsc::Sender<Completion>,
    completion_rx: mpsc::Receiver<Completion>,
    table: ConnTable<Conn>,
    wheel: IdleWheel,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl EventLoop {
    fn run(mut self) {
        let mut events: Vec<Event> = Vec::new();
        let mut due: Vec<u64> = Vec::new();
        let mut shutdown_since: Option<Instant> = None;
        loop {
            let n = self
                .poller
                .wait(&mut events, Some(POLL_INTERVAL))
                .unwrap_or(0);
            if n > 0 {
                let conns = &self.shared.metrics.conns;
                conns.loop_wakeups.fetch_add(1, Ordering::Relaxed);
                conns
                    .loop_ready_events
                    .fetch_add(n as u64, Ordering::Relaxed);
            }
            for event in &events {
                if event.token == WAKE_TOKEN {
                    self.waker.drain();
                } else {
                    self.handle_event(event);
                }
            }
            self.drain_completions();
            self.drain_injections();
            self.sweep_timers(&mut due);
            if self.shared.shutting_down() {
                let since = *shutdown_since.get_or_insert_with(Instant::now);
                self.drain_shutdown(since);
                if self.table.is_empty() {
                    // Late-race injections (acceptor mid-accept when the
                    // flag flipped) are dropped, not served.
                    while let Ok(stream) = self.inject_rx.try_recv() {
                        drop(stream);
                        self.shared
                            .metrics
                            .conns
                            .open
                            .fetch_sub(1, Ordering::Relaxed);
                    }
                    break;
                }
            }
        }
    }

    fn handle_event(&mut self, event: &Event) {
        let token = event.token;
        if event.readable || event.hangup {
            // A hangup still lets `read` drain buffered bytes and then
            // return 0/error, which is the close path.
            if !self.read_ready(token) {
                return;
            }
        }
        if event.writable {
            self.flush_out(token);
        }
    }

    /// Reads whatever is available (bounded per event), parses complete
    /// lines, and pumps replies. Returns `false` when the connection was
    /// closed.
    fn read_ready(&mut self, token: Token) -> bool {
        let mut buf = [0u8; READ_CHUNK];
        let now = Instant::now();
        let mut dead = false;
        {
            let Some(conn) = self.table.get_mut(token) else {
                return false;
            };
            for _ in 0..MAX_READS_PER_EVENT {
                match conn.stream.read(&mut buf) {
                    Ok(0) => {
                        dead = true;
                        break;
                    }
                    Ok(n) => {
                        conn.last_activity = now;
                        conn.input.extend(&buf[..n]);
                        if n < READ_CHUNK {
                            break;
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => {}
                    Err(_) => {
                        dead = true;
                        break;
                    }
                }
            }
        }
        if dead {
            self.close(token);
            return false;
        }
        self.process_input(token)
    }

    /// Drains complete lines out of the input buffer, dispatching each.
    /// Returns `false` when the connection was closed.
    fn process_input(&mut self, token: Token) -> bool {
        loop {
            let line = {
                let Some(conn) = self.table.get_mut(token) else {
                    return false;
                };
                if conn.closing {
                    // A closing connection's remaining input is dead; we
                    // only wait for the reply queue to flush.
                    break;
                }
                match conn.input.next_line() {
                    Ok(Some(line)) => {
                        conn.partial_since = None;
                        line
                    }
                    Ok(None) => {
                        if conn.input.has_partial() {
                            // The slow-loris clock starts when a partial
                            // line appears and resets on completion. Arm
                            // the wheel at the real deadline on the
                            // None→Some transition: the entry placed at
                            // accept time sits at the re-check horizon,
                            // far too late for a tight read deadline.
                            if conn.partial_since.is_none() {
                                let now = Instant::now();
                                conn.partial_since = Some(now);
                                let deadline = next_deadline(&self.shared, conn, now);
                                self.wheel.schedule(token.0, deadline);
                            }
                        } else {
                            conn.partial_since = None;
                        }
                        break;
                    }
                    Err(err) => {
                        self.shared
                            .metrics
                            .conns
                            .oversized_rejected
                            .fetch_add(1, Ordering::Relaxed);
                        conn.queue.push_back(Entry::Single(Part::Ready(format!(
                            "ERR line exceeds {} bytes",
                            err.max
                        ))));
                        conn.closing = true;
                        break;
                    }
                }
            };
            self.process_line(token, &line);
        }
        self.pump(token)
    }

    /// Handles one complete request line for `token`.
    fn process_line(&mut self, token: Token, line: &str) {
        let line = line.trim_end();
        let (slot, in_batch) = {
            let Some(conn) = self.table.get_mut(token) else {
                return;
            };
            (conn.next_slot, conn.batch.is_some())
        };
        let ticket = QueueTicket {
            tx: self.completion_tx.clone(),
            waker: Arc::clone(&self.waker),
            conn: token,
            slot,
        };
        let handled = handle_request(line, &self.shared, SubmitMode::Queue(&ticket));
        // A ship subscription takes over the socket entirely; handle it
        // before re-borrowing the connection.
        if !in_batch {
            if let Handled::Ready(Response::Ship(sub)) = handled {
                self.detach_for_ship(token, *sub);
                return;
            }
        }
        let Some(conn) = self.table.get_mut(token) else {
            return;
        };
        if in_batch {
            let part = match handled {
                Handled::Ready(Response::Batch(_)) => {
                    Part::Ready("ERR nested BATCH is not allowed".to_owned())
                }
                Handled::Ready(Response::Ship(_)) => {
                    Part::Ready("ERR SYNC is not allowed inside BATCH".to_owned())
                }
                Handled::Ready(Response::Close) => {
                    conn.closing = true;
                    Part::Ready(Response::Close.into_text())
                }
                Handled::Ready(Response::Line(text) | Response::Hit(text)) => Part::Ready(text),
                Handled::Pending(_) => {
                    unreachable!("SubmitMode::Queue never yields Handled::Pending")
                }
                Handled::Queued { command, started } => {
                    conn.next_slot += 1;
                    Part::Waiting {
                        slot,
                        command,
                        started,
                    }
                }
            };
            let batch = conn.batch.as_mut().expect("batch state checked above");
            if matches!(part, Part::Waiting { .. }) {
                batch.waiting += 1;
            }
            batch.parts.push(part);
            if batch.parts.len() >= batch.expected {
                let done = conn.batch.take().expect("batch state present");
                conn.queue.push_back(Entry::Batch {
                    parts: done.parts,
                    waiting: done.waiting,
                });
            }
        } else {
            match handled {
                Handled::Ready(Response::Batch(expected)) => {
                    conn.batch = Some(BatchInProgress {
                        expected: expected.max(1),
                        parts: Vec::with_capacity(expected.max(1)),
                        waiting: 0,
                    });
                }
                Handled::Ready(Response::Ship(_)) => unreachable!("handled above"),
                Handled::Ready(Response::Close) => {
                    conn.queue
                        .push_back(Entry::Single(Part::Ready(Response::Close.into_text())));
                    conn.closing = true;
                }
                Handled::Ready(Response::Line(text) | Response::Hit(text)) => {
                    conn.queue.push_back(Entry::Single(Part::Ready(text)));
                }
                Handled::Pending(_) => {
                    unreachable!("SubmitMode::Queue never yields Handled::Pending")
                }
                Handled::Queued { command, started } => {
                    conn.next_slot += 1;
                    conn.queue.push_back(Entry::Single(Part::Waiting {
                        slot,
                        command,
                        started,
                    }));
                }
            }
        }
    }

    /// Hands the socket to a dedicated blocking ship thread (the `SYNC`
    /// path). Refused when replies are still pipelined ahead: the stream
    /// would interleave with framed responses.
    fn detach_for_ship(&mut self, token: Token, sub: ShipSubscription) {
        {
            let Some(conn) = self.table.get_mut(token) else {
                return;
            };
            if !conn.queue.is_empty() || !conn.out.is_empty() || conn.batch.is_some() {
                conn.queue.push_back(Entry::Single(Part::Ready(
                    "ERR SYNC cannot be pipelined behind other requests".to_owned(),
                )));
                conn.closing = true;
                return;
            }
        }
        let Some(conn) = self.table.remove(token) else {
            return;
        };
        let _ = self.poller.deregister(raw_fd(&conn.stream));
        if conn.stream.set_nonblocking(false).is_err() {
            self.shared
                .metrics
                .conns
                .open
                .fetch_sub(1, Ordering::Relaxed);
            return;
        }
        let shared = Arc::clone(&self.shared);
        let spawned = std::thread::Builder::new()
            .name("ringrt-ship".to_owned())
            .spawn(move || {
                let mut conn = conn;
                serve_ship(&mut conn.stream, sub, &shared);
                // The ship thread owned the gauge slot from here on.
                shared.metrics.conns.open.fetch_sub(1, Ordering::Relaxed);
            });
        match spawned {
            Ok(handle) => self
                .connections
                .lock()
                .expect("connection list poisoned")
                .push(handle),
            Err(_) => {
                self.shared
                    .metrics
                    .conns
                    .open
                    .fetch_sub(1, Ordering::Relaxed);
            }
        }
    }

    /// Matches worker completions back to their waiting reply slots.
    fn drain_completions(&mut self) {
        while let Ok(completion) = self.completion_rx.try_recv() {
            let token = completion.conn;
            let Some(conn) = self.table.get_mut(token) else {
                // The connection closed while the job executed; the reply
                // has nowhere to go (generation-stamped token went stale).
                continue;
            };
            if fill_slot(&self.shared, conn, &completion) {
                self.pump(token);
            }
        }
    }

    /// Admits sockets the acceptor routed to this loop.
    fn drain_injections(&mut self) {
        let now = Instant::now();
        while let Ok(stream) = self.inject_rx.try_recv() {
            if self.shared.shutting_down() || stream.set_nonblocking(true).is_err() {
                self.shared
                    .metrics
                    .conns
                    .open
                    .fetch_sub(1, Ordering::Relaxed);
                continue;
            }
            match self.table.insert(Conn::new(stream, now)) {
                Ok(token) => {
                    let fd = {
                        let conn = self.table.get_mut(token).expect("just inserted");
                        raw_fd(&conn.stream)
                    };
                    if self.poller.register(fd, token, Interest::READ).is_err() {
                        self.table.remove(token);
                        self.shared
                            .metrics
                            .conns
                            .open
                            .fetch_sub(1, Ordering::Relaxed);
                        continue;
                    }
                    let deadline = {
                        let conn = self.table.get_mut(token).expect("just inserted");
                        next_deadline(&self.shared, conn, now)
                    };
                    self.wheel.schedule(token.0, deadline);
                }
                Err(mut conn) => {
                    // Per-loop table full: same contract as the accept
                    // guard — one definite BUSY line, then close.
                    let conns = &self.shared.metrics.conns;
                    conns.accept_shed.fetch_add(1, Ordering::Relaxed);
                    conns.open.fetch_sub(1, Ordering::Relaxed);
                    let _ = conn.stream.write_all(
                        format!("BUSY max_conns={}\n", self.table.capacity()).as_bytes(),
                    );
                }
            }
        }
    }

    /// Advances the timer wheel and revalidates every surfaced candidate:
    /// enforce the partial-line read deadline (slow loris) and the idle
    /// timeout, or lazily re-arm at the connection's true next deadline.
    fn sweep_timers(&mut self, due: &mut Vec<u64>) {
        enum Verdict {
            ReadDeadline(u64),
            Idle,
            Rearm(Instant),
        }
        let now = Instant::now();
        due.clear();
        self.wheel.advance(now, due);
        for &id in due.iter() {
            let token = Token(id);
            let verdict = {
                let Some(conn) = self.table.get_mut(token) else {
                    continue; // closed since scheduling: entry is stale
                };
                let rd = self.shared.config.read_deadline_ms;
                let read_expired = rd > 0
                    && conn
                        .partial_since
                        .is_some_and(|s| now.duration_since(s) >= Duration::from_millis(rd));
                let idle_expired = self.shared.config.idle_timeout_ms.is_some_and(|idle| {
                    now.duration_since(conn.last_activity) >= Duration::from_millis(idle)
                        && conn.waiting_replies() == 0
                        && conn.out.is_empty()
                        && conn.queue.is_empty()
                });
                if read_expired {
                    Verdict::ReadDeadline(rd)
                } else if idle_expired {
                    Verdict::Idle
                } else {
                    Verdict::Rearm(next_deadline(&self.shared, conn, now))
                }
            };
            match verdict {
                Verdict::ReadDeadline(rd) => {
                    self.shared
                        .metrics
                        .conns
                        .read_deadline_closed
                        .fetch_add(1, Ordering::Relaxed);
                    if let Some(conn) = self.table.get_mut(token) {
                        let _ = conn.stream.write_all(
                            format!("ERR read deadline: partial line idle for {rd} ms\n")
                                .as_bytes(),
                        );
                    }
                    self.close(token);
                }
                Verdict::Idle => {
                    self.shared
                        .metrics
                        .conns
                        .idle_closed
                        .fetch_add(1, Ordering::Relaxed);
                    self.close(token);
                }
                Verdict::Rearm(deadline) => self.wheel.schedule(id, deadline),
            }
        }
    }

    /// Serializes fully ready front-of-queue entries into the write buffer
    /// and flushes. Returns `false` when the connection was closed.
    fn pump(&mut self, token: Token) -> bool {
        {
            let Some(conn) = self.table.get_mut(token) else {
                return false;
            };
            loop {
                let ready = matches!(
                    conn.queue.front(),
                    Some(Entry::Single(Part::Ready(_))) | Some(Entry::Batch { waiting: 0, .. })
                );
                if !ready {
                    break;
                }
                match conn.queue.pop_front() {
                    Some(Entry::Single(Part::Ready(text))) => {
                        self.shared.metrics.count_response(&text);
                        conn.out.push(text.as_bytes());
                        conn.out.push(b"\n");
                    }
                    Some(Entry::Batch { parts, .. }) => {
                        for part in parts {
                            let Part::Ready(text) = part else {
                                unreachable!("waiting==0 means every part is ready")
                            };
                            self.shared.metrics.count_response(&text);
                            conn.out.push(text.as_bytes());
                            conn.out.push(b"\n");
                        }
                    }
                    _ => unreachable!("front checked ready above"),
                }
            }
        }
        self.flush_out(token)
    }

    /// Flushes buffered response bytes and keeps the poller interest in
    /// sync (writable only while bytes are pending). Returns `false` when
    /// the connection was closed.
    fn flush_out(&mut self, token: Token) -> bool {
        let (drained, failed) = {
            let Some(conn) = self.table.get_mut(token) else {
                return false;
            };
            if conn.out.is_empty() {
                (true, false)
            } else {
                let respond_span = self.shared.recorder.span("request", "respond");
                let result = conn.out.flush_to(&mut conn.stream);
                self.shared
                    .metrics
                    .record_stage(Stage::Respond, respond_span.finish());
                match result {
                    Ok(flushed) => (flushed, false),
                    Err(_) => (false, true),
                }
            }
        };
        if failed {
            self.close(token);
            return false;
        }
        let mut reregister_failed = false;
        let mut done_closing = false;
        if let Some(conn) = self.table.get_mut(token) {
            done_closing = drained && conn.closing && conn.queue.is_empty() && conn.batch.is_none();
            let want_write = !drained;
            if conn.writable_interest != want_write && !done_closing {
                let fd = raw_fd(&conn.stream);
                let interest = if want_write {
                    Interest::READ_WRITE
                } else {
                    Interest::READ
                };
                if self.poller.reregister(fd, token, interest).is_ok() {
                    conn.writable_interest = want_write;
                } else {
                    reregister_failed = true;
                }
            }
        }
        if reregister_failed || done_closing {
            self.close(token);
            return false;
        }
        true
    }

    /// During shutdown: pump what is ready, close every connection that no
    /// longer owes or holds anything, and force-close stragglers once the
    /// execution grace expires.
    fn drain_shutdown(&mut self, since: Instant) {
        let force = since.elapsed() >= EXECUTION_GRACE;
        for token in self.table.tokens() {
            if !self.pump(token) {
                continue; // closed during the pump
            }
            let done = {
                let Some(conn) = self.table.get_mut(token) else {
                    continue;
                };
                force || (conn.waiting_replies() == 0 && conn.out.is_empty())
            };
            if done {
                self.close(token);
            }
        }
    }

    /// Tears a connection down: out of epoll, out of the table (bumping
    /// the slot generation so stale events and completions miss), gauge
    /// decremented, fd closed by drop.
    fn close(&mut self, token: Token) {
        if let Some(conn) = self.table.remove(token) {
            let _ = self.poller.deregister(raw_fd(&conn.stream));
            self.shared
                .metrics
                .conns
                .open
                .fetch_sub(1, Ordering::Relaxed);
        }
    }
}

/// The earliest instant at which `conn` needs revalidation: its partial-
/// line read deadline, its idle deadline, or a routine recheck.
fn next_deadline(shared: &Arc<Shared>, conn: &Conn, now: Instant) -> Instant {
    let mut deadline = now + RECHECK;
    if let Some(idle_ms) = shared.config.idle_timeout_ms {
        deadline = deadline.min(conn.last_activity + Duration::from_millis(idle_ms));
    }
    let rd = shared.config.read_deadline_ms;
    if rd > 0 {
        if let Some(since) = conn.partial_since {
            deadline = deadline.min(since + Duration::from_millis(rd));
        }
    }
    deadline
}

/// Finds the waiting reply slot a completion belongs to, records its
/// latency, and fills it in. `false` means the slot was not found (stale
/// completion for a recycled connection slot — dropped).
fn fill_slot(shared: &Arc<Shared>, conn: &mut Conn, completion: &Completion) -> bool {
    for entry in &mut conn.queue {
        match entry {
            Entry::Single(part) => {
                if try_fill(shared, part, completion) {
                    return true;
                }
            }
            Entry::Batch { parts, waiting } => {
                for part in parts.iter_mut() {
                    if try_fill(shared, part, completion) {
                        *waiting -= 1;
                        return true;
                    }
                }
            }
        }
    }
    if let Some(batch) = conn.batch.as_mut() {
        for part in batch.parts.iter_mut() {
            if try_fill(shared, part, completion) {
                batch.waiting -= 1;
                return true;
            }
        }
    }
    false
}

fn try_fill(shared: &Arc<Shared>, part: &mut Part, completion: &Completion) -> bool {
    let Part::Waiting {
        slot,
        command,
        started,
    } = part
    else {
        return false;
    };
    if *slot != completion.slot {
        return false;
    }
    record_completed(shared, *command, *started, &completion.text);
    *part = Part::Ready(completion.text.clone());
    true
}
