//! Physical ring network model (paper §3.1 and §6).

use core::fmt;

use ringrt_units::{Bandwidth, Bits, Seconds};

use crate::ModelError;

/// Speed of light in vacuum, m/s.
pub const SPEED_OF_LIGHT_M_S: f64 = 299_792_458.0;

/// Default IEEE 802.5 per-station latency (paper §6: "4 bits").
const IEEE_802_5_STATION_DELAY: Bits = Bits::new(4);
/// Default FDDI per-station latency (paper §6: "75 bits").
const FDDI_STATION_DELAY: Bits = Bits::new(75);
/// IEEE 802.5 token length: SD + AC + ED = 3 octets.
const IEEE_802_5_TOKEN: Bits = Bits::new(24);
/// FDDI token length: 8-octet preamble + SD + FC + ED ≈ 11 octets.
const FDDI_TOKEN: Bits = Bits::new(88);
/// Paper §6: signal propagation at 75 % of the speed of light.
const DEFAULT_MEDIUM_VELOCITY_FACTOR: f64 = 0.75;

/// The physical ring: topology, latencies, and bandwidth (paper §3.1).
///
/// From these parameters the model derives:
///
/// * the **walk time** `WT` = signal propagation around the ring + per-station
///   ring/buffer latency;
/// * the **token circulation time** `Θ = WT + token transmission time`,
///   which the paper decomposes as `Θ = P + Q/BW` with `P` the (bandwidth
///   independent) propagation delay and `Q` the token length plus ring
///   latency in bits.
///
/// Construct via the presets [`RingConfig::ieee_802_5`] /
/// [`RingConfig::fddi`] (which embed the paper's §6 parameter choices) or
/// via [`RingConfig::builder`] for full control.
///
/// # Examples
///
/// ```
/// use ringrt_model::RingConfig;
/// use ringrt_units::Bandwidth;
///
/// let ring = RingConfig::fddi(100, Bandwidth::from_mbps(100.0));
/// // 10 km of fibre at 0.75c plus 100 × 75 bit delays plus the token.
/// let theta = ring.token_circulation_time();
/// assert!(theta.as_micros() > 100.0 && theta.as_micros() < 130.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RingConfig {
    stations: usize,
    station_spacing_m: f64,
    station_delay: Bits,
    token_length: Bits,
    bandwidth: Bandwidth,
    velocity_factor: f64,
}

impl RingConfig {
    /// Starts building a custom ring configuration.
    #[must_use]
    pub fn builder() -> RingConfigBuilder {
        RingConfigBuilder::new()
    }

    /// The paper's IEEE 802.5 evaluation ring: `stations` nodes spaced
    /// 100 m apart, 4-bit station latency, 24-bit token, signals at 0.75c.
    ///
    /// # Panics
    ///
    /// Panics if `stations` is zero.
    #[must_use]
    pub fn ieee_802_5(stations: usize, bandwidth: Bandwidth) -> Self {
        RingConfigBuilder::new()
            .stations(stations)
            .station_spacing_m(100.0)
            .station_delay(IEEE_802_5_STATION_DELAY)
            .token_length(IEEE_802_5_TOKEN)
            .bandwidth(bandwidth)
            .build()
            .expect("preset parameters are valid")
    }

    /// The paper's FDDI evaluation ring: `stations` nodes spaced 100 m
    /// apart, 75-bit station latency, 88-bit token, signals at 0.75c.
    ///
    /// # Panics
    ///
    /// Panics if `stations` is zero.
    #[must_use]
    pub fn fddi(stations: usize, bandwidth: Bandwidth) -> Self {
        RingConfigBuilder::new()
            .stations(stations)
            .station_spacing_m(100.0)
            .station_delay(FDDI_STATION_DELAY)
            .token_length(FDDI_TOKEN)
            .bandwidth(bandwidth)
            .build()
            .expect("preset parameters are valid")
    }

    /// Number of stations `n` on the ring.
    #[must_use]
    pub fn stations(&self) -> usize {
        self.stations
    }

    /// Distance between neighbouring stations, metres.
    #[must_use]
    pub fn station_spacing_m(&self) -> f64 {
        self.station_spacing_m
    }

    /// Per-station ring/buffer latency, in bit times.
    #[must_use]
    pub fn station_delay(&self) -> Bits {
        self.station_delay
    }

    /// Token length in bits.
    #[must_use]
    pub fn token_length(&self) -> Bits {
        self.token_length
    }

    /// The ring bandwidth `BW`.
    #[must_use]
    pub fn bandwidth(&self) -> Bandwidth {
        self.bandwidth
    }

    /// Returns a copy of this configuration at a different bandwidth
    /// (used by the Figure-1 bandwidth sweep).
    #[must_use]
    pub fn with_bandwidth(&self, bandwidth: Bandwidth) -> RingConfig {
        RingConfig { bandwidth, ..*self }
    }

    /// Total ring circumference, metres.
    #[must_use]
    pub fn ring_length_m(&self) -> f64 {
        self.stations as f64 * self.station_spacing_m
    }

    /// Signal propagation speed on the medium, m/s.
    #[must_use]
    pub fn propagation_speed_m_s(&self) -> f64 {
        self.velocity_factor * SPEED_OF_LIGHT_M_S
    }

    /// One-way propagation delay around the whole ring (the paper's
    /// bandwidth-independent `P` component of `Θ`).
    #[must_use]
    pub fn propagation_delay(&self) -> Seconds {
        Seconds::new(self.ring_length_m() / self.propagation_speed_m_s())
    }

    /// Aggregate station latency around the ring: `n · b / BW`.
    #[must_use]
    pub fn ring_latency(&self) -> Seconds {
        self.bandwidth
            .transmission_time(self.station_delay * self.stations as u64)
    }

    /// Token walk time `WT` = propagation delay + ring latency (paper §3.1).
    #[must_use]
    pub fn walk_time(&self) -> Seconds {
        self.propagation_delay() + self.ring_latency()
    }

    /// Token transmission time.
    #[must_use]
    pub fn token_time(&self) -> Seconds {
        self.bandwidth.transmission_time(self.token_length)
    }

    /// Token circulation time `Θ = WT + token transmission time`
    /// (paper §3.1).
    #[must_use]
    pub fn token_circulation_time(&self) -> Seconds {
        self.walk_time() + self.token_time()
    }

    /// The `Q` of the paper's decomposition `Θ = P + Q/BW`: token length
    /// plus total ring latency, in bits.
    #[must_use]
    pub fn latency_bits(&self) -> Bits {
        self.token_length + self.station_delay * self.stations as u64
    }

    /// Per-hop latency between adjacent stations: spacing propagation plus
    /// one station's bit delay. Used by the hop-by-hop simulator; `n` hops
    /// equal the walk time `WT` exactly.
    #[must_use]
    pub fn hop_latency(&self) -> Seconds {
        Seconds::new(self.station_spacing_m / self.propagation_speed_m_s())
            + self.bandwidth.transmission_time(self.station_delay)
    }
}

impl fmt::Display for RingConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ring(n = {}, d = {} m, delay = {}/station, token = {}, {})",
            self.stations,
            self.station_spacing_m,
            self.station_delay,
            self.token_length,
            self.bandwidth
        )
    }
}

/// Builder for [`RingConfig`].
///
/// # Examples
///
/// ```
/// use ringrt_model::RingConfig;
/// use ringrt_units::{Bandwidth, Bits};
///
/// let ring = RingConfig::builder()
///     .stations(16)
///     .station_spacing_m(50.0)
///     .station_delay(Bits::new(4))
///     .token_length(Bits::new(24))
///     .bandwidth(Bandwidth::from_mbps(16.0))
///     .build()?;
/// assert_eq!(ring.stations(), 16);
/// # Ok::<(), ringrt_model::ModelError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RingConfigBuilder {
    stations: usize,
    station_spacing_m: f64,
    station_delay: Bits,
    token_length: Bits,
    bandwidth: Option<Bandwidth>,
    velocity_factor: f64,
}

impl Default for RingConfigBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl RingConfigBuilder {
    /// Creates a builder pre-loaded with the paper's §6 defaults
    /// (100 stations, 100 m spacing, 0.75c) and IEEE 802.5 latencies.
    #[must_use]
    pub fn new() -> Self {
        RingConfigBuilder {
            stations: 100,
            station_spacing_m: 100.0,
            station_delay: IEEE_802_5_STATION_DELAY,
            token_length: IEEE_802_5_TOKEN,
            bandwidth: None,
            velocity_factor: DEFAULT_MEDIUM_VELOCITY_FACTOR,
        }
    }

    /// Sets the number of stations `n`.
    #[must_use]
    pub fn stations(mut self, n: usize) -> Self {
        self.stations = n;
        self
    }

    /// Sets the distance between neighbouring stations, metres.
    #[must_use]
    pub fn station_spacing_m(mut self, d: f64) -> Self {
        self.station_spacing_m = d;
        self
    }

    /// Sets the per-station ring/buffer latency in bit times.
    #[must_use]
    pub fn station_delay(mut self, delay: Bits) -> Self {
        self.station_delay = delay;
        self
    }

    /// Sets the token length in bits.
    #[must_use]
    pub fn token_length(mut self, token: Bits) -> Self {
        self.token_length = token;
        self
    }

    /// Sets the ring bandwidth (required).
    #[must_use]
    pub fn bandwidth(mut self, bw: Bandwidth) -> Self {
        self.bandwidth = Some(bw);
        self
    }

    /// Sets the signal speed as a fraction of the speed of light
    /// (default 0.75 per the paper).
    #[must_use]
    pub fn velocity_factor(mut self, factor: f64) -> Self {
        self.velocity_factor = factor;
        self
    }

    /// Validates and builds the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidRing`] if any parameter is out of
    /// range (zero stations, non-positive spacing or velocity factor,
    /// velocity above 1, zero-length token, or missing bandwidth).
    pub fn build(self) -> Result<RingConfig, ModelError> {
        if self.stations == 0 {
            return Err(ModelError::InvalidRing {
                parameter: "stations",
                reason: "a ring needs at least one station".into(),
            });
        }
        if !(self.station_spacing_m.is_finite() && self.station_spacing_m > 0.0) {
            return Err(ModelError::InvalidRing {
                parameter: "station_spacing_m",
                reason: format!(
                    "must be finite and positive, got {}",
                    self.station_spacing_m
                ),
            });
        }
        if !(self.velocity_factor > 0.0 && self.velocity_factor <= 1.0) {
            return Err(ModelError::InvalidRing {
                parameter: "velocity_factor",
                reason: format!("must be in (0, 1], got {}", self.velocity_factor),
            });
        }
        if self.token_length.is_zero() {
            return Err(ModelError::InvalidRing {
                parameter: "token_length",
                reason: "token must be at least one bit".into(),
            });
        }
        let bandwidth = self.bandwidth.ok_or(ModelError::InvalidRing {
            parameter: "bandwidth",
            reason: "bandwidth is required".into(),
        })?;
        Ok(RingConfig {
            stations: self.stations,
            station_spacing_m: self.station_spacing_m,
            station_delay: self.station_delay,
            token_length: self.token_length,
            bandwidth,
            velocity_factor: self.velocity_factor,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_fddi_theta_at_100mbps() {
        // n = 100, d = 100 m → 10 km at 0.75c ⇒ 44.44 µs propagation;
        // 100 × 75 bits at 100 Mbps ⇒ 75 µs; token 88 bits ⇒ 0.88 µs.
        let ring = RingConfig::fddi(100, Bandwidth::from_mbps(100.0));
        assert!((ring.propagation_delay().as_micros() - 44.47).abs() < 0.1);
        assert!((ring.ring_latency().as_micros() - 75.0).abs() < 1e-9);
        assert!((ring.token_time().as_micros() - 0.88).abs() < 1e-9);
        let theta = ring.token_circulation_time();
        assert!((theta.as_micros() - 120.3).abs() < 0.3, "{theta}");
    }

    #[test]
    fn paper_802_5_theta_at_1mbps() {
        // Ring latency dominates at 1 Mbps: 400 bits = 400 µs.
        let ring = RingConfig::ieee_802_5(100, Bandwidth::from_mbps(1.0));
        assert!((ring.ring_latency().as_micros() - 400.0).abs() < 1e-9);
        assert!((ring.token_time().as_micros() - 24.0).abs() < 1e-9);
        let theta = ring.token_circulation_time();
        assert!((theta.as_micros() - 468.5).abs() < 0.5, "{theta}");
    }

    #[test]
    fn theta_decomposition_p_plus_q_over_bw() {
        // Θ = P + Q/BW exactly, with P the propagation delay.
        let ring = RingConfig::ieee_802_5(100, Bandwidth::from_mbps(16.0));
        let p = ring.propagation_delay();
        let q_over_bw = ring.bandwidth().transmission_time(ring.latency_bits());
        let theta = ring.token_circulation_time();
        assert!((theta.as_secs_f64() - (p + q_over_bw).as_secs_f64()).abs() < 1e-15);
    }

    #[test]
    fn hop_latency_times_n_equals_walk_time() {
        let ring = RingConfig::fddi(64, Bandwidth::from_mbps(100.0));
        let walk = ring.walk_time().as_secs_f64();
        let hops = ring.hop_latency().as_secs_f64() * 64.0;
        assert!((walk - hops).abs() < 1e-12);
    }

    #[test]
    fn with_bandwidth_changes_only_bandwidth() {
        let a = RingConfig::fddi(100, Bandwidth::from_mbps(100.0));
        let b = a.with_bandwidth(Bandwidth::from_mbps(10.0));
        assert_eq!(b.stations(), 100);
        assert_eq!(b.bandwidth().as_mbps(), 10.0);
        // Propagation delay unchanged, ring latency ×10.
        assert_eq!(a.propagation_delay(), b.propagation_delay());
        assert!(
            (b.ring_latency().as_secs_f64() / a.ring_latency().as_secs_f64() - 10.0).abs() < 1e-9
        );
    }

    #[test]
    fn builder_validation() {
        assert!(matches!(
            RingConfig::builder()
                .stations(0)
                .bandwidth(Bandwidth::from_mbps(1.0))
                .build(),
            Err(ModelError::InvalidRing {
                parameter: "stations",
                ..
            })
        ));
        assert!(matches!(
            RingConfig::builder().build(),
            Err(ModelError::InvalidRing {
                parameter: "bandwidth",
                ..
            })
        ));
        assert!(matches!(
            RingConfig::builder()
                .bandwidth(Bandwidth::from_mbps(1.0))
                .velocity_factor(1.5)
                .build(),
            Err(ModelError::InvalidRing {
                parameter: "velocity_factor",
                ..
            })
        ));
        assert!(matches!(
            RingConfig::builder()
                .bandwidth(Bandwidth::from_mbps(1.0))
                .station_spacing_m(-3.0)
                .build(),
            Err(ModelError::InvalidRing {
                parameter: "station_spacing_m",
                ..
            })
        ));
        assert!(matches!(
            RingConfig::builder()
                .bandwidth(Bandwidth::from_mbps(1.0))
                .token_length(Bits::ZERO)
                .build(),
            Err(ModelError::InvalidRing {
                parameter: "token_length",
                ..
            })
        ));
    }

    #[test]
    fn display_mentions_key_fields() {
        let ring = RingConfig::ieee_802_5(10, Bandwidth::from_mbps(4.0));
        let s = ring.to_string();
        assert!(s.contains("n = 10"));
        assert!(s.contains("4.000 Mbps"));
    }
}
