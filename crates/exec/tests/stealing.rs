//! Property: the sharded work-stealing pool is order-preserving and
//! bit-identical to the serial path under any schedule.
//!
//! `Pool::map` merges per-worker runs by starting index, so the output
//! must equal `(0..n).map(f)` regardless of thread count, chunk size, or
//! which workers steal when. These tests randomize all three — including
//! a pseudo-random forced-steal schedule via the deterministic
//! steal-injection hook — and hammer the take/steal compare-exchange
//! race with every worker stealing on every round.

use proptest::prelude::*;

use ringrt_exec::Pool;

/// A cheap index mixer so each output value depends on its index in a
/// way a mis-merged run would scramble.
fn mix(seed: u64, i: usize) -> u64 {
    let mut z = seed ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z ^ (z >> 31)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `map` under randomized width / chunk / steal schedule == serial.
    #[test]
    fn stolen_map_is_bit_identical_to_serial(
        seed in any::<u64>(),
        schedule in any::<u64>(),
        threads in 1usize..=8,
        chunk in 1usize..=7,
        n in 0usize..200,
    ) {
        let serial: Vec<u64> = Pool::serial().map(n, |i| mix(seed, i));
        let pool = Pool::new(threads)
            .with_chunk_size(chunk)
            .with_steal_injection(move |worker, round| {
                let bit = (worker as u64).wrapping_mul(7).wrapping_add(round) % 64;
                (schedule >> bit) & 1 == 1
            });
        let pooled = pool.map(n, |i| mix(seed, i));
        prop_assert_eq!(
            serial, pooled,
            "threads {} chunk {} n {} schedule {:#x}",
            threads, chunk, n, schedule
        );
    }

    /// `map_slice` preserves submission order under the same schedules.
    #[test]
    fn stolen_map_slice_keeps_submission_order(
        schedule in any::<u64>(),
        threads in 1usize..=8,
        chunk in 1usize..=5,
        items in proptest::collection::vec(any::<u32>(), 0..120),
    ) {
        let expected: Vec<u64> = items.iter().map(|&v| u64::from(v) + 1).collect();
        let pool = Pool::new(threads)
            .with_chunk_size(chunk)
            .with_steal_injection(move |worker, round| {
                (schedule >> ((worker as u64 + 13 * round) % 64)) & 1 == 1
            });
        let got = pool.map_slice(&items, |&v| u64::from(v) + 1);
        prop_assert_eq!(expected, got);
    }
}

/// Worst-case contention on the packed-range CAS: every worker is forced
/// into a steal round every time, with one-item chunks, so takes and
/// steals continuously collide on the same shard words. The single-word
/// compare-exchange must still hand out every index exactly once, in
/// merge order.
#[test]
fn all_steal_every_round_hammers_the_take_steal_race() {
    let pool = Pool::new(4)
        .with_chunk_size(1)
        .with_steal_injection(|_, _| true);
    for round in 0..50u64 {
        let n = 97; // prime, so shards split unevenly
        let serial: Vec<u64> = Pool::serial().map(n, |i| mix(round, i));
        let pooled = pool.map(n, |i| mix(round, i));
        assert_eq!(serial, pooled, "round {round}");
    }
    let stats = pool.stats();
    assert!(
        stats.steal_attempts > 0,
        "forced schedule must search for victims"
    );
}

/// The injector alone must not corrupt the no-work edge cases.
#[test]
fn forced_steals_on_tiny_inputs_stay_exact() {
    let pool = Pool::new(8)
        .with_chunk_size(1)
        .with_steal_injection(|_, _| true);
    assert_eq!(pool.map(0, |i| i), Vec::<usize>::new());
    assert_eq!(pool.map(1, |i| i), vec![0]);
    assert_eq!(pool.map(2, |i| i * 10), vec![0, 10]);
}
