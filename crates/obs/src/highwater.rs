//! A windowed high-water mark: a lock-free gauge that remembers the
//! largest value observed since the last reset.
//!
//! The service uses one for its worker-queue depth (`queue_peak`) and one
//! for replication lag; both share `STATS RESET` windowed semantics —
//! resetting starts a fresh measurement window rather than pretending the
//! quantity itself went to zero, so a reset can re-seed the mark with the
//! current level.

use std::sync::atomic::{AtomicU64, Ordering};

/// Largest value observed since the last [`reset`](HighWater::reset).
///
/// All operations are single relaxed-or-release atomics; `observe` on the
/// hot path costs one `fetch_max`.
#[derive(Debug, Default)]
pub struct HighWater {
    peak: AtomicU64,
}

impl HighWater {
    /// A mark that has observed nothing (peak 0).
    #[must_use]
    pub fn new() -> Self {
        HighWater::default()
    }

    /// Folds one observation into the mark.
    pub fn observe(&self, value: u64) {
        self.peak.fetch_max(value, Ordering::Relaxed);
    }

    /// The largest value observed in the current window.
    #[must_use]
    pub fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }

    /// Starts a fresh window seeded with `current` — the level the
    /// measured quantity holds *right now*, which the new window has, by
    /// definition, already observed. Pass 0 for quantities that are
    /// instantaneously empty between observations.
    pub fn reset(&self, current: u64) {
        self.peak.store(current, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_the_maximum() {
        let hw = HighWater::new();
        assert_eq!(hw.peak(), 0);
        hw.observe(3);
        hw.observe(7);
        hw.observe(5);
        assert_eq!(hw.peak(), 7);
    }

    #[test]
    fn reset_reseeds_the_window() {
        let hw = HighWater::new();
        hw.observe(9);
        hw.reset(2);
        assert_eq!(hw.peak(), 2, "window restarts at the current level");
        hw.observe(1);
        assert_eq!(hw.peak(), 2);
        hw.observe(4);
        assert_eq!(hw.peak(), 4);
        hw.reset(0);
        assert_eq!(hw.peak(), 0);
    }
}
