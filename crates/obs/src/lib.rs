//! Flight-recorder observability for the ringrt service stack.
//!
//! The crate is deliberately std-only and lock-light so it can sit on the
//! hot paths of the admission service, the journaled registry, and the
//! exec pool without perturbing the latencies it measures:
//!
//! - [`Recorder`] keeps recent [`SpanEvent`]s in sharded fixed-capacity
//!   ring buffers (a "flight recorder"): pushes never allocate, never
//!   block on a contended lock in the common case, and overwrite the
//!   oldest events when full instead of growing.
//! - [`Span`] is a drop guard created by [`Recorder::span`]; when the
//!   recorder is disabled the guard is inert and the cost is one relaxed
//!   atomic load plus one clock read.
//! - [`ShardedCounter`] is the tier below spans: a cache-padded relaxed
//!   counter (no clock read at all) for paths where even one span per
//!   event is too much — the service's cache-hit fast path aggregates
//!   into these and samples one span per 64 hits.
//! - [`trace`] renders drained events as Chrome trace-event JSON, loadable
//!   in Perfetto / `chrome://tracing`.
//! - [`prom`] renders counters, gauges, and [`ringrt_des::stats::DurationHistogram`]
//!   latency histograms in Prometheus text exposition format, reusing the
//!   histogram's power-of-two picosecond bucket edges as `le` labels.
//! - [`json`] is a minimal JSON reader used to validate the trace export
//!   shape in tests without external dependencies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod counter;
mod highwater;
pub mod json;
pub mod prom;
mod recorder;
pub mod trace;

pub use counter::ShardedCounter;
pub use highwater::HighWater;
pub use recorder::{Measured, Recorder, RecorderStats, Span, SpanEvent, DEFAULT_SHARD_CAPACITY};
