//! Property tests of the core analysis internals: overhead accounting,
//! visit counts, blocking bounds, and the RM machinery.

use proptest::prelude::*;

use ringrt_core::pdp::{augmented_length, blocking_bound, PdpVariant};
use ringrt_core::rm::{self, RmTask};
use ringrt_core::ttp::{visit_count, worst_case_available_time, SbaScheme, TtpAnalyzer};
use ringrt_model::{FrameFormat, MessageSet, RingConfig, SyncStream};
use ringrt_units::{Bandwidth, Bits, Seconds};

fn ring(mbps: f64) -> RingConfig {
    RingConfig::ieee_802_5(16, Bandwidth::from_mbps(mbps))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The augmented length C' is monotone in the message size, for both
    /// variants and across the F ≤ Θ / F > Θ regimes.
    #[test]
    fn augmented_length_monotone_in_size(
        bits in 1u64..500_000,
        extra in 1u64..100_000,
        mbps in 1.0f64..1000.0,
        modified in any::<bool>(),
    ) {
        let variant = if modified { PdpVariant::Modified } else { PdpVariant::Standard };
        let ring = ring(mbps);
        let frame = FrameFormat::paper_default();
        let p = Seconds::from_millis(1_000.0);
        let small = SyncStream::new(p, Bits::new(bits));
        let large = SyncStream::new(p, Bits::new(bits + extra));
        let c_small = augmented_length(&small, &ring, &frame, variant);
        let c_large = augmented_length(&large, &ring, &frame, variant);
        prop_assert!(c_large >= c_small, "{c_large} < {c_small}");
    }

    /// C' is always at least the raw transmission time, and the standard
    /// variant never beats the modified variant.
    #[test]
    fn augmented_length_lower_bounds(
        bits in 1u64..500_000,
        mbps in 1.0f64..1000.0,
    ) {
        let ring = ring(mbps);
        let frame = FrameFormat::paper_default();
        let s = SyncStream::new(Seconds::from_millis(1_000.0), Bits::new(bits));
        let raw = s.transmission_time(ring.bandwidth());
        let std = augmented_length(&s, &ring, &frame, PdpVariant::Standard);
        let modv = augmented_length(&s, &ring, &frame, PdpVariant::Modified);
        prop_assert!(std >= raw);
        prop_assert!(modv >= raw);
        prop_assert!(modv <= std);
    }

    /// The blocking bound is exactly 2·max(F, Θ) and hence monotone in the
    /// frame size.
    #[test]
    fn blocking_monotone_in_frame_size(
        payload in 1u64..65_536,
        extra in 1u64..65_536,
        mbps in 1.0f64..1000.0,
    ) {
        let ring = ring(mbps);
        let small = FrameFormat::with_payload(Bits::new(payload)).unwrap();
        let large = FrameFormat::with_payload(Bits::new(payload + extra)).unwrap();
        prop_assert!(blocking_bound(&ring, &large) >= blocking_bound(&ring, &small));
        let f = small.frame_time(ring.bandwidth());
        let theta = ring.token_circulation_time();
        let expect = 2.0 * if f > theta { f } else { theta };
        let got = blocking_bound(&ring, &small);
        prop_assert!((got.as_secs_f64() - expect.as_secs_f64()).abs() < 1e-15);
    }

    /// visit_count is monotone in the window and antitone in the TTRT, and
    /// q·TTRT never exceeds the window by more than one TTRT.
    #[test]
    fn visit_count_laws(window_ms in 0.1f64..1000.0, ttrt_ms in 0.05f64..100.0) {
        let window = Seconds::from_millis(window_ms);
        let ttrt = Seconds::from_millis(ttrt_ms);
        let q = visit_count(window, ttrt);
        // Defining inequality of the floor (with the implementation's
        // 1e-9 relative snap tolerance at exact multiples).
        let tol = 1.0 + 2e-9;
        prop_assert!(q as f64 * ttrt_ms <= window_ms * tol);
        prop_assert!((q + 1) as f64 * ttrt_ms >= window_ms / tol);
        // Monotonicity.
        prop_assert!(visit_count(window * 2.0, ttrt) >= q);
        prop_assert!(visit_count(window, ttrt * 2.0) <= q);
        // Available time is (q−1)·h.
        let h = Seconds::from_micros(100.0);
        let x = worst_case_available_time(q, h);
        prop_assert!((x.as_secs_f64() - h.as_secs_f64() * q.saturating_sub(1) as f64).abs() < 1e-15);
    }

    /// The local allocation exactly satisfies its defining equation
    /// h_i = C_i/(q_i−1) + F_ovhd whenever q_i ≥ 2.
    #[test]
    fn local_allocation_equation(
        periods_ms in prop::collection::vec(20.0f64..500.0, 1..6),
        bits in 1_000u64..1_000_000,
    ) {
        let bw = Bandwidth::from_mbps(100.0);
        let set = MessageSet::new(
            periods_ms
                .iter()
                .map(|&p| SyncStream::new(Seconds::from_millis(p), Bits::new(bits)))
                .collect(),
        )
        .unwrap();
        let ttrt = Seconds::from_millis(4.0);
        let fo = Seconds::from_micros(1.12);
        let h = SbaScheme::Local.allocate(&set, ttrt, Seconds::ZERO, fo, bw);
        for (s, &hi) in set.iter().zip(&h) {
            let q = visit_count(s.relative_deadline(), ttrt);
            prop_assume!(q >= 2);
            let expect = s.transmission_time(bw) / (q - 1) as f64 + fo;
            prop_assert!((hi.as_secs_f64() - expect.as_secs_f64()).abs() < 1e-15);
        }
    }

    /// RTA response times are monotone in blocking, and adding a
    /// lower-priority task never changes higher-priority responses.
    #[test]
    fn rta_isolation_laws(
        costs_ms in prop::collection::vec(0.5f64..5.0, 2..6),
        blocking_ms in 0.0f64..3.0,
    ) {
        let n = costs_ms.len();
        let tasks: Vec<RmTask> = costs_ms
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                RmTask::new(
                    Seconds::from_millis(c),
                    Seconds::from_millis(50.0 * (i + 1) as f64),
                )
            })
            .collect();
        let b0 = Seconds::ZERO;
        let b1 = Seconds::from_millis(blocking_ms);
        for i in 0..n {
            match (rm::response_time(&tasks, i, b0), rm::response_time(&tasks, i, b1)) {
                (Some(r0), Some(r1)) => prop_assert!(r1 >= r0),
                (None, Some(_)) => prop_assert!(false, "blocking cannot help"),
                _ => {}
            }
        }
        // Dropping the lowest-priority task leaves the others' responses
        // untouched.
        let prefix = &tasks[..n - 1];
        for i in 0..n - 1 {
            prop_assert_eq!(
                rm::response_time(prefix, i, b1),
                rm::response_time(&tasks, i, b1)
            );
        }
    }

    /// TTP analyze() is invariant under station order permutation (only the
    /// per-stream labels move).
    #[test]
    fn ttp_verdict_order_invariant(
        specs in prop::collection::vec((20.0f64..400.0, 1_000u64..400_000), 2..6),
    ) {
        use ringrt_core::SchedulabilityTest;
        let bw = Bandwidth::from_mbps(100.0);
        let ring = RingConfig::fddi(specs.len(), bw);
        let a = TtpAnalyzer::with_defaults(ring);
        let streams: Vec<SyncStream> = specs
            .iter()
            .map(|&(p, c)| SyncStream::new(Seconds::from_millis(p), Bits::new(c)))
            .collect();
        let forward = MessageSet::new(streams.clone()).unwrap();
        let mut rev = streams;
        rev.reverse();
        let backward = MessageSet::new(rev).unwrap();
        prop_assert_eq!(a.is_schedulable(&forward), a.is_schedulable(&backward));
    }
}
