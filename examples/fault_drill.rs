//! Fault drill: what token loss does to guaranteed traffic.
//!
//! The paper's analysis assumes a fault-free ring; the standards it
//! compares both carry recovery machinery (the 802.5 active monitor, the
//! FDDI claim process). This example runs the space-station backbone at a
//! comfortable margin and injects free-token losses at increasing rates,
//! showing how the deadline guarantee erodes as recoveries eat the slack —
//! and how response-time percentiles (p50/p99/worst) tell the story before
//! outright misses do.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example fault_drill
//! ```

use ringrt::prelude::*;
use ringrt::workload::scenarios;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let set = scenarios::space_station_backbone();
    let ring = RingConfig::fddi(set.len(), Bandwidth::from_mbps(100.0));
    let recovery = Seconds::from_millis(8.0);
    println!(
        "space-station backbone on {}, token-loss drill (recovery = {recovery})\n",
        ring.bandwidth()
    );
    println!("loss/s | losses | completed | misses | S1 p50 / p99 / worst response");
    println!("-------+--------+-----------+--------+------------------------------");

    for loss_rate in [0.0, 2.0, 10.0, 40.0, 120.0] {
        let mut config = SimConfig::new(ring, Seconds::new(4.0)).with_async_load(0.2);
        if loss_rate > 0.0 {
            config = config.with_token_loss(loss_rate, recovery);
        }
        let report = TtpSimulator::from_analysis(&set, config)?.run();
        let s1 = &report.per_stream[0];
        let fmt = |d: Option<ringrt::units::SimDuration>| {
            d.map(|d| format!("{:.2} ms", d.as_seconds().as_millis()))
                .unwrap_or_else(|| "-".into())
        };
        println!(
            "{:>6} | {:>6} | {:>9} | {:>6} | {} / {} / {}",
            loss_rate,
            report.token_losses,
            report.completed(),
            report.deadline_misses(),
            fmt(s1.response_quantile(0.5)),
            fmt(s1.response_quantile(0.99)),
            fmt(s1.worst_response()),
        );
        if loss_rate == 0.0 {
            assert!(report.all_deadlines_met(), "fault-free run must be clean");
        }
    }
    println!("\nthe fault-free row is the paper's guarantee; each recovery stalls the ring");
    println!("for ~{recovery}, so the 20–30 ms streams degrade first as losses accumulate.");
    Ok(())
}
