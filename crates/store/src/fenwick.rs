//! A binary indexed tree over the admission-sequence domain.
//!
//! Each position holds a 0/1 occupancy bit: 1 while the stream admitted
//! with that sequence number is still live. Prefix sums then answer "what
//! station index does sequence `s` occupy?" in O(log n), and the inverse
//! descent answers "which sequence is the k-th live stream?" in O(log n) —
//! the two queries that make admission-order ranking and `SHOW` paging
//! sub-linear on large rings.

/// Fenwick (binary indexed) tree of occupancy counts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct Fenwick {
    /// 1-based implicit tree; `tree[i - 1]` covers `(i - lowbit(i), i]`.
    tree: Vec<u32>,
}

impl Fenwick {
    /// Domain size (admission sequences `0..len`).
    pub(crate) fn len(&self) -> usize {
        self.tree.len()
    }

    /// Extends the domain by one position holding count zero.
    pub(crate) fn push_zero(&mut self) {
        // A fresh node starts at zero; because every position it covers was
        // already counted by lower nodes when they were added, its running
        // total is maintained incrementally by `add` alone.
        let i = self.tree.len() + 1;
        let lowbit = i & i.wrapping_neg();
        // Node i covers (i - lowbit, i]; fold in the sums of the sibling
        // nodes it subsumes so prefix queries stay correct.
        let mut value = 0u32;
        let mut j = i - 1;
        let stop = i - lowbit;
        while j > stop {
            value += self.tree[j - 1];
            j -= j & j.wrapping_neg();
        }
        self.tree.push(value);
    }

    /// Shrinks the domain to `len` positions (used by admission rollback,
    /// which always retracts the newest sequence).
    pub(crate) fn truncate(&mut self, len: usize) {
        self.tree.truncate(len);
    }

    /// Adds `delta` (+1 admit, -1 remove) to position `i`.
    pub(crate) fn add(&mut self, i: usize, delta: i32) {
        let mut i = i + 1;
        while i <= self.tree.len() {
            let node = &mut self.tree[i - 1];
            *node = node.wrapping_add(delta as u32);
            i += i & i.wrapping_neg();
        }
    }

    /// Number of live positions strictly below `i` — the station index of
    /// the stream admitted with sequence `i`.
    pub(crate) fn prefix(&self, i: usize) -> usize {
        let mut i = i.min(self.tree.len());
        let mut sum = 0usize;
        while i > 0 {
            sum += self.tree[i - 1] as usize;
            i -= i & i.wrapping_neg();
        }
        sum
    }

    /// The position of the `(k + 1)`-th live entry (0-based rank `k`), or
    /// `None` if fewer than `k + 1` positions are live.
    pub(crate) fn select(&self, k: usize) -> Option<usize> {
        if k >= self.prefix(self.tree.len()) {
            return None;
        }
        let mut remaining = k + 1;
        let mut pos = 0usize;
        let mut mask = self.tree.len().next_power_of_two();
        while mask > 0 {
            let next = pos + mask;
            if next <= self.tree.len() && (self.tree[next - 1] as usize) < remaining {
                remaining -= self.tree[next - 1] as usize;
                pos = next;
            }
            mask >>= 1;
        }
        Some(pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(bits: &[bool]) -> Fenwick {
        let mut f = Fenwick::default();
        for &b in bits {
            f.push_zero();
            if b {
                f.add(f.len() - 1, 1);
            }
        }
        f
    }

    #[test]
    fn prefix_and_select_agree_with_scan() {
        let bits = [
            true, false, true, true, false, false, true, true, true, false, true,
        ];
        let f = naive(&bits);
        for i in 0..=bits.len() {
            let expect: usize = bits[..i].iter().filter(|&&b| b).count();
            assert_eq!(f.prefix(i), expect, "prefix({i})");
        }
        let live: Vec<usize> = (0..bits.len()).filter(|&i| bits[i]).collect();
        for (k, &pos) in live.iter().enumerate() {
            assert_eq!(f.select(k), Some(pos), "select({k})");
        }
        assert_eq!(f.select(live.len()), None);
    }

    #[test]
    fn add_and_truncate_roundtrip() {
        let mut f = naive(&[true; 8]);
        f.add(3, -1);
        assert_eq!(f.prefix(8), 7);
        assert_eq!(f.select(3), Some(4));
        // Rollback of the newest position: clear then shrink the domain.
        f.add(7, -1);
        f.truncate(7);
        assert_eq!(f.len(), 7);
        assert_eq!(f.prefix(7), 6);
        // Regrowing after a truncate keeps prefix sums consistent.
        f.push_zero();
        f.add(7, 1);
        assert_eq!(f.prefix(8), 7);
    }
}
