//! Deterministic fault-injection harness for journal-shipping replication.
//!
//! A primary registry runs a churn workload; its journal frames are
//! captured through [`RingRegistry::subscribe`] and delivered to a warm
//! standby under every hostile schedule we can enumerate:
//!
//! * frames **dropped**, **duplicated**, and **reordered** at every
//!   position (the standby must detect the gap and re-sync);
//! * the standby **killed at every frame boundary** and resumed from its
//!   own recovered sequence;
//! * every **durable filesystem operation** of the standby's replay
//!   failed via [`FailpointFs`] — clean and with torn tails — followed by
//!   recovery and re-sync;
//! * the **snapshot path**: a compacted primary whose journal no longer
//!   reaches back to the standby's resume point must ship a snapshot.
//!
//! After *every* schedule the standby is promoted (fenced epoch bump) and
//! its freshly reopened state is compared — ring set, per-ring state,
//! generation counter, full Theorem 4.1/5.1 re-analysis, and the verdict
//! on a known-inadmissible hog stream — against a fresh full replay of
//! the primary's own journal. No schedule may ever leave the promoted
//! standby willing to admit a message set the primary would have
//! rejected.

use std::fs;
use std::path::{Path, PathBuf};

use ringrt::model::SyncStream;
use ringrt::registry::{
    FailpointFs, FaultPlan, ProtocolKind, RegistryError, ReplicatedApply, RingCheck, RingRegistry,
    RingSpec, RingState, StoreOptions,
};
use ringrt::units::{Bits, Seconds};

/// Small enough that the workload rotates segments many times.
const TINY_SEGMENT: u64 = 128;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ringrt-repl-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn stream(period_ms: f64, bits: u64) -> SyncStream {
    SyncStream::new(Seconds::from_millis(period_ms), Bits::new(bits))
}

fn spec() -> RingSpec {
    RingSpec {
        protocol: ProtocolKind::Fddi,
        mbps: 100.0,
        stations: Some(64),
    }
}

/// A stream no 100 Mbps ring can carry: it alone needs 100 ms of
/// transmission every millisecond. Admitting it must fail everywhere,
/// and a rejected admit is never journaled, so probing with it does not
/// mutate the registry.
fn hog() -> SyncStream {
    stream(1.0, 10_000_000)
}

fn open_tiny(dir: &Path, fs: FailpointFs) -> RingRegistry {
    RingRegistry::open_with(
        dir,
        StoreOptions {
            segment_bytes: TINY_SEGMENT,
            fs,
        },
    )
    .unwrap()
}

/// Churn on the primary: registrations, admissions, a removal, an
/// unregistration — every journal operation kind, spread over two rings
/// so cross-ring ordering matters.
fn primary_workload(reg: &RingRegistry) {
    reg.register("alpha", spec()).unwrap();
    reg.register("beta", spec()).unwrap();
    for i in 0..5u64 {
        assert!(
            reg.admit(
                "alpha",
                &format!("a{i}"),
                stream(20.0 + i as f64, 1_000 + 10 * i)
            )
            .unwrap()
            .applied
        );
    }
    for i in 0..3u64 {
        assert!(
            reg.admit("beta", &format!("b{i}"), stream(25.0 + i as f64, 2_000))
                .unwrap()
                .applied
        );
    }
    reg.register("gamma", spec()).unwrap();
    reg.remove("alpha", "a1").unwrap();
    reg.unregister("gamma").unwrap();
    assert!(
        reg.admit("alpha", "a9", stream(40.0, 3_000))
            .unwrap()
            .applied
    );
}

/// Everything that must be byte-identical between the promoted standby
/// and a fresh full replay of the primary's journal.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    rings: Vec<(String, RingState)>,
    checks: Vec<(String, RingCheck)>,
    generation: u64,
    next_seq: u64,
}

fn fingerprint(reg: &RingRegistry) -> Fingerprint {
    let names = reg.ring_names();
    let rings = names
        .iter()
        .map(|n| (n.clone(), reg.ring_state(n).unwrap()))
        .collect();
    let checks = names
        .iter()
        .map(|n| (n.clone(), reg.check_full(n).unwrap()))
        .collect();
    // The hog must be rejected by every ring — and a rejection is not
    // journaled, so the probe leaves no trace.
    for n in &names {
        assert!(
            !reg.admit(n, "hog", hog()).unwrap().applied,
            "ring {n} admitted a stream that cannot be schedulable"
        );
    }
    Fingerprint {
        rings,
        checks,
        generation: reg.generation(),
        next_seq: reg.next_seq(),
    }
}

/// Builds the reference: runs the workload on a fresh primary, captures
/// the shipped frames, then reopens the directory cold — the "fresh full
/// replay of the primary's journal" every schedule is compared against.
fn reference(tag: &str) -> (PathBuf, Vec<String>, Fingerprint, u64) {
    let dir = temp_dir(tag);
    let epoch;
    let frames;
    {
        let primary = open_tiny(&dir, FailpointFs::new());
        primary.set_epoch(1).unwrap();
        primary_workload(&primary);
        let sub = primary.subscribe(1).unwrap();
        assert!(
            sub.snapshot.is_none(),
            "uncompacted journal ships records only"
        );
        assert_eq!(sub.epoch, 1);
        frames = sub.backlog;
        assert_eq!(sub.head as usize, frames.len());
        epoch = primary.epoch();
    }
    let replayed = RingRegistry::open(&dir).unwrap();
    let print = fingerprint(&replayed);
    (dir, frames, print, epoch)
}

/// Re-sync: ask the primary's journal for everything from the standby's
/// next sequence (exactly what the service's follower loop sends after a
/// `Gap`). Installs a snapshot when the journal no longer reaches back.
fn resync(follower: &RingRegistry, primary_dir: &Path) -> bool {
    let primary = RingRegistry::open(primary_dir).unwrap();
    let sub = primary.subscribe(follower.next_seq().max(1)).unwrap();
    let snapshotted = if let Some((_, text)) = &sub.snapshot {
        follower.install_snapshot(text).unwrap();
        true
    } else {
        false
    };
    for line in &sub.backlog {
        match follower.apply_replicated(line).unwrap() {
            ReplicatedApply::Applied { .. } | ReplicatedApply::Duplicate { .. } => {}
            ReplicatedApply::Gap { expected, got } => {
                panic!("contiguous backlog cannot gap: expected {expected}, got {got}")
            }
        }
    }
    snapshotted
}

/// Applies a (possibly mangled) frame schedule the way the follower loop
/// does: duplicates are ignored, a gap triggers a re-sync against the
/// primary's journal, and a final re-sync models the head-advertising
/// ping that reveals a dropped *last* frame.
fn apply_schedule(follower: &RingRegistry, primary_dir: &Path, frames: &[String]) -> (u64, u64) {
    let (mut resyncs, mut dups) = (0, 0);
    for line in frames {
        match follower.apply_replicated(line).unwrap() {
            ReplicatedApply::Applied { .. } => {}
            ReplicatedApply::Duplicate { .. } => dups += 1,
            ReplicatedApply::Gap { .. } => {
                resync(follower, primary_dir);
                resyncs += 1;
            }
        }
    }
    resync(follower, primary_dir);
    (resyncs, dups)
}

/// Promotes the standby (fenced epoch, durably published), reopens it
/// cold, and asserts its replayed state is identical to the reference.
fn assert_converged(follower_dir: &Path, reference: &Fingerprint, primary_epoch: u64, ctx: &str) {
    {
        let follower = RingRegistry::open(follower_dir).unwrap();
        follower.set_epoch(primary_epoch + 1).unwrap();
        // Fencing is monotonic: the dead primary's epoch can never be
        // re-published over the promotion.
        assert!(
            follower.set_epoch(primary_epoch).is_err(),
            "{ctx}: epoch regression must be refused"
        );
    }
    let promoted = RingRegistry::open(follower_dir).unwrap();
    assert_eq!(
        promoted.epoch(),
        primary_epoch + 1,
        "{ctx}: promotion epoch must survive a restart"
    );
    let print = fingerprint(&promoted);
    assert_eq!(
        &print, reference,
        "{ctx}: promoted standby diverged from a fresh replay"
    );
}

/// Journal files of a directory, in replay order, with their bytes.
fn journal_bytes(dir: &Path) -> Vec<(String, Vec<u8>)> {
    let mut files: Vec<(String, Vec<u8>)> = fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap())
        .filter(|e| {
            let name = e.file_name().to_string_lossy().into_owned();
            name.starts_with("journal.") && name.ends_with(".log")
        })
        .map(|e| {
            (
                e.file_name().to_string_lossy().into_owned(),
                fs::read(e.path()).unwrap(),
            )
        })
        .collect();
    files.sort();
    files
}

#[test]
fn clean_shipping_reproduces_the_journal_byte_for_byte() {
    let (pdir, frames, reference, epoch) = reference("clean");
    let fdir = temp_dir("clean-f");
    {
        let follower = open_tiny(&fdir, FailpointFs::new());
        let (resyncs, dups) = apply_schedule(&follower, &pdir, &frames);
        assert_eq!((resyncs, dups), (0, 0), "clean schedule needs no repair");
    }
    // Same records, same segment budget ⇒ the standby's segmented journal
    // is a byte-for-byte copy of the primary's, rotations included.
    assert_eq!(journal_bytes(&fdir), journal_bytes(&pdir));
    assert_converged(&fdir, &reference, epoch, "clean");
    for d in [pdir, fdir] {
        let _ = fs::remove_dir_all(&d);
    }
}

#[test]
fn every_single_frame_drop_is_repaired_by_resync() {
    let (pdir, frames, reference, epoch) = reference("drop");
    for i in 0..frames.len() {
        let fdir = temp_dir(&format!("drop-f{i}"));
        {
            let follower = open_tiny(&fdir, FailpointFs::new());
            let mangled: Vec<String> = frames
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, l)| l.clone())
                .collect();
            let (resyncs, _) = apply_schedule(&follower, &pdir, &mangled);
            // Dropping the last frame is only visible to the final
            // catch-up pass; any earlier drop must trigger a gap re-sync.
            if i + 1 < frames.len() {
                assert!(resyncs >= 1, "drop({i}) must be detected as a gap");
            }
        }
        assert_converged(&fdir, &reference, epoch, &format!("drop({i})"));
        let _ = fs::remove_dir_all(&fdir);
    }
    let _ = fs::remove_dir_all(&pdir);
}

#[test]
fn every_single_frame_duplicate_is_ignored() {
    let (pdir, frames, reference, epoch) = reference("dup");
    for i in 0..frames.len() {
        let fdir = temp_dir(&format!("dup-f{i}"));
        {
            let follower = open_tiny(&fdir, FailpointFs::new());
            let mut mangled = frames.clone();
            mangled.insert(i + 1, frames[i].clone());
            let (resyncs, dups) = apply_schedule(&follower, &pdir, &mangled);
            assert_eq!(resyncs, 0, "dup({i}) is not a gap");
            assert_eq!(dups, 1, "dup({i}) must be idempotently ignored");
        }
        assert_converged(&fdir, &reference, epoch, &format!("dup({i})"));
        let _ = fs::remove_dir_all(&fdir);
    }
    let _ = fs::remove_dir_all(&pdir);
}

#[test]
fn every_adjacent_swap_and_a_full_reversal_converge() {
    let (pdir, frames, reference, epoch) = reference("swap");
    let mut schedules: Vec<(String, Vec<String>)> = (0..frames.len() - 1)
        .map(|i| {
            let mut m = frames.clone();
            m.swap(i, i + 1);
            (format!("swap({i},{})", i + 1), m)
        })
        .collect();
    let mut reversed = frames.clone();
    reversed.reverse();
    schedules.push(("reversed".to_owned(), reversed));
    for (case, (ctx, mangled)) in schedules.into_iter().enumerate() {
        let fdir = temp_dir(&format!("swap-{case}"));
        {
            let follower = open_tiny(&fdir, FailpointFs::new());
            let (resyncs, _) = apply_schedule(&follower, &pdir, &mangled);
            assert!(resyncs >= 1, "{ctx}: reordering must force a re-sync");
        }
        assert_converged(&fdir, &reference, epoch, &ctx);
        let _ = fs::remove_dir_all(&fdir);
    }
    let _ = fs::remove_dir_all(&pdir);
}

#[test]
fn killing_the_standby_at_every_frame_boundary_resumes_cleanly() {
    let (pdir, frames, reference, epoch) = reference("kill");
    for i in 0..=frames.len() {
        let fdir = temp_dir(&format!("kill-f{i}"));
        {
            let follower = open_tiny(&fdir, FailpointFs::new());
            for line in &frames[..i] {
                follower.apply_replicated(line).unwrap();
            }
            // The standby dies here; drop = the process is gone.
        }
        {
            // Reborn standby resumes from whatever its own journal says.
            let follower = open_tiny(&fdir, FailpointFs::new());
            assert_eq!(follower.next_seq(), i as u64 + 1, "boundary {i}");
            resync(&follower, &pdir);
        }
        assert_converged(&fdir, &reference, epoch, &format!("kill at frame {i}"));
        let _ = fs::remove_dir_all(&fdir);
    }
    let _ = fs::remove_dir_all(&pdir);
}

#[test]
fn killing_every_durable_op_of_the_standby_replay_recovers() {
    let (pdir, frames, reference, epoch) = reference("fp");

    // Dry run: count the durable filesystem operations a full replay of
    // the shipped frames performs on the standby.
    let dry = temp_dir("fp-dry");
    let probe = FailpointFs::new();
    {
        let follower = open_tiny(&dry, probe.clone());
        probe.reset_ops();
        for line in &frames {
            follower.apply_replicated(line).unwrap();
        }
    }
    let total_ops = probe.ops();
    assert!(
        total_ops > frames.len() as u64,
        "tiny segments must make replay rotate: {total_ops} ops for {} frames",
        frames.len()
    );
    let _ = fs::remove_dir_all(&dry);

    for torn in [None, Some(0), Some(7)] {
        for k in 1..=total_ops {
            let ctx = format!("durable op {k}, torn {torn:?}");
            let fdir = temp_dir(&format!("fp-{k}-{}", torn.map_or(0, |t| t + 1)));
            let fp = FailpointFs::new();
            {
                let follower = open_tiny(&fdir, fp.clone());
                fp.reset_ops();
                fp.arm(FaultPlan {
                    fail_at_op: k,
                    torn_bytes: torn,
                });
                let mut injected = false;
                for line in &frames {
                    match follower.apply_replicated(line) {
                        Ok(_) => {}
                        Err(e) => {
                            assert!(
                                FailpointFs::is_injected(&e),
                                "{ctx}: unexpected real error: {e}"
                            );
                            injected = true;
                            break;
                        }
                    }
                }
                fp.disarm();
                assert!(injected, "{ctx}: the fault plan must fire during replay");
            }
            {
                // Crash-recover the torn standby, then catch up from the
                // primary's journal — the shipped encoding is
                // deterministic, so recovery plus re-sync always lands on
                // the same bytes.
                let follower = RingRegistry::open(&fdir)
                    .unwrap_or_else(|e| panic!("{ctx}: recovery failed: {e}"));
                resync(&follower, &pdir);
            }
            assert_converged(&fdir, &reference, epoch, &ctx);
            let _ = fs::remove_dir_all(&fdir);
        }
    }
    let _ = fs::remove_dir_all(&pdir);
}

#[test]
fn a_standby_behind_the_snapshot_floor_is_reseeded_by_snapshot() {
    // Primary: workload, then compaction + more churn, so the journal no
    // longer reaches back to sequence 1.
    let pdir = temp_dir("snap");
    let epoch;
    let early: Vec<String>;
    {
        let primary = open_tiny(&pdir, FailpointFs::new());
        primary.set_epoch(1).unwrap();
        primary_workload(&primary);
        early = primary.subscribe(1).unwrap().backlog;
        primary.compact().unwrap();
        assert!(
            primary
                .admit("beta", "late", stream(50.0, 4_000))
                .unwrap()
                .applied
        );
        primary.remove("beta", "b1").unwrap();
        epoch = primary.epoch();
    }
    let reference = fingerprint(&RingRegistry::open(&pdir).unwrap());

    // A brand-new standby asking for sequence 1 must be served a
    // snapshot (the records are gone) plus the post-compaction tail.
    let fresh = temp_dir("snap-fresh");
    {
        let follower = open_tiny(&fresh, FailpointFs::new());
        assert!(
            resync(&follower, &pdir),
            "a fresh standby behind the floor needs a snapshot"
        );
    }
    assert_converged(
        &fresh,
        &reference,
        epoch,
        "fresh standby vs compacted primary",
    );
    let _ = fs::remove_dir_all(&fresh);

    // A standby that replicated part of the pre-compaction journal and
    // then slept through the compaction must also be reseeded.
    let stale = temp_dir("snap-stale");
    {
        let follower = open_tiny(&stale, FailpointFs::new());
        for line in &early[..3] {
            follower.apply_replicated(line).unwrap();
        }
        assert!(
            resync(&follower, &pdir),
            "a standby behind the floor needs a snapshot"
        );
    }
    assert_converged(
        &stale,
        &reference,
        epoch,
        "stale standby vs compacted primary",
    );
    let _ = fs::remove_dir_all(&stale);
    let _ = fs::remove_dir_all(&pdir);
}

#[test]
fn a_frame_violating_registry_invariants_never_reaches_the_journal() {
    let (pdir, frames, _, _) = reference("invariant");
    let fdir = temp_dir("invariant-f");
    let follower = open_tiny(&fdir, FailpointFs::new());
    for line in &frames {
        follower.apply_replicated(line).unwrap();
    }
    let before = journal_bytes(&fdir);
    // Forge a record that carries the correct next sequence and a valid
    // checksum, but an operation the state refuses (removing an unknown
    // stream). The standby must reject it *before* journaling a byte.
    let payload = format!("{} remove alpha no-such-stream", follower.next_seq());
    let forged = format!(
        "{:08x} {payload}",
        ringrt::frames::crc::crc32(payload.as_bytes())
    );
    match follower.apply_replicated(&forged) {
        Err(RegistryError::UnknownStream { .. }) => {}
        other => panic!("forged frame must be refused: {other:?}"),
    }
    assert_eq!(
        journal_bytes(&fdir),
        before,
        "refused frame leaked into the journal"
    );
    drop(follower);
    for d in [pdir, fdir] {
        let _ = fs::remove_dir_all(&d);
    }
}

// ---------------------------------------------------------------------------
// End-to-end failover over TCP: a primary and a warm standby as real
// servers, journal shipping over the wire, primary killed, standby
// promoted — verdicts must be indistinguishable from the dead primary's.
// ---------------------------------------------------------------------------

mod tcp {
    use std::io::{BufRead, BufReader, Write};
    use std::net::{SocketAddr, TcpStream};
    use std::path::Path;
    use std::time::{Duration, Instant};

    use ringrt::service::{spawn, ServerHandle, ServiceConfig};

    use super::temp_dir;

    struct Client {
        reader: BufReader<TcpStream>,
        writer: TcpStream,
    }

    impl Client {
        fn connect(addr: SocketAddr) -> Client {
            let stream = TcpStream::connect(addr).expect("connect");
            let writer = stream.try_clone().expect("clone stream");
            Client {
                reader: BufReader::new(stream),
                writer,
            }
        }

        fn roundtrip(&mut self, line: &str) -> String {
            self.writer
                .write_all(format!("{line}\n").as_bytes())
                .expect("send request");
            let mut resp = String::new();
            self.reader.read_line(&mut resp).expect("read response");
            assert!(resp.ends_with('\n'), "truncated response: {resp:?}");
            resp.trim_end().to_owned()
        }
    }

    fn server(dir: &Path, follow: Option<String>) -> ServerHandle {
        spawn(ServiceConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 2,
            queue_depth: 32,
            state_dir: Some(dir.to_path_buf()),
            segment_bytes: Some(160),
            follow,
            ..ServiceConfig::default()
        })
        .expect("spawn server")
    }

    /// Polls `line` on the standby until the answer contains `want` — the
    /// ship stream is asynchronous, so catch-up takes a few frames.
    fn await_contains(c: &mut Client, line: &str, want: &str) -> String {
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let resp = c.roundtrip(line);
            if resp.contains(want) {
                return resp;
            }
            assert!(
                Instant::now() < deadline,
                "standby never reached `{want}`: {resp}"
            );
            std::thread::sleep(Duration::from_millis(25));
        }
    }

    #[test]
    fn failover_preserves_every_admission_verdict() {
        let pdir = temp_dir("tcp-p");
        let fdir = temp_dir("tcp-f");
        let primary = server(&pdir, None);
        let standby = server(&fdir, Some(primary.addr().to_string()));

        let mut p = Client::connect(primary.addr());
        assert!(p
            .roundtrip("REGISTER ring=lab protocol=timed-token mbps=100 stations=16")
            .starts_with("OK"));
        for i in 0..6u64 {
            let resp = p.roundtrip(&format!(
                "ADMIT ring=lab stream=s{i} period_ms={} bits=2000",
                20 + i
            ));
            assert!(resp.contains("admitted=true"), "admit {i}: {resp}");
        }
        // The hog is rejected by the primary; record both verdict lines.
        let hog = "ADMIT ring=lab stream=hog period_ms=1 bits=10000000";
        let hog_verdict = p.roundtrip(hog);
        assert!(hog_verdict.contains("admitted=false"), "{hog_verdict}");
        let check = p.roundtrip("CHECK ring=lab");
        let show = p.roundtrip("SHOW ring=lab");

        let mut f = Client::connect(standby.addr());
        await_contains(&mut f, "CHECK ring=lab", "streams=6");
        assert_eq!(
            f.roundtrip("CHECK ring=lab"),
            check,
            "standby CHECK diverged"
        );

        // Kill the primary, promote the standby.
        assert_eq!(p.roundtrip("SHUTDOWN"), "OK cmd=shutdown");
        primary.join();
        assert_eq!(
            f.roundtrip("PROMOTE"),
            "OK cmd=promote epoch=2 applied_seq=7",
            "register + 6 admits = 7 shipped records"
        );

        // The promoted standby answers byte-identically to the dead
        // primary — including rejecting exactly what it rejected.
        assert_eq!(f.roundtrip("CHECK ring=lab"), check);
        assert_eq!(f.roundtrip("SHOW ring=lab"), show);
        assert_eq!(f.roundtrip(hog), hog_verdict);
        // And it takes writes now.
        let resp = f.roundtrip("ADMIT ring=lab stream=late period_ms=40 bits=2000");
        assert!(resp.contains("admitted=true"), "{resp}");

        assert_eq!(f.roundtrip("SHUTDOWN"), "OK cmd=shutdown");
        standby.join();
        for d in [pdir, fdir] {
            let _ = std::fs::remove_dir_all(&d);
        }
    }

    /// Planned failover with the old primary still alive and mutating:
    /// the promoted standby must fence out every frame the old primary
    /// keeps shipping — interleaving them with the new primary's own
    /// mutations is exactly the split-brain the epoch fence exists to
    /// prevent.
    #[test]
    fn promoted_standby_ignores_the_live_old_primary() {
        let pdir = temp_dir("tcp-split-p");
        let fdir = temp_dir("tcp-split-f");
        let primary = server(&pdir, None);
        let standby = server(&fdir, Some(primary.addr().to_string()));

        let mut p = Client::connect(primary.addr());
        assert!(p
            .roundtrip("REGISTER ring=lab protocol=timed-token mbps=100 stations=16")
            .starts_with("OK"));
        for i in 0..4u64 {
            let resp = p.roundtrip(&format!(
                "ADMIT ring=lab stream=s{i} period_ms={} bits=2000",
                20 + i
            ));
            assert!(resp.contains("admitted=true"), "admit {i}: {resp}");
        }
        let mut f = Client::connect(standby.addr());
        await_contains(&mut f, "CHECK ring=lab", "streams=4");
        let show_at_promotion = f.roundtrip("SHOW ring=lab");

        // Promote while the old primary is alive and keeps committing.
        assert!(
            f.roundtrip("PROMOTE").starts_with("OK cmd=promote epoch=2"),
            "promotion must fence epoch 2"
        );
        for i in 0..4u64 {
            let resp = p.roundtrip(&format!(
                "ADMIT ring=lab stream=p{i} period_ms={} bits=2000",
                30 + i
            ));
            assert!(
                resp.contains("admitted=true"),
                "old primary admit {i}: {resp}"
            );
        }
        // The promoted node tears its replay stream down (every frame is
        // epoch-fenced); wait until the old primary has lost it.
        await_contains(&mut p, "REPLICATION", " followers=0");

        // None of the old primary's post-promotion records leaked in.
        let show = f.roundtrip("SHOW ring=lab");
        assert_eq!(
            show, show_at_promotion,
            "promoted standby applied frames from the superseded primary"
        );
        assert!(!show.contains("p0"), "{show}");
        let repl = f.roundtrip("REPLICATION");
        assert!(repl.contains(" role=primary"), "{repl}");
        assert!(repl.contains(" epoch=2"), "{repl}");
        // And it takes its own writes under the new epoch.
        let resp = f.roundtrip("ADMIT ring=lab stream=mine period_ms=40 bits=2000");
        assert!(resp.contains("admitted=true"), "{resp}");

        assert_eq!(p.roundtrip("SHUTDOWN"), "OK cmd=shutdown");
        primary.join();
        assert_eq!(f.roundtrip("SHUTDOWN"), "OK cmd=shutdown");
        standby.join();
        for d in [pdir, fdir] {
            let _ = std::fs::remove_dir_all(&d);
        }
    }
}
