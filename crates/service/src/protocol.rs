//! The wire protocol: newline-delimited, human-readable requests and
//! single-line responses.
//!
//! # Request grammar
//!
//! ```text
//! CHECK      mbps=<f64> set=<p_ms,bits[;p_ms,bits…]> [protocol=802.5|modified|fddi] [stations=<n>] [deadline_ms=<n>]
//! SATURATION mbps=<f64> set=<…> [protocol=<…>] [stations=<n>] [deadline_ms=<n>]
//! SIMULATE   mbps=<f64> set=<…> [protocol=<…>] [stations=<n>] [seconds=<f64>] [async_load=<f64>] [seed=<n>] [deadline_ms=<n>]
//! SLEEP      ms=<n>                      # diagnostic: occupies a worker
//! PING | STATS | SHUTDOWN
//! ```
//!
//! `set` carries the CLI's message-set records inline: the same
//! `period_ms, payload_bits` pairs a set file holds, `;`-separated instead
//! of newline-separated (see [`ringrt_model::setfmt`]).
//!
//! # Responses
//!
//! One line per request: `OK key=value …`, `BUSY queue_capacity=<n>` when
//! the admission queue is full (load shedding), or `ERR <message>`.

use core::fmt;

use ringrt_model::MessageSet;

/// Protocol selector, mirroring the CLI's choices. The canonical tokens
/// (`802.5`, `modified`, `fddi`) are shared with `ringrt check --format csv`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ProtocolKind {
    /// Standard IEEE 802.5 priority-driven protocol.
    Ieee8025,
    /// The paper's modified (token-holding) 802.5 variant.
    #[default]
    Modified,
    /// FDDI timed token protocol with the local allocation scheme.
    Fddi,
}

impl ProtocolKind {
    /// Parses the same aliases the CLI accepts.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s.to_ascii_lowercase().as_str() {
            "802.5" | "8025" | "ieee802.5" | "standard" => Ok(ProtocolKind::Ieee8025),
            "modified" | "mod" => Ok(ProtocolKind::Modified),
            "fddi" | "ttp" | "timed-token" => Ok(ProtocolKind::Fddi),
            other => Err(format!(
                "unknown protocol `{other}` (expected 802.5, modified, or fddi)"
            )),
        }
    }

    /// The canonical wire token.
    #[must_use]
    pub fn token(self) -> &'static str {
        match self {
            ProtocolKind::Ieee8025 => "802.5",
            ProtocolKind::Modified => "modified",
            ProtocolKind::Fddi => "fddi",
        }
    }
}

impl fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

/// Which analysis a queued request runs; indexes the per-command metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CommandKind {
    /// Admission verdict (Theorem 4.1 / 5.1).
    Check,
    /// Saturation boundary search.
    Saturation,
    /// Bounded frame-level simulation.
    Simulate,
    /// Diagnostic worker occupation.
    Sleep,
}

impl CommandKind {
    /// All queued commands, in metrics order.
    pub const ALL: [CommandKind; 4] = [
        CommandKind::Check,
        CommandKind::Saturation,
        CommandKind::Simulate,
        CommandKind::Sleep,
    ];

    /// Metrics slot.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            CommandKind::Check => 0,
            CommandKind::Saturation => 1,
            CommandKind::Simulate => 2,
            CommandKind::Sleep => 3,
        }
    }

    /// Lower-case wire token (also the metrics field prefix).
    #[must_use]
    pub fn token(self) -> &'static str {
        match self {
            CommandKind::Check => "check",
            CommandKind::Saturation => "saturation",
            CommandKind::Simulate => "simulate",
            CommandKind::Sleep => "sleep",
        }
    }
}

/// Shared parameters of the three analysis commands.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalysisRequest {
    /// Which analysis to run.
    pub command: CommandKind,
    /// Protocol under test.
    pub protocol: ProtocolKind,
    /// Ring bandwidth in Mbps.
    pub mbps: f64,
    /// The synchronous message set to admit.
    pub set: MessageSet,
    /// Ring stations (defaults to the stream count; never below it).
    pub stations: Option<usize>,
    /// Simulated seconds (SIMULATE only).
    pub seconds: f64,
    /// Offered asynchronous load fraction (SIMULATE only).
    pub async_load: f64,
    /// RNG seed (SIMULATE only).
    pub seed: u64,
    /// Per-request queue deadline override, milliseconds.
    pub deadline_ms: Option<u64>,
}

impl AnalysisRequest {
    /// Effective station count (at least the stream count).
    #[must_use]
    pub fn effective_stations(&self) -> usize {
        self.stations.unwrap_or(self.set.len()).max(self.set.len())
    }
}

/// A parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// An analysis to run on the worker pool.
    Analysis(AnalysisRequest),
    /// Diagnostic: occupy a worker for the given milliseconds.
    Sleep {
        /// Sleep length (capped by the server).
        ms: u64,
        /// Per-request queue deadline override.
        deadline_ms: Option<u64>,
    },
    /// Liveness probe, answered inline.
    Ping,
    /// Metrics snapshot, answered inline.
    Stats,
    /// Begin graceful shutdown.
    Shutdown,
}

/// Parses one request line.
///
/// # Errors
///
/// A human-readable message describing the first problem found; the server
/// sends it back as `ERR <message>`.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let mut words = line.split_whitespace();
    let cmd = words.next().ok_or_else(|| "empty request".to_owned())?;
    let mut pairs: Vec<(&str, &str)> = Vec::new();
    for w in words {
        let (k, v) = w
            .split_once('=')
            .ok_or_else(|| format!("expected key=value, found `{w}`"))?;
        pairs.push((k, v));
    }
    let command = match cmd.to_ascii_uppercase().as_str() {
        "PING" => return reject_extras(pairs, Request::Ping),
        "STATS" => return reject_extras(pairs, Request::Stats),
        "SHUTDOWN" => return reject_extras(pairs, Request::Shutdown),
        "SLEEP" => {
            check_keys(&pairs, &["ms", "deadline_ms"])?;
            return Ok(Request::Sleep {
                ms: required(&pairs, "ms")?,
                deadline_ms: optional(&pairs, "deadline_ms")?,
            });
        }
        "CHECK" => CommandKind::Check,
        "SATURATION" => CommandKind::Saturation,
        "SIMULATE" => CommandKind::Simulate,
        other => return Err(format!("unknown command `{other}`")),
    };
    let allowed: &[&str] = if command == CommandKind::Simulate {
        &[
            "mbps",
            "set",
            "protocol",
            "stations",
            "seconds",
            "async_load",
            "seed",
            "deadline_ms",
        ]
    } else {
        &["mbps", "set", "protocol", "stations", "deadline_ms"]
    };
    check_keys(&pairs, allowed)?;

    let mbps: f64 = required(&pairs, "mbps")?;
    if !(mbps.is_finite() && mbps > 0.0) {
        return Err(format!("mbps must be positive, got {mbps}"));
    }
    let set_text = lookup(&pairs, "set").ok_or_else(|| "set is required".to_owned())?;
    let set = ringrt_model::parse_message_set(&set_text.replace(';', "\n"))
        .map_err(|e| format!("invalid set: {e}"))?;
    let protocol = match lookup(&pairs, "protocol") {
        Some(p) => ProtocolKind::parse(p)?,
        None => ProtocolKind::default(),
    };
    let seconds: f64 = optional(&pairs, "seconds")?.unwrap_or(0.5);
    if !(seconds.is_finite() && seconds > 0.0) {
        return Err(format!("seconds must be positive, got {seconds}"));
    }
    let async_load: f64 = optional(&pairs, "async_load")?.unwrap_or(0.0);
    if !(0.0..1.0).contains(&async_load) {
        return Err(format!("async_load must be in [0, 1), got {async_load}"));
    }
    Ok(Request::Analysis(AnalysisRequest {
        command,
        protocol,
        mbps,
        set,
        stations: optional(&pairs, "stations")?,
        seconds,
        async_load,
        seed: optional(&pairs, "seed")?.unwrap_or(1),
        deadline_ms: optional(&pairs, "deadline_ms")?,
    }))
}

fn reject_extras(pairs: Vec<(&str, &str)>, req: Request) -> Result<Request, String> {
    if let Some((k, _)) = pairs.first() {
        return Err(format!("unexpected parameter `{k}`"));
    }
    Ok(req)
}

fn check_keys(pairs: &[(&str, &str)], allowed: &[&str]) -> Result<(), String> {
    for (k, _) in pairs {
        if !allowed.contains(k) {
            return Err(format!("unknown parameter `{k}`"));
        }
    }
    Ok(())
}

fn lookup<'a>(pairs: &[(&'a str, &'a str)], key: &str) -> Option<&'a str> {
    pairs.iter().rev().find(|(k, _)| *k == key).map(|(_, v)| *v)
}

fn required<T: std::str::FromStr>(pairs: &[(&str, &str)], key: &str) -> Result<T, String> {
    optional(pairs, key)?.ok_or_else(|| format!("{key} is required"))
}

fn optional<T: std::str::FromStr>(pairs: &[(&str, &str)], key: &str) -> Result<Option<T>, String> {
    lookup(pairs, key)
        .map(|v| {
            v.parse::<T>()
                .map_err(|_| format!("invalid value `{v}` for {key}"))
        })
        .transpose()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_check() {
        let r = parse_request("CHECK mbps=16 set=20,20000;50,60000 protocol=fddi").unwrap();
        match r {
            Request::Analysis(a) => {
                assert_eq!(a.command, CommandKind::Check);
                assert_eq!(a.protocol, ProtocolKind::Fddi);
                assert_eq!(a.mbps, 16.0);
                assert_eq!(a.set.len(), 2);
                assert_eq!(a.effective_stations(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn stations_never_below_stream_count() {
        let r = parse_request("check mbps=4 set=20,1000;30,1000;40,1000 stations=2").unwrap();
        match r {
            Request::Analysis(a) => assert_eq!(a.effective_stations(), 3),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_simulate_defaults() {
        let r = parse_request("SIMULATE mbps=4 set=20,4000").unwrap();
        match r {
            Request::Analysis(a) => {
                assert_eq!(a.command, CommandKind::Simulate);
                assert_eq!(a.seconds, 0.5);
                assert_eq!(a.async_load, 0.0);
                assert_eq!(a.seed, 1);
                assert_eq!(a.protocol, ProtocolKind::Modified);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_control_commands() {
        assert_eq!(parse_request("PING").unwrap(), Request::Ping);
        assert_eq!(parse_request("stats").unwrap(), Request::Stats);
        assert_eq!(parse_request("Shutdown").unwrap(), Request::Shutdown);
        assert_eq!(
            parse_request("SLEEP ms=50").unwrap(),
            Request::Sleep {
                ms: 50,
                deadline_ms: None
            }
        );
    }

    #[test]
    fn rejects_bad_requests() {
        assert!(parse_request("").is_err());
        assert!(parse_request("FROBNICATE").is_err());
        assert!(parse_request("CHECK set=20,1000")
            .unwrap_err()
            .contains("mbps"));
        assert!(parse_request("CHECK mbps=4").unwrap_err().contains("set"));
        assert!(parse_request("CHECK mbps=-1 set=20,1000").is_err());
        assert!(parse_request("CHECK mbps=4 set=bogus").is_err());
        assert!(parse_request("CHECK mbps=4 set=20,1000 protocol=atm").is_err());
        assert!(parse_request("CHECK mbps=4 set=20,1000 bogus_key=1").is_err());
        assert!(parse_request("PING extra=1").is_err());
        assert!(parse_request("SIMULATE mbps=4 set=20,1000 seconds=-1").is_err());
        assert!(parse_request("SIMULATE mbps=4 set=20,1000 async_load=1.5").is_err());
        assert!(parse_request("SLEEP").unwrap_err().contains("ms"));
        assert!(parse_request("CHECK mbps=4 set").is_err());
    }

    #[test]
    fn simulate_only_keys_rejected_elsewhere() {
        assert!(parse_request("CHECK mbps=4 set=20,1000 seed=3").is_err());
        assert!(parse_request("SIMULATE mbps=4 set=20,1000 seed=3").is_ok());
    }

    #[test]
    fn last_duplicate_key_wins() {
        match parse_request("CHECK mbps=4 mbps=8 set=20,1000").unwrap() {
            Request::Analysis(a) => assert_eq!(a.mbps, 8.0),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn protocol_tokens_round_trip() {
        for p in [
            ProtocolKind::Ieee8025,
            ProtocolKind::Modified,
            ProtocolKind::Fddi,
        ] {
            assert_eq!(ProtocolKind::parse(p.token()).unwrap(), p);
            assert_eq!(p.to_string(), p.token());
        }
    }
}
