//! # ringrt — real-time schedulability of two token ring protocols
//!
//! A Rust reproduction of Kamat & Zhao, *"Real-Time Schedulability of Two
//! Token Ring Protocols"* (ICDCS 1993): exact schedulability criteria,
//! Monte-Carlo average-breakdown-utilization comparison, and frame-level
//! simulators for the **priority-driven** (IEEE 802.5, rate-monotonic) and
//! **timed token** (FDDI) medium-access protocols.
//!
//! This crate re-exports the whole workspace behind one dependency:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`units`] | `ringrt-units` | `Seconds`, `Bits`, `Bandwidth`, integer `SimTime` |
//! | [`exec`] | `ringrt-exec` | scoped work pool, `RINGRT_THREADS`, SplitMix64 seed derivation |
//! | [`model`] | `ringrt-model` | message sets, ring configuration, frame formats |
//! | [`analysis`] | `ringrt-core` | Theorem 4.1 (PDP), Theorem 5.1 (TTP), RM machinery |
//! | [`workload`] | `ringrt-workload` | random and scenario message-set generators |
//! | [`breakdown`] | `ringrt-breakdown` | saturation search, ABU estimation, sweeps |
//! | [`des`] | `ringrt-des` | deterministic discrete-event engine |
//! | [`sim`] | `ringrt-sim` | frame-level 802.5 and FDDI simulators |
//! | [`frames`] | `ringrt-frames` | real 802.5/FDDI wire formats, CRC-32, access control |
//! | [`net`] | `ringrt-net` | epoll readiness loop, framing buffers, idle wheel, connection slab |
//! | [`service`] | `ringrt-service` | online admission-control TCP server with result cache |
//! | [`registry`] | `ringrt-registry` | persistent named-ring registry, journaled state, incremental admission |
//! | [`obs`] | `ringrt-obs` | flight-recorder tracing, Chrome trace JSON, Prometheus exposition |
//!
//! # Quickstart
//!
//! Decide which protocol can guarantee a message set on a 16 Mbps ring:
//!
//! ```
//! use ringrt::prelude::*;
//!
//! let set = MessageSet::new(vec![
//!     SyncStream::new(Seconds::from_millis(20.0), Bits::new(20_000)),
//!     SyncStream::new(Seconds::from_millis(50.0), Bits::new(60_000)),
//!     SyncStream::new(Seconds::from_millis(100.0), Bits::new(120_000)),
//! ])?;
//!
//! let bw = Bandwidth::from_mbps(16.0);
//! let pdp = PdpAnalyzer::new(
//!     RingConfig::ieee_802_5(3, bw),
//!     FrameFormat::paper_default(),
//!     PdpVariant::Modified,
//! );
//! let ttp = TtpAnalyzer::with_defaults(RingConfig::fddi(3, bw));
//!
//! assert!(pdp.is_schedulable(&set));
//! assert!(ttp.is_schedulable(&set));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Strongly-typed physical units (re-export of `ringrt-units`).
pub mod units {
    pub use ringrt_units::*;
}

/// Deterministic multi-core execution pool (re-export of `ringrt-exec`).
pub mod exec {
    pub use ringrt_exec::*;
}

/// Message-set and ring-network models (re-export of `ringrt-model`).
pub mod model {
    pub use ringrt_model::*;
}

/// Schedulability criteria for both protocols (re-export of `ringrt-core`).
pub mod analysis {
    pub use ringrt_core::*;
}

/// Message-set generation (re-export of `ringrt-workload`).
pub mod workload {
    pub use ringrt_workload::*;
}

/// Breakdown-utilization estimation and sweeps (re-export of
/// `ringrt-breakdown`).
pub mod breakdown {
    pub use ringrt_breakdown::*;
}

/// Discrete-event simulation engine (re-export of `ringrt-des`).
pub mod des {
    pub use ringrt_des::*;
}

/// Frame-level MAC simulators (re-export of `ringrt-sim`).
pub mod sim {
    pub use ringrt_sim::*;
}

/// Wire formats of both MACs (re-export of `ringrt-frames`).
pub mod frames {
    pub use ringrt_frames::*;
}

/// Readiness event-loop primitives — epoll poller, wakeup pipe, newline
/// framing, idle wheel, connection slab (re-export of `ringrt-net`).
pub mod net {
    pub use ringrt_net::*;
}

/// Online admission-control server (re-export of `ringrt-service`).
pub mod service {
    pub use ringrt_service::*;
}

/// Persistent ring registry with journaled state and incremental
/// admission re-analysis (re-export of `ringrt-registry`).
pub mod registry {
    pub use ringrt_registry::*;
}

/// Flight-recorder tracing and metrics exposition (re-export of
/// `ringrt-obs`).
pub mod obs {
    pub use ringrt_obs::*;
}

/// The most common imports in one place.
pub mod prelude {
    pub use crate::analysis::pdp::{PdpAnalyzer, PdpVariant};
    pub use crate::analysis::ttp::{SbaScheme, TtpAnalyzer, TtrtPolicy};
    pub use crate::analysis::SchedulabilityTest;
    pub use crate::model::{FrameFormat, MessageSet, RingConfig, StreamId, SyncStream};
    pub use crate::sim::{PdpSimulator, Phasing, SimConfig, TtpSimulator};
    pub use crate::units::{Bandwidth, Bits, Bytes, Seconds};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_covers_the_quickstart_path() {
        let set = MessageSet::new(vec![SyncStream::new(
            Seconds::from_millis(50.0),
            Bits::new(10_000),
        )])
        .unwrap();
        let bw = Bandwidth::from_mbps(10.0);
        let pdp = PdpAnalyzer::new(
            RingConfig::ieee_802_5(1, bw),
            FrameFormat::paper_default(),
            PdpVariant::Standard,
        );
        assert!(pdp.is_schedulable(&set));
        let _ = StreamId(0);
    }
}
