//! Property tests of the journaled registry: random interleavings of
//! REGISTER/ADMIT/REMOVE/COMPACT run against **both journal layouts** —
//! effectively monolithic (default-sized segments, everything in one
//! file) and aggressively segmented (tiny segments, rotation every
//! record or two) — asserting that
//!
//! 1. both layouts report identical outcomes for every operation,
//! 2. a reopen of either layout replays to exactly the live state
//!    (replay equivalence), and
//! 3. incremental `ADMIT` re-analysis agrees with a from-scratch
//!    registry rebuilt from the same admitted streams (on top of the
//!    engine's own debug-mode equivalence asserts).

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;
use ringrt_model::SyncStream;
use ringrt_registry::{
    FailpointFs, ProtocolKind, RegistryError, RingRegistry, RingSpec, RingState, StoreOptions,
    DEFAULT_SEGMENT_BYTES,
};
use ringrt_units::{Bits, Seconds};

static CASE: AtomicU64 = AtomicU64::new(0);

fn temp_dir(tag: &str, case: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ringrt-prop-{tag}-{case}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

const RINGS: [&str; 2] = ["prop-a", "prop-b"];

fn spec(ring_sel: u64) -> RingSpec {
    // One TTP ring and one PDP ring, so both incremental paths churn.
    if ring_sel.is_multiple_of(2) {
        RingSpec {
            protocol: ProtocolKind::Fddi,
            mbps: 100.0,
            stations: Some(32),
        }
    } else {
        RingSpec {
            protocol: ProtocolKind::Modified,
            mbps: 16.0,
            stations: Some(16),
        }
    }
}

fn stream(stream_sel: u64) -> SyncStream {
    // A spread from comfortably admissible to heavy enough that long
    // interleavings hit real rejections.
    SyncStream::new(
        Seconds::from_millis(15.0 + 7.0 * stream_sel as f64),
        Bits::new(40_000 + 90_000 * stream_sel),
    )
}

/// A layout-independent outcome token: two registries fed the same ops
/// must produce equal tokens.
fn apply_op(reg: &RingRegistry, op: (u8, u64, u64)) -> String {
    let (kind, ring_sel, stream_sel) = op;
    let ring = RINGS[(ring_sel % 2) as usize];
    let name = format!("s{stream_sel}");
    let outcome = |r: Result<String, RegistryError>| match r {
        Ok(tok) => tok,
        Err(e) => format!("err:{e}"),
    };
    match kind {
        0 => outcome(reg.register(ring, spec(ring_sel)).map(|()| "reg".into())),
        1..=3 => outcome(
            reg.admit(ring, &name, stream(stream_sel))
                .map(|out| format!("admit:{}:{}", out.applied, out.streams)),
        ),
        4 => outcome(
            reg.remove(ring, &name)
                .map(|out| format!("rm:{}:{}", out.check.schedulable, out.streams)),
        ),
        _ => outcome(reg.compact().map(|()| "compact".into())),
    }
}

fn full_state(reg: &RingRegistry) -> Vec<(String, RingState)> {
    reg.ring_names()
        .into_iter()
        .map(|n| {
            let state = reg.ring_state(&n).unwrap();
            (n, state)
        })
        .collect()
}

/// Rebuilds `state` stream-by-stream in a fresh in-memory registry and
/// re-runs the candidate admit there: a history-independent recomputation
/// that must agree with the incremental verdict.
fn scratch_admit_agrees(ring: &str, state: &RingState, name: &str, candidate: SyncStream) -> bool {
    let scratch = RingRegistry::in_memory();
    scratch.register(ring, state.spec).unwrap();
    for (stream_name, stream) in state.iter() {
        let out = scratch.admit(ring, stream_name, stream).unwrap();
        assert!(out.applied, "previously admitted stream must re-admit");
    }
    scratch.admit(ring, name, candidate).unwrap().applied
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Both layouts agree op-for-op, replay to their live state on
    /// reopen, and agree with each other after replay.
    #[test]
    fn layouts_agree_and_replay_equivalently(
        ops in prop::collection::vec((0u8..6, 0u64..2, 0u64..8), 1..40),
    ) {
        let case = CASE.fetch_add(1, Ordering::Relaxed);
        let seg_dir = temp_dir("seg", case);
        let mono_dir = temp_dir("mono", case);
        let seg = RingRegistry::open_with(&seg_dir, StoreOptions {
            segment_bytes: 96, // rotate almost every record
            fs: FailpointFs::new(),
        }).unwrap();
        let mono = RingRegistry::open_with(&mono_dir, StoreOptions {
            segment_bytes: DEFAULT_SEGMENT_BYTES, // one segment: the old layout
            fs: FailpointFs::new(),
        }).unwrap();

        for &op in &ops {
            let a = apply_op(&seg, op);
            let b = apply_op(&mono, op);
            prop_assert_eq!(&a, &b, "layouts diverged on {:?}", op);
        }
        let live = full_state(&seg);
        prop_assert_eq!(&live, &full_state(&mono));

        // The segmented journal must really have rotated when enough
        // records were written (journal bytes >> segment size).
        let m = seg.metrics();
        if m.journal_bytes > 96 * 2 {
            prop_assert!(seg.next_seq() > 0);
        }

        drop(seg);
        drop(mono);
        let seg = RingRegistry::open(&seg_dir).unwrap();
        let mono = RingRegistry::open_with(&mono_dir, StoreOptions {
            segment_bytes: DEFAULT_SEGMENT_BYTES,
            fs: FailpointFs::new(),
        }).unwrap();
        prop_assert_eq!(&full_state(&seg), &live, "segmented replay diverged");
        prop_assert_eq!(&full_state(&mono), &live, "monolithic replay diverged");
        let _ = fs::remove_dir_all(&seg_dir);
        let _ = fs::remove_dir_all(&mono_dir);
    }

    /// Every incremental ADMIT verdict matches a from-scratch rebuild of
    /// the same ring, and applied admits leave a set the full test still
    /// accepts.
    #[test]
    fn incremental_admit_matches_scratch_recomputation(
        ops in prop::collection::vec((1u8..5, 0u64..2, 0u64..8), 1..25),
    ) {
        let case = CASE.fetch_add(1, Ordering::Relaxed);
        let dir = temp_dir("incr", case);
        let reg = RingRegistry::open_with(&dir, StoreOptions {
            segment_bytes: 128,
            fs: FailpointFs::new(),
        }).unwrap();
        for ring_sel in 0..2u64 {
            reg.register(RINGS[ring_sel as usize], spec(ring_sel)).unwrap();
        }
        for &(kind, ring_sel, stream_sel) in &ops {
            let ring = RINGS[(ring_sel % 2) as usize];
            let name = format!("s{stream_sel}");
            if kind == 4 {
                let _ = reg.remove(ring, &name);
                continue;
            }
            let before = reg.ring_state(ring).unwrap();
            if before.stream_index(&name).is_some() {
                continue; // duplicate: no verdict to compare
            }
            let out = reg.admit(ring, &name, stream(stream_sel)).unwrap();
            prop_assert_eq!(
                out.applied,
                scratch_admit_agrees(ring, &before, &name, stream(stream_sel)),
                "incremental verdict diverged from scratch recomputation"
            );
            if out.applied {
                let full = reg.check_full(ring).unwrap();
                prop_assert!(full.schedulable, "full test rejects an admitted set");
            }
        }
        let _ = fs::remove_dir_all(&dir);
    }
}
