//! Property tests of the frame-level simulators: conservation laws,
//! determinism, and protocol invariants over random message sets.

use proptest::prelude::*;

use ringrt_core::pdp::PdpVariant;
use ringrt_model::{FrameFormat, MessageSet, RingConfig, SyncStream};
use ringrt_sim::{PdpSimulator, Phasing, SimConfig, TtpSimulator};
use ringrt_units::{Bandwidth, Bits, Seconds};

/// A small random message set with bounded utilization so simulations stay
/// fast.
fn arb_set() -> impl Strategy<Value = MessageSet> {
    prop::collection::vec((10.0f64..200.0, 1_000u64..100_000), 1..5).prop_map(|specs| {
        MessageSet::new(
            specs
                .into_iter()
                .map(|(p_ms, bits)| SyncStream::new(Seconds::from_millis(p_ms), Bits::new(bits)))
                .collect(),
        )
        .expect("valid")
    })
}

/// Expected message arrivals within `horizon` for synchronized phasing.
fn expected_arrivals(set: &MessageSet, horizon: Seconds) -> u64 {
    set.iter()
        .map(|s| (horizon / s.period()).ceil() as u64)
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Conservation: completions never exceed arrivals; medium utilization
    /// stays in [0, 1]; rotations are positive.
    #[test]
    fn pdp_conservation_laws(set in arb_set(), load in 0.0f64..0.4, modified in any::<bool>()) {
        let variant = if modified { PdpVariant::Modified } else { PdpVariant::Standard };
        let horizon = Seconds::new(0.3);
        let ring = RingConfig::ieee_802_5(set.len(), Bandwidth::from_mbps(16.0));
        let config = SimConfig::new(ring, horizon)
            .with_phasing(Phasing::Synchronized)
            .with_async_load(load);
        let report = PdpSimulator::new(&set, config, FrameFormat::paper_default(), variant).run();
        prop_assert!(report.completed() <= expected_arrivals(&set, horizon));
        prop_assert!(report.medium_utilization >= 0.0 && report.medium_utilization <= 1.0 + 1e-9);
        if let Some(min_rot) = report.rotations.min() {
            prop_assert!(min_rot.as_picos() > 0);
        }
        // Per-stream accounting is self-consistent.
        for s in &report.per_stream {
            prop_assert!(s.response.count() == s.completed);
            prop_assert_eq!(s.response_histogram.count(), s.completed);
        }
    }

    /// Same conservation laws for the timed token simulator.
    #[test]
    fn ttp_conservation_laws(set in arb_set(), load in 0.0f64..0.4) {
        let horizon = Seconds::new(0.3);
        let ring = RingConfig::fddi(set.len(), Bandwidth::from_mbps(100.0));
        let config = SimConfig::new(ring, horizon)
            .with_phasing(Phasing::Synchronized)
            .with_async_load(load);
        prop_assume!(TtpSimulator::from_analysis(&set, config).is_ok());
        let report = TtpSimulator::from_analysis(&set, config).unwrap().run();
        prop_assert!(report.completed() <= expected_arrivals(&set, horizon));
        prop_assert!(report.medium_utilization >= 0.0 && report.medium_utilization <= 1.0 + 1e-9);
    }

    /// Bit-for-bit determinism: identical configs give identical reports.
    #[test]
    fn runs_are_deterministic(set in arb_set(), seed in any::<u64>()) {
        let ring = RingConfig::fddi(set.len(), Bandwidth::from_mbps(100.0));
        let config = SimConfig::new(ring, Seconds::new(0.2))
            .with_async_load(0.2)
            .with_seed(seed);
        prop_assume!(TtpSimulator::from_analysis(&set, config).is_ok());
        let a = TtpSimulator::from_analysis(&set, config).unwrap().run();
        let b = TtpSimulator::from_analysis(&set, config).unwrap().run();
        prop_assert_eq!(a.completed(), b.completed());
        prop_assert_eq!(a.deadline_misses(), b.deadline_misses());
        prop_assert_eq!(a.async_frames_sent, b.async_frames_sent);
        prop_assert_eq!(a.events, b.events);
    }

    /// Longer horizons only add work: completions grow, utilization stays
    /// comparable.
    #[test]
    fn longer_runs_complete_more(set in arb_set()) {
        let ring = RingConfig::fddi(set.len(), Bandwidth::from_mbps(100.0));
        let short = SimConfig::new(ring, Seconds::new(0.2));
        let long = SimConfig::new(ring, Seconds::new(0.6));
        prop_assume!(TtpSimulator::from_analysis(&set, short).is_ok());
        let a = TtpSimulator::from_analysis(&set, short).unwrap().run();
        let b = TtpSimulator::from_analysis(&set, long).unwrap().run();
        prop_assert!(b.completed() >= a.completed());
        prop_assert!(b.events >= a.events);
    }
}
